# Empty compiler generated dependencies file for movie_explanations.
# This may be replaced when dependencies are built.
