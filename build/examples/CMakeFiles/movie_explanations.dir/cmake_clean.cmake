file(REMOVE_RECURSE
  "CMakeFiles/movie_explanations.dir/movie_explanations.cpp.o"
  "CMakeFiles/movie_explanations.dir/movie_explanations.cpp.o.d"
  "movie_explanations"
  "movie_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
