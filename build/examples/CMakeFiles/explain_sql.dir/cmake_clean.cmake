file(REMOVE_RECURSE
  "CMakeFiles/explain_sql.dir/explain_sql.cpp.o"
  "CMakeFiles/explain_sql.dir/explain_sql.cpp.o.d"
  "explain_sql"
  "explain_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
