# Empty compiler generated dependencies file for explain_sql.
# This may be replaced when dependencies are built.
