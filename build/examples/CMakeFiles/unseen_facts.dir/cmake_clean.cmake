file(REMOVE_RECURSE
  "CMakeFiles/unseen_facts.dir/unseen_facts.cpp.o"
  "CMakeFiles/unseen_facts.dir/unseen_facts.cpp.o.d"
  "unseen_facts"
  "unseen_facts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unseen_facts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
