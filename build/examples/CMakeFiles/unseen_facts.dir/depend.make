# Empty dependencies file for unseen_facts.
# This may be replaced when dependencies are built.
