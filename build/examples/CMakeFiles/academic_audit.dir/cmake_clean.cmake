file(REMOVE_RECURSE
  "CMakeFiles/academic_audit.dir/academic_audit.cpp.o"
  "CMakeFiles/academic_audit.dir/academic_audit.cpp.o.d"
  "academic_audit"
  "academic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/academic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
