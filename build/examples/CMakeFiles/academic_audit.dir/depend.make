# Empty dependencies file for academic_audit.
# This may be replaced when dependencies are built.
