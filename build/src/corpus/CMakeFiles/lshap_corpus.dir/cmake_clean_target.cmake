file(REMOVE_RECURSE
  "liblshap_corpus.a"
)
