file(REMOVE_RECURSE
  "CMakeFiles/lshap_corpus.dir/corpus.cc.o"
  "CMakeFiles/lshap_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/lshap_corpus.dir/io.cc.o"
  "CMakeFiles/lshap_corpus.dir/io.cc.o.d"
  "liblshap_corpus.a"
  "liblshap_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
