# Empty compiler generated dependencies file for lshap_corpus.
# This may be replaced when dependencies are built.
