# Empty compiler generated dependencies file for lshap_relational.
# This may be replaced when dependencies are built.
