file(REMOVE_RECURSE
  "liblshap_relational.a"
)
