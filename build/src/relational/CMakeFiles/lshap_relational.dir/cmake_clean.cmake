file(REMOVE_RECURSE
  "CMakeFiles/lshap_relational.dir/database.cc.o"
  "CMakeFiles/lshap_relational.dir/database.cc.o.d"
  "CMakeFiles/lshap_relational.dir/schema.cc.o"
  "CMakeFiles/lshap_relational.dir/schema.cc.o.d"
  "CMakeFiles/lshap_relational.dir/tuple.cc.o"
  "CMakeFiles/lshap_relational.dir/tuple.cc.o.d"
  "CMakeFiles/lshap_relational.dir/value.cc.o"
  "CMakeFiles/lshap_relational.dir/value.cc.o.d"
  "liblshap_relational.a"
  "liblshap_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
