file(REMOVE_RECURSE
  "liblshap_provenance.a"
)
