# Empty compiler generated dependencies file for lshap_provenance.
# This may be replaced when dependencies are built.
