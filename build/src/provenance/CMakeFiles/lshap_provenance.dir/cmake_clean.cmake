file(REMOVE_RECURSE
  "CMakeFiles/lshap_provenance.dir/bool_expr.cc.o"
  "CMakeFiles/lshap_provenance.dir/bool_expr.cc.o.d"
  "CMakeFiles/lshap_provenance.dir/circuit.cc.o"
  "CMakeFiles/lshap_provenance.dir/circuit.cc.o.d"
  "CMakeFiles/lshap_provenance.dir/compiler.cc.o"
  "CMakeFiles/lshap_provenance.dir/compiler.cc.o.d"
  "CMakeFiles/lshap_provenance.dir/tseytin.cc.o"
  "CMakeFiles/lshap_provenance.dir/tseytin.cc.o.d"
  "liblshap_provenance.a"
  "liblshap_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
