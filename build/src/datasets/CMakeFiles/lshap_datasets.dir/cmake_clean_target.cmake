file(REMOVE_RECURSE
  "liblshap_datasets.a"
)
