
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/academic.cc" "src/datasets/CMakeFiles/lshap_datasets.dir/academic.cc.o" "gcc" "src/datasets/CMakeFiles/lshap_datasets.dir/academic.cc.o.d"
  "/root/repo/src/datasets/imdb.cc" "src/datasets/CMakeFiles/lshap_datasets.dir/imdb.cc.o" "gcc" "src/datasets/CMakeFiles/lshap_datasets.dir/imdb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/lshap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lshap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lshap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
