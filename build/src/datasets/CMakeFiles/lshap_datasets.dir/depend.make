# Empty dependencies file for lshap_datasets.
# This may be replaced when dependencies are built.
