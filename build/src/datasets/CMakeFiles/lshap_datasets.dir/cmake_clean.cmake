file(REMOVE_RECURSE
  "CMakeFiles/lshap_datasets.dir/academic.cc.o"
  "CMakeFiles/lshap_datasets.dir/academic.cc.o.d"
  "CMakeFiles/lshap_datasets.dir/imdb.cc.o"
  "CMakeFiles/lshap_datasets.dir/imdb.cc.o.d"
  "liblshap_datasets.a"
  "liblshap_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
