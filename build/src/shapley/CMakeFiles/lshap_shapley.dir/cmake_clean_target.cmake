file(REMOVE_RECURSE
  "liblshap_shapley.a"
)
