# Empty dependencies file for lshap_shapley.
# This may be replaced when dependencies are built.
