file(REMOVE_RECURSE
  "CMakeFiles/lshap_shapley.dir/aggregates.cc.o"
  "CMakeFiles/lshap_shapley.dir/aggregates.cc.o.d"
  "CMakeFiles/lshap_shapley.dir/shapley.cc.o"
  "CMakeFiles/lshap_shapley.dir/shapley.cc.o.d"
  "liblshap_shapley.a"
  "liblshap_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
