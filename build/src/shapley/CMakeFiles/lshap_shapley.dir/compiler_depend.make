# Empty compiler generated dependencies file for lshap_shapley.
# This may be replaced when dependencies are built.
