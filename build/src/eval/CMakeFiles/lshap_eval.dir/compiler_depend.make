# Empty compiler generated dependencies file for lshap_eval.
# This may be replaced when dependencies are built.
