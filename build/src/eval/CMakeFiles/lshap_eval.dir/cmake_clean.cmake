file(REMOVE_RECURSE
  "CMakeFiles/lshap_eval.dir/evaluator.cc.o"
  "CMakeFiles/lshap_eval.dir/evaluator.cc.o.d"
  "liblshap_eval.a"
  "liblshap_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
