file(REMOVE_RECURSE
  "liblshap_eval.a"
)
