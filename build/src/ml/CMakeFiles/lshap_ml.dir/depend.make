# Empty dependencies file for lshap_ml.
# This may be replaced when dependencies are built.
