file(REMOVE_RECURSE
  "CMakeFiles/lshap_ml.dir/adam.cc.o"
  "CMakeFiles/lshap_ml.dir/adam.cc.o.d"
  "CMakeFiles/lshap_ml.dir/encoder.cc.o"
  "CMakeFiles/lshap_ml.dir/encoder.cc.o.d"
  "CMakeFiles/lshap_ml.dir/layers.cc.o"
  "CMakeFiles/lshap_ml.dir/layers.cc.o.d"
  "CMakeFiles/lshap_ml.dir/tensor.cc.o"
  "CMakeFiles/lshap_ml.dir/tensor.cc.o.d"
  "CMakeFiles/lshap_ml.dir/tokenizer.cc.o"
  "CMakeFiles/lshap_ml.dir/tokenizer.cc.o.d"
  "liblshap_ml.a"
  "liblshap_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
