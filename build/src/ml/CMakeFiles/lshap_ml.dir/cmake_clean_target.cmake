file(REMOVE_RECURSE
  "liblshap_ml.a"
)
