# Empty dependencies file for lshap_common.
# This may be replaced when dependencies are built.
