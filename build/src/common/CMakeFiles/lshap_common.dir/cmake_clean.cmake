file(REMOVE_RECURSE
  "CMakeFiles/lshap_common.dir/rng.cc.o"
  "CMakeFiles/lshap_common.dir/rng.cc.o.d"
  "CMakeFiles/lshap_common.dir/status.cc.o"
  "CMakeFiles/lshap_common.dir/status.cc.o.d"
  "CMakeFiles/lshap_common.dir/strings.cc.o"
  "CMakeFiles/lshap_common.dir/strings.cc.o.d"
  "CMakeFiles/lshap_common.dir/thread_pool.cc.o"
  "CMakeFiles/lshap_common.dir/thread_pool.cc.o.d"
  "liblshap_common.a"
  "liblshap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
