file(REMOVE_RECURSE
  "liblshap_common.a"
)
