file(REMOVE_RECURSE
  "liblshap_query.a"
)
