file(REMOVE_RECURSE
  "CMakeFiles/lshap_query.dir/ast.cc.o"
  "CMakeFiles/lshap_query.dir/ast.cc.o.d"
  "CMakeFiles/lshap_query.dir/generator.cc.o"
  "CMakeFiles/lshap_query.dir/generator.cc.o.d"
  "CMakeFiles/lshap_query.dir/parser.cc.o"
  "CMakeFiles/lshap_query.dir/parser.cc.o.d"
  "liblshap_query.a"
  "liblshap_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
