# Empty compiler generated dependencies file for lshap_query.
# This may be replaced when dependencies are built.
