file(REMOVE_RECURSE
  "CMakeFiles/lshap_similarity.dir/hungarian.cc.o"
  "CMakeFiles/lshap_similarity.dir/hungarian.cc.o.d"
  "CMakeFiles/lshap_similarity.dir/kendall.cc.o"
  "CMakeFiles/lshap_similarity.dir/kendall.cc.o.d"
  "CMakeFiles/lshap_similarity.dir/similarity.cc.o"
  "CMakeFiles/lshap_similarity.dir/similarity.cc.o.d"
  "liblshap_similarity.a"
  "liblshap_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
