# Empty dependencies file for lshap_similarity.
# This may be replaced when dependencies are built.
