file(REMOVE_RECURSE
  "liblshap_similarity.a"
)
