
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/hungarian.cc" "src/similarity/CMakeFiles/lshap_similarity.dir/hungarian.cc.o" "gcc" "src/similarity/CMakeFiles/lshap_similarity.dir/hungarian.cc.o.d"
  "/root/repo/src/similarity/kendall.cc" "src/similarity/CMakeFiles/lshap_similarity.dir/kendall.cc.o" "gcc" "src/similarity/CMakeFiles/lshap_similarity.dir/kendall.cc.o.d"
  "/root/repo/src/similarity/similarity.cc" "src/similarity/CMakeFiles/lshap_similarity.dir/similarity.cc.o" "gcc" "src/similarity/CMakeFiles/lshap_similarity.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/lshap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/lshap_shapley.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lshap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lshap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lshap_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lshap_provenance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
