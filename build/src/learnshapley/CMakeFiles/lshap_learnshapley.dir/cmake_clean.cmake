file(REMOVE_RECURSE
  "CMakeFiles/lshap_learnshapley.dir/evaluate.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/evaluate.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/model.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/model.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/model_io.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/model_io.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/nearest_queries.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/nearest_queries.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/ranker.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/ranker.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/serialization.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/serialization.cc.o.d"
  "CMakeFiles/lshap_learnshapley.dir/trainer.cc.o"
  "CMakeFiles/lshap_learnshapley.dir/trainer.cc.o.d"
  "liblshap_learnshapley.a"
  "liblshap_learnshapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_learnshapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
