# Empty compiler generated dependencies file for lshap_learnshapley.
# This may be replaced when dependencies are built.
