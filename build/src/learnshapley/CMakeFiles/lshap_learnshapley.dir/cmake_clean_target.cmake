file(REMOVE_RECURSE
  "liblshap_learnshapley.a"
)
