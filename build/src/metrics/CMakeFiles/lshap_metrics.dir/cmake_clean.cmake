file(REMOVE_RECURSE
  "CMakeFiles/lshap_metrics.dir/ranking_metrics.cc.o"
  "CMakeFiles/lshap_metrics.dir/ranking_metrics.cc.o.d"
  "liblshap_metrics.a"
  "liblshap_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
