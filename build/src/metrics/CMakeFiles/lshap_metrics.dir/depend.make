# Empty dependencies file for lshap_metrics.
# This may be replaced when dependencies are built.
