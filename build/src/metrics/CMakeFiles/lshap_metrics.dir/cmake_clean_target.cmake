file(REMOVE_RECURSE
  "liblshap_metrics.a"
)
