# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("relational")
subdirs("query")
subdirs("eval")
subdirs("provenance")
subdirs("shapley")
subdirs("similarity")
subdirs("metrics")
subdirs("ml")
subdirs("datasets")
subdirs("corpus")
subdirs("learnshapley")
