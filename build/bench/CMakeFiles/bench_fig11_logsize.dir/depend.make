# Empty dependencies file for bench_fig11_logsize.
# This may be replaced when dependencies are built.
