file(REMOVE_RECURSE
  "liblshap_bench_common.a"
)
