file(REMOVE_RECURSE
  "CMakeFiles/lshap_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/lshap_bench_common.dir/bench_common.cc.o.d"
  "liblshap_bench_common.a"
  "liblshap_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lshap_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
