# Empty dependencies file for lshap_bench_common.
# This may be replaced when dependencies are built.
