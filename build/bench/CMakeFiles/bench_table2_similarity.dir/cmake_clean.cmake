file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_similarity.dir/bench_table2_similarity.cc.o"
  "CMakeFiles/bench_table2_similarity.dir/bench_table2_similarity.cc.o.d"
  "bench_table2_similarity"
  "bench_table2_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
