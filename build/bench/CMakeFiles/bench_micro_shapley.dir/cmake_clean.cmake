file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_shapley.dir/bench_micro_shapley.cc.o"
  "CMakeFiles/bench_micro_shapley.dir/bench_micro_shapley.cc.o.d"
  "bench_micro_shapley"
  "bench_micro_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
