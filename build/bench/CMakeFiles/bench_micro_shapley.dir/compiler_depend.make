# Empty compiler generated dependencies file for bench_micro_shapley.
# This may be replaced when dependencies are built.
