# Empty dependencies file for bench_table4_pretrain_ablation.
# This may be replaced when dependencies are built.
