# Empty dependencies file for bench_table6_inference_time.
# This may be replaced when dependencies are built.
