file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_similarity_corr.dir/bench_fig10_similarity_corr.cc.o"
  "CMakeFiles/bench_fig10_similarity_corr.dir/bench_fig10_similarity_corr.cc.o.d"
  "bench_fig10_similarity_corr"
  "bench_fig10_similarity_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_similarity_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
