# Empty compiler generated dependencies file for bench_fig10_similarity_corr.
# This may be replaced when dependencies are built.
