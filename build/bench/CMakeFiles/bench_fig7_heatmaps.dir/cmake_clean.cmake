file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_heatmaps.dir/bench_fig7_heatmaps.cc.o"
  "CMakeFiles/bench_fig7_heatmaps.dir/bench_fig7_heatmaps.cc.o.d"
  "bench_fig7_heatmaps"
  "bench_fig7_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
