# Empty dependencies file for bench_fig7_heatmaps.
# This may be replaced when dependencies are built.
