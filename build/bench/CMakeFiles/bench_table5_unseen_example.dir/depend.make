# Empty dependencies file for bench_table5_unseen_example.
# This may be replaced when dependencies are built.
