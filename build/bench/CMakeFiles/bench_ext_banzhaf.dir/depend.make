# Empty dependencies file for bench_ext_banzhaf.
# This may be replaced when dependencies are built.
