file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_banzhaf.dir/bench_ext_banzhaf.cc.o"
  "CMakeFiles/bench_ext_banzhaf.dir/bench_ext_banzhaf.cc.o.d"
  "bench_ext_banzhaf"
  "bench_ext_banzhaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_banzhaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
