file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_unseen.dir/bench_fig12_unseen.cc.o"
  "CMakeFiles/bench_fig12_unseen.dir/bench_fig12_unseen.cc.o.d"
  "bench_fig12_unseen"
  "bench_fig12_unseen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_unseen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
