# Empty dependencies file for bench_ext_no_lineage.
# This may be replaced when dependencies are built.
