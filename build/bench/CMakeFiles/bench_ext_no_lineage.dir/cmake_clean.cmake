file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_no_lineage.dir/bench_ext_no_lineage.cc.o"
  "CMakeFiles/bench_ext_no_lineage.dir/bench_ext_no_lineage.cc.o.d"
  "bench_ext_no_lineage"
  "bench_ext_no_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_no_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
