file(REMOVE_RECURSE
  "CMakeFiles/banzhaf_test.dir/banzhaf_test.cc.o"
  "CMakeFiles/banzhaf_test.dir/banzhaf_test.cc.o.d"
  "banzhaf_test"
  "banzhaf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banzhaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
