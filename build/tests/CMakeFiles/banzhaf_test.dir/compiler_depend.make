# Empty compiler generated dependencies file for banzhaf_test.
# This may be replaced when dependencies are built.
