file(REMOVE_RECURSE
  "CMakeFiles/shapley_test.dir/shapley_test.cc.o"
  "CMakeFiles/shapley_test.dir/shapley_test.cc.o.d"
  "shapley_test"
  "shapley_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapley_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
