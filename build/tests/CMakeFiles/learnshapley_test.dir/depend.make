# Empty dependencies file for learnshapley_test.
# This may be replaced when dependencies are built.
