file(REMOVE_RECURSE
  "CMakeFiles/learnshapley_test.dir/learnshapley_test.cc.o"
  "CMakeFiles/learnshapley_test.dir/learnshapley_test.cc.o.d"
  "learnshapley_test"
  "learnshapley_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learnshapley_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
