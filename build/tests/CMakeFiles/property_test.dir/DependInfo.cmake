
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/learnshapley/CMakeFiles/lshap_learnshapley.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/lshap_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/lshap_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lshap_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lshap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/lshap_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/lshap_shapley.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lshap_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lshap_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lshap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lshap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lshap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
