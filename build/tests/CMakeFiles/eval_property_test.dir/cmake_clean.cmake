file(REMOVE_RECURSE
  "CMakeFiles/eval_property_test.dir/eval_property_test.cc.o"
  "CMakeFiles/eval_property_test.dir/eval_property_test.cc.o.d"
  "eval_property_test"
  "eval_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
