// NULL semantics across the whole stack: the validity bitmap on ColumnData,
// every null-capable ingest surface, three-valued predicate evaluation,
// SQL join-null (and NaN-key) behavior, null-aware DISTINCT, parser support
// for NULL literals — and golden pins proving that all-valid workloads are
// byte-identical to the pre-null engine (DESIGN.md §14).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "datasets/academic.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"
#include "query/parser.h"
#include "relational/database.h"
#include "relational/tuple.h"

namespace lshap {
namespace {

// ---------------------------------------------------------------------------
// Three-valued predicate logic.
// ---------------------------------------------------------------------------

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe,
                                 CompareOp::kStartsWith};

TEST(TriBoolTest, NullOperandIsUnknownForEveryOp) {
  const Value null = Value::Null();
  for (CompareOp op : kAllOps) {
    EXPECT_EQ(MatchesPredicate3(null, op, Value(int64_t{7})), TriBool::kUnknown)
        << CompareOpSql(op);
    EXPECT_EQ(MatchesPredicate3(Value(int64_t{7}), op, null), TriBool::kUnknown)
        << CompareOpSql(op);
    EXPECT_EQ(MatchesPredicate3(null, op, Value("x")), TriBool::kUnknown)
        << CompareOpSql(op);
    EXPECT_EQ(MatchesPredicate3(Value("x"), op, null), TriBool::kUnknown)
        << CompareOpSql(op);
    EXPECT_EQ(MatchesPredicate3(null, op, null), TriBool::kUnknown)
        << CompareOpSql(op);
    // The boolean wrapper maps unknown to "does not survive".
    EXPECT_FALSE(MatchesPredicate(null, op, Value(int64_t{7})))
        << CompareOpSql(op);
  }
  // NULL != NULL is unknown too (SQL), not true.
  EXPECT_EQ(MatchesPredicate3(null, CompareOp::kNe, null), TriBool::kUnknown);
}

TEST(TriBoolTest, NonNullComparisonsAreTwoValued) {
  const Value a(int64_t{1});
  const Value b(int64_t{2});
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kEq, a), TriBool::kTrue);
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kEq, b), TriBool::kFalse);
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kNe, b), TriBool::kTrue);
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kLt, b), TriBool::kTrue);
  EXPECT_EQ(MatchesPredicate3(b, CompareOp::kLe, a), TriBool::kFalse);
  EXPECT_EQ(MatchesPredicate3(b, CompareOp::kGt, a), TriBool::kTrue);
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kGe, b), TriBool::kFalse);
  EXPECT_EQ(MatchesPredicate3(Value("abcde"), CompareOp::kStartsWith,
                              Value("abc")),
            TriBool::kTrue);
  EXPECT_EQ(MatchesPredicate3(Value("abcde"), CompareOp::kStartsWith,
                              Value("xyz")),
            TriBool::kFalse);
  // A type mismatch between two non-null values is plain false, not unknown.
  EXPECT_EQ(MatchesPredicate3(a, CompareOp::kEq, Value("1")), TriBool::kFalse);
  EXPECT_TRUE(MatchesPredicate(a, CompareOp::kLt, b));
  EXPECT_FALSE(MatchesPredicate(b, CompareOp::kLt, a));
}

TEST(TriBoolTest, OrderingSupportsMinMaxConnectives) {
  // kFalse < kUnknown < kTrue, so AND == min and OR == max (Kleene K3).
  EXPECT_LT(static_cast<int>(TriBool::kFalse),
            static_cast<int>(TriBool::kUnknown));
  EXPECT_LT(static_cast<int>(TriBool::kUnknown),
            static_cast<int>(TriBool::kTrue));
}

// ---------------------------------------------------------------------------
// Validity bitmap mechanics on ColumnData (observed through Table).
// ---------------------------------------------------------------------------

TEST(ValidityBitmapTest, AllValidColumnStoresNoBitmap) {
  Database db("v");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  TableAppender app = db.AppenderFor("t");
  for (int64_t i = 0; i < 100; ++i) app.Begin().Int(i).Commit();
  const ColumnData& col = (*db.FindTable("t"))->column(0);
  EXPECT_FALSE(col.has_nulls());
  EXPECT_EQ(col.null_count(), 0u);
  EXPECT_TRUE(col.validity_words().empty());  // lazy: zero memory when valid
  for (size_t i = 0; i < 100; ++i) EXPECT_TRUE(col.valid(i));
}

TEST(ValidityBitmapTest, FirstNullBackfillsAndPacksWords) {
  Database db("v");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  TableAppender app = db.AppenderFor("t");
  // 70 valid rows (crosses the 64-bit word boundary), then null, then valid.
  for (int64_t i = 0; i < 70; ++i) app.Begin().Int(i).Commit();
  app.Begin().Null().Commit();
  app.Begin().Int(71).Commit();
  const ColumnData& col = (*db.FindTable("t"))->column(0);
  EXPECT_TRUE(col.has_nulls());
  EXPECT_EQ(col.null_count(), 1u);
  ASSERT_EQ(col.validity_words().size(), 2u);  // ceil(72 / 64)
  EXPECT_EQ(col.validity_words()[0], ~uint64_t{0});  // backfilled all-valid
  for (size_t i = 0; i < 72; ++i) {
    EXPECT_EQ(col.valid(i), i != 70) << "row " << i;
  }
  // Trailing bits beyond num_rows stay zero: fingerprints may hash the raw
  // words without masking.
  const uint64_t last = col.validity_words()[1];
  EXPECT_EQ(last >> (72 - 64), 0u);
  EXPECT_TRUE((*db.FindTable("t"))->GetValue(70, 0).is_null());
  EXPECT_EQ((*db.FindTable("t"))->GetValue(71, 0).AsInt(), 71);
}

// ---------------------------------------------------------------------------
// Every null-capable ingest surface produces the same table.
// ---------------------------------------------------------------------------

Schema MixedSchema() {
  return Schema("t", {{"a", ColumnType::kInt},
                      {"b", ColumnType::kDouble},
                      {"c", ColumnType::kString}});
}

// Rows: (1, 1.5, "x"), (NULL, NULL, NULL), (3, 3.5, "z").
void ExpectCanonicalRows(const Database& db) {
  const Table& t = **db.FindTable("t");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.GetValue(0, 0).AsInt(), 1);
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
  EXPECT_TRUE(t.GetValue(1, 1).is_null());
  EXPECT_TRUE(t.GetValue(1, 2).is_null());
  EXPECT_EQ(t.GetValue(2, 2).AsString(), "z");
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(t.column(c).has_nulls());
    EXPECT_EQ(t.column(c).null_count(), 1u);
  }
}

TEST(NullIngestTest, RowBuilderSurface) {
  Database db("i");
  ASSERT_TRUE(db.AddTable(MixedSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  app.Begin().Int(1).Real(1.5).Str("x").Commit();
  app.Begin().Null().Null().Null().Commit();
  app.Begin().Int(3).Real(3.5).Str("z").Commit();
  ExpectCanonicalRows(db);
}

TEST(NullIngestTest, RowBatchSurface) {
  Database db("i");
  ASSERT_TRUE(db.AddTable(MixedSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  RowBatch batch(app.schema());
  batch.Begin().Int(1).Real(1.5).Str("x").End();
  batch.Begin().Null().Null().Null().End();
  batch.Begin().Int(3).Real(3.5).Str("z").End();
  app.Append(batch);
  ExpectCanonicalRows(db);
}

TEST(NullIngestTest, NullableColumnSurface) {
  Database db("i");
  ASSERT_TRUE(db.AddTable(MixedSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  const std::vector<int64_t> ints = {1, 0, 3};
  const std::vector<double> reals = {1.5, 0.0, 3.5};
  const std::vector<std::string> strs = {"x", "", "z"};
  const std::vector<uint8_t> validity = {1, 0, 1};
  app.AppendNullableColumn(0, std::span<const int64_t>(ints),
                           std::span<const uint8_t>(validity))
      .AppendNullableColumn(1, std::span<const double>(reals),
                            std::span<const uint8_t>(validity))
      .AppendNullableColumn(2, std::span<const std::string>(strs),
                            std::span<const uint8_t>(validity))
      .CommitRows();
  ExpectCanonicalRows(db);
}

TEST(NullIngestTest, InsertSurface) {
  Database db("i");
  ASSERT_TRUE(db.AddTable(MixedSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Value(int64_t{1}), Value(1.5), Value("x")}).ok());
  ASSERT_TRUE(
      db.Insert("t", {Value::Null(), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("t", {Value(int64_t{3}), Value(3.5), Value("z")}).ok());
  ExpectCanonicalRows(db);
}

TEST(NullIngestTest, AllSurfacesFingerprintIdentically) {
  auto build = [](int surface) {
    auto db = std::make_unique<Database>("i");
    LSHAP_CHECK(db->AddTable(MixedSchema()).ok());
    TableAppender app = db->AppenderFor("t");
    switch (surface) {
      case 0: {
        app.Begin().Int(1).Real(1.5).Str("x").Commit();
        app.Begin().Null().Null().Null().Commit();
        app.Begin().Int(3).Real(3.5).Str("z").Commit();
        break;
      }
      case 1: {
        RowBatch batch(app.schema());
        batch.Begin().Int(1).Real(1.5).Str("x").End();
        batch.Begin().Null().Null().Null().End();
        batch.Begin().Int(3).Real(3.5).Str("z").End();
        app.Append(batch);
        break;
      }
      case 2: {
        const std::vector<int64_t> ints = {1, 0, 3};
        const std::vector<double> reals = {1.5, 0.0, 3.5};
        const std::vector<std::string_view> strs = {"x", "", "z"};
        const std::vector<uint8_t> validity = {1, 0, 1};
        app.AppendNullableColumn(0, std::span<const int64_t>(ints),
                                 std::span<const uint8_t>(validity))
            .AppendNullableColumn(1, std::span<const double>(reals),
                                  std::span<const uint8_t>(validity))
            .AppendNullableColumn(2, std::span<const std::string_view>(strs),
                                  std::span<const uint8_t>(validity))
            .CommitRows();
        break;
      }
      default: {
        LSHAP_CHECK(
            db->Insert("t", {Value(int64_t{1}), Value(1.5), Value("x")}).ok());
        LSHAP_CHECK(
            db->Insert("t", {Value::Null(), Value::Null(), Value::Null()})
                .ok());
        LSHAP_CHECK(
            db->Insert("t", {Value(int64_t{3}), Value(3.5), Value("z")}).ok());
        break;
      }
    }
    return db;
  };
  const uint64_t want = FactTableFingerprint(*build(0));
  for (int surface = 1; surface < 4; ++surface) {
    EXPECT_EQ(FactTableFingerprint(*build(surface)), want)
        << "surface " << surface;
  }
}

TEST(NullIngestTest, IntNullableColumnPromotesToDouble) {
  Database db("i");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"d", ColumnType::kDouble}})).ok());
  const std::vector<int64_t> ints = {4, 0, 6};
  const std::vector<uint8_t> validity = {1, 0, 1};
  db.AppenderFor("t")
      .AppendNullableColumn(0, std::span<const int64_t>(ints),
                            std::span<const uint8_t>(validity))
      .CommitRows();
  const Table& t = **db.FindTable("t");
  EXPECT_EQ(t.GetValue(0, 0).AsDouble(), 4.0);
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
  EXPECT_EQ(t.GetValue(2, 0).AsDouble(), 6.0);
}

TEST(NullIngestTest, AllValidNullableColumnStaysBitmapFree) {
  // AppendNullableColumn with an all-ones validity span must behave exactly
  // like AppendColumn: no bitmap materialized, identical fingerprint.
  const std::vector<int64_t> ints = {4, 5, 6};
  const std::vector<uint8_t> validity = {1, 1, 1};
  Database a("i");
  LSHAP_CHECK(a.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  a.AppenderFor("t")
      .AppendNullableColumn(0, std::span<const int64_t>(ints),
                            std::span<const uint8_t>(validity))
      .CommitRows();
  Database b("i");
  LSHAP_CHECK(b.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  b.AppenderFor("t")
      .AppendColumn(0, std::span<const int64_t>(ints))
      .CommitRows();
  EXPECT_FALSE((*a.FindTable("t"))->column(0).has_nulls());
  EXPECT_TRUE((*a.FindTable("t"))->column(0).validity_words().empty());
  EXPECT_EQ(FactTableFingerprint(a), FactTableFingerprint(b));
}

// ---------------------------------------------------------------------------
// Fingerprint covers validity: same cell bytes, different nullity.
// ---------------------------------------------------------------------------

TEST(FingerprintTest, DistinguishesNullFromPlaceholderZero) {
  // A null int cell stores placeholder 0; a null string cell stores string
  // id 0 (same bytes as the empty-pool sentinel). Databases whose cell
  // payloads are bit-identical but whose validity differs must fingerprint
  // differently.
  Database with_zero("f");
  LSHAP_CHECK(with_zero.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  {
    TableAppender app = with_zero.AppenderFor("t");
    app.Begin().Int(1).Commit();
    app.Begin().Int(0).Commit();
  }
  Database with_null("f");
  LSHAP_CHECK(with_null.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  {
    TableAppender app = with_null.AppenderFor("t");
    app.Begin().Int(1).Commit();
    app.Begin().Null().Commit();
  }
  EXPECT_NE(FactTableFingerprint(with_zero), FactTableFingerprint(with_null));
}

// ---------------------------------------------------------------------------
// Join semantics: null keys match nothing; NaN keys match nothing.
// ---------------------------------------------------------------------------

struct JoinFixture {
  Database db{"j"};

  JoinFixture() {
    LSHAP_CHECK(db.AddTable(Schema("l", {{"k", ColumnType::kInt},
                                         {"d", ColumnType::kDouble},
                                         {"s", ColumnType::kString},
                                         {"tag", ColumnType::kString}}))
                    .ok());
    LSHAP_CHECK(db.AddTable(Schema("r", {{"k", ColumnType::kInt},
                                         {"d", ColumnType::kDouble},
                                         {"s", ColumnType::kString},
                                         {"name", ColumnType::kString}}))
                    .ok());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    TableAppender l = db.AppenderFor("l");
    l.Begin().Int(1).Real(1.5).Str("p").Str("a").Commit();
    l.Begin().Null().Real(nan).Null().Str("b").Commit();
    l.Begin().Int(0).Real(0.0).Str("q").Str("c").Commit();
    TableAppender r = db.AppenderFor("r");
    r.Begin().Int(1).Real(1.5).Str("p").Str("x").Commit();
    r.Begin().Null().Real(nan).Null().Str("y").Commit();
    r.Begin().Int(0).Real(-0.0).Str("q").Str("z").Commit();
    db.FreezeStringOrder();
  }

  std::vector<std::string> JoinOn(const std::string& key) {
    SpjBlock b;
    b.tables = {"l", "r"};
    b.joins.push_back({{"l", key}, {"r", key}});
    b.projections = {{"l", "tag"}, {"r", "name"}};
    Query q;
    q.id = "join_" + key;
    q.blocks.push_back(b);
    auto res = Evaluate(db, q);
    LSHAP_CHECK(res.ok());
    std::vector<std::string> got;
    for (const auto& t : res->tuples) got.push_back(OutputTupleToString(t));
    std::sort(got.begin(), got.end());
    return got;
  }
};

TEST(JoinNullTest, NullIntKeyMatchesNothing) {
  JoinFixture f;
  // Row b has a null key on both sides: SQL says NULL = NULL is unknown, so
  // it joins nothing — not even itself. Row c's key is the literal 0 that
  // null cells use as their placeholder; it must still join normally.
  EXPECT_EQ(f.JoinOn("k"), (std::vector<std::string>{"(a, x)", "(c, z)"}));
}

TEST(JoinNullTest, NullStringKeyMatchesNothing) {
  JoinFixture f;
  EXPECT_EQ(f.JoinOn("s"), (std::vector<std::string>{"(a, x)", "(c, z)"}));
}

TEST(JoinNullTest, NanDoubleKeyMatchesNothing) {
  JoinFixture f;
  // IEEE says NaN != NaN; hashing NaN to a bucket and matching on bit
  // pattern would disagree with that. NaN keys are excluded from the join
  // outright, like nulls. 0.0 and -0.0 compare equal and must still join.
  EXPECT_EQ(f.JoinOn("d"), (std::vector<std::string>{"(a, x)", "(c, z)"}));
}

// ---------------------------------------------------------------------------
// DISTINCT treats NULL as a value (SQL "not distinct" rule), and does not
// collapse NULL with the placeholder it happens to store.
// ---------------------------------------------------------------------------

TEST(DistinctNullTest, NullCollapsesWithNullButNotWithZero) {
  Database db("d");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt},
                                       {"b", ColumnType::kString}}))
                  .ok());
  TableAppender app = db.AppenderFor("t");
  app.Begin().Int(0).Str("m").Commit();   // real 0 — placeholder collision
  app.Begin().Null().Str("m").Commit();
  app.Begin().Null().Str("m").Commit();   // duplicate (NULL, m)
  app.Begin().Int(0).Str("m").Commit();   // duplicate (0, m)
  db.FreezeStringOrder();

  SpjBlock b;
  b.tables = {"t"};
  b.projections = {{"t", "a"}, {"t", "b"}};
  Query q;
  q.id = "distinct_null";
  q.blocks.push_back(b);
  auto res = Evaluate(db, q);
  ASSERT_TRUE(res.ok());
  std::vector<std::string> got;
  for (const auto& t : res->tuples) got.push_back(OutputTupleToString(t));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"(0, m)", "(NULL, m)"}));
}

// ---------------------------------------------------------------------------
// Parser: NULL literal round-trips, and compiles to an empty selection.
// ---------------------------------------------------------------------------

TEST(ParserNullTest, NullLiteralRoundTripsAndSelectsNothing) {
  ImdbConfig cfg;
  cfg.seed = 99;
  cfg.num_companies = 5;
  cfg.num_actors = 8;
  cfg.num_movies = 10;
  cfg.num_roles = 20;
  cfg.null_prob = 0.3;
  GeneratedDb data = MakeImdbDatabase(cfg);

  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt}) {
    SpjBlock b;
    b.tables = {"actors"};
    b.selections.push_back({{"actors", "age"}, op, Value::Null()});
    b.projections = {{"actors", "name"}};
    Query q;
    q.id = "null_lit";
    q.blocks.push_back(b);

    auto parsed = ParseQuery(*data.db, q.ToSql(), q.id);
    ASSERT_TRUE(parsed.ok()) << q.ToSql();
    EXPECT_EQ(parsed->ToSql(), q.ToSql());
    ASSERT_EQ(parsed->blocks.size(), 1u);
    ASSERT_EQ(parsed->blocks[0].selections.size(), 1u);
    EXPECT_TRUE(parsed->blocks[0].selections[0].literal.is_null());

    // `x OP NULL` is unknown for every row — nothing survives, even for
    // rows where x itself is NULL.
    auto res = Evaluate(*data.db, q);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->tuples.empty()) << q.ToSql();
  }
}

// ---------------------------------------------------------------------------
// Golden pins: all-valid workloads are byte-identical to the pre-null seed.
// The constants below were captured from the engine at the commit preceding
// this feature; any drift means the fast path is no longer bit-exact.
// ---------------------------------------------------------------------------

TEST(GoldenTest, DefaultDatabasesFingerprintAsSeed) {
  GeneratedDb imdb = MakeImdbDatabase(ImdbConfig{});
  GeneratedDb acad = MakeAcademicDatabase(AcademicConfig{});
  EXPECT_EQ(FactTableFingerprint(*imdb.db), 10100358221814532543ull);
  EXPECT_EQ(FactTableFingerprint(*acad.db), 11190426527198386713ull);
  ImdbConfig small;
  small.seed = 99;
  small.num_companies = 5;
  small.num_actors = 8;
  small.num_movies = 10;
  small.num_roles = 20;
  EXPECT_EQ(FactTableFingerprint(*MakeImdbDatabase(small).db),
            839548928046072185ull);
  // No default-config column carries a bitmap.
  for (const Database* db : {imdb.db.get(), acad.db.get()}) {
    for (size_t t = 0; t < db->num_tables(); ++t) {
      for (size_t c = 0; c < db->table(t).num_columns(); ++c) {
        EXPECT_FALSE(db->table(t).column(c).has_nulls());
      }
    }
  }
}

TEST(GoldenTest, NonZeroNullProbChangesFingerprint) {
  ImdbConfig cfg;
  cfg.null_prob = 0.2;
  EXPECT_NE(FactTableFingerprint(*MakeImdbDatabase(cfg).db),
            10100358221814532543ull);
}

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t FnvStr(uint64_t h, const std::string& s) {
  return Fnv1a(h, s.data(), s.size());
}

uint64_t FnvWord(uint64_t h, uint64_t w) { return Fnv1a(h, &w, sizeof(w)); }

// FNV-1a over every tuple (rendered text, in result order) and lineage of
// every query in the log — one number pinning the full observable output of
// a (database, log, capture mode) triple.
uint64_t EvalLogFingerprint(const Database& db, const std::vector<Query>& log,
                            ProvenanceCapture capture, ThreadPool* pool) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Query& q : log) {
    EvalOptions opts;
    opts.capture = capture;
    if (pool != nullptr) {
      opts.pool = pool;
      opts.morsel_rows = 3;        // tiny morsels: force real parallel merges
      opts.min_parallel_rows = 1;
    }
    auto res = Evaluate(db, q, opts);
    LSHAP_CHECK(res.ok());
    h = FnvStr(h, q.id);
    h = FnvWord(h, res->tuples.size());
    for (size_t i = 0; i < res->tuples.size(); ++i) {
      h = FnvStr(h, OutputTupleToString(res->tuples[i]));
      if (capture != ProvenanceCapture::kNone) {
        const auto& lin = res->LineageOf(i);
        h = FnvWord(h, lin.size());
        for (FactId f : lin) h = FnvWord(h, f);
      }
    }
  }
  return h;
}

TEST(GoldenTest, EvalLogFingerprintsMatchSeedAtEveryThreadCount) {
  GeneratedDb data = MakeImdbDatabase(ImdbConfig{});
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 4242);
  const std::vector<Query> log = gen.GenerateLog(30, "nullpin");
  ASSERT_EQ(log.size(), 85u);  // generator RNG stream unchanged by null_prob

  const struct {
    ProvenanceCapture capture;
    uint64_t want;
  } kPins[] = {
      {ProvenanceCapture::kNone, 17452578491546353154ull},
      {ProvenanceCapture::kLineageOnly, 2549908928594604730ull},
      {ProvenanceCapture::kFull, 2549908928594604730ull},
  };
  for (const auto& pin : kPins) {
    EXPECT_EQ(EvalLogFingerprint(*data.db, log, pin.capture, nullptr),
              pin.want)
        << "serial capture=" << static_cast<int>(pin.capture);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      EXPECT_EQ(EvalLogFingerprint(*data.db, log, pin.capture, &pool),
                pin.want)
          << "threads=" << threads
          << " capture=" << static_cast<int>(pin.capture);
    }
  }
}

}  // namespace
}  // namespace lshap
