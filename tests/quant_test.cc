// Differential tests for the quantized SIMD inference path (DESIGN.md §12):
//
//  - KernelBitEquality: the AVX2 and scalar kernels are bit-equal on random
//    shapes (this is what lets the AVX2-disabled CI leg certify the scalar
//    fallback as the same function).
//  - Float inference twins: the const arena-based ForwardInference path is
//    bit-identical to the mutating training forward.
//  - QuantizedLinear: codes reconstruct the float weights within half a
//    quantization step, and the int8 forward stays inside the analytic
//    error bound of the scheme.
//  - End-to-end: quantized top-k rankings agree with the float oracle on
//    the held-out eval split within a small NDCG tolerance, batched lineage
//    scoring equals per-fact scoring, and one shared const ranker scored
//    from many threads is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/model.h"
#include "learnshapley/ranker.h"
#include "learnshapley/trainer.h"
#include "metrics/ranking_metrics.h"
#include "ml/encoder.h"
#include "ml/layers.h"
#include "ml/quant.h"
#include "ml/simd.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

// Grabs both kernel tables through the dispatch point. The tables are
// statics, so the references stay valid after the level is restored.
struct BothTables {
  const SimdKernelTable* scalar;
  const SimdKernelTable* simd;
};

BothTables GetTables() {
  const SimdLevel detected = DetectedSimdLevel();
  SetSimdLevel(SimdLevel::kScalar);
  const SimdKernelTable* scalar = &SimdKernels();
  SetSimdLevel(detected);
  return {scalar, &SimdKernels()};
}

class KernelBitEquality : public ::testing::Test {
 protected:
  void SetUp() override {
    if (DetectedSimdLevel() == SimdLevel::kScalar) {
      GTEST_SKIP() << "no SIMD level above scalar on this build/CPU";
    }
  }
  void TearDown() override { SetSimdLevel(DetectedSimdLevel()); }
};

TEST_F(KernelBitEquality, DotInt8) {
  auto [scalar, simd] = GetTables();
  Rng rng(101);
  for (size_t n : {kInt8BlockElems, 2 * kInt8BlockElems, 3 * kInt8BlockElems,
                   8 * kInt8BlockElems}) {
    std::vector<int8_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int8_t>(static_cast<int>(rng.NextBounded(255)) - 127);
      b[i] = static_cast<int8_t>(static_cast<int>(rng.NextBounded(255)) - 127);
    }
    EXPECT_EQ(scalar->dot_i8(a.data(), b.data(), n),
              simd->dot_i8(a.data(), b.data(), n))
        << "n=" << n;
  }
}

std::vector<float> RandomRow(Rng& rng, size_t n, float scale) {
  std::vector<float> x(n);
  for (float& v : x) {
    v = scale * (2.0f * static_cast<float>(rng.NextDouble()) - 1.0f);
  }
  return x;
}

TEST_F(KernelBitEquality, Gelu) {
  auto [scalar, simd] = GetTables();
  Rng rng(102);
  for (size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 33u, 100u}) {
    const std::vector<float> x = RandomRow(rng, n, 6.0f);
    std::vector<float> a = x, b = x;
    scalar->gelu(a.data(), n);
    simd->gelu(b.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a[i], b[i]) << "n=" << n << " i=" << i << " x=" << x[i];
    }
  }
}

TEST_F(KernelBitEquality, SoftmaxIncludingMaskedEntries) {
  auto [scalar, simd] = GetTables();
  Rng rng(103);
  for (size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 31u, 64u, 100u}) {
    std::vector<float> x = RandomRow(rng, n, 8.0f);
    // Mask a third of the entries the way attention does; the kernels must
    // drive those to exactly zero in both variants.
    for (size_t i = 0; i < n; ++i) {
      if (i % 3 == 1 && n > 1) x[i] = -1e30f;
    }
    std::vector<float> a = x, b = x;
    scalar->softmax(a.data(), n);
    simd->softmax(b.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a[i], b[i]) << "n=" << n << " i=" << i;
      if (i % 3 == 1 && n > 1) {
        EXPECT_EQ(a[i], 0.0f);
      }
    }
  }
}

TEST_F(KernelBitEquality, QuantizeRow) {
  auto [scalar, simd] = GetTables();
  Rng rng(104);
  for (size_t n : {1u, 5u, 8u, 13u, 16u, 24u, 48u, 100u}) {
    const std::vector<float> x = RandomRow(rng, n, 3.0f);
    std::vector<int8_t> qa(n, 42), qb(n, 42);
    float sa = -1.0f, sb = -1.0f;
    scalar->quantize_row(x.data(), n, qa.data(), &sa);
    simd->quantize_row(x.data(), n, qb.data(), &sb);
    EXPECT_EQ(sa, sb) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(qa[i], qb[i]) << "n=" << n << " i=" << i;
    }
  }
  // Zero rows get scale 0 and all-zero codes in both variants.
  std::vector<float> zeros(40, 0.0f);
  std::vector<int8_t> qa(40, 42), qb(40, 42);
  float sa = -1.0f, sb = -1.0f;
  scalar->quantize_row(zeros.data(), zeros.size(), qa.data(), &sa);
  simd->quantize_row(zeros.data(), zeros.size(), qb.data(), &sb);
  EXPECT_EQ(sa, 0.0f);
  EXPECT_EQ(sb, 0.0f);
  for (size_t i = 0; i < zeros.size(); ++i) {
    EXPECT_EQ(qa[i], 0);
    EXPECT_EQ(qb[i], 0);
  }
}

TEST(SimdExpApproxTest, TracksStdExpAndMasksToZero) {
  for (float x = -20.0f; x <= 20.0f; x += 0.37f) {
    const float want = std::exp(x);
    EXPECT_NEAR(SimdExpApprox(x), want, 2e-5f * (1.0f + want)) << "x=" << x;
  }
  EXPECT_EQ(SimdExpApprox(-1e30f), 0.0f);  // masked attention scores
  EXPECT_EQ(SimdExpApprox(-100.0f), 0.0f);
  EXPECT_GT(SimdExpApprox(-80.0f), 0.0f);
}

// ---- Float inference twins ----

TEST(FloatInferenceTest, EncoderForwardInferenceIsBitIdentical) {
  EncoderConfig cfg;
  cfg.vocab_size = 40;
  cfg.max_len = 12;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_dim = 32;
  cfg.seed = 21;
  TransformerEncoder enc(cfg);
  Rng rng(22);
  InferenceArena arena;
  for (int trial = 0; trial < 5; ++trial) {
    const size_t len = 3 + rng.NextBounded(9);
    std::vector<int> ids;
    ids.push_back(Vocab::kCls);
    for (size_t i = 1; i < len; ++i) {
      ids.push_back(static_cast<int>(
          Vocab::kNumSpecial +
          rng.NextBounded(cfg.vocab_size - Vocab::kNumSpecial)));
    }
    const std::vector<bool> mask(len, true);
    const Tensor want = enc.Forward(ids, mask);
    arena.Reset();
    Tensor got;
    enc.ForwardInference(ids, mask, arena, got);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.data()[i], want.data()[i]) << "trial " << trial;
    }
  }
}

TEST(FloatInferenceTest, ModelPredictShapleyTwinsAgreeExactly) {
  EncoderConfig cfg;
  cfg.vocab_size = 30;
  cfg.max_len = 16;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 32;
  cfg.seed = 31;
  LearnShapleyModel model(cfg, 31);
  InferenceArena arena;
  EncodedPair input;
  input.ids = {Vocab::kCls, 7, 9, Vocab::kSep, 11, 6, Vocab::kSep, 8};
  input.mask.assign(input.ids.size(), true);
  const float mutating = model.PredictShapley(input);
  const float via_arena = model.PredictShapley(input, arena);
  EXPECT_EQ(mutating, via_arena);
}

// ---- QuantizedLinear ----

TEST(QuantizedLinearTest, CodesReconstructWeightsWithinHalfStep) {
  Rng rng(41);
  const size_t in = 24, out = 12;
  const Tensor w = Tensor::Randn(in, out, 1.0f, rng);
  const Tensor b = Tensor::Randn(1, out, 1.0f, rng);
  const QuantizedLinear q = QuantizedLinear::FromFloat(w, b);
  ASSERT_EQ(q.in(), in);
  ASSERT_EQ(q.out(), out);
  ASSERT_EQ(q.in_pad() % kInt8BlockElems, 0u);
  for (size_t j = 0; j < out; ++j) {
    float amax = 0.0f;
    for (size_t i = 0; i < in; ++i) amax = std::max(amax, std::abs(w.at(i, j)));
    EXPECT_FLOAT_EQ(q.scales()[j], amax / 127.0f);
    for (size_t i = 0; i < in; ++i) {
      const float code =
          static_cast<float>(q.weights()[j * q.in_pad() + i]);
      EXPECT_NEAR(code * q.scales()[j], w.at(i, j),
                  0.5f * q.scales()[j] + 1e-6f);
    }
    // The padded tail must be zero codes (they face zero-padded activations
    // but keeping them zero makes the layout checksum-stable).
    for (size_t i = in; i < q.in_pad(); ++i) {
      EXPECT_EQ(q.weights()[j * q.in_pad() + i], 0);
    }
  }
}

TEST(QuantizedLinearTest, ForwardStaysInsideAnalyticErrorBound) {
  Rng rng(42);
  const size_t rows = 4, in = 40, out = 20;
  const Tensor w = Tensor::Randn(in, out, 0.7f, rng);
  const Tensor b = Tensor::Randn(1, out, 0.5f, rng);
  const Tensor x = Tensor::Randn(rows, in, 1.2f, rng);
  const QuantizedLinear q = QuantizedLinear::FromFloat(w, b);

  QuantScratch scratch;
  Tensor got;
  QuantizedLinearForward(q, x, scratch, got);
  ASSERT_EQ(got.rows(), rows);
  ASSERT_EQ(got.cols(), out);

  for (size_t r = 0; r < rows; ++r) {
    float amax = 0.0f;
    for (size_t i = 0; i < in; ++i) amax = std::max(amax, std::abs(x.at(r, i)));
    const float act_scale = amax / 127.0f;
    for (size_t j = 0; j < out; ++j) {
      float want = b.at(0, j);
      float bound = 1e-4f;
      for (size_t i = 0; i < in; ++i) {
        want += x.at(r, i) * w.at(i, j);
        // Worst case per term: half a step on each operand plus the cross
        // term (both operands rounded at once).
        bound += 0.5f * act_scale * std::abs(w.at(i, j)) +
                 0.5f * q.scales()[j] * std::abs(x.at(r, i)) +
                 0.25f * act_scale * q.scales()[j];
      }
      EXPECT_NEAR(got.at(r, j), want, bound) << "r=" << r << " j=" << j;
    }
  }
}

// ---- End-to-end: quantized vs float oracle on the eval split ----

struct TrainedFixture {
  GeneratedDb data;
  ThreadPool pool;
  Corpus corpus;
  TrainResult trained;

  TrainedFixture() : data(MakeImdbDatabase({})), pool(2) {
    CorpusConfig cfg;
    cfg.seed = 12;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus = BuildCorpus(*data.db, data.graph, cfg, pool);
    SimilarityMatrices sims = ComputeSimilarityMatrices(corpus, 6, pool);
    TrainConfig tc;
    tc.do_pretrain = false;
    tc.finetune_epochs = 1;
    tc.finetune_samples_per_epoch = 64;
    tc.batch_size = 32;
    tc.seed = 13;
    trained = TrainLearnShapley(corpus, sims, tc, pool);
  }
};

// One trained model shared by every end-to-end test below (training once
// keeps this test binary fast).
TrainedFixture& Fixture() {
  static TrainedFixture* fixture = new TrainedFixture();
  return *fixture;
}

struct EvalPair {
  const CorpusEntry* entry;
  const TupleContribution* contrib;
  std::vector<FactId> lineage;
};

std::vector<EvalPair> EvalPairs(const Corpus& corpus) {
  std::vector<EvalPair> pairs;
  for (size_t e : corpus.test_idx) {
    const CorpusEntry& entry = corpus.entries[e];
    for (const TupleContribution& c : entry.contributions) {
      EvalPair p{&entry, &c, {}};
      for (const auto& [f, v] : c.shapley) p.lineage.push_back(f);
      if (!p.lineage.empty()) pairs.push_back(std::move(p));
    }
  }
  return pairs;
}

TEST(QuantizedEndToEndTest, TopKAgreesWithFloatOracleWithinNdcgTolerance) {
  TrainedFixture& fx = Fixture();
  LearnShapleyRanker& ranker = *fx.trained.ranker;
  const std::vector<EvalPair> pairs = EvalPairs(fx.corpus);
  ASSERT_FALSE(pairs.empty());

  std::vector<ShapleyValues> float_scores;
  ranker.Configure(RankerConfig{}.WithMode(InferenceMode::kFloat));
  for (const EvalPair& p : pairs) {
    float_scores.push_back(ranker.ScoreLineage(
        *fx.corpus.db, p.entry->query, p.contrib->tuple, p.lineage));
  }

  ranker.Configure(RankerConfig{}.WithMode(InferenceMode::kQuantized));
  ASSERT_NE(ranker.quantized_model(), nullptr);

  std::vector<double> agreement, gold_delta;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const EvalPair& p = pairs[i];
    const ShapleyValues quant_scores = ranker.ScoreLineage(
        *fx.corpus.db, p.entry->query, p.contrib->tuple, p.lineage);
    const std::vector<FactId> rank_f = RankByScore(float_scores[i]);
    const std::vector<FactId> rank_q = RankByScore(quant_scores);

    // NDCG of the quantized ranking with the float ranking as gold: graded
    // relevance by float rank position, so low-rank swaps between near-ties
    // cost little and top-k swaps cost a lot.
    ShapleyValues float_rank_rel;
    for (size_t r = 0; r < rank_f.size(); ++r) {
      float_rank_rel[rank_f[r]] =
          static_cast<double>(rank_f.size() - r);
    }
    agreement.push_back(NdcgAtK(rank_q, float_rank_rel, 10));

    // Against the true Shapley gold, quantization must not change ranking
    // quality by more than a hair.
    gold_delta.push_back(std::abs(NdcgAtK(rank_f, p.contrib->shapley, 10) -
                                  NdcgAtK(rank_q, p.contrib->shapley, 10)));
  }
  EXPECT_GE(Mean(agreement), 0.97) << "quantized ranking diverged from the "
                                      "float oracle on the eval split";
  EXPECT_LE(Mean(gold_delta), 0.02);
  ranker.Configure(RankerConfig{}.WithMode(InferenceMode::kFloat));
}

TEST(QuantizedEndToEndTest, BatchedLineageEqualsPerFactScoring) {
  TrainedFixture& fx = Fixture();
  LearnShapleyRanker& ranker = *fx.trained.ranker;
  const std::vector<EvalPair> pairs = EvalPairs(fx.corpus);
  ASSERT_FALSE(pairs.empty());

  for (InferenceMode mode :
       {InferenceMode::kFloat, InferenceMode::kQuantized}) {
    ranker.Configure(RankerConfig{}.WithMode(mode));
    const EvalPair& p = pairs.front();
    const ShapleyValues batched = ranker.ScoreLineage(
        *fx.corpus.db, p.entry->query, p.contrib->tuple, p.lineage);
    for (FactId f : p.lineage) {
      const ShapleyValues single = ranker.ScoreLineage(
          *fx.corpus.db, p.entry->query, p.contrib->tuple, {f});
      ASSERT_EQ(single.size(), 1u);
      EXPECT_EQ(batched.at(f), single.at(f))
          << "mode " << InferenceModeName(mode) << " fact " << f;
    }
  }
  ranker.Configure(RankerConfig{}.WithMode(InferenceMode::kFloat));
}

TEST(QuantizedEndToEndTest, SharedConstRankerIsDeterministicAcrossThreads) {
  TrainedFixture& fx = Fixture();
  const std::vector<EvalPair> pairs = EvalPairs(fx.corpus);
  ASSERT_FALSE(pairs.empty());

  for (InferenceMode mode :
       {InferenceMode::kFloat, InferenceMode::kQuantized}) {
    fx.trained.ranker->Configure(RankerConfig{}.WithMode(mode));
    const LearnShapleyRanker& shared = *fx.trained.ranker;

    std::vector<ShapleyValues> serial;
    for (const EvalPair& p : pairs) {
      serial.push_back(shared.ScoreLineage(*fx.corpus.db, p.entry->query,
                                           p.contrib->tuple, p.lineage));
    }

    constexpr size_t kThreads = 4;
    std::vector<std::vector<ShapleyValues>> per_thread(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const EvalPair& p : pairs) {
          per_thread[t].push_back(shared.ScoreLineage(
              *fx.corpus.db, p.entry->query, p.contrib->tuple, p.lineage));
        }
      });
    }
    for (std::thread& t : threads) t.join();

    for (size_t t = 0; t < kThreads; ++t) {
      ASSERT_EQ(per_thread[t].size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(per_thread[t][i], serial[i])
            << "mode " << InferenceModeName(mode) << " thread " << t;
      }
    }
  }
  fx.trained.ranker->Configure(RankerConfig{}.WithMode(InferenceMode::kFloat));
}

}  // namespace
}  // namespace lshap
