// Tests for the shard-at-a-time corpus streaming layer (corpus/stream.h)
// and its consumers: slice aliasing, cursor visit order and prefetch,
// resident-entry accounting, the streaming evaluator's exact agreement
// with the resident one, and the streaming trainer dispatch. The
// concurrency tests here run under TSan in tools/check.sh thread mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "corpus/corpus.h"
#include "corpus/io.h"
#include "corpus/stream.h"
#include "datasets/imdb.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/trainer.h"

namespace lshap {
namespace {

// A deterministic scorer that reads only the slice it is handed (db +
// entry), never corpus-global state — the contract streaming consumers
// require. Scores facts by a fixed hash so rankings are nontrivial.
class HashScorer : public FactScorer {
 public:
  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override {
    const TupleContribution& c =
        corpus.entries[entry_idx].contributions[contrib_idx];
    ShapleyValues out;
    for (const auto& [f, v] : c.shapley) {
      out[f] = static_cast<double>((f * 2654435761u) % 1000u);
    }
    return out;
  }
  std::unique_ptr<FactScorer> Clone() const override {
    return std::make_unique<HashScorer>();
  }
  std::string name() const override { return "hash"; }
};

class CorpusStreamTest : public ::testing::Test {
 protected:
  CorpusStreamTest() : data_(MakeImdbDatabase({})), pool_(4) {
    CorpusConfig cfg;
    cfg.seed = 8;
    cfg.num_base_queries = 10;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    path_ = ::testing::TempDir() + "/corpus_stream_test.lshapc";
  }
  ~CorpusStreamTest() override {
    for (size_t s = 0; s < 8; ++s) {
      std::remove(ShardFileName(path_, s).c_str());
    }
    std::remove(path_.c_str());
  }

  ShardedCorpusStream OpenSharded(size_t num_shards) {
    EXPECT_TRUE(SaveCorpusShards(corpus_, path_, num_shards).ok());
    auto stream = ShardedCorpusStream::Open(data_.db.get(), path_);
    EXPECT_TRUE(stream.ok()) << stream.status().ToString();
    return std::move(*stream);
  }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  std::string path_;
};

TEST_F(CorpusStreamTest, InMemorySliceAliasesTheCorpus) {
  InMemoryCorpusStream stream(corpus_);
  EXPECT_EQ(stream.num_shards(), 1u);
  EXPECT_EQ(stream.num_entries(), corpus_.entries.size());
  EXPECT_EQ(stream.train_idx(), corpus_.train_idx);
  auto slice = stream.ReadShard(0);
  ASSERT_TRUE(slice.ok());
  // Zero-copy: the slice *is* the corpus, splits and all.
  EXPECT_EQ(slice->corpus.get(), &corpus_);
  EXPECT_EQ(slice->base_entry, 0u);
  EXPECT_EQ(slice->size(), corpus_.entries.size());
  EXPECT_FALSE(stream.ReadShard(1).ok());
}

TEST_F(CorpusStreamTest, ShardedSlicesConcatenateToTheCorpus) {
  ShardedCorpusStream stream = OpenSharded(4);
  EXPECT_EQ(stream.num_shards(), 4u);
  EXPECT_EQ(stream.num_entries(), corpus_.entries.size());
  EXPECT_EQ(stream.train_idx(), corpus_.train_idx);
  EXPECT_EQ(stream.dev_idx(), corpus_.dev_idx);
  EXPECT_EQ(stream.test_idx(), corpus_.test_idx);

  size_t global = 0;
  for (size_t s = 0; s < stream.num_shards(); ++s) {
    auto slice = stream.ReadShard(s);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->base_entry, global);
    EXPECT_EQ(slice->base_entry, stream.shard_base(s));
    for (size_t i = 0; i < slice->size(); ++i, ++global) {
      EXPECT_EQ(slice->corpus->entries[i].query.id,
                corpus_.entries[global].query.id);
      EXPECT_EQ(slice->corpus->entries[i].contributions.size(),
                corpus_.entries[global].contributions.size());
    }
    EXPECT_EQ(stream.ShardOf(slice->base_entry), s);
  }
  EXPECT_EQ(global, corpus_.entries.size());
}

TEST_F(CorpusStreamTest, CursorHonorsVisitOrderWithPrefetch) {
  ShardedCorpusStream stream = OpenSharded(4);
  std::vector<size_t> order = {2, 0, 3};
  ShardCursor cursor(stream, &pool_, order);
  std::vector<size_t> seen;
  while (!cursor.Done()) {
    auto slice = cursor.Next();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    seen.push_back(slice->shard_index);
  }
  EXPECT_EQ(seen, order);
  EXPECT_FALSE(cursor.Next().ok());  // exhausted
}

TEST_F(CorpusStreamTest, CursorWorksWithoutPool) {
  ShardedCorpusStream stream = OpenSharded(3);
  ShardCursor cursor(stream);  // synchronous decode inside Next
  size_t entries = 0;
  std::vector<size_t> seen;
  while (!cursor.Done()) {
    auto slice = cursor.Next();
    ASSERT_TRUE(slice.ok());
    seen.push_back(slice->shard_index);
    entries += slice->size();
  }
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(entries, corpus_.entries.size());
}

TEST_F(CorpusStreamTest, PeakResidencyIsBoundedByShardsNotCorpus) {
  ShardedCorpusStream stream = OpenSharded(4);
  size_t max_shard = 0;
  for (size_t s = 0; s < stream.num_shards(); ++s) {
    max_shard = std::max(max_shard, stream.shard_entries(s));
  }
  {
    ShardCursor cursor(stream, &pool_);
    while (!cursor.Done()) {
      auto slice = cursor.Next();
      ASSERT_TRUE(slice.ok());
      // The slice drops at the end of each iteration, so at most the
      // current slice plus the in-flight prefetch are resident.
    }
  }
  EXPECT_EQ(stream.resident_entries(), 0u);
  EXPECT_GT(stream.peak_resident_entries(), 0u);
  EXPECT_LE(stream.peak_resident_entries(), 2 * max_shard);
  EXPECT_LT(stream.peak_resident_entries(), corpus_.entries.size());
}

// ReadShard must be thread-safe (the cursor prefetches on pool workers).
// This test exists chiefly for TSan coverage in tools/check.sh.
TEST_F(CorpusStreamTest, ConcurrentReadShardIsSafe) {
  ShardedCorpusStream stream = OpenSharded(4);
  std::vector<std::thread> threads;
  std::atomic<size_t> total{0};
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&stream, &total, t] {
      for (size_t s = 0; s < 4; ++s) {
        auto slice = stream.ReadShard((s + t) % 4);
        ASSERT_TRUE(slice.ok());
        total.fetch_add(slice->size());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 4 * corpus_.entries.size());
  EXPECT_EQ(stream.resident_entries(), 0u);
}

TEST_F(CorpusStreamTest, StreamingEvaluatorMatchesResidentExactly) {
  ShardedCorpusStream stream = OpenSharded(3);
  HashScorer scorer;
  const EvalSummary resident =
      EvaluateScorer(corpus_, corpus_.test_idx, scorer, {}, pool_);
  auto streamed =
      EvaluateScorerStream(stream, stream.test_idx(), scorer, {}, pool_);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_DOUBLE_EQ(streamed->ndcg10, resident.ndcg10);
  EXPECT_DOUBLE_EQ(streamed->p1, resident.p1);
  EXPECT_DOUBLE_EQ(streamed->p3, resident.p3);
  EXPECT_DOUBLE_EQ(streamed->p5, resident.p5);
  ASSERT_EQ(streamed->points.size(), resident.points.size());
  for (size_t i = 0; i < resident.points.size(); ++i) {
    EXPECT_EQ(streamed->points[i].entry_idx, resident.points[i].entry_idx);
    EXPECT_EQ(streamed->points[i].contrib_idx,
              resident.points[i].contrib_idx);
    EXPECT_DOUBLE_EQ(streamed->points[i].ndcg10, resident.points[i].ndcg10);
    EXPECT_DOUBLE_EQ(streamed->points[i].p1, resident.points[i].p1);
    EXPECT_EQ(streamed->points[i].lineage_size,
              resident.points[i].lineage_size);
  }
}

TEST_F(CorpusStreamTest, StreamingEvaluatorRejectsBadSplit) {
  ShardedCorpusStream stream = OpenSharded(2);
  HashScorer scorer;
  std::vector<size_t> bad = {corpus_.entries.size() + 5};
  auto streamed = EvaluateScorerStream(stream, bad, scorer, {}, pool_);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusStreamTest, StreamTrainerSingleShardMatchesResident) {
  const SimilarityMatrices sims =
      ComputeSimilarityMatrices(corpus_, 16, pool_);
  TrainConfig cfg;
  cfg.model_size = TrainConfig::ModelSize::kSmallAblation;
  cfg.pretrain_epochs = 1;
  cfg.pretrain_pairs_per_epoch = 32;
  cfg.finetune_epochs = 1;
  cfg.finetune_samples_per_epoch = 64;
  cfg.batch_size = 16;
  cfg.seed = 5;

  // A serial pool makes gradient accumulation order (and so the whole
  // training run) bit-for-bit reproducible, which the equality below needs.
  ThreadPool serial(1);
  TrainResult resident = TrainLearnShapley(corpus_, sims, cfg, serial);
  InMemoryCorpusStream stream(corpus_);
  auto streamed = TrainLearnShapleyStream(stream, &sims, cfg, serial);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  // Same seed, same data, same dispatch path: identical training run.
  EXPECT_DOUBLE_EQ(streamed->pretrain_dev_mse, resident.pretrain_dev_mse);
  EXPECT_DOUBLE_EQ(streamed->best_dev_ndcg10, resident.best_dev_ndcg10);
  ASSERT_NE(streamed->ranker, nullptr);
  const EvalSummary a = EvaluateScorer(corpus_, corpus_.test_idx,
                                       *resident.ranker, {}, pool_);
  const EvalSummary b = EvaluateScorer(corpus_, corpus_.test_idx,
                                       *streamed->ranker, {}, pool_);
  EXPECT_DOUBLE_EQ(a.ndcg10, b.ndcg10);
}

TEST_F(CorpusStreamTest, StreamTrainerMultiShardRunsBounded) {
  ShardedCorpusStream stream = OpenSharded(4);
  TrainConfig cfg;
  cfg.model_size = TrainConfig::ModelSize::kSmallAblation;
  cfg.do_pretrain = false;  // similarity matrices are corpus-global
  cfg.finetune_epochs = 2;
  cfg.finetune_samples_per_epoch = 64;
  cfg.batch_size = 16;
  cfg.seed = 5;

  ThreadPool serial(1);
  auto result = TrainLearnShapleyStream(stream, nullptr, cfg, serial);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->ranker, nullptr);
  EXPECT_GE(result->best_dev_ndcg10, 0.0);

  // The acceptance criterion: training never held the whole corpus.
  size_t max_shard = 0;
  for (size_t s = 0; s < stream.num_shards(); ++s) {
    max_shard = std::max(max_shard, stream.shard_entries(s));
  }
  EXPECT_GT(stream.peak_resident_entries(), 0u);
  EXPECT_LE(stream.peak_resident_entries(), 2 * max_shard);
  EXPECT_LT(stream.peak_resident_entries(), corpus_.entries.size());

  // Determinism: a second run over a fresh stream is identical.
  auto stream2 = ShardedCorpusStream::Open(data_.db.get(), path_);
  ASSERT_TRUE(stream2.ok());
  auto again = TrainLearnShapleyStream(*stream2, nullptr, cfg, serial);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->best_dev_ndcg10, result->best_dev_ndcg10);
}

// --- Fault injection in the shard-read path. ---
//
// Every injected fault must surface as a clean non-OK ReadShard: no slice
// published, no resident-entry accounting, no partial state — the caller
// can retry or fail over, and the stream is untouched.

TEST_F(CorpusStreamTest, StreamReadFaultSurfacesCleanly) {
  ShardedCorpusStream stream = OpenSharded(3);
  FaultInjector fault;
  fault.FailAt(kSiteStreamRead, 0);
  stream.set_fault_injector(&fault);

  auto slice = stream.ReadShard(0);
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stream.resident_entries(), 0u);

  // The site is single-shot: the retry succeeds and the slice is whole.
  auto retry = stream.ReadShard(0);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), stream.shard_entries(0));
}

TEST_F(CorpusStreamTest, ShardOpenFaultSurfacesCleanly) {
  ShardedCorpusStream stream = OpenSharded(2);
  FaultInjector fault;
  fault.FailAt(kSiteShardOpen, 0, StatusCode::kInternal);
  stream.set_fault_injector(&fault);

  auto slice = stream.ReadShard(1);
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kInternal);
  EXPECT_EQ(stream.resident_entries(), 0u);

  auto retry = stream.ReadShard(1);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(CorpusStreamTest, ShardRecordFaultMidDecodeLeavesNoPartialState) {
  ShardedCorpusStream stream = OpenSharded(1);
  ASSERT_GT(stream.shard_entries(0), 2u);
  FaultInjector fault;
  // Fail on the third record read: the first two records were already
  // decoded when the fault hits, and none of them may leak out.
  fault.FailAt(kSiteShardRecord, 2);
  stream.set_fault_injector(&fault);

  auto slice = stream.ReadShard(0);
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stream.resident_entries(), 0u);
  EXPECT_GE(fault.hits(kSiteShardRecord), 3u);

  auto retry = stream.ReadShard(0);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), corpus_.entries.size());
}

TEST_F(CorpusStreamTest, UnarmedInjectorCountsHitsWithoutFailing) {
  ShardedCorpusStream stream = OpenSharded(2);
  FaultInjector fault;
  stream.set_fault_injector(&fault);
  auto slice = stream.ReadShard(0);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(fault.hits(kSiteStreamRead), 1u);
  EXPECT_EQ(fault.hits(kSiteShardOpen), 1u);
  // One record poll per decoded entry, at least.
  EXPECT_GE(fault.hits(kSiteShardRecord), stream.shard_entries(0));
}

}  // namespace
}  // namespace lshap