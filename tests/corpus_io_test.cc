#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "corpus/corpus.h"
#include "corpus/io.h"
#include "datasets/imdb.h"

namespace lshap {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  CorpusIoTest() : data_(MakeImdbDatabase({})), pool_(2) {
    CorpusConfig cfg;
    cfg.seed = 8;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    path_ = ::testing::TempDir() + "/corpus_io_test.lshap";
  }
  ~CorpusIoTest() override { std::remove(path_.c_str()); }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  std::string path_;
};

TEST_F(CorpusIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->entries.size(), corpus_.entries.size());
  for (size_t e = 0; e < corpus_.entries.size(); ++e) {
    const CorpusEntry& a = corpus_.entries[e];
    const CorpusEntry& b = loaded->entries[e];
    EXPECT_EQ(a.query.id, b.query.id);
    EXPECT_EQ(a.query.ToSql(), b.query.ToSql());
    ASSERT_EQ(a.all_outputs.size(), b.all_outputs.size());
    for (size_t i = 0; i < a.all_outputs.size(); ++i) {
      EXPECT_EQ(a.all_outputs[i], b.all_outputs[i]);
    }
    ASSERT_EQ(a.contributions.size(), b.contributions.size());
    for (size_t i = 0; i < a.contributions.size(); ++i) {
      EXPECT_EQ(a.contributions[i].tuple, b.contributions[i].tuple);
      ASSERT_EQ(a.contributions[i].shapley.size(),
                b.contributions[i].shapley.size());
      for (const auto& [f, v] : a.contributions[i].shapley) {
        ASSERT_TRUE(b.contributions[i].shapley.count(f));
        EXPECT_DOUBLE_EQ(b.contributions[i].shapley.at(f), v);
      }
    }
  }
  EXPECT_EQ(loaded->train_idx, corpus_.train_idx);
  EXPECT_EQ(loaded->dev_idx, corpus_.dev_idx);
  EXPECT_EQ(loaded->test_idx, corpus_.test_idx);
}

TEST_F(CorpusIoTest, RejectsWrongDatabase) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  ImdbConfig other_cfg;
  other_cfg.num_movies = 30;  // different fact count
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  auto loaded = LoadCorpus(other.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CorpusIoTest, RejectsMissingFile) {
  auto loaded = LoadCorpus(data_.db.get(), path_ + ".nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusIoTest, RejectsCorruptHeader) {
  {
    std::ofstream out(path_);
    out << "NOT_A_CORPUS\n";
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusIoTest, RejectsTruncatedBody) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  // Chop the file in half.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_);
    out << content.substr(0, content.size() / 2);
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace lshap
