#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/fileio.h"
#include "corpus/corpus.h"
#include "corpus/format.h"
#include "corpus/io.h"
#include "datasets/imdb.h"

namespace lshap {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  CorpusIoTest() : data_(MakeImdbDatabase({})), pool_(2) {
    CorpusConfig cfg;
    cfg.seed = 8;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    path_ = ::testing::TempDir() + "/corpus_io_test.lshap";
  }
  ~CorpusIoTest() override { std::remove(path_.c_str()); }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  std::string path_;
};

TEST_F(CorpusIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->entries.size(), corpus_.entries.size());
  for (size_t e = 0; e < corpus_.entries.size(); ++e) {
    const CorpusEntry& a = corpus_.entries[e];
    const CorpusEntry& b = loaded->entries[e];
    EXPECT_EQ(a.query.id, b.query.id);
    EXPECT_EQ(a.query.ToSql(), b.query.ToSql());
    ASSERT_EQ(a.all_outputs.size(), b.all_outputs.size());
    for (size_t i = 0; i < a.all_outputs.size(); ++i) {
      EXPECT_EQ(a.all_outputs[i], b.all_outputs[i]);
    }
    ASSERT_EQ(a.contributions.size(), b.contributions.size());
    for (size_t i = 0; i < a.contributions.size(); ++i) {
      EXPECT_EQ(a.contributions[i].tuple, b.contributions[i].tuple);
      ASSERT_EQ(a.contributions[i].shapley.size(),
                b.contributions[i].shapley.size());
      for (const auto& [f, v] : a.contributions[i].shapley) {
        ASSERT_TRUE(b.contributions[i].shapley.count(f));
        EXPECT_DOUBLE_EQ(b.contributions[i].shapley.at(f), v);
      }
    }
  }
  EXPECT_EQ(loaded->train_idx, corpus_.train_idx);
  EXPECT_EQ(loaded->dev_idx, corpus_.dev_idx);
  EXPECT_EQ(loaded->test_idx, corpus_.test_idx);
}

TEST_F(CorpusIoTest, RejectsWrongDatabase) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  ImdbConfig other_cfg;
  other_cfg.num_movies = 30;  // different fact count
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  auto loaded = LoadCorpus(other.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CorpusIoTest, RejectsMissingFile) {
  auto loaded = LoadCorpus(data_.db.get(), path_ + ".nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusIoTest, RejectsCorruptHeader) {
  {
    std::ofstream out(path_);
    out << "NOT_A_CORPUS\n";
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusIoTest, RejectsTruncatedBody) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  // Chop the file in half.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_);
    out << content.substr(0, content.size() / 2);
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
}

// --- Fact-table fingerprint (text format). ---

TEST_F(CorpusIoTest, TextFingerprintMismatchRejected) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Flip one hex digit of the "fnv:..." token on the db line.
  const size_t tok = content.find("fnv:");
  ASSERT_NE(tok, std::string::npos);
  content[tok + 4] = content[tok + 4] == '0' ? '1' : '0';
  {
    std::ofstream out(path_);
    out << content;
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusIoTest, TextLoaderRejectsSameSizeDifferentContent) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  // Same schema and fact counts, different cell values: only the
  // fingerprint can tell these apart.
  ImdbConfig other_cfg;
  other_cfg.seed = 99;
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  ASSERT_EQ(other.db->num_facts(), data_.db->num_facts());
  auto loaded = LoadCorpus(other.db.get(), path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// --- Packed binary shards. ---

class CorpusBinaryIoTest : public CorpusIoTest {
 protected:
  CorpusBinaryIoTest() { bpath_ = ::testing::TempDir() + "/corpus.lshapc"; }
  ~CorpusBinaryIoTest() override {
    for (size_t s = 0; s < 8; ++s) {
      std::remove(ShardFileName(bpath_, s).c_str());
    }
    std::remove(bpath_.c_str());
  }

  static void ExpectSameCorpus(const Corpus& a, const Corpus& b) {
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t e = 0; e < a.entries.size(); ++e) {
      EXPECT_EQ(a.entries[e].query.id, b.entries[e].query.id);
      EXPECT_EQ(a.entries[e].query.ToSql(), b.entries[e].query.ToSql());
      ASSERT_EQ(a.entries[e].all_outputs, b.entries[e].all_outputs);
      ASSERT_EQ(a.entries[e].contributions.size(),
                b.entries[e].contributions.size());
      for (size_t i = 0; i < a.entries[e].contributions.size(); ++i) {
        const auto& ca = a.entries[e].contributions[i];
        const auto& cb = b.entries[e].contributions[i];
        EXPECT_EQ(ca.tuple, cb.tuple);
        ASSERT_EQ(ca.shapley.size(), cb.shapley.size());
        for (const auto& [f, v] : ca.shapley) {
          ASSERT_TRUE(cb.shapley.count(f));
          // Bit-identical doubles: the f64 payload is lossless.
          EXPECT_EQ(cb.shapley.at(f), v);
        }
      }
    }
    EXPECT_EQ(a.train_idx, b.train_idx);
    EXPECT_EQ(a.dev_idx, b.dev_idx);
    EXPECT_EQ(a.test_idx, b.test_idx);
  }

  std::string bpath_;
};

TEST_F(CorpusBinaryIoTest, BinaryRoundTripMatchesTextOracle) {
  // Differential test: the same corpus through both formats must load to
  // identical objects, field for field.
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  auto from_text = LoadCorpus(data_.db.get(), path_);
  auto from_binary = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  ExpectSameCorpus(*from_text, *from_binary);
  ExpectSameCorpus(corpus_, *from_binary);
  EXPECT_EQ(from_binary->stats.exact, corpus_.stats.exact);
  EXPECT_EQ(from_binary->stats.budget_trips, corpus_.stats.budget_trips);
}

TEST_F(CorpusBinaryIoTest, LoadCorpusAutoDetectsBinary) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  auto loaded = LoadCorpus(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(corpus_, *loaded);
}

TEST_F(CorpusBinaryIoTest, MultiShardPartitionIsContiguous) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 3).ok());
  auto manifest = ReadManifest(bpath_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->num_shards(), 3u);
  EXPECT_EQ(static_cast<size_t>(manifest->total_entries()),
            corpus_.entries.size());
  size_t base = 0;
  for (size_t s = 0; s < 3; ++s) {
    auto reader =
        ShardReader::Open(ShardFileName(bpath_, s), manifest->db_fingerprint);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->footer().shard_index, s);
    EXPECT_EQ(reader->footer().base_entry, base);
    base += reader->num_records();
  }
  EXPECT_EQ(base, corpus_.entries.size());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok());
  ExpectSameCorpus(corpus_, *loaded);
}

TEST_F(CorpusBinaryIoTest, F32PayloadQuantizesButPreservesStructure) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1, /*f32_payload=*/true).ok());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->entries.size(), corpus_.entries.size());
  for (size_t e = 0; e < corpus_.entries.size(); ++e) {
    ASSERT_EQ(loaded->entries[e].contributions.size(),
              corpus_.entries[e].contributions.size());
    for (size_t i = 0; i < corpus_.entries[e].contributions.size(); ++i) {
      const auto& ca = corpus_.entries[e].contributions[i];
      const auto& cb = loaded->entries[e].contributions[i];
      ASSERT_EQ(ca.shapley.size(), cb.shapley.size());
      for (const auto& [f, v] : ca.shapley) {
        EXPECT_NEAR(cb.shapley.at(f), v, 1e-6 + 1e-6 * std::abs(v));
      }
    }
  }
}

TEST_F(CorpusBinaryIoTest, RejectsWrongDatabase) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  // Different fact count: caught by the name/size precondition.
  ImdbConfig small_cfg;
  small_cfg.num_movies = 30;
  GeneratedDb smaller = MakeImdbDatabase(small_cfg);
  auto loaded = LoadCorpusShards(smaller.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  // Same counts, different facts: only the fingerprint catches this.
  ImdbConfig other_cfg;
  other_cfg.seed = 99;
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  loaded = LoadCorpusShards(other.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsTamperedShardFingerprint) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::ifstream in(shard, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // The trailer's first 8 bytes locate the footer; the footer starts with
  // the fingerprint, which the shard checksum deliberately does not cover
  // (it spans the records only) — so this tamper exercises the fingerprint
  // check, not the checksum.
  uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, content.data() + content.size() - 16, 8);
  content[footer_offset] ^= 0x01;
  {
    std::ofstream out(shard, std::ios::binary);
    out << content;
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsCorruptedShardBody) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(64);  // somewhere inside the first record
  char b = 0;
  f.read(&b, 1);
  f.seekp(64);
  b ^= 0x40;
  f.write(&b, 1);
  f.close();
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsTruncatedShard) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::ifstream in(shard, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(shard, std::ios::binary);
    out << content.substr(0, content.size() / 2);
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusBinaryIoTest, RejectsMissingShardFile) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  std::remove(ShardFileName(bpath_, 1).c_str());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusBinaryIoTest, RejectsCorruptedManifest) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  std::ifstream in(bpath_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content[content.size() / 2] ^= 0x10;
  {
    std::ofstream out(bpath_, std::ios::binary);
    out << content;
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// --- Atomic persistence (temp + rename). ---

TEST_F(CorpusIoTest, SaveLeavesNoTempFile) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  std::ifstream tmp(TempWritePath(path_));
  EXPECT_FALSE(tmp.good());
}

TEST_F(CorpusIoTest, StaleTempFromKilledWriterIsOverwritten) {
  // Simulate a writer killed mid-write: a garbage temp file is left behind
  // and no final file exists.
  {
    std::ofstream out(TempWritePath(path_));
    out << "half-written garbage from a dead process";
  }
  // The partial write never passes as the final artifact...
  auto before = LoadCorpus(data_.db.get(), path_);
  ASSERT_FALSE(before.ok());
  EXPECT_EQ(before.status().code(), StatusCode::kNotFound);
  // ...and a fresh save simply overwrites the stale temp and commits.
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entries.size(), corpus_.entries.size());
  std::ifstream tmp(TempWritePath(path_));
  EXPECT_FALSE(tmp.good());
}

TEST_F(CorpusBinaryIoTest, ShardSaveLeavesNoTempFiles) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  std::ifstream mtmp(TempWritePath(bpath_));
  EXPECT_FALSE(mtmp.good());
  for (size_t s = 0; s < 2; ++s) {
    std::ifstream stmp(TempWritePath(ShardFileName(bpath_, s)));
    EXPECT_FALSE(stmp.good()) << "stale temp for shard " << s;
  }
}

TEST_F(CorpusBinaryIoTest, ShardSaveRecoversFromKilledWriter) {
  // A prior writer died mid-shard: stale temps for the manifest and a
  // shard, but no committed files. The new save must overwrite both and
  // the load must see only the committed artifacts.
  {
    std::ofstream out(TempWritePath(bpath_));
    out << "dead manifest";
  }
  {
    std::ofstream out(TempWritePath(ShardFileName(bpath_, 0)),
                      std::ios::binary);
    out << "dead shard bytes";
  }
  auto before = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(before.ok());  // nothing committed yet
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(corpus_, *loaded);
  std::ifstream mtmp(TempWritePath(bpath_));
  EXPECT_FALSE(mtmp.good());
  std::ifstream stmp(TempWritePath(ShardFileName(bpath_, 0)));
  EXPECT_FALSE(stmp.good());
}

// --- Quarantine mode (non-strict shard loads). ---

class CorpusQuarantineTest : public CorpusBinaryIoTest {
 protected:
  // Saves 3 shards and returns per-shard entry counts.
  std::vector<size_t> SaveThreeShards() {
    EXPECT_TRUE(SaveCorpusShards(corpus_, bpath_, 3).ok());
    std::vector<size_t> counts;
    auto manifest = ReadManifest(bpath_);
    EXPECT_TRUE(manifest.ok());
    for (size_t s = 0; s < 3; ++s) {
      auto reader = ShardReader::Open(ShardFileName(bpath_, s),
                                      manifest->db_fingerprint);
      EXPECT_TRUE(reader.ok());
      counts.push_back(reader->num_records());
    }
    return counts;
  }

  static size_t TotalSplitRefs(const Corpus& c) {
    return c.train_idx.size() + c.dev_idx.size() + c.test_idx.size();
  }

  void CorruptShardBody(size_t s) {
    const std::string shard = ShardFileName(bpath_, s);
    std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char b = 0;
    f.read(&b, 1);
    f.seekp(64);
    b ^= 0x40;
    f.write(&b, 1);
  }

  void TruncateShard(size_t s) {
    const std::string shard = ShardFileName(bpath_, s);
    std::ifstream in(shard, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(shard, std::ios::binary);
    out << content.substr(0, content.size() / 2);
  }

  void TamperShardFingerprint(size_t s) {
    const std::string shard = ShardFileName(bpath_, s);
    std::ifstream in(shard, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    uint64_t footer_offset = 0;
    std::memcpy(&footer_offset, content.data() + content.size() - 16, 8);
    content[footer_offset] ^= 0x01;
    std::ofstream out(shard, std::ios::binary);
    out << content;
  }

  // Loads in quarantine mode and checks the invariants every quarantined
  // load must satisfy after exactly `bad_shard` was damaged.
  void ExpectQuarantined(size_t bad_shard, StatusCode want_code,
                         const std::vector<size_t>& shard_counts) {
    // Strict (the default) refuses the whole load.
    auto strict = LoadCorpusShards(data_.db.get(), bpath_, ShardLoadOptions{});
    ASSERT_FALSE(strict.ok());

    ShardLoadOptions opt;
    opt.strict = false;
    ShardLoadReport report;
    auto loaded = LoadCorpusShards(data_.db.get(), bpath_, opt, &report);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(report.loaded_shards, 2u);
    ASSERT_EQ(report.skipped_shards.size(), 1u);
    EXPECT_EQ(report.skipped_shards[0].shard_index, bad_shard);
    EXPECT_EQ(report.skipped_shards[0].code, want_code);
    EXPECT_FALSE(report.skipped_shards[0].reason.empty());
    EXPECT_EQ(report.dropped_entries, shard_counts[bad_shard]);
    EXPECT_EQ(loaded->entries.size(),
              corpus_.entries.size() - report.dropped_entries);
    // Split indices survive remapping: every ref is in range, and refs
    // into the skipped shard are dropped and accounted, none silently.
    for (const auto* split :
         {&loaded->train_idx, &loaded->dev_idx, &loaded->test_idx}) {
      for (size_t idx : *split) EXPECT_LT(idx, loaded->entries.size());
    }
    EXPECT_EQ(TotalSplitRefs(*loaded) + report.dropped_split_refs,
              TotalSplitRefs(corpus_));
    EXPECT_GT(report.dropped_split_refs, 0u);
  }
};

TEST_F(CorpusQuarantineTest, SkipsCorruptedShardBody) {
  const auto counts = SaveThreeShards();
  CorruptShardBody(1);
  ExpectQuarantined(1, StatusCode::kInvalidArgument, counts);
}

TEST_F(CorpusQuarantineTest, SkipsTruncatedShard) {
  const auto counts = SaveThreeShards();
  TruncateShard(2);
  ExpectQuarantined(2, StatusCode::kInvalidArgument, counts);
}

TEST_F(CorpusQuarantineTest, SkipsTamperedShardFingerprint) {
  const auto counts = SaveThreeShards();
  TamperShardFingerprint(0);
  ExpectQuarantined(0, StatusCode::kInvalidArgument, counts);
}

TEST_F(CorpusQuarantineTest, SkipsMissingShardFile) {
  const auto counts = SaveThreeShards();
  std::remove(ShardFileName(bpath_, 1).c_str());
  ExpectQuarantined(1, StatusCode::kNotFound, counts);
}

TEST_F(CorpusQuarantineTest, ManifestCorruptionIsFatalEvenNonStrict) {
  SaveThreeShards();
  std::ifstream in(bpath_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content[content.size() / 2] ^= 0x10;
  {
    std::ofstream out(bpath_, std::ios::binary);
    out << content;
  }
  ShardLoadOptions opt;
  opt.strict = false;
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_, opt);
  ASSERT_FALSE(loaded.ok());
}

TEST_F(CorpusQuarantineTest, StrictSuccessReportsEverythingLoaded) {
  SaveThreeShards();
  ShardLoadReport report;
  auto loaded =
      LoadCorpusShards(data_.db.get(), bpath_, ShardLoadOptions{}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.loaded_shards, 3u);
  EXPECT_TRUE(report.skipped_shards.empty());
  EXPECT_EQ(report.dropped_entries, 0u);
  EXPECT_EQ(report.dropped_split_refs, 0u);
  ExpectSameCorpus(corpus_, *loaded);
}

}  // namespace
}  // namespace lshap
