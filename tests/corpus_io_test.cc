#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "corpus/corpus.h"
#include "corpus/format.h"
#include "corpus/io.h"
#include "datasets/imdb.h"

namespace lshap {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  CorpusIoTest() : data_(MakeImdbDatabase({})), pool_(2) {
    CorpusConfig cfg;
    cfg.seed = 8;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    path_ = ::testing::TempDir() + "/corpus_io_test.lshap";
  }
  ~CorpusIoTest() override { std::remove(path_.c_str()); }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  std::string path_;
};

TEST_F(CorpusIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->entries.size(), corpus_.entries.size());
  for (size_t e = 0; e < corpus_.entries.size(); ++e) {
    const CorpusEntry& a = corpus_.entries[e];
    const CorpusEntry& b = loaded->entries[e];
    EXPECT_EQ(a.query.id, b.query.id);
    EXPECT_EQ(a.query.ToSql(), b.query.ToSql());
    ASSERT_EQ(a.all_outputs.size(), b.all_outputs.size());
    for (size_t i = 0; i < a.all_outputs.size(); ++i) {
      EXPECT_EQ(a.all_outputs[i], b.all_outputs[i]);
    }
    ASSERT_EQ(a.contributions.size(), b.contributions.size());
    for (size_t i = 0; i < a.contributions.size(); ++i) {
      EXPECT_EQ(a.contributions[i].tuple, b.contributions[i].tuple);
      ASSERT_EQ(a.contributions[i].shapley.size(),
                b.contributions[i].shapley.size());
      for (const auto& [f, v] : a.contributions[i].shapley) {
        ASSERT_TRUE(b.contributions[i].shapley.count(f));
        EXPECT_DOUBLE_EQ(b.contributions[i].shapley.at(f), v);
      }
    }
  }
  EXPECT_EQ(loaded->train_idx, corpus_.train_idx);
  EXPECT_EQ(loaded->dev_idx, corpus_.dev_idx);
  EXPECT_EQ(loaded->test_idx, corpus_.test_idx);
}

TEST_F(CorpusIoTest, RejectsWrongDatabase) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  ImdbConfig other_cfg;
  other_cfg.num_movies = 30;  // different fact count
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  auto loaded = LoadCorpus(other.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CorpusIoTest, RejectsMissingFile) {
  auto loaded = LoadCorpus(data_.db.get(), path_ + ".nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusIoTest, RejectsCorruptHeader) {
  {
    std::ofstream out(path_);
    out << "NOT_A_CORPUS\n";
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusIoTest, RejectsTruncatedBody) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  // Chop the file in half.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_);
    out << content.substr(0, content.size() / 2);
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  EXPECT_FALSE(loaded.ok());
}

// --- Fact-table fingerprint (text format). ---

TEST_F(CorpusIoTest, TextFingerprintMismatchRejected) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Flip one hex digit of the "fnv:..." token on the db line.
  const size_t tok = content.find("fnv:");
  ASSERT_NE(tok, std::string::npos);
  content[tok + 4] = content[tok + 4] == '0' ? '1' : '0';
  {
    std::ofstream out(path_);
    out << content;
  }
  auto loaded = LoadCorpus(data_.db.get(), path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusIoTest, TextLoaderRejectsSameSizeDifferentContent) {
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  // Same schema and fact counts, different cell values: only the
  // fingerprint can tell these apart.
  ImdbConfig other_cfg;
  other_cfg.seed = 99;
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  ASSERT_EQ(other.db->num_facts(), data_.db->num_facts());
  auto loaded = LoadCorpus(other.db.get(), path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// --- Packed binary shards. ---

class CorpusBinaryIoTest : public CorpusIoTest {
 protected:
  CorpusBinaryIoTest() { bpath_ = ::testing::TempDir() + "/corpus.lshapc"; }
  ~CorpusBinaryIoTest() override {
    for (size_t s = 0; s < 8; ++s) {
      std::remove(ShardFileName(bpath_, s).c_str());
    }
    std::remove(bpath_.c_str());
  }

  static void ExpectSameCorpus(const Corpus& a, const Corpus& b) {
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t e = 0; e < a.entries.size(); ++e) {
      EXPECT_EQ(a.entries[e].query.id, b.entries[e].query.id);
      EXPECT_EQ(a.entries[e].query.ToSql(), b.entries[e].query.ToSql());
      ASSERT_EQ(a.entries[e].all_outputs, b.entries[e].all_outputs);
      ASSERT_EQ(a.entries[e].contributions.size(),
                b.entries[e].contributions.size());
      for (size_t i = 0; i < a.entries[e].contributions.size(); ++i) {
        const auto& ca = a.entries[e].contributions[i];
        const auto& cb = b.entries[e].contributions[i];
        EXPECT_EQ(ca.tuple, cb.tuple);
        ASSERT_EQ(ca.shapley.size(), cb.shapley.size());
        for (const auto& [f, v] : ca.shapley) {
          ASSERT_TRUE(cb.shapley.count(f));
          // Bit-identical doubles: the f64 payload is lossless.
          EXPECT_EQ(cb.shapley.at(f), v);
        }
      }
    }
    EXPECT_EQ(a.train_idx, b.train_idx);
    EXPECT_EQ(a.dev_idx, b.dev_idx);
    EXPECT_EQ(a.test_idx, b.test_idx);
  }

  std::string bpath_;
};

TEST_F(CorpusBinaryIoTest, BinaryRoundTripMatchesTextOracle) {
  // Differential test: the same corpus through both formats must load to
  // identical objects, field for field.
  ASSERT_TRUE(SaveCorpus(corpus_, path_).ok());
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  auto from_text = LoadCorpus(data_.db.get(), path_);
  auto from_binary = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  ExpectSameCorpus(*from_text, *from_binary);
  ExpectSameCorpus(corpus_, *from_binary);
  EXPECT_EQ(from_binary->stats.exact, corpus_.stats.exact);
  EXPECT_EQ(from_binary->stats.budget_trips, corpus_.stats.budget_trips);
}

TEST_F(CorpusBinaryIoTest, LoadCorpusAutoDetectsBinary) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  auto loaded = LoadCorpus(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(corpus_, *loaded);
}

TEST_F(CorpusBinaryIoTest, MultiShardPartitionIsContiguous) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 3).ok());
  auto manifest = ReadManifest(bpath_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->num_shards(), 3u);
  EXPECT_EQ(static_cast<size_t>(manifest->total_entries()),
            corpus_.entries.size());
  size_t base = 0;
  for (size_t s = 0; s < 3; ++s) {
    auto reader =
        ShardReader::Open(ShardFileName(bpath_, s), manifest->db_fingerprint);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->footer().shard_index, s);
    EXPECT_EQ(reader->footer().base_entry, base);
    base += reader->num_records();
  }
  EXPECT_EQ(base, corpus_.entries.size());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok());
  ExpectSameCorpus(corpus_, *loaded);
}

TEST_F(CorpusBinaryIoTest, F32PayloadQuantizesButPreservesStructure) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1, /*f32_payload=*/true).ok());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->entries.size(), corpus_.entries.size());
  for (size_t e = 0; e < corpus_.entries.size(); ++e) {
    ASSERT_EQ(loaded->entries[e].contributions.size(),
              corpus_.entries[e].contributions.size());
    for (size_t i = 0; i < corpus_.entries[e].contributions.size(); ++i) {
      const auto& ca = corpus_.entries[e].contributions[i];
      const auto& cb = loaded->entries[e].contributions[i];
      ASSERT_EQ(ca.shapley.size(), cb.shapley.size());
      for (const auto& [f, v] : ca.shapley) {
        EXPECT_NEAR(cb.shapley.at(f), v, 1e-6 + 1e-6 * std::abs(v));
      }
    }
  }
}

TEST_F(CorpusBinaryIoTest, RejectsWrongDatabase) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  // Different fact count: caught by the name/size precondition.
  ImdbConfig small_cfg;
  small_cfg.num_movies = 30;
  GeneratedDb smaller = MakeImdbDatabase(small_cfg);
  auto loaded = LoadCorpusShards(smaller.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  // Same counts, different facts: only the fingerprint catches this.
  ImdbConfig other_cfg;
  other_cfg.seed = 99;
  GeneratedDb other = MakeImdbDatabase(other_cfg);
  loaded = LoadCorpusShards(other.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsTamperedShardFingerprint) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::ifstream in(shard, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // The trailer's first 8 bytes locate the footer; the footer starts with
  // the fingerprint, which the shard checksum deliberately does not cover
  // (it spans the records only) — so this tamper exercises the fingerprint
  // check, not the checksum.
  uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, content.data() + content.size() - 16, 8);
  content[footer_offset] ^= 0x01;
  {
    std::ofstream out(shard, std::ios::binary);
    out << content;
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsCorruptedShardBody) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(64);  // somewhere inside the first record
  char b = 0;
  f.read(&b, 1);
  f.seekp(64);
  b ^= 0x40;
  f.write(&b, 1);
  f.close();
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CorpusBinaryIoTest, RejectsTruncatedShard) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  const std::string shard = ShardFileName(bpath_, 0);
  std::ifstream in(shard, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(shard, std::ios::binary);
    out << content.substr(0, content.size() / 2);
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusBinaryIoTest, RejectsMissingShardFile) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 2).ok());
  std::remove(ShardFileName(bpath_, 1).c_str());
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusBinaryIoTest, RejectsCorruptedManifest) {
  ASSERT_TRUE(SaveCorpusShards(corpus_, bpath_, 1).ok());
  std::ifstream in(bpath_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content[content.size() / 2] ^= 0x10;
  {
    std::ofstream out(bpath_, std::ios::binary);
    out << content;
  }
  auto loaded = LoadCorpusShards(data_.db.get(), bpath_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lshap
