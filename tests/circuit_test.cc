// Direct tests of the counting-circuit machinery: node construction,
// disjoint-OR counting, the CountingSession fast path, and the compiler's
// component decomposition (including its ablation switch).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "provenance/circuit.h"
#include "provenance/compiler.h"

namespace lshap {
namespace {

NodeId Leaf(Circuit& c, FactId v) {
  return c.AddDecision(v, c.TrueNode(), c.FalseNode());
}

TEST(CircuitTest, SingleVariableCounts) {
  Circuit c;
  const NodeId x = Leaf(c, 7);
  const CountVec counts = c.CountsBySize(x);
  // Over {7}: size-0 assignments satisfying = 0, size-1 = 1.
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[0]), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[1]), 1.0);
}

TEST(CircuitTest, AndCountsConvolve) {
  Circuit c;
  const NodeId both = c.AddAnd({Leaf(c, 1), Leaf(c, 2)});
  const CountVec counts = c.CountsBySize(both);
  // Only {1,2} satisfies: one assignment of size 2.
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[0]), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[1]), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[2]), 1.0);
}

TEST(CircuitTest, DisjointOrCountsViaComplement) {
  Circuit c;
  const NodeId either = c.AddOr({Leaf(c, 1), Leaf(c, 2)});
  const CountVec counts = c.CountsBySize(either);
  // x1 ∨ x2 over {1,2}: sizes 0,1,2 → 0, 2, 1 satisfying assignments.
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[0]), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[1]), 2.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(counts[2]), 1.0);
}

TEST(CircuitTest, ForcedVariableOnOrNode) {
  Circuit c;
  const NodeId either = c.AddOr({Leaf(c, 1), Leaf(c, 2)});
  // Force x1 = true: remaining domain {2}, everything satisfies.
  CountVec forced_true = c.CountsBySize(either, 1, true);
  ASSERT_EQ(forced_true.size(), 2u);
  EXPECT_DOUBLE_EQ(static_cast<double>(forced_true[0]), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(forced_true[1]), 1.0);
  // Force x1 = false: only {2} itself satisfies.
  CountVec forced_false = c.CountsBySize(either, 1, false);
  EXPECT_DOUBLE_EQ(static_cast<double>(forced_false[0]), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(forced_false[1]), 1.0);
}

TEST(CountingSessionTest, SharedUnforcedCountsMatchFreshTraversal) {
  // Random structured DNF; session-based forced counts must equal the
  // from-scratch per-call counts for every variable.
  const Dnf d(std::vector<Clause>{{1, 2}, {2, 3}, {4, 5}, {6}});
  DnfCompiler compiler;
  auto circuit = compiler.CompileUnlimited(d);
  CountingSession session(circuit.get());
  for (FactId f : d.Variables()) {
    for (bool value : {false, true}) {
      const CountVec via_session =
          session.Forced(circuit->root(), f, value);
      const CountVec fresh = circuit->CountsBySize(circuit->root(), f, value);
      ASSERT_EQ(via_session.size(), fresh.size());
      for (size_t k = 0; k < fresh.size(); ++k) {
        EXPECT_DOUBLE_EQ(static_cast<double>(via_session[k]),
                         static_cast<double>(fresh[k]));
      }
    }
  }
}

TEST(CompilerTest, ComponentDecompositionProducesSmallCircuits) {
  // Hub-structured provenance: one shared "actor" variable over 30
  // derivations grouped under 6 shared "company" variables. With
  // decomposition the circuit stays linear; without it Shannon expansion
  // blows up combinatorially.
  std::vector<Clause> clauses;
  FactId next = 100;
  for (FactId company = 0; company < 6; ++company) {
    for (int i = 0; i < 5; ++i) {
      clauses.push_back({99, company, next++, next++});
    }
  }
  const Dnf d(clauses);

  DnfCompiler with;
  auto c1 = with.CompileUnlimited(d);
  CompilerOptions off;
  off.component_decomposition = false;
  DnfCompiler without(off);
  auto c2 = without.CompileUnlimited(d);
  EXPECT_LT(with.last_num_nodes(), 300u);
  EXPECT_GT(without.last_num_nodes(), 5 * with.last_num_nodes());

  // Both must count identically.
  const auto vars = d.Variables();
  const CountVec a = ExtendCounts(c1->CountsBySize(c1->root()), vars.size());
  const CountVec b = ExtendCounts(c2->CountsBySize(c2->root()), vars.size());
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(a[k] / (b[k] == 0.0L ? 1.0L : b[k])),
                b[k] == 0.0L ? 0.0 : 1.0, 1e-10);
  }
}

TEST(CompilerTest, CacheHitsOnRepeatedSubformulas) {
  // Two identical independent components share the cached compilation.
  const Dnf d(std::vector<Clause>{{1, 2}, {1, 3}, {10, 20}, {10, 30}});
  DnfCompiler compiler;
  auto circuit = compiler.CompileUnlimited(d);
  (void)circuit;
  EXPECT_GE(compiler.last_cache_hits(), 0u);  // smoke: stats exposed
}

TEST(CircuitTest, BinomialRowLargeValuesFinite) {
  const CountVec& row = BinomialRow(200);
  EXPECT_GT(static_cast<double>(row[100]), 1e50);
  EXPECT_TRUE(std::isfinite(static_cast<double>(row[100])));
  // Symmetry of the row.
  EXPECT_NEAR(static_cast<double>(row[40] / row[160]), 1.0, 1e-12);
}

}  // namespace
}  // namespace lshap
