#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "datasets/academic.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"

namespace lshap {
namespace {

TEST(ImdbTest, TablesAndSizes) {
  ImdbConfig cfg;
  GeneratedDb g = MakeImdbDatabase(cfg);
  ASSERT_TRUE(g.db->FindTable("movies").ok());
  ASSERT_TRUE(g.db->FindTable("actors").ok());
  ASSERT_TRUE(g.db->FindTable("companies").ok());
  ASSERT_TRUE(g.db->FindTable("roles").ok());
  EXPECT_EQ((*g.db->FindTable("companies"))->num_rows(), cfg.num_companies);
  EXPECT_EQ((*g.db->FindTable("actors"))->num_rows(), cfg.num_actors);
  EXPECT_EQ((*g.db->FindTable("movies"))->num_rows(), cfg.num_movies);
  EXPECT_EQ((*g.db->FindTable("roles"))->num_rows(), cfg.num_roles);
}

TEST(ImdbTest, DeterministicForSeed) {
  GeneratedDb a = MakeImdbDatabase({});
  GeneratedDb b = MakeImdbDatabase({});
  const Table* ta = *a.db->FindTable("movies");
  const Table* tb = *b.db->FindTable("movies");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < ta->num_rows(); ++i) {
    EXPECT_EQ(ta->DecodeRow(i), tb->DecodeRow(i));
  }
}

TEST(ImdbTest, ForeignKeysResolve) {
  GeneratedDb g = MakeImdbDatabase({});
  const Table* movies = *g.db->FindTable("movies");
  const Table* companies = *g.db->FindTable("companies");
  std::set<Value> company_names;
  for (size_t i = 0; i < companies->num_rows(); ++i) {
    company_names.insert(companies->GetValue(i, 0));
  }
  for (size_t i = 0; i < movies->num_rows(); ++i) {
    EXPECT_TRUE(company_names.count(movies->GetValue(i, 2)))
        << movies->GetValue(i, 2).ToString();
  }
}

TEST(ImdbTest, ZipfSkewsRolesTowardPopularActors) {
  GeneratedDb g = MakeImdbDatabase({});
  const Table* roles = *g.db->FindTable("roles");
  std::unordered_map<std::string, size_t> counts;
  for (size_t i = 0; i < roles->num_rows(); ++i) {
    ++counts[roles->GetValue(i, 1).AsString()];
  }
  size_t max_count = 0;
  for (const auto& [a, c] : counts) max_count = std::max(max_count, c);
  const double avg =
      static_cast<double>(roles->num_rows()) / static_cast<double>(counts.size());
  EXPECT_GT(static_cast<double>(max_count), 2.5 * avg);
}

TEST(ImdbTest, JoinGraphIsEvaluable) {
  GeneratedDb g = MakeImdbDatabase({});
  // A full 4-way join along the graph must produce rows.
  SpjBlock b;
  b.tables = {"movies", "actors", "companies", "roles"};
  for (const auto& e : g.graph.edges) {
    JoinPred p{e.a, e.b};
    p.Normalize();
    b.joins.push_back(p);
  }
  b.projections = {{"actors", "name"}};
  Query q;
  q.id = "full_join";
  q.blocks = {b};
  auto result = Evaluate(*g.db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->tuples.size(), 10u);
}

TEST(AcademicTest, TablesAndSizes) {
  AcademicConfig cfg;
  GeneratedDb g = MakeAcademicDatabase(cfg);
  for (const char* table :
       {"organization", "author", "publication", "writes", "conference",
        "domain", "domain_conference"}) {
    ASSERT_TRUE(g.db->FindTable(table).ok()) << table;
  }
  EXPECT_EQ((*g.db->FindTable("author"))->num_rows(), cfg.num_authors);
  EXPECT_EQ((*g.db->FindTable("publication"))->num_rows(),
            cfg.num_publications);
}

TEST(AcademicTest, JoinGraphIsEvaluable) {
  GeneratedDb g = MakeAcademicDatabase({});
  // author ⋈ writes ⋈ publication ⋈ conference.
  SpjBlock b;
  b.tables = {"author", "writes", "publication", "conference"};
  b.joins = {
      {{"author", "id"}, {"writes", "author_id"}},
      {{"publication", "pid"}, {"writes", "pub_id"}},
      {{"conference", "cid"}, {"publication", "cid"}},
  };
  b.projections = {{"conference", "name"}};
  Query q;
  q.id = "confs";
  q.blocks = {b};
  auto result = Evaluate(*g.db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->tuples.size(), 3u);
}

TEST(AcademicTest, DeterministicForSeed) {
  GeneratedDb a = MakeAcademicDatabase({});
  GeneratedDb b = MakeAcademicDatabase({});
  const Table* ta = *a.db->FindTable("writes");
  const Table* tb = *b.db->FindTable("writes");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < ta->num_rows(); ++i) {
    EXPECT_EQ(ta->DecodeRow(i), tb->DecodeRow(i));
  }
}

}  // namespace
}  // namespace lshap
