#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "shapley/aggregates.h"

namespace lshap {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  AggregatesTest() : ex_(MakePaperExample()), pool_(2) {}
  PaperExample ex_;
  ThreadPool pool_;
};

TEST_F(AggregatesTest, CountTotalsAndEfficiency) {
  auto attribution = ComputeShapleyForCount(*ex_.db, ex_.q_inf, pool_);
  ASSERT_TRUE(attribution.ok()) << attribution.status().ToString();
  // q_inf returns {Alice, Bob} → COUNT = 2, and by per-tuple efficiency the
  // fact values must add up to it.
  EXPECT_DOUBLE_EQ(attribution->total, 2.0);
  double sum = 0.0;
  for (const auto& [f, v] : attribution->values) sum += v;
  EXPECT_NEAR(sum, 2.0, 1e-9);
}

TEST_F(AggregatesTest, CountLinearityOverTuples) {
  auto attribution = ComputeShapleyForCount(*ex_.db, ex_.q_inf, pool_);
  ASSERT_TRUE(attribution.ok());
  // Per-tuple Shapley values computed independently must sum to the
  // aggregate attribution.
  auto eval = Evaluate(*ex_.db, ex_.q_inf);
  ASSERT_TRUE(eval.ok());
  ShapleyValues manual;
  for (size_t i = 0; i < eval->tuples.size(); ++i) {
    for (const auto& [f, v] : ComputeShapleyExactUnlimited(eval->ProvenanceOf(i))) {
      manual[f] += v;
    }
  }
  ASSERT_EQ(manual.size(), attribution->values.size());
  for (const auto& [f, v] : manual) {
    EXPECT_NEAR(attribution->values.at(f), v, 1e-12);
  }
}

TEST_F(AggregatesTest, CountRanksSharedFactsHighest) {
  auto attribution = ComputeShapleyForCount(*ex_.db, ex_.q_inf, pool_);
  ASSERT_TRUE(attribution.ok());
  // Universal supports derivations of both Alice and Bob; Warner only of
  // Alice. For the COUNT aggregate Universal must dominate Warner.
  EXPECT_GT(attribution->values.at(ex_.c1), attribution->values.at(ex_.c2));
}

TEST_F(AggregatesTest, SumOverNumericColumn) {
  // SUM(actors.age) over "actors in 2007 USA movies": Alice 45, Bob 30.
  Query q = ex_.q_inf;
  q.blocks[0].projections = {{"actors", "age"}};
  auto attribution = ComputeShapleyForSum(*ex_.db, q, {"actors", "age"},
                                          pool_);
  ASSERT_TRUE(attribution.ok()) << attribution.status().ToString();
  EXPECT_DOUBLE_EQ(attribution->total, 75.0);
  double sum = 0.0;
  for (const auto& [f, v] : attribution->values) sum += v;
  EXPECT_NEAR(sum, 75.0, 1e-9);
}

TEST_F(AggregatesTest, SumRejectsUnprojectedColumn) {
  auto attribution = ComputeShapleyForSum(*ex_.db, ex_.q_inf,
                                          {"actors", "age"}, pool_);
  EXPECT_FALSE(attribution.ok());
  EXPECT_EQ(attribution.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggregatesTest, SumRejectsStringColumn) {
  auto attribution = ComputeShapleyForSum(*ex_.db, ex_.q_inf,
                                          {"actors", "name"}, pool_);
  EXPECT_FALSE(attribution.ok());
}

TEST_F(AggregatesTest, EmptyResultGivesZeroAggregate) {
  Query q = ex_.q_inf;
  q.blocks[0].selections[1].literal = Value(int64_t{1800});
  auto attribution = ComputeShapleyForCount(*ex_.db, q, pool_);
  ASSERT_TRUE(attribution.ok());
  EXPECT_DOUBLE_EQ(attribution->total, 0.0);
  EXPECT_TRUE(attribution->values.empty());
}

}  // namespace
}  // namespace lshap
