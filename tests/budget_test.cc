#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "provenance/compiler.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

// Random monotone DNF over [0, num_vars).
Dnf RandomDnf(Rng& rng, size_t num_vars, size_t num_clauses,
              size_t max_clause_len) {
  std::vector<Clause> clauses;
  for (size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    const size_t len = 1 + rng.NextBounded(max_clause_len);
    for (size_t i = 0; i < len; ++i) {
      clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
    }
    clauses.push_back(clause);
  }
  return Dnf(std::move(clauses));
}

// ---- ExecutionBudget / CancelToken / FaultInjector units ----

TEST(ExecutionBudgetTest, UnlimitedNeverTrips) {
  ExecutionBudget budget = ExecutionBudget::Unlimited();
  EXPECT_TRUE(budget.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.Check("test.site").ok());
    EXPECT_TRUE(budget.Charge(1000, "test.site").ok());
  }
  EXPECT_FALSE(budget.tripped());
}

TEST(ExecutionBudgetTest, WorkBudgetTripsAndIsSticky) {
  ExecutionBudget budget({0.0, 100});
  EXPECT_TRUE(budget.Charge(60, "test.a").ok());
  EXPECT_TRUE(budget.Charge(40, "test.a").ok());  // exactly at the limit
  const Status s = budget.Charge(1, "test.b");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.tripped());
  EXPECT_EQ(budget.trip_site(), "test.b");
  // Sticky: every later poll returns the same error without re-deriving it.
  EXPECT_EQ(budget.Check("test.c").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.trip_site(), "test.b");
}

TEST(ExecutionBudgetTest, ExpiredDeadlineTripsOnFirstCheck) {
  // A 1 ns allowance is over by the time Check runs; the first check always
  // reads the clock (stride counter starts at 0).
  ExecutionBudget budget({1e-9, 0});
  const Status s = budget.Check("test.deadline");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionBudgetTest, CancelTokenPropagates) {
  CancelToken cancel;
  ExecutionBudget budget({0.0, 0}, &cancel);
  EXPECT_TRUE(budget.Check("test.site").ok());
  cancel.RequestCancel();
  const Status s = budget.Check("test.site");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(FaultInjectorTest, FailsAtExactHit) {
  FaultInjector fault;
  fault.FailAt("test.site", 2);
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  EXPECT_TRUE(budget.Check("test.site").ok());   // hit 0
  EXPECT_TRUE(budget.Check("test.site").ok());   // hit 1
  const Status s = budget.Check("test.site");    // hit 2: armed
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.trip_site(), "test.site");
  EXPECT_EQ(fault.hits("test.site"), 3u);
}

TEST(FaultInjectorTest, UnarmedSitesCountHits) {
  FaultInjector fault;
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(budget.Check("test.other").ok());
  EXPECT_EQ(fault.hits("test.other"), 5u);
  EXPECT_EQ(fault.hits("test.never"), 0u);
}

TEST(FaultInjectorTest, InjectedCodeIsConfigurable) {
  FaultInjector fault;
  fault.FailAt("test.site", 0, StatusCode::kCancelled);
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  EXPECT_EQ(budget.Check("test.site").code(), StatusCode::kCancelled);
}

TEST(FaultInjectorTest, ProbabilisticArmingIsDeterministicPerSeed) {
  auto first_failing_hit = [](uint64_t seed) -> int {
    FaultInjector fault(seed);
    fault.FailWithProbability("test.site", 0.2);
    for (int i = 0; i < 200; ++i) {
      if (!fault.OnSite("test.site").ok()) return i;
    }
    return -1;
  };
  EXPECT_EQ(first_failing_hit(42), first_failing_hit(42));
  // Across many seeds a 0.2-per-hit coin must fail somewhere in 200 hits.
  EXPECT_NE(first_failing_hit(42), -1);
}

// ---- Budgeted compiler ----

TEST(BudgetedCompilerTest, UnlimitedMatchesInfallible) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Dnf d = RandomDnf(rng, 2 + rng.NextBounded(8),
                            1 + rng.NextBounded(5), 3);
    DnfCompiler a;
    const auto plain = a.CompileUnlimited(d);
    ExecutionBudget unlimited = ExecutionBudget::Unlimited();
    DnfCompiler b;
    auto budgeted = b.Compile(d, unlimited);
    ASSERT_TRUE(budgeted.ok());
    EXPECT_EQ(plain->num_nodes(), (*budgeted)->num_nodes());
    EXPECT_EQ(a.last_num_nodes(), b.last_num_nodes());
  }
}

TEST(BudgetedCompilerTest, NodeBudgetBoundsCompilation) {
  Rng rng(6);
  const Dnf d = RandomDnf(rng, 12, 8, 4);
  ExecutionBudget tiny({0.0, 3});
  DnfCompiler compiler;
  auto result = compiler.Compile(d, tiny);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.trip_site(), kSiteCompilerExpand);
}

TEST(BudgetedCompilerTest, CancellationUnwindsCleanly) {
  Rng rng(7);
  const Dnf d = RandomDnf(rng, 12, 8, 4);
  CancelToken cancel;
  cancel.RequestCancel();
  ExecutionBudget budget({0.0, 0}, &cancel);
  DnfCompiler compiler;
  auto result = compiler.Compile(d, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---- Budgeted Shapley engines ----

TEST(BudgetedShapleyTest, UnlimitedMatchesInfallibleExact) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Dnf d = RandomDnf(rng, 2 + rng.NextBounded(8),
                            1 + rng.NextBounded(5), 3);
    const auto plain = ComputeShapleyExactUnlimited(d);
    ExecutionBudget unlimited = ExecutionBudget::Unlimited();
    auto budgeted = ComputeShapleyExact(d, unlimited);
    ASSERT_TRUE(budgeted.ok());
    ASSERT_EQ(budgeted->size(), plain.size());
    for (const auto& [f, v] : plain) {
      EXPECT_DOUBLE_EQ(budgeted->at(f), v);
    }
  }
}

TEST(BudgetedShapleyTest, ExactRespectsNodeBudget) {
  Rng rng(9);
  const Dnf d = RandomDnf(rng, 14, 9, 4);
  ExecutionBudget tiny({0.0, 2});
  auto result = ComputeShapleyExact(d, tiny);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetedShapleyTest, FaultAtCountingSiteTripsExact) {
  Rng rng(10);
  const Dnf d = RandomDnf(rng, 6, 3, 3);
  FaultInjector fault;
  fault.FailAt(kSiteShapleyCount, 0);
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  auto result = ComputeShapleyExact(d, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.trip_site(), kSiteShapleyCount);
}

TEST(BudgetedShapleyTest, MonteCarloSampleBudget) {
  Rng data_rng(11);
  const Dnf d = RandomDnf(data_rng, 8, 4, 3);
  Rng mc_rng(12);
  ExecutionBudget budget({0.0, 500});  // 1 unit per sample
  auto result = ComputeShapleyMonteCarlo(d, 1000, mc_rng, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.trip_site(), kSiteShapleyMcSample);
}

TEST(BudgetedShapleyTest, MonteCarloWithinBudgetMatchesInfallible) {
  Rng data_rng(13);
  const Dnf d = RandomDnf(data_rng, 8, 4, 3);
  Rng rng_a(14);
  const auto plain = ComputeShapleyMonteCarloUnlimited(d, 400, rng_a);
  Rng rng_b(14);
  ExecutionBudget budget({0.0, 400});
  auto budgeted = ComputeShapleyMonteCarlo(d, 400, rng_b, budget);
  ASSERT_TRUE(budgeted.ok());
  for (const auto& [f, v] : plain) {
    EXPECT_DOUBLE_EQ(budgeted->at(f), v);
  }
}

TEST(BudgetedShapleyTest, CnfProxyFaultSite) {
  Rng rng(15);
  const Dnf d = RandomDnf(rng, 6, 3, 3);
  FaultInjector fault;
  fault.FailAt(kSiteCnfProxy, 0);
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  auto result = ComputeCnfProxy(d, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ---- MC fallback quality: the degraded rung must preserve the ranking ----

// Kendall-style pairwise concordance restricted to pairs the exact values
// order strictly. Symmetric facts have *exactly* equal exact Shapley values,
// and sampling noise breaks such ties arbitrarily; penalizing that (as the
// tie-aware KendallTauDistance does) would measure the metric, not the
// sampler. Returns the fraction of strictly-ordered exact pairs whose order
// the MC estimate preserves (1.0 when every pair is tied).
double RankingAgreement(const ShapleyValues& exact, const ShapleyValues& mc,
                        const std::vector<FactId>& lineage) {
  size_t strict = 0;
  size_t concordant = 0;
  for (size_t i = 0; i < lineage.size(); ++i) {
    for (size_t j = i + 1; j < lineage.size(); ++j) {
      const double de = exact.at(lineage[i]) - exact.at(lineage[j]);
      if (de == 0.0) continue;
      ++strict;
      const double dm = mc.at(lineage[i]) - mc.at(lineage[j]);
      if (dm != 0.0 && (de > 0.0) == (dm > 0.0)) ++concordant;
    }
  }
  if (strict == 0) return 1.0;
  return static_cast<double>(concordant) / static_cast<double>(strict);
}

TEST(BudgetedShapleyTest, MonteCarloRankingAgreesWithExactOnSmallLineages) {
  Rng data_rng(16);
  for (int trial = 0; trial < 10; ++trial) {
    const Dnf d = RandomDnf(data_rng, 6 + data_rng.NextBounded(6),
                            2 + data_rng.NextBounded(4), 3);
    const std::vector<FactId> lineage = d.Variables();
    const auto exact = ComputeShapleyExactUnlimited(d);
    Rng mc_rng(100 + static_cast<uint64_t>(trial));
    const auto mc = ComputeShapleyMonteCarloUnlimited(d, 20000, mc_rng);
    EXPECT_GE(RankingAgreement(exact, mc, lineage), 0.9)
        << "trial " << trial << ": " << d.ToString();
  }
}

TEST(BudgetTest, RemainingSecondsWithoutDeadlineIsInfinite) {
  ExecutionBudget budget = ExecutionBudget::Unlimited();
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_TRUE(std::isinf(budget.RemainingSeconds()));
  EXPECT_GT(budget.RemainingSeconds(), 0.0);
}

TEST(BudgetTest, RemainingSecondsTracksTheDeadline) {
  ExecutionBudget::Limits limits;
  limits.deadline_seconds = 60.0;
  ExecutionBudget budget(limits);
  EXPECT_TRUE(budget.has_deadline());
  const double remaining = budget.RemainingSeconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 60.0);

  // A deadline in the past reads negative — the stage-boundary signal the
  // serving ladder uses to skip infeasible rungs without tripping first.
  ExecutionBudget::Limits expired;
  expired.deadline_seconds = 1e-9;
  ExecutionBudget late(expired);
  while (late.RemainingSeconds() > 0.0) {
  }
  EXPECT_LT(late.RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace lshap
