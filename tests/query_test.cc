#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datasets/academic.h"
#include "datasets/imdb.h"
#include "paper_fixture.h"
#include "query/ast.h"
#include "query/generator.h"

namespace lshap {
namespace {

TEST(AstTest, SelectionToSql) {
  Selection s{{"movies", "year"}, CompareOp::kEq, Value(int64_t{2007})};
  EXPECT_EQ(s.ToSql(), "movies.year = 2007");
  Selection str{{"companies", "country"}, CompareOp::kEq, Value("USA")};
  EXPECT_EQ(str.ToSql(), "companies.country = 'USA'");
  Selection like{{"actors", "name"}, CompareOp::kStartsWith, Value("B")};
  EXPECT_EQ(like.ToSql(), "actors.name LIKE 'B%'");
}

TEST(AstTest, JoinNormalization) {
  JoinPred a{{"roles", "movie"}, {"movies", "title"}};
  a.Normalize();
  EXPECT_EQ(a.left.table, "movies");
  JoinPred b{{"movies", "title"}, {"roles", "movie"}};
  b.Normalize();
  EXPECT_EQ(a.ToSql(), b.ToSql());
}

TEST(AstTest, QueryToSqlShape) {
  PaperExample ex = MakePaperExample();
  const std::string sql = ex.q_inf.ToSql();
  EXPECT_NE(sql.find("SELECT DISTINCT actors.name"), std::string::npos);
  EXPECT_NE(sql.find("FROM movies, actors, companies, roles"),
            std::string::npos);
  EXPECT_NE(sql.find("companies.country = 'USA'"), std::string::npos);
  EXPECT_NE(sql.find("movies.year = 2007"), std::string::npos);
}

TEST(AstTest, NumTablesCountsDistinct) {
  PaperExample ex = MakePaperExample();
  EXPECT_EQ(ex.q_inf.NumTables(), 4u);
  Query u = ex.q_inf;
  u.blocks.push_back(ex.q_1.blocks[0]);
  EXPECT_EQ(u.NumTables(), 4u);  // same tables in both blocks
}

// Example 2.3: q_inf and q_1 differ in projection plus one extra selection;
// 5 shared operations out of 8 total.
TEST(AstTest, OperationsMatchPaperExample) {
  PaperExample ex = MakePaperExample();
  const auto ops_inf = Operations(ex.q_inf);
  const auto ops_1 = Operations(ex.q_1);
  EXPECT_EQ(ops_inf.size(), 6u);  // 1 proj + 3 joins + 2 selections
  EXPECT_EQ(ops_1.size(), 7u);    // 1 proj + 3 joins + 3 selections
  std::set<std::string> inter;
  for (const auto& op : ops_inf) {
    if (ops_1.count(op) > 0) inter.insert(op);
  }
  EXPECT_EQ(inter.size(), 5u);  // joins + the two shared selections
}

TEST(AstTest, UnionOperationsAreUnioned) {
  PaperExample ex = MakePaperExample();
  Query u = ex.q_inf;
  u.blocks.push_back(ex.q_1.blocks[0]);
  const auto ops = Operations(u);
  // Union of the 6 and 7 op sets sharing 5 → 8 distinct operations.
  EXPECT_EQ(ops.size(), 8u);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : data_(MakeImdbDatabase({})),
        gen_(data_.db.get(), data_.graph, QueryGenConfig{}, 99) {}
  GeneratedDb data_;
  QueryGenerator gen_;
};

TEST_F(GeneratorTest, GeneratesValidBlocks) {
  for (int i = 0; i < 50; ++i) {
    Query q = gen_.Generate("q" + std::to_string(i));
    ASSERT_FALSE(q.blocks.empty());
    for (const auto& b : q.blocks) {
      EXPECT_FALSE(b.tables.empty());
      EXPECT_FALSE(b.projections.empty());
      // Joins must connect the selected tables (tables - 1 joins at least
      // when connected growth succeeded).
      if (b.tables.size() > 1) {
        EXPECT_GE(b.joins.size(), b.tables.size() - 1);
      }
      // Every join endpoint must reference a FROM table.
      std::set<std::string> from(b.tables.begin(), b.tables.end());
      for (const auto& j : b.joins) {
        EXPECT_TRUE(from.count(j.left.table));
        EXPECT_TRUE(from.count(j.right.table));
      }
      for (const auto& s : b.selections) {
        EXPECT_TRUE(from.count(s.column.table));
      }
      for (const auto& p : b.projections) {
        EXPECT_TRUE(from.count(p.table));
      }
    }
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  QueryGenerator a(data_.db.get(), data_.graph, QueryGenConfig{}, 7);
  QueryGenerator b(data_.db.get(), data_.graph, QueryGenConfig{}, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Generate("q").ToSql(), b.Generate("q").ToSql());
  }
}

TEST_F(GeneratorTest, MutateChangesSomething) {
  Query base = gen_.Generate("base");
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    Query m = gen_.Mutate(base, "m" + std::to_string(i));
    if (m.ToSql() != base.ToSql()) ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST_F(GeneratorTest, LogHasUniqueSqlAndIds) {
  const auto log = gen_.GenerateLog(30, "imdb");
  EXPECT_GT(log.size(), 30u);  // variants inflate the log
  std::unordered_set<std::string> sql;
  std::unordered_set<std::string> ids;
  for (const auto& q : log) {
    EXPECT_TRUE(sql.insert(q.ToSql()).second) << q.ToSql();
    EXPECT_TRUE(ids.insert(q.id).second) << q.id;
  }
}

uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t LogFingerprint(const std::vector<Query>& log) {
  uint64_t h = 14695981039346656037ull;
  for (const Query& q : log) {
    h = Fnv1a(h, q.id);
    h = Fnv1a(h, q.ToSql());
  }
  return h;
}

// The default QueryGenConfig must reproduce historical corpora bit-for-bit:
// these fingerprints were recorded against the pre-PR-4 generator (before
// string_order_prob/string_prefix_prob existed) over the default IMDB and
// Academic databases. If either changes, a generator edit perturbed the RNG
// stream of existing logs — every recorded BENCH_* number and the corpus
// ground truth would silently shift.
TEST(GeneratorPinTest, DefaultConfigReproducesHistoricalLogs) {
  {
    GeneratedDb data = MakeImdbDatabase(ImdbConfig{});
    QueryGenerator gen(data.db.get(), data.graph, QueryGenConfig{}, 4242);
    const auto log = gen.GenerateLog(25, "pin");
    EXPECT_EQ(log.size(), 68u);
    EXPECT_EQ(LogFingerprint(log), 8010808381602465292ull);
  }
  {
    GeneratedDb data = MakeAcademicDatabase(AcademicConfig{});
    QueryGenerator gen(data.db.get(), data.graph, QueryGenConfig{}, 777);
    const auto log = gen.GenerateLog(25, "pin");
    EXPECT_EQ(log.size(), 66u);
    EXPECT_EQ(LogFingerprint(log), 12802659380387097211ull);
  }
}

// The opt-in knobs actually emit the new predicate classes, and only on
// string columns.
TEST(GeneratorPinTest, OrderKnobEmitsOrderedStringSelections) {
  GeneratedDb data = MakeImdbDatabase(ImdbConfig{});
  QueryGenConfig cfg;
  cfg.string_order_prob = 0.6;
  cfg.string_prefix_prob = 0.2;
  QueryGenerator gen(data.db.get(), data.graph, cfg, 11);
  size_t ordered = 0;
  size_t prefix = 0;
  for (int i = 0; i < 60; ++i) {
    const Query q = gen.Generate("k" + std::to_string(i));
    for (const auto& block : q.blocks) {
      for (const auto& sel : block.selections) {
        const bool is_order =
            sel.op == CompareOp::kLt || sel.op == CompareOp::kLe ||
            sel.op == CompareOp::kGt || sel.op == CompareOp::kGe;
        if (sel.literal.is_string()) {
          ordered += is_order ? 1 : 0;
          prefix += sel.op == CompareOp::kStartsWith ? 1 : 0;
        } else {
          // Numeric order selections existed before the knobs; string ones
          // must carry string literals.
          EXPECT_NE(sel.op, CompareOp::kStartsWith);
        }
      }
    }
  }
  EXPECT_GT(ordered, 20u);
  EXPECT_GT(prefix, 5u);
}

}  // namespace
}  // namespace lshap
