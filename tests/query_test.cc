#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datasets/imdb.h"
#include "paper_fixture.h"
#include "query/ast.h"
#include "query/generator.h"

namespace lshap {
namespace {

TEST(AstTest, SelectionToSql) {
  Selection s{{"movies", "year"}, CompareOp::kEq, Value(int64_t{2007})};
  EXPECT_EQ(s.ToSql(), "movies.year = 2007");
  Selection str{{"companies", "country"}, CompareOp::kEq, Value("USA")};
  EXPECT_EQ(str.ToSql(), "companies.country = 'USA'");
  Selection like{{"actors", "name"}, CompareOp::kStartsWith, Value("B")};
  EXPECT_EQ(like.ToSql(), "actors.name LIKE 'B%'");
}

TEST(AstTest, JoinNormalization) {
  JoinPred a{{"roles", "movie"}, {"movies", "title"}};
  a.Normalize();
  EXPECT_EQ(a.left.table, "movies");
  JoinPred b{{"movies", "title"}, {"roles", "movie"}};
  b.Normalize();
  EXPECT_EQ(a.ToSql(), b.ToSql());
}

TEST(AstTest, QueryToSqlShape) {
  PaperExample ex = MakePaperExample();
  const std::string sql = ex.q_inf.ToSql();
  EXPECT_NE(sql.find("SELECT DISTINCT actors.name"), std::string::npos);
  EXPECT_NE(sql.find("FROM movies, actors, companies, roles"),
            std::string::npos);
  EXPECT_NE(sql.find("companies.country = 'USA'"), std::string::npos);
  EXPECT_NE(sql.find("movies.year = 2007"), std::string::npos);
}

TEST(AstTest, NumTablesCountsDistinct) {
  PaperExample ex = MakePaperExample();
  EXPECT_EQ(ex.q_inf.NumTables(), 4u);
  Query u = ex.q_inf;
  u.blocks.push_back(ex.q_1.blocks[0]);
  EXPECT_EQ(u.NumTables(), 4u);  // same tables in both blocks
}

// Example 2.3: q_inf and q_1 differ in projection plus one extra selection;
// 5 shared operations out of 8 total.
TEST(AstTest, OperationsMatchPaperExample) {
  PaperExample ex = MakePaperExample();
  const auto ops_inf = Operations(ex.q_inf);
  const auto ops_1 = Operations(ex.q_1);
  EXPECT_EQ(ops_inf.size(), 6u);  // 1 proj + 3 joins + 2 selections
  EXPECT_EQ(ops_1.size(), 7u);    // 1 proj + 3 joins + 3 selections
  std::set<std::string> inter;
  for (const auto& op : ops_inf) {
    if (ops_1.count(op) > 0) inter.insert(op);
  }
  EXPECT_EQ(inter.size(), 5u);  // joins + the two shared selections
}

TEST(AstTest, UnionOperationsAreUnioned) {
  PaperExample ex = MakePaperExample();
  Query u = ex.q_inf;
  u.blocks.push_back(ex.q_1.blocks[0]);
  const auto ops = Operations(u);
  // Union of the 6 and 7 op sets sharing 5 → 8 distinct operations.
  EXPECT_EQ(ops.size(), 8u);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : data_(MakeImdbDatabase({})),
        gen_(data_.db.get(), data_.graph, QueryGenConfig{}, 99) {}
  GeneratedDb data_;
  QueryGenerator gen_;
};

TEST_F(GeneratorTest, GeneratesValidBlocks) {
  for (int i = 0; i < 50; ++i) {
    Query q = gen_.Generate("q" + std::to_string(i));
    ASSERT_FALSE(q.blocks.empty());
    for (const auto& b : q.blocks) {
      EXPECT_FALSE(b.tables.empty());
      EXPECT_FALSE(b.projections.empty());
      // Joins must connect the selected tables (tables - 1 joins at least
      // when connected growth succeeded).
      if (b.tables.size() > 1) {
        EXPECT_GE(b.joins.size(), b.tables.size() - 1);
      }
      // Every join endpoint must reference a FROM table.
      std::set<std::string> from(b.tables.begin(), b.tables.end());
      for (const auto& j : b.joins) {
        EXPECT_TRUE(from.count(j.left.table));
        EXPECT_TRUE(from.count(j.right.table));
      }
      for (const auto& s : b.selections) {
        EXPECT_TRUE(from.count(s.column.table));
      }
      for (const auto& p : b.projections) {
        EXPECT_TRUE(from.count(p.table));
      }
    }
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  QueryGenerator a(data_.db.get(), data_.graph, QueryGenConfig{}, 7);
  QueryGenerator b(data_.db.get(), data_.graph, QueryGenConfig{}, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Generate("q").ToSql(), b.Generate("q").ToSql());
  }
}

TEST_F(GeneratorTest, MutateChangesSomething) {
  Query base = gen_.Generate("base");
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    Query m = gen_.Mutate(base, "m" + std::to_string(i));
    if (m.ToSql() != base.ToSql()) ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST_F(GeneratorTest, LogHasUniqueSqlAndIds) {
  const auto log = gen_.GenerateLog(30, "imdb");
  EXPECT_GT(log.size(), 30u);  // variants inflate the log
  std::unordered_set<std::string> sql;
  std::unordered_set<std::string> ids;
  for (const auto& q : log) {
    EXPECT_TRUE(sql.insert(q.ToSql()).second) << q.ToSql();
    EXPECT_TRUE(ids.insert(q.id).second) << q.id;
  }
}

}  // namespace
}  // namespace lshap
