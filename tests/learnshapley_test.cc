#include <gtest/gtest.h>

#include <memory>

#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/nearest_queries.h"
#include "learnshapley/serialization.h"
#include "learnshapley/trainer.h"
#include "paper_fixture.h"

namespace lshap {
namespace {

// A scorer that ranks facts by fact id — an arbitrary signal-free baseline
// that any learned model must beat.
class ArbitraryScorer : public FactScorer {
 public:
  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override {
    const auto& gold =
        corpus.entries[entry_idx].contributions[contrib_idx].shapley;
    ShapleyValues out;
    for (const auto& [f, v] : gold) out[f] = static_cast<double>(f % 97);
    return out;
  }
  std::unique_ptr<FactScorer> Clone() const override {
    return std::make_unique<ArbitraryScorer>(*this);
  }
  std::string name() const override { return "arbitrary"; }
};

class LearnShapleyTest : public ::testing::Test {
 protected:
  static CorpusConfig Config() {
    CorpusConfig cfg;
    cfg.seed = 5;
    cfg.num_base_queries = 12;
    cfg.max_outputs_per_query = 10;
    cfg.query_gen.max_tables = 3;
    return cfg;
  }

  LearnShapleyTest()
      : data_(MakeImdbDatabase({})),
        pool_(),
        corpus_(BuildCorpus(*data_.db, data_.graph, Config(), pool_)),
        sims_(ComputeSimilarityMatrices(corpus_, 10, pool_)) {}

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  SimilarityMatrices sims_;
};

TEST_F(LearnShapleyTest, NearestQueriesProducesScoresForAllLineageFacts) {
  NearestQueriesScorer nn(&corpus_, &sims_, SimilarityMetric::kSyntax, 3);
  for (size_t e : corpus_.test_idx) {
    for (size_t c = 0; c < corpus_.entries[e].contributions.size(); ++c) {
      const auto scores = nn.Score(corpus_, e, c);
      EXPECT_EQ(scores.size(),
                corpus_.entries[e].contributions[c].shapley.size());
    }
    break;  // one entry suffices
  }
}

TEST_F(LearnShapleyTest, NearestQueriesNeighborsSortedBySimilarity) {
  NearestQueriesScorer nn(&corpus_, &sims_, SimilarityMetric::kRank, 3);
  for (size_t e : corpus_.test_idx) {
    const auto nbrs = nn.Neighbors(e);
    ASSERT_LE(nbrs.size(), 3u);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_GE(nbrs[i - 1].second, nbrs[i].second);
    }
    for (const auto& [idx, sim] : nbrs) {
      EXPECT_NE(idx, e);
    }
  }
}

TEST_F(LearnShapleyTest, RankNearestQueriesBeatsArbitrary) {
  // Rank-based NN is the controlled-experiment upper baseline; on a corpus
  // with query families it must carry real signal.
  NearestQueriesScorer nn(&corpus_, &sims_, SimilarityMetric::kRank, 3);
  ArbitraryScorer arb;
  const auto seen = TrainSeenFacts(corpus_);
  const EvalSummary nn_sum =
      EvaluateScorer(corpus_, corpus_.test_idx, nn, seen, pool_);
  const EvalSummary arb_sum =
      EvaluateScorer(corpus_, corpus_.test_idx, arb, seen, pool_);
  EXPECT_GT(nn_sum.ndcg10, arb_sum.ndcg10);
}

TEST_F(LearnShapleyTest, EvaluateScorerPointsCoverEveryContribution) {
  ArbitraryScorer arb;
  const EvalSummary sum =
      EvaluateScorer(corpus_, corpus_.test_idx, arb, {}, pool_);
  size_t expected = 0;
  for (size_t e : corpus_.test_idx) {
    expected += corpus_.entries[e].contributions.size();
  }
  EXPECT_EQ(sum.points.size(), expected);
  for (const auto& pt : sum.points) {
    EXPECT_GE(pt.ndcg10, 0.0);
    EXPECT_LE(pt.ndcg10, 1.0 + 1e-9);
    EXPECT_GT(pt.lineage_size, 0u);
    EXPECT_GE(pt.num_tables, 1u);
  }
}

TEST_F(LearnShapleyTest, TrainedModelBeatsArbitraryScorer) {
  TrainConfig cfg;
  cfg.pretrain_epochs = 1;
  cfg.pretrain_pairs_per_epoch = 128;
  cfg.finetune_epochs = 2;
  cfg.finetune_samples_per_epoch = 768;
  cfg.batch_size = 32;
  cfg.seed = 21;
  TrainResult trained = TrainLearnShapley(corpus_, sims_, cfg, pool_);
  ASSERT_NE(trained.ranker, nullptr);

  ArbitraryScorer arb;
  const EvalSummary model_sum =
      EvaluateScorer(corpus_, corpus_.test_idx, *trained.ranker, {}, pool_);
  const EvalSummary arb_sum =
      EvaluateScorer(corpus_, corpus_.test_idx, arb, {}, pool_);
  EXPECT_GT(model_sum.ndcg10, arb_sum.ndcg10);
  EXPECT_GT(model_sum.ndcg10, 0.5);
}

TEST_F(LearnShapleyTest, RankerScoreLineageMatchesScore) {
  TrainConfig cfg;
  cfg.do_pretrain = false;
  cfg.finetune_epochs = 1;
  cfg.finetune_samples_per_epoch = 128;
  cfg.batch_size = 32;
  cfg.seed = 22;
  TrainResult trained = TrainLearnShapley(corpus_, sims_, cfg, pool_);
  const size_t e = corpus_.test_idx[0];
  const auto& contrib = corpus_.entries[e].contributions[0];
  std::vector<FactId> lineage;
  for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);

  const auto a = trained.ranker->Score(corpus_, e, 0);
  const auto b = trained.ranker->ScoreLineage(
      *corpus_.db, corpus_.entries[e].query, contrib.tuple, lineage);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [f, v] : a) {
    EXPECT_DOUBLE_EQ(v, b.at(f));
  }
}

TEST_F(LearnShapleyTest, ClonedScorerGivesIdenticalScores) {
  TrainConfig cfg;
  cfg.do_pretrain = false;
  cfg.finetune_epochs = 1;
  cfg.finetune_samples_per_epoch = 128;
  cfg.batch_size = 32;
  cfg.seed = 23;
  TrainResult trained = TrainLearnShapley(corpus_, sims_, cfg, pool_);
  auto clone = trained.ranker->Clone();
  const size_t e = corpus_.test_idx[0];
  const auto a = trained.ranker->Score(corpus_, e, 0);
  const auto b = clone->Score(corpus_, e, 0);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [f, v] : a) EXPECT_DOUBLE_EQ(v, b.at(f));
}

TEST(SerializationTest, TokensAreLowercaseSql) {
  PaperExample ex = MakePaperExample();
  const auto q_tokens = QueryTokens(ex.q_inf);
  EXPECT_EQ(q_tokens[0], "select");
  const auto f_tokens = FactTokens(*ex.db, ex.c1);
  // companies(Universal, USA) → companies ( universal , usa )
  ASSERT_GE(f_tokens.size(), 5u);
  EXPECT_EQ(f_tokens[0], "companies");
  EXPECT_EQ(f_tokens[2], "universal");
}

}  // namespace
}  // namespace lshap
