#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "ml/adam.h"
#include "ml/encoder.h"
#include "ml/layers.h"
#include "ml/tensor.h"
#include "ml/tokenizer.h"

namespace lshap {
namespace {

TEST(TensorTest, MatMulKnownValues) {
  Tensor a(2, 3);
  Tensor b(3, 2);
  float av = 1.0f;
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = av++;
  float bv = 1.0f;
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = bv++;
  const Tensor c = MatMul(a, b);
  // a = [[1,2,3],[4,5,6]], b = [[1,2],[3,4],[5,6]]
  EXPECT_FLOAT_EQ(c.at(0, 0), 22.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 28.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 49.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 64.0f);
}

TEST(TensorTest, TransposedMatMulsAgreeWithExplicit) {
  Rng rng(5);
  Tensor a = Tensor::Randn(4, 3, 1.0f, rng);
  Tensor b = Tensor::Randn(4, 5, 1.0f, rng);
  // ATB: (3×5) == transpose(a)·b
  Tensor atb = MatMulATB(a, b);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      float want = 0.0f;
      for (size_t k = 0; k < 4; ++k) want += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(atb.at(i, j), want, 1e-5);
    }
  }
  Tensor c = Tensor::Randn(6, 3, 1.0f, rng);
  Tensor abt = MatMulABT(a, c);  // (4×3)·(6×3)ᵀ = 4×6
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      float want = 0.0f;
      for (size_t k = 0; k < 3; ++k) want += a.at(i, k) * c.at(j, k);
      EXPECT_NEAR(abt.at(i, j), want, 1e-5);
    }
  }
}

// ---- Gradient checking machinery ----

// Loss L(out) = Σ coeff ⊙ out, whose gradient w.r.t. out is `coeff`.
float WeightedSum(const Tensor& out, const Tensor& coeff) {
  float total = 0.0f;
  for (size_t i = 0; i < out.size(); ++i) {
    total += out.data()[i] * coeff.data()[i];
  }
  return total;
}

// Checks analytic parameter gradients of `forward` (re-runnable) against
// central finite differences on a sample of coordinates.
template <typename ForwardFn>
void CheckParamGradients(std::vector<Param*> params, const ForwardFn& forward,
                         const Tensor& coeff, float tol) {
  // Analytic gradients are assumed already accumulated by the caller.
  Rng rng(99);
  const float eps = 1e-3f;
  for (Param* p : params) {
    const size_t checks = std::min<size_t>(6, p->value.size());
    for (size_t c = 0; c < checks; ++c) {
      const size_t i = rng.NextBounded(p->value.size());
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const float up = WeightedSum(forward(), coeff);
      p->value.data()[i] = orig - eps;
      const float down = WeightedSum(forward(), coeff);
      p->value.data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = p->grad.data()[i];
      // Mixed absolute/relative tolerance: float32 finite differences lose
      // precision when the loss (and hence gradient) magnitudes are large.
      EXPECT_NEAR(analytic, numeric, tol + 0.005f * std::abs(numeric))
          << "param size " << p->value.size() << " index " << i;
    }
  }
}

TEST(GradientCheck, Linear) {
  Rng rng(1);
  Linear lin(5, 4, rng);
  const Tensor x = Tensor::Randn(3, 5, 1.0f, rng);
  const Tensor coeff = Tensor::Randn(3, 4, 1.0f, rng);
  lin.Forward(x);
  lin.Backward(coeff);
  std::vector<Param*> params;
  lin.CollectParams(params);
  CheckParamGradients(params, [&] { return lin.Forward(x); }, coeff, 2e-2f);
}

TEST(GradientCheck, LinearInputGradient) {
  Rng rng(2);
  Linear lin(4, 3, rng);
  Tensor x = Tensor::Randn(2, 4, 1.0f, rng);
  const Tensor coeff = Tensor::Randn(2, 3, 1.0f, rng);
  lin.Forward(x);
  const Tensor dx = lin.Backward(coeff);
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = WeightedSum(lin.Forward(x), coeff);
    x.data()[i] = orig - eps;
    const float down = WeightedSum(lin.Forward(x), coeff);
    x.data()[i] = orig;
    EXPECT_NEAR(dx.data()[i], (up - down) / (2 * eps), 2e-2f);
  }
}

TEST(GradientCheck, LayerNorm) {
  Rng rng(3);
  LayerNorm ln(6);
  const Tensor x = Tensor::Randn(4, 6, 1.0f, rng);
  const Tensor coeff = Tensor::Randn(4, 6, 1.0f, rng);
  ln.Forward(x);
  ln.Backward(coeff);
  std::vector<Param*> params;
  ln.CollectParams(params);
  CheckParamGradients(params, [&] { return ln.Forward(x); }, coeff, 2e-2f);
}

TEST(GradientCheck, LayerNormInputGradient) {
  Rng rng(4);
  LayerNorm ln(5);
  Tensor x = Tensor::Randn(2, 5, 1.0f, rng);
  const Tensor coeff = Tensor::Randn(2, 5, 1.0f, rng);
  ln.Forward(x);
  const Tensor dx = ln.Backward(coeff);
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = WeightedSum(ln.Forward(x), coeff);
    x.data()[i] = orig - eps;
    const float down = WeightedSum(ln.Forward(x), coeff);
    x.data()[i] = orig;
    EXPECT_NEAR(dx.data()[i], (up - down) / (2 * eps), 3e-2f);
  }
}

TEST(GradientCheck, Gelu) {
  Rng rng(5);
  Gelu gelu;
  Tensor x = Tensor::Randn(3, 4, 1.0f, rng);
  const Tensor coeff = Tensor::Randn(3, 4, 1.0f, rng);
  gelu.Forward(x);
  const Tensor dx = gelu.Backward(coeff);
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = WeightedSum(gelu.Forward(x), coeff);
    x.data()[i] = orig - eps;
    const float down = WeightedSum(gelu.Forward(x), coeff);
    x.data()[i] = orig;
    EXPECT_NEAR(dx.data()[i], (up - down) / (2 * eps), 2e-2f);
  }
}

TEST(GradientCheck, MultiHeadAttention) {
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, rng);
  const Tensor x = Tensor::Randn(5, 8, 0.5f, rng);
  const std::vector<bool> mask(5, true);
  const Tensor coeff = Tensor::Randn(5, 8, 1.0f, rng);
  attn.Forward(x, mask);
  attn.Backward(coeff);
  std::vector<Param*> params;
  attn.CollectParams(params);
  CheckParamGradients(params, [&] { return attn.Forward(x, mask); }, coeff,
                      3e-2f);
}

TEST(GradientCheck, FullEncoder) {
  EncoderConfig cfg;
  cfg.vocab_size = 12;
  cfg.max_len = 6;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 16;
  cfg.seed = 7;
  TransformerEncoder enc(cfg);
  const std::vector<int> ids = {1, 5, 6, 2, 7};
  const std::vector<bool> mask(5, true);
  Rng rng(8);
  const Tensor coeff = Tensor::Randn(5, 8, 1.0f, rng);
  enc.Forward(ids, mask);
  enc.Backward(coeff);
  CheckParamGradients(enc.Params(), [&] { return enc.Forward(ids, mask); },
                      coeff, 4e-2f);
}

TEST(AttentionTest, PaddingMaskExcludesKeys) {
  Rng rng(9);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::Randn(4, 8, 0.5f, rng);
  std::vector<bool> mask = {true, true, true, false};
  const Tensor out_masked = attn.Forward(x, mask);
  // Changing the masked position's content must not affect other outputs.
  for (size_t c = 0; c < 8; ++c) x.at(3, c) += 10.0f;
  const Tensor out_changed = attn.Forward(x, mask);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(out_masked.at(r, c), out_changed.at(r, c), 1e-5);
    }
  }
}

TEST(AdamTest, LearnsLinearRegression) {
  // y = x·W* with a learned Linear; Adam should drive the loss near zero.
  Rng rng(10);
  Linear model(3, 1, rng);
  Tensor w_star(3, 1);
  w_star.at(0, 0) = 0.5f;
  w_star.at(1, 0) = -1.0f;
  w_star.at(2, 0) = 2.0f;
  std::vector<Param*> params;
  model.CollectParams(params);
  AdamConfig cfg;
  cfg.lr = 5e-2f;
  Adam opt(params, cfg);
  float last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    const Tensor x = Tensor::Randn(8, 3, 1.0f, rng);
    const Tensor target = MatMul(x, w_star);
    const Tensor pred = model.Forward(x);
    Tensor d(8, 1);
    last_loss = 0.0f;
    for (size_t i = 0; i < 8; ++i) {
      const float err = pred.at(i, 0) - target.at(i, 0);
      d.at(i, 0) = 2.0f * err / 8.0f;
      last_loss += err * err / 8.0f;
    }
    model.Backward(d);
    opt.Step();
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(TokenizerTest, SplitsSqlIntoWordsAndPunctuation) {
  const auto tokens =
      TokenizeText("SELECT DISTINCT actors.name FROM movies WHERE year = 2007");
  const std::vector<std::string> want = {
      "select", "distinct", "actors", ".", "name", "from",
      "movies", "where",    "year",   "=", "2007"};
  EXPECT_EQ(tokens, want);
}

TEST(TokenizerTest, HandlesQuotesAndLike) {
  const auto tokens = TokenizeText("name LIKE 'B%'");
  const std::vector<std::string> want = {"name", "like", "'", "b", "%", "'"};
  EXPECT_EQ(tokens, want);
}

TEST(VocabTest, SpecialsAndGrowth) {
  Vocab v;
  EXPECT_EQ(v.size(), static_cast<size_t>(Vocab::kNumSpecial));
  v.AddTokens({"select", "from", "select"});
  EXPECT_EQ(v.size(), static_cast<size_t>(Vocab::kNumSpecial) + 2);
  EXPECT_EQ(v.Encode("select"), Vocab::kNumSpecial);
  EXPECT_EQ(v.Encode("never-seen"), Vocab::kUnk);
  EXPECT_EQ(v.token(Vocab::kCls), "[CLS]");
}

TEST(EncodeSegmentsTest, LayoutAndTruncation) {
  Vocab v;
  v.AddTokens({"a", "b", "c", "d"});
  const EncodedPair p =
      EncodeSegments(v, {{"a", "b"}, {"c", "d"}}, /*max_len=*/16);
  // [CLS] a b [SEP] c d
  ASSERT_EQ(p.ids.size(), 6u);
  EXPECT_EQ(p.ids[0], Vocab::kCls);
  EXPECT_EQ(p.ids[3], Vocab::kSep);
  EXPECT_EQ(p.mask, std::vector<bool>(6, true));

  // Truncation keeps proportions and never exceeds max_len.
  std::vector<std::string> longseg(30, "a");
  const EncodedPair q = EncodeSegments(v, {longseg, {"c"}}, 10);
  EXPECT_LE(q.ids.size(), 10u);
  EXPECT_EQ(q.ids[0], Vocab::kCls);
}

TEST(EncodeSegmentsTest, TinyBudgetsKeepShortSegmentsFirst) {
  // Regression: with a content budget below the segment count, the
  // equal-share split rounded to zero and the whole budget fell through to
  // the *longest* segment — starving the short, discriminative segments
  // (the output tuple, the fact) in favor of SQL text.
  Vocab v;
  v.AddTokens({"q", "t", "f"});
  const std::vector<std::string> query(6, "q");            // longest
  const std::vector<std::string> tuple = {"t"};            // shortest
  const std::vector<std::string> fact = {"f", "f", "f"};   // middle
  const size_t specials = 3;  // [CLS] + 2 [SEP]
  auto count = [&](const EncodedPair& p, const char* tok) {
    return std::count(p.ids.begin(), p.ids.end(), v.Encode(tok));
  };

  // Budget 0: specials only, no crash, no content tokens.
  const EncodedPair p0 = EncodeSegments(v, {query, tuple, fact}, specials);
  EXPECT_EQ(p0.ids,
            (std::vector<int>{Vocab::kCls, Vocab::kSep, Vocab::kSep}));

  // Budget 1: the single content token goes to the shortest segment, not
  // to the SQL text.
  const EncodedPair p1 = EncodeSegments(v, {query, tuple, fact}, specials + 1);
  EXPECT_EQ(p1.ids.size(), specials + 1);
  EXPECT_EQ(count(p1, "t"), 1);
  EXPECT_EQ(count(p1, "q"), 0);

  // Budget = #segments - 1: the two shortest segments keep one token each.
  const EncodedPair p2 = EncodeSegments(v, {query, tuple, fact}, specials + 2);
  EXPECT_EQ(p2.ids.size(), specials + 2);
  EXPECT_EQ(count(p2, "t"), 1);
  EXPECT_EQ(count(p2, "f"), 1);
  EXPECT_EQ(count(p2, "q"), 0);
}

TEST(EncodeSegmentsTest, AssembleMatchesEncodeSegments) {
  // The batched scoring path (EncodeTokens + AssembleEncodedSegments) must
  // produce byte-identical framing to the one-shot EncodeSegments.
  Vocab v;
  v.AddTokens({"a", "b", "c", "d", "e"});
  const std::vector<std::string> s0 = {"a", "b", "c", "a", "b", "c"};
  const std::vector<std::string> s1 = {"d"};
  const std::vector<std::string> s2 = {"e", "e", "a"};
  for (size_t max_len : {3u, 4u, 5u, 8u, 16u}) {
    const EncodedPair want = EncodeSegments(v, {s0, s1, s2}, max_len);
    const std::vector<int> e0 = EncodeTokens(v, s0);
    const std::vector<int> e1 = EncodeTokens(v, s1);
    const std::vector<int> e2 = EncodeTokens(v, s2);
    const EncodedPair got = AssembleEncodedSegments({&e0, &e1, &e2}, max_len);
    EXPECT_EQ(got.ids, want.ids) << "max_len=" << max_len;
    EXPECT_EQ(got.mask, want.mask) << "max_len=" << max_len;
  }
}

}  // namespace
}  // namespace lshap
