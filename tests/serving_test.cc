#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "eval/evaluator.h"
#include "ml/encoder.h"
#include "paper_fixture.h"
#include "serving/cache.h"
#include "serving/service.h"
#include "serving/snapshot.h"

namespace lshap {
namespace {

// A structurally valid but untrained ranker: random weights produce
// arbitrary scores, which is all the serving-path tests need (they assert
// rungs, accounting and shapes, never ranking quality).
std::shared_ptr<const LearnShapleyRanker> MakeUntrainedRanker() {
  auto vocab = std::make_shared<Vocab>();
  EncoderConfig cfg;
  cfg.vocab_size = vocab->size();
  cfg.max_len = 64;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 32;
  LearnShapleyModel model(cfg, /*seed=*/7);
  return std::make_shared<const LearnShapleyRanker>(
      std::move(model), vocab, cfg.max_len, /*shapley_scale=*/1000.0f,
      "untrained");
}

std::shared_ptr<const Database> MakeFrozenPaperDb(PaperExample* ex) {
  *ex = MakePaperExample();
  ex->db->FreezeStringOrder();
  return std::shared_ptr<const Database>(std::move(ex->db));
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() : db_(MakeFrozenPaperDb(&ex_)) {}

  RankRequest AliceRequest() const {
    RankRequest req;
    req.kind = RequestKind::kRankTuple;
    req.query = ex_.q_inf;
    req.tuple = {Value("Alice")};
    return req;
  }

  PaperExample ex_;
  std::shared_ptr<const Database> db_;
};

// ---------------------------------------------------------------------------
// Snapshot slot

TEST_F(ServingTest, SnapshotEpochsStartAtOneAndAdvance) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.epoch(), 0u);
  EXPECT_EQ(slot.Acquire(), nullptr);
  EXPECT_EQ(slot.Publish(db_, nullptr), 1u);
  EXPECT_EQ(slot.epoch(), 1u);
  SnapshotHandle h = slot.Acquire();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->epoch, 1u);
  EXPECT_EQ(h->db.get(), db_.get());
}

TEST_F(ServingTest, OldSnapshotHandleStaysValidAcrossSwap) {
  RankingService svc{ServiceConfig{}};
  ASSERT_TRUE(svc.Publish(db_, nullptr).ok());
  SnapshotHandle old = svc.CurrentSnapshot();
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->epoch, 1u);

  PaperExample ex2;
  std::shared_ptr<const Database> db2 = MakeFrozenPaperDb(&ex2);
  ASSERT_TRUE(svc.Publish(db2, nullptr).ok());
  EXPECT_EQ(svc.epoch(), 2u);
  EXPECT_EQ(svc.CurrentSnapshot()->epoch, 2u);

  // The old epoch's database is still fully evaluable through the handle an
  // in-flight request would hold.
  EXPECT_EQ(old->epoch, 1u);
  auto result = Evaluate(*old->db, ex_.q_inf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);

  // New requests are served at the new epoch.
  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.epoch, 2u);
}

TEST_F(ServingTest, PublishRejectsUnfrozenDatabase) {
  RankingService svc{ServiceConfig{}};
  auto unfrozen = std::make_shared<Database>("unfrozen");
  ASSERT_TRUE(unfrozen
                  ->AddTable(Schema("t", {{"name", ColumnType::kString}}))
                  .ok());
  ASSERT_TRUE(unfrozen->Insert("t", {Value("x")}).ok());  // pool not frozen
  auto r = svc.Publish(std::shared_ptr<const Database>(unfrozen), nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Degradation ladder

TEST_F(ServingTest, ModelRungRanksFullLineage) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kModel);
  ASSERT_EQ(resp.results.size(), 1u);
  // Alice's lineage in the paper example is 9 facts (Example 2.1).
  EXPECT_EQ(resp.results[0].ranking.size(), 9u);
  EXPECT_EQ(resp.results[0].scores.size(), 9u);
  for (size_t i = 1; i < resp.results[0].scores.size(); ++i) {
    EXPECT_GE(resp.results[0].scores[i - 1], resp.results[0].scores[i]);
  }
  EXPECT_EQ(metrics.CounterValue("serve.rung.model"), 1u);
  // The model rung populated the cache for this (query, tuple).
  EXPECT_GE(svc.cache().size(), 1u);
}

TEST_F(ServingTest, CacheHitRungServesWhenModelInfeasible) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  // First request (no deadline) takes the model rung and fills the cache.
  RankResponse first = svc.Rank(AliceRequest());
  ASSERT_TRUE(first.status.ok());
  ASSERT_EQ(first.rung, ServeRung::kModel);

  // Second request's deadline clears the admission floor (est_request 1ms)
  // but can never cover the model-rung estimate (est_model 5ms), so the
  // ladder steps down to the cache — and must return the same ranking.
  RankRequest tight = AliceRequest();
  tight.deadline_seconds = 2e-3;
  RankResponse second = svc.Rank(tight);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(second.rung, ServeRung::kCached);
  ASSERT_EQ(second.results.size(), 1u);
  EXPECT_EQ(second.results[0].ranking, first.results[0].ranking);
  EXPECT_EQ(second.results[0].scores, first.results[0].scores);
  EXPECT_EQ(metrics.CounterValue("serve.rung.cached"), 1u);
  EXPECT_GE(svc.cache().hits(), 1u);
}

TEST_F(ServingTest, CnfProxyFallbackWithoutRanker) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kCnfProxy);
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_EQ(resp.results[0].ranking.size(), 9u);
  EXPECT_EQ(metrics.CounterValue("serve.rung.cnf_proxy"), 1u);
}

TEST_F(ServingTest, StratifiedRungServesWhenConfiguredWithoutRanker) {
  MetricsRegistry metrics;
  RankingService svc{
      ServiceConfig{}.WithStratifiedSamples(64).WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  // No ranker published: with the rung enabled the ladder stops at the
  // stratified estimate instead of falling all the way to the CNF proxy.
  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kStratified);
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_EQ(resp.results[0].ranking.size(), 9u);
  EXPECT_EQ(metrics.CounterValue("serve.rung.stratified"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.rung.cnf_proxy"), 0u);

  // Seeded per (snapshot, query, tuple index): a replay scores identically.
  RankResponse again = svc.Rank(AliceRequest());
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.rung, ServeRung::kStratified);
  EXPECT_EQ(again.results[0].ranking, resp.results[0].ranking);
  EXPECT_EQ(again.results[0].scores, resp.results[0].scores);
}

TEST_F(ServingTest, StratifiedFaultFallsThroughToProxy) {
  FaultInjector fault;
  fault.FailAt(kSiteServeStratified, 0);
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}
                         .WithStratifiedSamples(64)
                         .WithFault(&fault)
                         .WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  // The stratified site is polled directly on the injector: a fault there
  // skips the rung without tripping the budget, so the proxy still answers.
  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kCnfProxy);
  EXPECT_EQ(metrics.CounterValue("serve.rung.stratified"), 0u);
  EXPECT_EQ(metrics.CounterValue("serve.rung.cnf_proxy"), 1u);
}

TEST_F(ServingTest, DegradedResponseWhenBudgetTripsBeforeEval) {
  FaultInjector fault;
  fault.FailAt(kSiteServeSnapshot, 0);
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithFault(&fault).WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  // The budget trips at the snapshot stage: model and proxy rungs are
  // unreachable, the cache is empty — the service answers honestly.
  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kDegraded);
  EXPECT_TRUE(resp.results.empty());
  EXPECT_EQ(metrics.CounterValue("serve.rung.degraded"), 1u);
}

TEST_F(ServingTest, DegradationOptOutFailsWithTripStatus) {
  FaultInjector fault;
  fault.FailAt(kSiteServeSnapshot, 0);
  RankingService svc{ServiceConfig{}.WithFault(&fault)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  RankRequest req = AliceRequest();
  req.allow_degraded = false;
  RankResponse resp = svc.Rank(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(resp.results.empty());
}

TEST_F(ServingTest, CacheRungStillReachableAfterBudgetTrip) {
  FaultInjector fault;
  RankingService svc{ServiceConfig{}.WithFault(&fault)};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  // Warm the cache (no faults armed yet).
  RankResponse warm = svc.Rank(AliceRequest());
  ASSERT_EQ(warm.rung, ServeRung::kModel);

  // Now trip the budget at the snapshot stage: the cache must still answer.
  fault.FailAt(kSiteServeSnapshot, fault.hits(kSiteServeSnapshot));
  RankResponse resp = svc.Rank(AliceRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kCached);
  EXPECT_EQ(resp.results[0].ranking, warm.results[0].ranking);
}

TEST_F(ServingTest, ExplainQueryRanksEveryOutputTuple) {
  RankingService svc{ServiceConfig{}};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  RankRequest req;
  req.kind = RequestKind::kExplainQuery;
  req.query = ex_.q_inf;
  RankResponse resp = svc.Rank(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, ServeRung::kModel);
  EXPECT_EQ(resp.results.size(), 2u);  // q_inf outputs Alice and Bob
  for (const RankedTuple& rt : resp.results) {
    EXPECT_FALSE(rt.ranking.empty());
  }
}

TEST_F(ServingTest, UnknownTupleIsNotFound) {
  RankingService svc{ServiceConfig{}};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  RankRequest req = AliceRequest();
  req.tuple = {Value("Nobody")};
  RankResponse resp = svc.Rank(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(ServingTest, QueueFullRejectsWithResourceExhausted) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}
                         .WithQueueCapacity(2)
                         .WithMaxBacklogSeconds(1e9)
                         .WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  // Manual mode: nothing drains until PumpAll, so the queue fills exactly.
  auto f1 = svc.Submit(AliceRequest());
  auto f2 = svc.Submit(AliceRequest());
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(svc.queue_depth(), 2u);

  auto f3 = svc.Submit(AliceRequest());
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.CounterValue("serve.rejected.queue_full"), 1u);

  // The rejection never blocked, and the admitted requests still complete.
  EXPECT_EQ(svc.PumpAll(), 2u);
  EXPECT_TRUE(f1->get().status.ok());
  EXPECT_TRUE(f2->get().status.ok());
  EXPECT_EQ(metrics.CounterValue("serve.submitted"), 3u);
  EXPECT_EQ(metrics.CounterValue("serve.admitted"), 2u);
  EXPECT_EQ(metrics.CounterValue("serve.completed"), 2u);
}

TEST_F(ServingTest, BacklogBoundRejectsBeforeQueueFills) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}
                         .WithEstRequestSeconds(1.0)
                         .WithMaxBacklogSeconds(1.5)
                         .WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  // Requests need deadline 0 (none) to pass the floor check with est 1s.
  auto f1 = svc.Submit(AliceRequest());
  auto f2 = svc.Submit(AliceRequest());
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  // Third request sees an estimated backlog of 2 × 1.0s > 1.5s.
  auto f3 = svc.Submit(AliceRequest());
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.CounterValue("serve.rejected.backlog"), 1u);
  svc.PumpAll();
}

TEST_F(ServingTest, DeadlineBelowServiceFloorIsRejectedUpFront) {
  MetricsRegistry metrics;
  RankingService svc{
      ServiceConfig{}.WithEstRequestSeconds(1.0).WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  RankRequest req = AliceRequest();
  req.deadline_seconds = 0.5;  // below the 1s floor — cannot possibly finish
  auto f = svc.Submit(req);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.CounterValue("serve.rejected.deadline"), 1u);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST_F(ServingTest, SubmitBeforePublishIsRejected) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithMetrics(&metrics)};
  auto f = svc.Submit(AliceRequest());
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(metrics.CounterValue("serve.rejected.no_snapshot"), 1u);
}

TEST_F(ServingTest, AdmissionFaultRejectsCleanly) {
  FaultInjector fault;
  fault.FailAt(kSiteServeAdmission, 0);
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithFault(&fault).WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  auto f = svc.Submit(AliceRequest());
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(metrics.CounterValue("serve.rejected.fault"), 1u);
  // The next request (hit 1, unarmed) is admitted normally.
  RankResponse resp = svc.Rank(AliceRequest());
  EXPECT_TRUE(resp.status.ok());
}

// ---------------------------------------------------------------------------
// Shutdown and accounting

TEST_F(ServingTest, ShutdownCancelsQueuedRequests) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}.WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  auto f = svc.Submit(AliceRequest());
  ASSERT_TRUE(f.ok());
  svc.Shutdown();
  RankResponse resp = f->get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(metrics.CounterValue("serve.cancelled"), 1u);

  auto after = svc.Submit(AliceRequest());
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  svc.Shutdown();  // idempotent
}

TEST_F(ServingTest, EverySubmittedRequestIsAccounted) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}
                         .WithQueueCapacity(3)
                         .WithMaxBacklogSeconds(1e9)
                         .WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, /*ranker=*/nullptr).ok());

  std::vector<std::future<RankResponse>> futures;
  size_t rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto f = svc.Submit(AliceRequest());
    if (f.ok()) {
      futures.push_back(std::move(*f));
    } else {
      ++rejected;
    }
  }
  svc.PumpAll();
  auto pending = svc.Submit(AliceRequest());
  ASSERT_TRUE(pending.ok());
  svc.Shutdown();

  const uint64_t submitted = metrics.CounterValue("serve.submitted");
  const uint64_t completed = metrics.CounterValue("serve.completed");
  const uint64_t cancelled = metrics.CounterValue("serve.cancelled");
  const uint64_t rejections = metrics.CounterValue("serve.rejected.queue_full") +
                              metrics.CounterValue("serve.rejected.backlog") +
                              metrics.CounterValue("serve.rejected.deadline") +
                              metrics.CounterValue("serve.rejected.no_snapshot") +
                              metrics.CounterValue("serve.rejected.fault") +
                              metrics.CounterValue("serve.rejected.shutdown");
  EXPECT_EQ(submitted, 7u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(completed + cancelled + rejections, submitted);
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  EXPECT_EQ(pending->get().status.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target: snapshot swaps under serving load)

TEST_F(ServingTest, SnapshotSwapUnderConcurrentLoad) {
  MetricsRegistry metrics;
  RankingService svc{ServiceConfig{}
                         .WithWorkers(2)
                         .WithQueueCapacity(1024)
                         .WithMaxBacklogSeconds(1e9)
                         .WithMetrics(&metrics)};
  ASSERT_TRUE(svc.Publish(db_, MakeUntrainedRanker()).ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 40;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<RankResponse>>> futures(kClients);
  std::mutex reject_mu;
  size_t rejected = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto f = svc.Submit(AliceRequest());
        if (f.ok()) {
          futures[c].push_back(std::move(*f));
        } else {
          std::lock_guard<std::mutex> lock(reject_mu);
          ++rejected;
        }
      }
    });
  }
  // Publisher: swap snapshots continuously while clients submit and
  // workers serve. Old epochs must stay valid for in-flight requests.
  std::shared_ptr<const LearnShapleyRanker> ranker = MakeUntrainedRanker();
  for (int swap = 0; swap < 8; ++swap) {
    PaperExample ex;
    std::shared_ptr<const Database> db = MakeFrozenPaperDb(&ex);
    ASSERT_TRUE(svc.Publish(db, swap % 2 == 0 ? ranker : nullptr).ok());
  }
  for (std::thread& t : clients) t.join();

  size_t completed = 0;
  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      RankResponse resp = f.get();
      // Every admitted request terminates with a definite outcome on some
      // epoch; under swaps the rung may differ (null-ranker epochs serve
      // from cache or proxy) but nothing errors and nothing is dropped.
      EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
      EXPECT_GE(resp.epoch, 1u);
      EXPECT_LE(resp.epoch, 9u);
      ++completed;
    }
  }
  svc.Shutdown();
  EXPECT_EQ(completed + rejected,
            static_cast<size_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(metrics.CounterValue("serve.completed"), completed);
}

// ---------------------------------------------------------------------------
// Ranking cache

TEST(RankingCacheTest, EvictsLeastRecentlyUsedPerShard) {
  RankingCache cache(/*capacity=*/2, /*num_shards=*/1);
  CachedRanking r;
  r.scores = {{FactId{1}, 0.5}};
  cache.Put("a", r);
  cache.Put("b", r);
  CachedRanking out;
  ASSERT_TRUE(cache.Get("a", &out));  // refresh "a": "b" is now LRU
  cache.Put("c", r);
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RankingCacheTest, ZeroCapacityDisables) {
  RankingCache cache(/*capacity=*/0);
  CachedRanking r;
  cache.Put("a", r);
  EXPECT_FALSE(cache.Get("a", nullptr));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RankingCacheTest, KeysSeparateSnapshotFingerprints) {
  Query q;
  OutputTuple t = {Value("Alice")};
  EXPECT_NE(RankingCache::Key(1, q, t), RankingCache::Key(2, q, t));
  EXPECT_EQ(RankingCache::Key(1, q, t), RankingCache::Key(1, q, t));
}

TEST(ServeRungTest, NamesAreStable) {
  EXPECT_STREQ(ServeRungName(ServeRung::kModel), "model");
  EXPECT_STREQ(ServeRungName(ServeRung::kCached), "cached");
  EXPECT_STREQ(ServeRungName(ServeRung::kStratified), "stratified");
  EXPECT_STREQ(ServeRungName(ServeRung::kCnfProxy), "cnf_proxy");
  EXPECT_STREQ(ServeRungName(ServeRung::kDegraded), "degraded");
}

}  // namespace
}  // namespace lshap
