// Property tests: the columnar hash-join evaluator must agree exactly —
// tuples AND provenance — with a naive row-at-a-time cartesian-product
// reference evaluator, on random queries over small random databases, under
// every provenance-capture mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "datasets/academic.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"

namespace lshap {
namespace {

// Reference evaluation of one SPJ block by full cartesian enumeration,
// reading values row-at-a-time through the Value boundary (GetValue), i.e.
// deliberately NOT through the columnar fast paths under test.
void NaiveBlock(const Database& db, const SpjBlock& block,
                std::map<OutputTuple, std::vector<Clause>>& out) {
  std::vector<const Table*> tables;
  for (const auto& name : block.tables) {
    tables.push_back(db.FindTable(name).value());
  }
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < block.tables.size(); ++i) pos[block.tables[i]] = i;

  std::vector<size_t> idx(tables.size(), 0);
  for (;;) {
    // Check selections.
    bool pass = true;
    for (const auto& sel : block.selections) {
      const size_t t = pos.at(sel.column.table);
      const size_t c =
          tables[t]->schema().ColumnIndex(sel.column.column).value();
      if (!MatchesPredicate(tables[t]->GetValue(idx[t], c), sel.op,
                            sel.literal)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      for (const auto& join : block.joins) {
        const size_t lt = pos.at(join.left.table);
        const size_t lc =
            tables[lt]->schema().ColumnIndex(join.left.column).value();
        const size_t rt = pos.at(join.right.table);
        const size_t rc =
            tables[rt]->schema().ColumnIndex(join.right.column).value();
        const Value lv = tables[lt]->GetValue(idx[lt], lc);
        const Value rv = tables[rt]->GetValue(idx[rt], rc);
        // SQL join semantics: a NULL key matches nothing, including another
        // NULL — variant equality says Null() == Null(), so nulls must be
        // rejected explicitly. (NaN needs no special case here: variant
        // equality already says NaN != NaN, agreeing with the engine's NaN
        // key exclusion.)
        if (lv.is_null() || rv.is_null() || lv != rv) {
          pass = false;
          break;
        }
      }
    }
    if (pass) {
      OutputTuple tuple;
      for (const auto& proj : block.projections) {
        const size_t t = pos.at(proj.table);
        const size_t c =
            tables[t]->schema().ColumnIndex(proj.column).value();
        tuple.push_back(tables[t]->GetValue(idx[t], c));
      }
      Clause clause;
      for (size_t t = 0; t < tables.size(); ++t) {
        clause.push_back(tables[t]->fact_id(idx[t]));
      }
      std::sort(clause.begin(), clause.end());
      out[tuple].push_back(std::move(clause));
    }
    // Odometer increment.
    size_t t = 0;
    for (; t < tables.size(); ++t) {
      if (++idx[t] < tables[t]->num_rows()) break;
      idx[t] = 0;
    }
    if (t == tables.size()) break;
  }
}

std::map<OutputTuple, std::vector<Clause>> NaiveQuery(const Database& db,
                                                      const Query& q) {
  std::map<OutputTuple, std::vector<Clause>> want;
  for (const auto& block : q.blocks) NaiveBlock(db, block, want);
  return want;
}

// A small database so that cartesian products stay tractable.
GeneratedDb SmallImdb() {
  ImdbConfig cfg;
  cfg.seed = 99;
  cfg.num_companies = 5;
  cfg.num_actors = 8;
  cfg.num_movies = 10;
  cfg.num_roles = 20;
  return MakeImdbDatabase(cfg);
}

// A small Academic database: its join keys are integer columns, covering the
// int key-word path the IMDB string joins do not.
GeneratedDb SmallAcademic() {
  AcademicConfig cfg;
  cfg.seed = 42;
  cfg.num_organizations = 4;
  cfg.num_authors = 8;
  cfg.num_publications = 10;
  cfg.num_writes = 16;
  cfg.num_conferences = 5;
  cfg.num_domains = 3;
  cfg.num_domain_conference = 6;
  return MakeAcademicDatabase(cfg);
}

// The shared pools the parallel differential checks dispatch on. Morsel
// dispatch must produce identical results under any worker count, so every
// differential case runs at 1, 2, and 8 threads.
std::vector<ThreadPool*>& SharedPools() {
  static std::vector<ThreadPool*>* pools = [] {
    auto* p = new std::vector<ThreadPool*>();
    for (size_t threads : {1u, 2u, 8u}) p->push_back(new ThreadPool(threads));
    return p;
  }();
  return *pools;
}

// Asserts the morsel-parallel evaluator is byte-identical to the serial
// result: same tuples in the same order, same clause order, same lineages.
// Tiny morsels force multi-morsel merges even on these small databases.
void CheckParallelMatchesSerial(const Database& db, const Query& q,
                                ProvenanceCapture capture,
                                const EvalResult& serial) {
  for (ThreadPool* pool : SharedPools()) {
    EvalOptions opts;
    opts.capture = capture;
    opts.pool = pool;
    opts.morsel_rows = 3;
    opts.min_parallel_rows = 1;
    auto got = Evaluate(db, q, opts);
    ASSERT_TRUE(got.ok()) << q.ToSql();
    const std::string ctx = q.ToSql() + " threads=" +
                            std::to_string(pool->num_threads()) +
                            " capture=" + std::to_string(static_cast<int>(capture));
    ASSERT_EQ(got->tuples, serial.tuples) << ctx;
    EXPECT_EQ(got->index, serial.index) << ctx;
    EXPECT_EQ(got->lineages, serial.lineages) << ctx;
    if (capture == ProvenanceCapture::kFull) {
      ASSERT_EQ(got->provenance.size(), serial.provenance.size()) << ctx;
      for (size_t i = 0; i < serial.provenance.size(); ++i) {
        EXPECT_EQ(got->provenance[i].clauses(), serial.provenance[i].clauses())
            << ctx << " tuple " << i;
      }
    }
  }
}

// Asserts the string-materializing selection path (use_string_ranks=false)
// produces exactly the result of the rank-compiled default. On a frozen
// pool the two take genuinely different code paths for ordered/prefix
// string predicates — text comparison per cell vs. one rank-interval test —
// so this is the id-space predicates' differential oracle.
void CheckTextOracleMatches(const Database& db, const Query& q,
                            ProvenanceCapture capture,
                            const EvalResult& ranked) {
  EvalOptions opts;
  opts.capture = capture;
  opts.use_string_ranks = false;
  auto text = Evaluate(db, q, opts);
  ASSERT_TRUE(text.ok()) << q.ToSql();
  const std::string ctx = q.ToSql() + " [text oracle] capture=" +
                          std::to_string(static_cast<int>(capture));
  ASSERT_EQ(text->tuples, ranked.tuples) << ctx;
  EXPECT_EQ(text->index, ranked.index) << ctx;
  EXPECT_EQ(text->lineages, ranked.lineages) << ctx;
  if (capture == ProvenanceCapture::kFull) {
    ASSERT_EQ(text->provenance.size(), ranked.provenance.size()) << ctx;
    for (size_t i = 0; i < ranked.provenance.size(); ++i) {
      EXPECT_EQ(text->provenance[i].clauses(), ranked.provenance[i].clauses())
          << ctx << " tuple " << i;
    }
  }
}

// Differential check of one query against the reference under all three
// capture modes: identical tuple sets always; identical lineage sets under
// kLineageOnly and kFull; identical DNFs under kFull. Each case then runs
// through the parallel evaluator at every pool size against the serial
// result, and through the text-path oracle against the rank-compiled
// serial result.
void CheckAgainstReference(const Database& db, const Query& q) {
  const std::map<OutputTuple, std::vector<Clause>> want = NaiveQuery(db, q);

  for (const ProvenanceCapture capture :
       {ProvenanceCapture::kNone, ProvenanceCapture::kLineageOnly,
        ProvenanceCapture::kFull}) {
    auto got = Evaluate(db, q, capture);
    ASSERT_TRUE(got.ok()) << q.ToSql();
    ASSERT_EQ(got->tuples.size(), want.size())
        << q.ToSql() << " capture=" << static_cast<int>(capture);
    for (const auto& [tuple, clauses] : want) {
      auto it = got->index.find(tuple);
      ASSERT_NE(it, got->index.end())
          << q.ToSql() << " missing " << OutputTupleToString(tuple);
      const Dnf expected(clauses);
      if (capture == ProvenanceCapture::kFull) {
        EXPECT_EQ(got->ProvenanceOf(it->second).clauses(), expected.clauses())
            << q.ToSql() << " tuple " << OutputTupleToString(tuple);
      }
      if (capture != ProvenanceCapture::kNone) {
        EXPECT_EQ(got->LineageOf(it->second), expected.Variables())
            << q.ToSql() << " tuple " << OutputTupleToString(tuple);
      }
    }
    CheckParallelMatchesSerial(db, q, capture, *got);
    CheckTextOracleMatches(db, q, capture, *got);
  }
}

// Counts selections in `q` whose op is an ordered string comparison or a
// prefix test on a string column — the predicate classes the rank sidecar
// compiles to id-space interval tests.
size_t CountOrderedStringSelections(const Query& q) {
  size_t n = 0;
  for (const auto& block : q.blocks) {
    for (const auto& sel : block.selections) {
      if (!sel.literal.is_string()) continue;
      if (sel.op == CompareOp::kLt || sel.op == CompareOp::kLe ||
          sel.op == CompareOp::kGt || sel.op == CompareOp::kGe ||
          sel.op == CompareOp::kStartsWith) {
        ++n;
      }
    }
  }
  return n;
}

TEST(EvalPropertyTest, MatchesNaiveEvaluatorOnRandomQueries) {
  GeneratedDb data = SmallImdb();
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 1234);

  size_t nonempty = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Query q = gen.Generate("p" + std::to_string(trial));
    const auto want = NaiveQuery(*data.db, q);
    if (!want.empty()) ++nonempty;
    CheckAgainstReference(*data.db, q);
  }
  // The generator must produce a healthy share of non-empty queries for
  // this test to mean anything.
  EXPECT_GT(nonempty, 20u);
}

TEST(EvalPropertyTest, MatchesNaiveEvaluatorOnIntJoins) {
  GeneratedDb data = SmallAcademic();
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 5678);

  size_t nonempty = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Query q = gen.Generate("a" + std::to_string(trial));
    if (!NaiveQuery(*data.db, q).empty()) ++nonempty;
    CheckAgainstReference(*data.db, q);
  }
  EXPECT_GT(nonempty, 10u);
}

// Opt-in generator knobs flood the log with ordered (<, <=, >, >=) and
// prefix string selections, which compile to rank-interval tests over the
// frozen pools — differentially verified against the naive text reference,
// the text-path oracle, and the parallel evaluator at 1/2/8 threads under
// every capture mode.
TEST(EvalPropertyTest, MatchesNaiveEvaluatorOnOrderedStringPredicates) {
  GeneratedDb data = SmallImdb();
  ASSERT_TRUE(data.db->string_pool().OrderIndexFresh());
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  gen_cfg.string_order_prob = 0.45;
  gen_cfg.string_prefix_prob = 0.35;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 20240);

  size_t ordered = 0;
  size_t nonempty = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Query q = gen.Generate("o" + std::to_string(trial));
    ordered += CountOrderedStringSelections(q);
    if (!NaiveQuery(*data.db, q).empty()) ++nonempty;
    CheckAgainstReference(*data.db, q);
  }
  // The knobs must actually produce the predicate classes under test, and a
  // healthy share of non-empty results.
  EXPECT_GT(ordered, 25u);
  EXPECT_GT(nonempty, 10u);
}

TEST(EvalPropertyTest, MatchesNaiveEvaluatorOnOrderedAcademicPredicates) {
  GeneratedDb data = SmallAcademic();
  ASSERT_TRUE(data.db->string_pool().OrderIndexFresh());
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  gen_cfg.string_order_prob = 0.5;
  gen_cfg.string_prefix_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 20241);

  size_t ordered = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Query q = gen.Generate("oa" + std::to_string(trial));
    ordered += CountOrderedStringSelections(q);
    CheckAgainstReference(*data.db, q);
  }
  EXPECT_GT(ordered, 10u);
}

// Interning a new string after the dataset froze its pool makes the order
// sidecar stale: the evaluator must fall back to text comparisons (the
// rank map no longer covers every id) and still match the reference.
TEST(EvalPropertyTest, StaleOrderSidecarFallsBackToTextPath) {
  GeneratedDb data = SmallImdb();
  ASSERT_TRUE(data.db->string_pool().OrderIndexFresh());
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 2;
  gen_cfg.string_order_prob = 0.6;
  gen_cfg.string_prefix_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 20242);
  std::vector<Query> queries;
  for (int trial = 0; trial < 10; ++trial) {
    queries.push_back(gen.Generate("s" + std::to_string(trial)));
    CheckAgainstReference(*data.db, queries.back());
  }

  // A new company name (a string the pool has never seen, sorting past the
  // frozen range) invalidates the sidecar...
  ASSERT_TRUE(data.db
                  ->Insert("companies", {Value("zzz unfrozen studio"),
                                         Value("Nowhere")})
                  .ok());
  ASSERT_FALSE(data.db->string_pool().OrderIndexFresh());
  // ...and every query still matches the reference through the fallback.
  for (const Query& q : queries) CheckAgainstReference(*data.db, q);

  // Re-freezing restores the rank path over the grown dictionary.
  data.db->FreezeStringOrder();
  ASSERT_TRUE(data.db->string_pool().OrderIndexFresh());
  for (const Query& q : queries) CheckAgainstReference(*data.db, q);
}

// Databases generated with null cells (nullable non-key columns) plus a
// generator emitting NULL-literal selections: the columnar three-valued
// paths — null-filtering scans, kNever NULL-literal compilation, null-masked
// DISTINCT encoding — must agree with the naive reference (which goes
// through MatchesPredicate / Value equality) under every capture mode,
// thread count, and the text-path oracle.
TEST(EvalPropertyTest, MatchesNaiveEvaluatorWithNullCells) {
  ImdbConfig cfg;
  cfg.seed = 99;
  cfg.num_companies = 5;
  cfg.num_actors = 8;
  cfg.num_movies = 10;
  cfg.num_roles = 20;
  cfg.null_prob = 0.3;
  GeneratedDb data = MakeImdbDatabase(cfg);
  // The knob must actually produce nulls for this test to mean anything.
  size_t nulls = 0;
  for (size_t t = 0; t < data.db->num_tables(); ++t) {
    for (size_t c = 0; c < data.db->table(t).num_columns(); ++c) {
      nulls += data.db->table(t).column(c).null_count();
    }
  }
  ASSERT_GT(nulls, 0u);

  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  gen_cfg.null_prob = 0.15;  // NULL-literal selections in the mix
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 909);
  size_t nonempty = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Query q = gen.Generate("n" + std::to_string(trial));
    if (!NaiveQuery(*data.db, q).empty()) ++nonempty;
    CheckAgainstReference(*data.db, q);
  }
  EXPECT_GT(nonempty, 10u);
}

TEST(EvalPropertyTest, MatchesNaiveEvaluatorWithNullIntCells) {
  AcademicConfig cfg;
  cfg.seed = 42;
  cfg.num_organizations = 4;
  cfg.num_authors = 8;
  cfg.num_publications = 10;
  cfg.num_writes = 16;
  cfg.num_conferences = 5;
  cfg.num_domains = 3;
  cfg.num_domain_conference = 6;
  cfg.null_prob = 0.35;
  GeneratedDb data = MakeAcademicDatabase(cfg);

  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  gen_cfg.null_prob = 0.1;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 910);
  for (int trial = 0; trial < 30; ++trial) {
    CheckAgainstReference(*data.db,
                          gen.Generate("na" + std::to_string(trial)));
  }
}

// Joins over columns that actually hold NULL (and NaN) keys. The generated
// datasets never null their FK columns, so this hand-built schema is what
// exercises the build-side filtering and probe-side skip in the hash join —
// differentially against the naive reference, which rejects null keys
// explicitly and rejects NaN via Value's NaN != NaN.
TEST(EvalPropertyTest, NullAndNanJoinKeysMatchNaiveEvaluator) {
  Database db("nulljoin");
  ASSERT_TRUE(db.AddTable(Schema("l", {{"k", ColumnType::kInt},
                                       {"d", ColumnType::kDouble},
                                       {"tag", ColumnType::kString}}))
                  .ok());
  ASSERT_TRUE(db.AddTable(Schema("r", {{"k", ColumnType::kInt},
                                       {"d", ColumnType::kDouble},
                                       {"name", ColumnType::kString}}))
                  .ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TableAppender l = db.AppenderFor("l");
  l.Begin().Int(1).Real(1.5).Str("a").Commit();
  l.Begin().Null().Real(nan).Str("b").Commit();   // null int key, NaN double
  l.Begin().Int(0).Real(0.0).Str("c").Commit();   // 0: the null placeholder
  l.Begin().Int(2).Null().Str("d").Commit();
  TableAppender r = db.AppenderFor("r");
  r.Begin().Int(1).Real(1.5).Str("x").Commit();
  r.Begin().Null().Real(nan).Str("y").Commit();   // must match NOTHING
  r.Begin().Int(0).Real(-0.0).Str("z").Commit();  // -0.0 joins 0.0
  r.Begin().Int(2).Null().Str("w").Commit();
  db.FreezeStringOrder();

  const struct {
    const char* key;
    std::vector<std::string> want;
  } kCases[] = {
      // On k: b's null int key joins nothing (even though r.b is also
      // null), c's key is the literal 0 a null cell stores as placeholder
      // and must join normally, and d's key is a perfectly valid 2 — its
      // null lives in another column and must not disqualify the row.
      {"k", {"(a, x)", "(c, z)", "(d, w)"}},
      // On d: b's NaN key and d's null key both join nothing; 0.0 == -0.0.
      {"d", {"(a, x)", "(c, z)"}},
  };
  for (const auto& kase : kCases) {
    SpjBlock b;
    b.tables = {"l", "r"};
    b.joins.push_back({{"l", kase.key}, {"r", kase.key}});
    b.projections = {{"l", "tag"}, {"r", "name"}};
    Query q;
    q.id = std::string("nulljoin_") + kase.key;
    q.blocks.push_back(b);
    CheckAgainstReference(db, q);
    // Sanity on the semantics themselves, not just naive-agreement.
    auto res = Evaluate(db, q);
    ASSERT_TRUE(res.ok());
    std::vector<std::string> got;
    for (const auto& t : res->tuples) got.push_back(OutputTupleToString(t));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, kase.want) << q.ToSql();
  }
}

TEST(EvalPropertyTest, DisconnectedQueryCrossProductMatches) {
  // No join predicate between the two tables: the evaluator takes the
  // cross-product path (with its capped, saturating reservation). Checked
  // against the naive reference and across every pool size like the rest.
  GeneratedDb data = SmallImdb();
  SpjBlock b;
  b.tables = {"companies", "actors"};
  b.projections = {{"companies", "name"}, {"actors", "name"}};
  Query q;
  q.id = "cross";
  q.blocks.push_back(b);
  CheckAgainstReference(*data.db, q);

  // Same with a selection on each side, so the cross product runs over
  // filtered survivor lists.
  SpjBlock bs = b;
  bs.selections.push_back(
      {{"actors", "age"}, CompareOp::kGt, Value(int64_t{40})});
  Query qs;
  qs.id = "cross_sel";
  qs.blocks.push_back(bs);
  CheckAgainstReference(*data.db, qs);
}

TEST(EvalPropertyTest, LineageEqualsProvenanceVariables) {
  GeneratedDb data = SmallImdb();
  QueryGenerator gen(data.db.get(), data.graph, {}, 77);
  for (int trial = 0; trial < 20; ++trial) {
    const Query q = gen.Generate("l" + std::to_string(trial));
    auto result = Evaluate(*data.db, q);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < result->tuples.size(); ++i) {
      EXPECT_EQ(result->LineageOf(i), result->ProvenanceOf(i).Variables());
    }
  }
}

TEST(EvalPropertyTest, EveryClauseJoinsOneFactPerTable) {
  GeneratedDb data = SmallImdb();
  QueryGenConfig cfg;
  cfg.max_tables = 3;
  QueryGenerator gen(data.db.get(), data.graph, cfg, 31);
  for (int trial = 0; trial < 20; ++trial) {
    const Query q = gen.Generate("c" + std::to_string(trial));
    if (q.blocks.size() != 1) continue;
    auto result = Evaluate(*data.db, q);
    ASSERT_TRUE(result.ok());
    const size_t expected = q.blocks[0].tables.size();
    for (const auto& prov : result->provenance) {
      for (const auto& clause : prov.clauses()) {
        EXPECT_EQ(clause.size(), expected) << q.ToSql();
      }
    }
  }
}

// Instrumentation must be observational only: attaching a MetricsRegistry
// may not change a single output byte, at any thread count, and the
// deterministic eval.* counters must agree across thread counts (the
// metric-resolution discipline in DESIGN.md Â§9 — counts are per scan /
// per join step / per block, never per worker).
TEST(EvalPropertyTest, MetricsAreObservationalOnly) {
  GeneratedDb data = SmallImdb();
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 555);

  const char* const kDeterministic[] = {
      "eval.queries",          "eval.blocks",
      "eval.rows_scanned",     "eval.sel_rank_path",
      "eval.sel_text_fallback", "eval.morsels",
      "eval.join.index_builds", "eval.join.cross_products",
      "eval.join.rows_probed", "eval.join.probe_batches",
      "eval.join.output_rows", "eval.output_tuples",
  };

  for (int trial = 0; trial < 20; ++trial) {
    const Query q = gen.Generate("m" + std::to_string(trial));
    const auto plain = Evaluate(*data.db, q);
    ASSERT_TRUE(plain.ok()) << q.ToSql();

    // Serial, instrumented: byte-identical to the uninstrumented run.
    MetricsRegistry serial_registry;
    auto serial = Evaluate(*data.db, q,
                           EvalOptions().WithMetrics(&serial_registry));
    ASSERT_TRUE(serial.ok()) << q.ToSql();
    ASSERT_EQ(serial->tuples, plain->tuples) << q.ToSql();
    EXPECT_EQ(serial->index, plain->index) << q.ToSql();
    EXPECT_EQ(serial->lineages, plain->lineages) << q.ToSql();
    ASSERT_EQ(serial->provenance.size(), plain->provenance.size());
    for (size_t i = 0; i < plain->provenance.size(); ++i) {
      EXPECT_EQ(serial->provenance[i].clauses(),
                plain->provenance[i].clauses())
          << q.ToSql() << " tuple " << i;
    }

    // Parallel at 1, 2 and 8 threads, instrumented: still byte-identical,
    // and the deterministic counters agree across all three pools.
    std::vector<uint64_t> baseline;
    for (ThreadPool* pool : SharedPools()) {
      MetricsRegistry registry;
      auto got = Evaluate(*data.db, q,
                          EvalOptions()
                              .WithPool(pool)
                              .WithMorselRows(3)
                              .WithMinParallelRows(1)
                              .WithMetrics(&registry));
      ASSERT_TRUE(got.ok()) << q.ToSql();
      const std::string ctx =
          q.ToSql() + " threads=" + std::to_string(pool->num_threads());
      ASSERT_EQ(got->tuples, plain->tuples) << ctx;
      EXPECT_EQ(got->index, plain->index) << ctx;
      EXPECT_EQ(got->lineages, plain->lineages) << ctx;
      ASSERT_EQ(got->provenance.size(), plain->provenance.size()) << ctx;
      for (size_t i = 0; i < plain->provenance.size(); ++i) {
        EXPECT_EQ(got->provenance[i].clauses(),
                  plain->provenance[i].clauses())
            << ctx << " tuple " << i;
      }

      std::vector<uint64_t> counts;
      for (const char* name : kDeterministic) {
        counts.push_back(registry.CounterValue(name));
      }
      if (baseline.empty()) {
        baseline = counts;
        EXPECT_GT(registry.CounterValue("eval.queries"), 0u) << ctx;
      } else {
        for (size_t i = 0; i < counts.size(); ++i) {
          EXPECT_EQ(counts[i], baseline[i])
              << ctx << " counter " << kDeterministic[i];
        }
      }
    }
  }
}

}  // namespace
}  // namespace lshap
