// Property tests: the hash-join evaluator must agree exactly — tuples AND
// provenance — with a naive cartesian-product reference evaluator, on random
// queries over a small random database.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "query/generator.h"

namespace lshap {
namespace {

// Reference evaluation of one SPJ block by full cartesian enumeration.
void NaiveBlock(const Database& db, const SpjBlock& block,
                std::map<OutputTuple, std::vector<Clause>>& out) {
  std::vector<const Table*> tables;
  for (const auto& name : block.tables) {
    tables.push_back(db.FindTable(name).value());
  }
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < block.tables.size(); ++i) pos[block.tables[i]] = i;

  std::vector<size_t> idx(tables.size(), 0);
  for (;;) {
    // Check selections.
    bool pass = true;
    for (const auto& sel : block.selections) {
      const size_t t = pos.at(sel.column.table);
      const size_t c =
          tables[t]->schema().ColumnIndex(sel.column.column).value();
      if (!MatchesPredicate(tables[t]->row(idx[t])[c], sel.op, sel.literal)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      for (const auto& join : block.joins) {
        const size_t lt = pos.at(join.left.table);
        const size_t lc =
            tables[lt]->schema().ColumnIndex(join.left.column).value();
        const size_t rt = pos.at(join.right.table);
        const size_t rc =
            tables[rt]->schema().ColumnIndex(join.right.column).value();
        if (tables[lt]->row(idx[lt])[lc] != tables[rt]->row(idx[rt])[rc]) {
          pass = false;
          break;
        }
      }
    }
    if (pass) {
      OutputTuple tuple;
      for (const auto& proj : block.projections) {
        const size_t t = pos.at(proj.table);
        const size_t c =
            tables[t]->schema().ColumnIndex(proj.column).value();
        tuple.push_back(tables[t]->row(idx[t])[c]);
      }
      Clause clause;
      for (size_t t = 0; t < tables.size(); ++t) {
        clause.push_back(tables[t]->fact_id(idx[t]));
      }
      std::sort(clause.begin(), clause.end());
      out[tuple].push_back(std::move(clause));
    }
    // Odometer increment.
    size_t t = 0;
    for (; t < tables.size(); ++t) {
      if (++idx[t] < tables[t]->num_rows()) break;
      idx[t] = 0;
    }
    if (t == tables.size()) break;
  }
}

// A small database so that cartesian products stay tractable.
GeneratedDb SmallImdb() {
  ImdbConfig cfg;
  cfg.seed = 99;
  cfg.num_companies = 5;
  cfg.num_actors = 8;
  cfg.num_movies = 10;
  cfg.num_roles = 20;
  return MakeImdbDatabase(cfg);
}

TEST(EvalPropertyTest, MatchesNaiveEvaluatorOnRandomQueries) {
  GeneratedDb data = SmallImdb();
  QueryGenConfig gen_cfg;
  gen_cfg.max_tables = 3;
  gen_cfg.union_prob = 0.3;
  QueryGenerator gen(data.db.get(), data.graph, gen_cfg, 1234);

  size_t nonempty = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Query q = gen.Generate("p" + std::to_string(trial));
    auto got = Evaluate(*data.db, q);
    ASSERT_TRUE(got.ok()) << q.ToSql();

    std::map<OutputTuple, std::vector<Clause>> want;
    for (const auto& block : q.blocks) NaiveBlock(*data.db, block, want);

    ASSERT_EQ(got->tuples.size(), want.size()) << q.ToSql();
    if (!want.empty()) ++nonempty;
    for (const auto& [tuple, clauses] : want) {
      auto it = got->index.find(tuple);
      ASSERT_NE(it, got->index.end())
          << q.ToSql() << " missing " << OutputTupleToString(tuple);
      const Dnf expected(clauses);
      EXPECT_EQ(got->ProvenanceOf(it->second).clauses(), expected.clauses())
          << q.ToSql() << " tuple " << OutputTupleToString(tuple);
    }
  }
  // The generator must produce a healthy share of non-empty queries for
  // this test to mean anything.
  EXPECT_GT(nonempty, 20u);
}

TEST(EvalPropertyTest, LineageEqualsProvenanceVariables) {
  GeneratedDb data = SmallImdb();
  QueryGenerator gen(data.db.get(), data.graph, {}, 77);
  for (int trial = 0; trial < 20; ++trial) {
    const Query q = gen.Generate("l" + std::to_string(trial));
    auto result = Evaluate(*data.db, q);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < result->tuples.size(); ++i) {
      EXPECT_EQ(result->LineageOf(i), result->ProvenanceOf(i).Variables());
    }
  }
}

TEST(EvalPropertyTest, EveryClauseJoinsOneFactPerTable) {
  GeneratedDb data = SmallImdb();
  QueryGenConfig cfg;
  cfg.max_tables = 3;
  QueryGenerator gen(data.db.get(), data.graph, cfg, 31);
  for (int trial = 0; trial < 20; ++trial) {
    const Query q = gen.Generate("c" + std::to_string(trial));
    if (q.blocks.size() != 1) continue;
    auto result = Evaluate(*data.db, q);
    ASSERT_TRUE(result.ok());
    const size_t expected = q.blocks[0].tables.size();
    for (const auto& prov : result->provenance) {
      for (const auto& clause : prov.clauses()) {
        EXPECT_EQ(clause.size(), expected) << q.ToSql();
      }
    }
  }
}

}  // namespace
}  // namespace lshap
