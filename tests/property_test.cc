// Parameterized property tests: invariants that must hold across sweeps of
// random instances — Shapley axioms, metric bounds, matching optimality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metrics/ranking_metrics.h"
#include "provenance/bool_expr.h"
#include "shapley/shapley.h"
#include "similarity/hungarian.h"
#include "similarity/kendall.h"

namespace lshap {
namespace {

Dnf RandomDnf(Rng& rng, size_t num_vars, size_t num_clauses,
              size_t max_clause_len) {
  std::vector<Clause> clauses;
  for (size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    const size_t len = 1 + rng.NextBounded(max_clause_len);
    for (size_t i = 0; i < len; ++i) {
      clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
    }
    clauses.push_back(clause);
  }
  return Dnf(std::move(clauses));
}

// ---- Shapley axioms across a seed sweep ----

class ShapleyAxiomsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapleyAxiomsTest, ExactMatchesBruteForce) {
  Rng rng(GetParam());
  const size_t num_vars = 2 + rng.NextBounded(10);
  const Dnf d = RandomDnf(rng, num_vars, 1 + rng.NextBounded(5), 4);
  const auto exact = ComputeShapleyExactUnlimited(d);
  const auto brute = ComputeShapleyBrute(d).value();
  ASSERT_EQ(exact.size(), brute.size());
  for (const auto& [f, v] : brute) {
    EXPECT_NEAR(exact.at(f), v, 1e-9) << d.ToString();
  }
}

TEST_P(ShapleyAxiomsTest, EfficiencyValuesAndBounds) {
  Rng rng(GetParam() * 31 + 7);
  const Dnf d = RandomDnf(rng, 3 + rng.NextBounded(12),
                          1 + rng.NextBounded(6), 4);
  const auto v = ComputeShapleyExactUnlimited(d);
  double sum = 0.0;
  for (const auto& [f, val] : v) {
    EXPECT_GE(val, -1e-12);
    EXPECT_LE(val, 1.0 + 1e-12);
    sum += val;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ShapleyAxiomsTest, MonotoneUnderClauseAddition) {
  // Adding an extra derivation that contains fact f cannot decrease the
  // aggregate value of the facts in that clause... (not true pointwise in
  // general), but a *dummy* variable never in any clause stays at 0, and
  // the efficiency total stays 1.
  Rng rng(GetParam() * 131 + 3);
  Dnf d = RandomDnf(rng, 8, 3, 3);
  const auto before = ComputeShapleyExactUnlimited(d);
  d.AddClause({100, 101});
  const auto after = ComputeShapleyExactUnlimited(d);
  double sum = 0.0;
  for (const auto& [f, val] : after) sum += val;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(after.count(100));
  EXPECT_GT(after.at(100), 0.0);
  (void)before;
}

TEST_P(ShapleyAxiomsTest, CnfProxyAgreesOnTopFactOfReadOnce) {
  // On read-once (hub) provenance the CNF proxy must at least find the same
  // top fact as the exact engine.
  Rng rng(GetParam() * 17 + 29);
  std::vector<Clause> clauses;
  FactId next = 10;
  const size_t groups = 2 + rng.NextBounded(3);
  for (FactId g = 0; g < groups; ++g) {
    const size_t members = 1 + rng.NextBounded(3);
    for (size_t m = 0; m < members; ++m) {
      clauses.push_back({0, g + 1, next++});
    }
  }
  const Dnf d(clauses);
  const auto exact = ComputeShapleyExactUnlimited(d);
  const auto proxy = ComputeCnfProxyUnlimited(d);
  EXPECT_EQ(RankByScore(exact)[0], RankByScore(proxy)[0]) << d.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyAxiomsTest,
                         ::testing::Range<uint64_t>(1, 26));

// ---- Kendall tau distance properties across universe sizes ----

class KendallPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KendallPropertyTest, BoundsSymmetryIdentity) {
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble();
      b[i] = rng.NextBool(0.3) ? a[i] : rng.NextDouble();  // inject ties
    }
    const double d_ab = KendallTauDistance(a, b);
    EXPECT_GE(d_ab, 0.0);
    EXPECT_LE(d_ab, 1.0);
    EXPECT_DOUBLE_EQ(d_ab, KendallTauDistance(b, a));
    EXPECT_DOUBLE_EQ(KendallTauDistance(a, a), 0.0);
  }
}

TEST_P(KendallPropertyTest, ReversalIsMaximalForDistinctScores) {
  const size_t n = GetParam();
  if (n < 2) return;
  std::vector<double> up(n);
  std::vector<double> down(n);
  for (size_t i = 0; i < n; ++i) {
    up[i] = static_cast<double>(i);
    down[i] = static_cast<double>(n - i);
  }
  EXPECT_DOUBLE_EQ(KendallTauDistance(up, down), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KendallPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 40));

// ---- Hungarian optimality across sizes (vs exhaustive search) ----

class HungarianPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HungarianPropertyTest, MatchesExhaustiveOptimum) {
  const size_t n = GetParam();
  Rng rng(n * 13 + 5);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::vector<double>> w(n, std::vector<double>(n));
    for (auto& row : w) {
      for (auto& v : row) v = rng.NextDouble();
    }
    const auto match = MaxWeightMatching(w);
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    double best = 0.0;
    do {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += w[i][perm[i]];
      best = std::max(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(MatchingWeight(w, match), best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

// ---- Ranking metrics across lineage sizes ----

class RankingMetricsPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RankingMetricsPropertyTest, GoldRankingIsOptimal) {
  const size_t n = GetParam();
  Rng rng(n * 3 + 11);
  for (int trial = 0; trial < 10; ++trial) {
    ShapleyValues gold;
    for (size_t i = 0; i < n; ++i) {
      gold[static_cast<FactId>(i)] = rng.NextDouble();
    }
    const auto ideal = RankByScore(gold);
    EXPECT_DOUBLE_EQ(NdcgAtK(ideal, gold, 10), 1.0);
    EXPECT_DOUBLE_EQ(PrecisionAtK(ideal, gold, 1), 1.0);
    EXPECT_DOUBLE_EQ(PrecisionAtK(ideal, gold, 5), 1.0);

    // Any permutation scores within [0, 1] and no higher than the ideal.
    std::vector<FactId> shuffled = ideal;
    rng.Shuffle(shuffled);
    const double ndcg = NdcgAtK(shuffled, gold, 10);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0 + 1e-12);
    for (size_t k : {1u, 3u, 5u}) {
      const double p = PrecisionAtK(shuffled, gold, k);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankingMetricsPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16, 40, 100));

}  // namespace
}  // namespace lshap
