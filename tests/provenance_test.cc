#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "provenance/circuit.h"
#include "provenance/compiler.h"
#include "provenance/tseytin.h"

namespace lshap {
namespace {

Dnf MakeDnf(std::vector<Clause> clauses) { return Dnf(std::move(clauses)); }

TEST(DnfTest, NormalizesClauses) {
  Dnf d({{3, 1, 2}, {2, 1, 3}});
  EXPECT_EQ(d.num_clauses(), 1u);  // duplicate after sorting
  EXPECT_EQ(d.clauses()[0], (Clause{1, 2, 3}));
}

TEST(DnfTest, VariablesSortedUnique) {
  Dnf d({{5, 2}, {2, 9}});
  EXPECT_EQ(d.Variables(), (std::vector<FactId>{2, 5, 9}));
}

TEST(DnfTest, Evaluate) {
  Dnf d({{1, 2}, {3}});
  EXPECT_TRUE(d.Evaluate({1, 2}));
  EXPECT_TRUE(d.Evaluate({3}));
  EXPECT_TRUE(d.Evaluate({1, 2, 3}));
  EXPECT_FALSE(d.Evaluate({1}));
  EXPECT_FALSE(d.Evaluate({}));
  EXPECT_FALSE(Dnf().Evaluate({1, 2, 3}));
}

TEST(DnfTest, RestrictTrueRemovesVar) {
  Dnf d({{1, 2}, {2, 3}});
  Dnf r = d.Restrict(2, true);
  EXPECT_EQ(r.num_clauses(), 2u);
  EXPECT_EQ(r.clauses()[0], (Clause{1}));
  EXPECT_EQ(r.clauses()[1], (Clause{3}));
}

TEST(DnfTest, RestrictFalseDropsClauses) {
  Dnf d({{1, 2}, {2, 3}, {4}});
  Dnf r = d.Restrict(2, false);
  EXPECT_EQ(r.num_clauses(), 1u);
  EXPECT_EQ(r.clauses()[0], (Clause{4}));
}

TEST(DnfTest, AbsorbRemovesSupersets) {
  Dnf d({{1}, {1, 2}, {3, 4}, {1, 3, 4}});
  d.Absorb();
  EXPECT_EQ(d.num_clauses(), 2u);
  EXPECT_EQ(d.clauses()[0], (Clause{1}));
  EXPECT_EQ(d.clauses()[1], (Clause{3, 4}));
}

TEST(DnfTest, ClauseComponentsSplitDisjointVars) {
  Dnf d({{1, 2}, {2, 3}, {7, 8}, {9}});
  const auto comps = ClauseComponents(d);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<size_t>{2}));
  EXPECT_EQ(comps[2], (std::vector<size_t>{3}));
}

// --- Circuit compilation: model counting must match brute-force. ---

// Total model count by brute force over the DNF's variables.
std::vector<long double> BruteCountsBySize(const Dnf& d) {
  const auto vars = d.Variables();
  const size_t n = vars.size();
  std::vector<long double> counts(n + 1, 0.0L);
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    std::vector<FactId> present;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) present.push_back(vars[i]);
    }
    if (d.Evaluate(present)) {
      counts[static_cast<size_t>(__builtin_popcountll(mask))] += 1.0L;
    }
  }
  return counts;
}

void ExpectCountsMatch(const Dnf& d) {
  DnfCompiler compiler;
  auto circuit = compiler.CompileUnlimited(d);
  const auto vars = d.Variables();
  CountVec got = ExtendCounts(circuit->CountsBySize(circuit->root()),
                              vars.size());
  const auto want = BruteCountsBySize(d);
  ASSERT_EQ(got.size(), want.size());
  for (size_t k = 0; k < want.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(got[k]), static_cast<double>(want[k]),
                1e-6)
        << "size " << k << " of " << d.ToString();
  }
}

TEST(CompilerTest, SingleClause) { ExpectCountsMatch(MakeDnf({{1, 2, 3}})); }

TEST(CompilerTest, DisjointClauses) {
  ExpectCountsMatch(MakeDnf({{1, 2}, {3, 4}}));
}

TEST(CompilerTest, SharedVariableClauses) {
  ExpectCountsMatch(MakeDnf({{1, 2}, {1, 3}, {2, 3}}));
}

TEST(CompilerTest, PaperExampleProvenance) {
  // Example 2.1: (a1 m1 c1 r1) ∨ (a1 m2 c1 r2) ∨ (a1 m3 c2 r3) with the
  // variables renamed 0..8.
  ExpectCountsMatch(MakeDnf({{0, 1, 2, 3}, {0, 4, 2, 5}, {0, 6, 7, 8}}));
}

TEST(CompilerTest, RandomMonotoneDnfs) {
  Rng rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t num_vars = 2 + rng.NextBounded(9);   // ≤ 10 vars
    const size_t num_clauses = 1 + rng.NextBounded(6);
    std::vector<Clause> clauses;
    for (size_t c = 0; c < num_clauses; ++c) {
      Clause clause;
      const size_t len = 1 + rng.NextBounded(std::min<size_t>(4, num_vars));
      for (size_t i = 0; i < len; ++i) {
        clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
      }
      clauses.push_back(clause);
    }
    ExpectCountsMatch(MakeDnf(clauses));
  }
}

TEST(CompilerTest, ForcedVariableCounts) {
  // Counts with x forced must equal brute-force counts of the restriction.
  const Dnf d = MakeDnf({{1, 2}, {2, 3}, {4}});
  DnfCompiler compiler;
  auto circuit = compiler.CompileUnlimited(d);
  const auto vars = d.Variables();  // {1,2,3,4}
  for (FactId forced : vars) {
    for (bool value : {false, true}) {
      CountVec got = ExtendCounts(
          circuit->CountsBySize(circuit->root(), forced, value),
          vars.size() - 1);
      // Brute force over remaining vars.
      std::vector<FactId> rest;
      for (FactId v : vars) {
        if (v != forced) rest.push_back(v);
      }
      std::vector<long double> want(rest.size() + 1, 0.0L);
      for (size_t mask = 0; mask < (size_t{1} << rest.size()); ++mask) {
        std::vector<FactId> present;
        for (size_t i = 0; i < rest.size(); ++i) {
          if (mask & (size_t{1} << i)) present.push_back(rest[i]);
        }
        if (value) {
          present.insert(
              std::lower_bound(present.begin(), present.end(), forced),
              forced);
        }
        if (d.Evaluate(present)) {
          want[static_cast<size_t>(__builtin_popcountll(mask))] += 1.0L;
        }
      }
      ASSERT_EQ(got.size(), want.size());
      for (size_t k = 0; k < want.size(); ++k) {
        EXPECT_NEAR(static_cast<double>(got[k]), static_cast<double>(want[k]),
                    1e-6);
      }
    }
  }
}

TEST(CircuitTest, BinomialRow) {
  const CountVec& row = BinomialRow(5);
  ASSERT_EQ(row.size(), 6u);
  EXPECT_DOUBLE_EQ(static_cast<double>(row[0]), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(row[2]), 10.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(row[5]), 1.0);
}

TEST(CircuitTest, ExtendCountsAddsFreeVariables) {
  // One satisfied assignment of zero true vars, extended by 3 free vars.
  CountVec c{1.0L};
  CountVec e = ExtendCounts(c, 3);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(static_cast<double>(e[0]), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(e[1]), 3.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(e[2]), 3.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(e[3]), 1.0);
}

// --- Tseytin ---

TEST(TseytinTest, EquisatisfiableUnderFunctionalExtension) {
  const Dnf d = MakeDnf({{0, 1}, {1, 2}});
  const CnfFormula cnf = TseytinFromDnf(d);
  EXPECT_EQ(cnf.num_original, 3u);
  EXPECT_EQ(cnf.num_variables, 5u);  // 3 originals + 2 clause auxiliaries
  // For every assignment of the originals, setting each auxiliary to its
  // defining clause's truth value must make CNF == DNF.
  const auto vars = d.Variables();
  for (size_t mask = 0; mask < 8; ++mask) {
    std::vector<bool> assignment(cnf.num_variables, false);
    std::vector<FactId> present;
    for (size_t i = 0; i < 3; ++i) {
      const bool on = (mask >> i) & 1;
      assignment[i] = on;
      if (on) present.push_back(vars[i]);
    }
    for (size_t c = 0; c < d.num_clauses(); ++c) {
      bool sat = true;
      for (FactId f : d.clauses()[c]) {
        if (!std::binary_search(present.begin(), present.end(), f)) {
          sat = false;
          break;
        }
      }
      assignment[cnf.num_original + c] = sat;
    }
    EXPECT_EQ(cnf.Evaluate(assignment), d.Evaluate(present));
  }
}

}  // namespace
}  // namespace lshap
