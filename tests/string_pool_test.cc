// StringPool edge cases: interning identities, Find on missing strings,
// and the lexicographic order sidecar — rank stability across incremental
// interning + rebuild, bound queries, and prefix intervals at the pool
// extremes.
#include "relational/string_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lshap {
namespace {

TEST(StringPoolTest, EmptyStringInternsLikeAnyOther) {
  StringPool pool;
  const StringId empty = pool.Intern("");
  const StringId a = pool.Intern("a");
  EXPECT_NE(empty, a);
  EXPECT_EQ(pool.Intern(""), empty);
  EXPECT_EQ(pool.Get(empty), "");
  EXPECT_EQ(pool.Find(""), empty);

  pool.RebuildOrderIndex();
  // The empty string sorts before everything.
  EXPECT_EQ(pool.Rank(empty), 0u);
  EXPECT_EQ(pool.Rank(a), 1u);
}

TEST(StringPoolTest, DuplicateInternReturnsSameIdAndKeepsGeneration) {
  StringPool pool;
  const StringId x = pool.Intern("x");
  const uint64_t gen = pool.generation();
  pool.RebuildOrderIndex();
  ASSERT_TRUE(pool.OrderIndexFresh());
  // Re-interning an existing string must not invalidate the sidecar.
  EXPECT_EQ(pool.Intern("x"), x);
  EXPECT_EQ(pool.generation(), gen);
  EXPECT_TRUE(pool.OrderIndexFresh());
  // A genuinely new string must.
  pool.Intern("y");
  EXPECT_FALSE(pool.OrderIndexFresh());
}

TEST(StringPoolTest, FindMissingReturnsInvalid) {
  StringPool pool;
  EXPECT_EQ(pool.Find("absent"), kInvalidStringId);
  pool.Intern("present");
  EXPECT_EQ(pool.Find("absent"), kInvalidStringId);
  EXPECT_EQ(pool.Find("presen"), kInvalidStringId);  // prefixes don't match
}

TEST(StringPoolTest, EmptyPoolSidecarIsTriviallyFresh) {
  StringPool pool;
  EXPECT_TRUE(pool.OrderIndexFresh());
  pool.RebuildOrderIndex();
  EXPECT_EQ(pool.RankLowerBound("anything"), 0u);
  EXPECT_EQ(pool.RankUpperBound("anything"), 0u);
  const auto [lo, hi] = pool.PrefixRankRange("p");
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
}

TEST(StringPoolTest, RanksMatchLexicographicOrder) {
  StringPool pool;
  const std::vector<std::string> words = {"delta", "alpha", "echo",
                                          "charlie", "bravo", ""};
  std::vector<StringId> ids;
  for (const auto& w : words) ids.push_back(pool.Intern(w));
  pool.RebuildOrderIndex();

  // Rank order must agree with text order for every pair.
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = 0; j < words.size(); ++j) {
      EXPECT_EQ(pool.Rank(ids[i]) < pool.Rank(ids[j]), words[i] < words[j])
          << words[i] << " vs " << words[j];
    }
  }
  // ranks() is the same mapping, indexable by id.
  const std::vector<uint32_t>& ranks = pool.ranks();
  for (StringId id : ids) EXPECT_EQ(ranks[id], pool.Rank(id));
}

TEST(StringPoolTest, RankStabilityAcrossIncrementalInternAndRebuild) {
  StringPool pool;
  const StringId b = pool.Intern("banana");
  const StringId d = pool.Intern("date");
  pool.RebuildOrderIndex();
  EXPECT_EQ(pool.Rank(b), 0u);
  EXPECT_EQ(pool.Rank(d), 1u);

  // Interning a string that sorts between them invalidates, and the rebuild
  // shifts ranks — but ids stay stable and order stays consistent.
  const StringId c = pool.Intern("cherry");
  EXPECT_FALSE(pool.OrderIndexFresh());
  pool.RebuildOrderIndex();
  ASSERT_TRUE(pool.OrderIndexFresh());
  EXPECT_EQ(pool.Get(b), "banana");  // ids unaffected by rebuilds
  EXPECT_EQ(pool.Rank(b), 0u);
  EXPECT_EQ(pool.Rank(c), 1u);
  EXPECT_EQ(pool.Rank(d), 2u);
}

TEST(StringPoolTest, RankBoundsAtPoolExtremes) {
  StringPool pool;
  pool.Intern("m");
  pool.Intern("b");
  pool.Intern("x");
  pool.RebuildOrderIndex();  // order: b, m, x

  // Below every string / above every string.
  EXPECT_EQ(pool.RankLowerBound("a"), 0u);
  EXPECT_EQ(pool.RankUpperBound("a"), 0u);
  EXPECT_EQ(pool.RankLowerBound("z"), 3u);
  EXPECT_EQ(pool.RankUpperBound("z"), 3u);
  // Exact hits: lower bound is the hit's rank, upper bound is one past.
  EXPECT_EQ(pool.RankLowerBound("b"), 0u);
  EXPECT_EQ(pool.RankUpperBound("b"), 1u);
  EXPECT_EQ(pool.RankLowerBound("x"), 2u);
  EXPECT_EQ(pool.RankUpperBound("x"), 3u);
}

TEST(StringPoolTest, PrefixIntervalBounds) {
  StringPool pool;
  const std::vector<std::string> words = {"app",    "apple", "applesauce",
                                          "apricot", "banana", "ap"};
  for (const auto& w : words) pool.Intern(w);
  pool.RebuildOrderIndex();
  // Sorted: ap, app, apple, applesauce, apricot, banana.

  auto range = pool.PrefixRankRange("app");
  EXPECT_EQ(range.first, 1u);   // "ap" is shorter than the prefix: outside
  EXPECT_EQ(range.second, 4u);  // app, apple, applesauce
  range = pool.PrefixRankRange("ap");
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.second, 5u);  // everything but banana
  range = pool.PrefixRankRange("apple");
  EXPECT_EQ(range.first, 2u);
  EXPECT_EQ(range.second, 4u);  // apple, applesauce
  // The empty prefix covers the whole pool.
  range = pool.PrefixRankRange("");
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.second, 6u);
  // A prefix matching nothing lands on an empty interval at its sort
  // position, at either extreme and in the middle.
  range = pool.PrefixRankRange("aa");
  EXPECT_EQ(range.first, range.second);
  range = pool.PrefixRankRange("az");
  EXPECT_EQ(range.first, range.second);
  range = pool.PrefixRankRange("zzz");
  EXPECT_EQ(range.first, 6u);
  EXPECT_EQ(range.second, 6u);
}

// Cross-check every bound query against a brute-force scan on a pool with
// duplicate-ish clustered words, including at the extremes.
TEST(StringPoolTest, BoundsAgreeWithBruteForce) {
  StringPool pool;
  std::vector<std::string> words;
  for (const char* stem : {"ab", "abc", "abd", "b", "ba", "bb", "z"}) {
    for (int i = 0; i < 3; ++i) {
      words.push_back(std::string(stem) + std::string(static_cast<size_t>(i),
                                                      'x'));
    }
  }
  for (const auto& w : words) pool.Intern(w);
  pool.RebuildOrderIndex();
  std::sort(words.begin(), words.end());

  for (const std::string& probe :
       {std::string(""), std::string("a"), std::string("ab"),
        std::string("abcx"), std::string("bb"), std::string("z"),
        std::string("zz")}) {
    const auto lb = static_cast<uint32_t>(
        std::lower_bound(words.begin(), words.end(), probe) - words.begin());
    const auto ub = static_cast<uint32_t>(
        std::upper_bound(words.begin(), words.end(), probe) - words.begin());
    EXPECT_EQ(pool.RankLowerBound(probe), lb) << probe;
    EXPECT_EQ(pool.RankUpperBound(probe), ub) << probe;
    uint32_t plo = 0;
    uint32_t phi = 0;
    for (const auto& w : words) {
      if (w < probe || (w.compare(0, probe.size(), probe) == 0)) ++phi;
      if (w < probe && w.compare(0, probe.size(), probe) != 0) ++plo;
    }
    const auto got = pool.PrefixRankRange(probe);
    EXPECT_EQ(got.first, plo) << probe;
    EXPECT_EQ(got.second, phi) << probe;
  }
}

}  // namespace
}  // namespace lshap
