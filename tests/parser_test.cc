#include <gtest/gtest.h>

#include "datasets/academic.h"
#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "paper_fixture.h"
#include "query/generator.h"
#include "query/parser.h"

namespace lshap {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : ex_(MakePaperExample()) {}
  PaperExample ex_;
};

TEST_F(ParserTest, ParsesPaperQuery) {
  const std::string sql =
      "SELECT DISTINCT actors.name FROM movies, actors, companies, roles "
      "WHERE movies.title = roles.movie AND actors.name = roles.actor AND "
      "movies.company = companies.name AND companies.country = 'USA' AND "
      "movies.year = 2007";
  auto q = ParseQuery(*ex_.db, sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->blocks.size(), 1u);
  const SpjBlock& b = q->blocks[0];
  EXPECT_EQ(b.tables.size(), 4u);
  EXPECT_EQ(b.joins.size(), 3u);
  EXPECT_EQ(b.selections.size(), 2u);
  EXPECT_EQ(b.projections.size(), 1u);
  EXPECT_EQ(b.projections[0].ToString(), "actors.name");
  // Parsed query must be semantically identical to the fixture query.
  EXPECT_EQ(Operations(*q), Operations(ex_.q_inf));
}

TEST_F(ParserTest, ParsedQueryEvaluatesSameAsAst) {
  auto parsed = ParseQuery(*ex_.db, ex_.q_inf.ToSql());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto r1 = Evaluate(*ex_.db, ex_.q_inf);
  auto r2 = Evaluate(*ex_.db, *parsed);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->tuples.size(), r2->tuples.size());
  for (const auto& [tuple, idx] : r1->index) {
    auto it = r2->index.find(tuple);
    ASSERT_NE(it, r2->index.end());
    EXPECT_EQ(r1->ProvenanceOf(idx).clauses(),
              r2->ProvenanceOf(it->second).clauses());
  }
}

TEST_F(ParserTest, LikePrefixPattern) {
  auto q = ParseQuery(*ex_.db,
                      "SELECT DISTINCT actors.name FROM actors "
                      "WHERE actors.name LIKE 'B%'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->blocks[0].selections.size(), 1u);
  const Selection& sel = q->blocks[0].selections[0];
  EXPECT_EQ(sel.op, CompareOp::kStartsWith);
  EXPECT_EQ(sel.literal.AsString(), "B");
  auto r = Evaluate(*ex_.db, *q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tuples.size(), 1u);
  EXPECT_EQ(r->tuples[0][0].AsString(), "Bob");
}

TEST_F(ParserTest, UnionQueries) {
  auto q = ParseQuery(
      *ex_.db,
      "SELECT DISTINCT movies.title FROM movies WHERE movies.year = 2007 "
      "UNION SELECT DISTINCT movies.title FROM movies WHERE movies.year = "
      "1999");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->blocks.size(), 2u);
  auto r = Evaluate(*ex_.db, *q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 4u);
}

TEST_F(ParserTest, AllComparisonOperators) {
  const char* const conds[] = {
      "actors.age = 30",  "actors.age <> 30", "actors.age != 30",
      "actors.age < 30",  "actors.age <= 30", "actors.age > 30",
      "actors.age >= 30",
  };
  const CompareOp want[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kNe,
                            CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                            CompareOp::kGe};
  for (size_t i = 0; i < std::size(conds); ++i) {
    auto q = ParseQuery(*ex_.db,
                        std::string("SELECT DISTINCT actors.name FROM actors "
                                    "WHERE ") +
                            conds[i]);
    ASSERT_TRUE(q.ok()) << conds[i] << ": " << q.status().ToString();
    EXPECT_EQ(q->blocks[0].selections[0].op, want[i]) << conds[i];
  }
}

TEST_F(ParserTest, StringEscapes) {
  auto q = ParseQuery(*ex_.db,
                      "SELECT DISTINCT movies.title FROM movies "
                      "WHERE movies.title = 'O''Brien'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->blocks[0].selections[0].literal.AsString(), "O'Brien");
}

TEST_F(ParserTest, NegativeAndFloatLiterals) {
  auto q = ParseQuery(*ex_.db,
                      "SELECT DISTINCT actors.name FROM actors "
                      "WHERE actors.age > -5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->blocks[0].selections[0].literal.AsInt(), -5);

  auto f = ParseQuery(*ex_.db,
                      "SELECT DISTINCT actors.name FROM actors "
                      "WHERE actors.age > 29.5");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_DOUBLE_EQ(f->blocks[0].selections[0].literal.AsDouble(), 29.5);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery(*ex_.db,
                      "select distinct actors.name from actors where "
                      "actors.age > 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(ParserTest, ErrorsAreStatuses) {
  // Unknown table.
  EXPECT_FALSE(ParseQuery(*ex_.db, "SELECT DISTINCT foo.bar FROM foo").ok());
  // Unknown column.
  EXPECT_FALSE(
      ParseQuery(*ex_.db, "SELECT DISTINCT actors.height FROM actors").ok());
  // Unqualified column.
  EXPECT_FALSE(ParseQuery(*ex_.db, "SELECT DISTINCT name FROM actors").ok());
  // Missing FROM.
  EXPECT_FALSE(ParseQuery(*ex_.db, "SELECT DISTINCT actors.name").ok());
  // Non-equi column comparison.
  EXPECT_FALSE(ParseQuery(*ex_.db,
                          "SELECT DISTINCT actors.name FROM actors, roles "
                          "WHERE actors.name < roles.actor")
                   .ok());
  // Infix LIKE without prefix pattern.
  EXPECT_FALSE(ParseQuery(*ex_.db,
                          "SELECT DISTINCT actors.name FROM actors WHERE "
                          "actors.name LIKE '%b%'")
                   .ok());
  // Unterminated string.
  EXPECT_FALSE(ParseQuery(*ex_.db,
                          "SELECT DISTINCT actors.name FROM actors WHERE "
                          "actors.name = 'oops")
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseQuery(*ex_.db, "SELECT DISTINCT actors.name FROM actors extra")
          .ok());
}

// The round-trip property: every generator query must survive
// ToSql → ParseQuery with identical semantics (operations and results).
TEST(ParserRoundTripTest, GeneratorQueriesRoundTrip) {
  for (int which = 0; which < 2; ++which) {
    GeneratedDb data =
        which == 0 ? MakeImdbDatabase({}) : MakeAcademicDatabase({});
    QueryGenConfig cfg;
    cfg.union_prob = 0.3;
    QueryGenerator gen(data.db.get(), data.graph, cfg, 555 + which);
    for (int i = 0; i < 60; ++i) {
      const Query q = gen.Generate("rt" + std::to_string(i));
      auto parsed = ParseQuery(*data.db, q.ToSql());
      ASSERT_TRUE(parsed.ok()) << q.ToSql() << "\n"
                               << parsed.status().ToString();
      EXPECT_EQ(parsed->ToSql(), q.ToSql());
      EXPECT_EQ(Operations(*parsed), Operations(q));
    }
  }
}

}  // namespace
}  // namespace lshap
