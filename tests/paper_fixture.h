#ifndef LSHAP_TESTS_PAPER_FIXTURE_H_
#define LSHAP_TESTS_PAPER_FIXTURE_H_

#include <memory>

#include "common/check.h"
#include "query/ast.h"
#include "relational/database.h"

namespace lshap {

// The movie database of the paper's running example (Figure 1), sized so
// that q_inf's output tuple "Alice" has exactly the provenance of
// Example 2.1:  (a1 m1 c1 r1) ∨ (a1 m2 c1 r2) ∨ (a1 m3 c2 r3).
struct PaperExample {
  std::unique_ptr<Database> db;
  // Fact ids, named after the paper's annotations.
  FactId c1, c2, c3;        // Universal, Warner, Gaumont
  FactId a1, a2, a3;        // Alice, Bob, David
  FactId m1, m2, m3, m4;    // Superman, Batman, Spiderman, OldFilm
  FactId r1, r2, r3, r4, r5;

  Query q_inf;  // Figure 2a: actors in 2007 movies of American companies
  Query q_1;    // Figure 2b-like: titles of 2007 American movies with Alice
};

inline PaperExample MakePaperExample() {
  PaperExample ex;
  ex.db = std::make_unique<Database>("paper");
  Database& db = *ex.db;

  LSHAP_CHECK(db.AddTable(Schema("companies",
                                 {{"name", ColumnType::kString},
                                  {"country", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db.AddTable(Schema("actors", {{"name", ColumnType::kString},
                                            {"age", ColumnType::kInt}}))
                  .ok());
  LSHAP_CHECK(db.AddTable(Schema("movies",
                                 {{"title", ColumnType::kString},
                                  {"year", ColumnType::kInt},
                                  {"company", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db.AddTable(Schema("roles", {{"movie", ColumnType::kString},
                                           {"actor", ColumnType::kString}}))
                  .ok());

  ex.c1 = *db.Insert("companies", {Value("Universal"), Value("USA")});
  ex.c2 = *db.Insert("companies", {Value("Warner"), Value("USA")});
  ex.c3 = *db.Insert("companies", {Value("Gaumont"), Value("France")});

  ex.a1 = *db.Insert("actors", {Value("Alice"), Value(int64_t{45})});
  ex.a2 = *db.Insert("actors", {Value("Bob"), Value(int64_t{30})});
  ex.a3 = *db.Insert("actors", {Value("David"), Value(int64_t{23})});

  ex.m1 = *db.Insert(
      "movies", {Value("Superman"), Value(int64_t{2007}), Value("Universal")});
  ex.m2 = *db.Insert(
      "movies", {Value("Batman"), Value(int64_t{2007}), Value("Universal")});
  ex.m3 = *db.Insert(
      "movies", {Value("Spiderman"), Value(int64_t{2007}), Value("Warner")});
  ex.m4 = *db.Insert(
      "movies", {Value("OldFilm"), Value(int64_t{1999}), Value("Gaumont")});

  ex.r1 = *db.Insert("roles", {Value("Superman"), Value("Alice")});
  ex.r2 = *db.Insert("roles", {Value("Batman"), Value("Alice")});
  ex.r3 = *db.Insert("roles", {Value("Spiderman"), Value("Alice")});
  ex.r4 = *db.Insert("roles", {Value("Superman"), Value("Bob")});
  ex.r5 = *db.Insert("roles", {Value("OldFilm"), Value("David")});

  SpjBlock block;
  block.tables = {"movies", "actors", "companies", "roles"};
  block.joins = {
      {{"movies", "title"}, {"roles", "movie"}},
      {{"actors", "name"}, {"roles", "actor"}},
      {{"movies", "company"}, {"companies", "name"}},
  };
  block.selections = {
      {{"companies", "country"}, CompareOp::kEq, Value("USA")},
      {{"movies", "year"}, CompareOp::kEq, Value(int64_t{2007})},
  };
  block.projections = {{"actors", "name"}};
  ex.q_inf.id = "q_inf";
  ex.q_inf.blocks = {block};

  // q_1: same shape but projects the movie title and pins the actor.
  SpjBlock block1 = block;
  block1.projections = {{"movies", "title"}};
  block1.selections.push_back(
      {{"actors", "name"}, CompareOp::kEq, Value("Alice")});
  ex.q_1.id = "q_1";
  ex.q_1.blocks = {block1};

  return ex;
}

}  // namespace lshap

#endif  // LSHAP_TESTS_PAPER_FIXTURE_H_
