#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace lshap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  size_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // With s=1.2 the first 10 of 100 items carry well over half the mass.
  EXPECT_GT(low, static_cast<size_t>(n) / 2);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("SELECT Name"), "select name");
  EXPECT_TRUE(StartsWith("Warner Home Video", "Warner"));
  EXPECT_FALSE(StartsWith("NBC", "Warner"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 0.125), "0.125");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Schedule([&] { count.fetch_add(1); });
  pool.Wait();
  pool.Schedule([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ScheduleAfterShutdownIsCheckedError) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.Schedule([&] { count.fetch_add(1); }).ok());
  pool.Shutdown();
  const Status s = pool.Schedule([&] { count.fetch_add(1); });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(count.load(), 1);  // scheduled work drained, rejected work never ran
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_FALSE(pool.Schedule([] {}).ok());
}

TEST(ThreadPoolTest, CancellableParallelForStopsOnError) {
  ThreadPool pool(4);
  CancelToken cancel;
  std::atomic<size_t> ran{0};
  const size_t n = 10000;
  const Status s = ParallelFor(pool, n, cancel, [&](size_t i) -> Status {
    if (i == 5) return Status::ResourceExhausted("poisoned item");
    ran.fetch_add(1);
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(cancel.cancelled());
  // The wave stopped early: nowhere near all items ran, and Wait() returned
  // rather than wedging on the poisoned wave.
  EXPECT_LT(ran.load(), n);
}

TEST(ThreadPoolTest, CancellableParallelForHonorsExternalCancel) {
  ThreadPool pool(2);
  CancelToken cancel;
  cancel.RequestCancel();
  std::atomic<size_t> ran{0};
  const Status s = ParallelFor(pool, 100, cancel, [&](size_t) -> Status {
    ran.fetch_add(1);
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolTest, CancellableParallelForOkWhenAllSucceed) {
  ThreadPool pool(4);
  CancelToken cancel;
  std::vector<std::atomic<int>> hits(513);
  const Status s = ParallelFor(pool, hits.size(), cancel,
                               [&](size_t i) -> Status {
                                 hits[i].fetch_add(1);
                                 return Status::Ok();
                               });
  EXPECT_TRUE(s.ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Stress: many overlapping waves (infallible + cancellable, some poisoned)
// with a concurrent Wait()er hammering the pool from another thread. Run
// under the LSHAP_SANITIZE config (tools/check.sh) this shakes out data
// races and lost-wakeup bugs in the queue/in_flight accounting.
TEST(ThreadPoolTest, StressWavesWithConcurrentWait) {
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    while (!stop.load()) pool.Wait();
  });
  std::atomic<size_t> total{0};
  for (int wave = 0; wave < 50; ++wave) {
    ParallelFor(pool, 97, [&](size_t) { total.fetch_add(1); });
    CancelToken cancel;
    const int poison = wave % 7;
    const Status s =
        ParallelFor(pool, 97, cancel, [&](size_t i) -> Status {
          total.fetch_add(1);
          if (poison == 0 && i == 13) {
            return Status::ResourceExhausted("stress poison");
          }
          return Status::Ok();
        });
    if (poison != 0) EXPECT_TRUE(s.ok());
  }
  stop.store(true);
  pool.Wait();
  waiter.join();
  EXPECT_GE(total.load(), 50u * 97u);  // all infallible waves completed
}

}  // namespace
}  // namespace lshap
