#include <gtest/gtest.h>

#include <algorithm>

#include "eval/evaluator.h"
#include "paper_fixture.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

TEST(PredicateTest, NumericComparisons) {
  EXPECT_TRUE(MatchesPredicate(Value(int64_t{2007}), CompareOp::kEq,
                               Value(int64_t{2007})));
  EXPECT_FALSE(MatchesPredicate(Value(int64_t{1999}), CompareOp::kEq,
                                Value(int64_t{2007})));
  EXPECT_TRUE(MatchesPredicate(Value(int64_t{5}), CompareOp::kLt,
                               Value(int64_t{9})));
  EXPECT_TRUE(MatchesPredicate(Value(3.5), CompareOp::kGe, Value(int64_t{3})));
  EXPECT_TRUE(MatchesPredicate(Value(int64_t{4}), CompareOp::kNe,
                               Value(int64_t{5})));
}

TEST(PredicateTest, StringComparisons) {
  EXPECT_TRUE(MatchesPredicate(Value("USA"), CompareOp::kEq, Value("USA")));
  EXPECT_TRUE(
      MatchesPredicate(Value("Baron"), CompareOp::kStartsWith, Value("B")));
  EXPECT_FALSE(
      MatchesPredicate(Value("NBC"), CompareOp::kStartsWith, Value("B")));
  EXPECT_TRUE(MatchesPredicate(Value("abc"), CompareOp::kLt, Value("abd")));
}

TEST(PredicateTest, TypeMismatchNeverMatches) {
  EXPECT_FALSE(MatchesPredicate(Value("7"), CompareOp::kEq, Value(int64_t{7})));
  EXPECT_FALSE(MatchesPredicate(Value(), CompareOp::kEq, Value(int64_t{7})));
  EXPECT_FALSE(
      MatchesPredicate(Value(int64_t{7}), CompareOp::kStartsWith, Value("7")));
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : ex_(MakePaperExample()) {}
  PaperExample ex_;
};

TEST_F(EvalTest, QInfOutputsAliceAndBob) {
  auto result = Evaluate(*ex_.db, ex_.q_inf);
  ASSERT_TRUE(result.ok());
  // 2007 + USA movies: Superman, Batman, Spiderman. Actors: Alice (all
  // three), Bob (Superman). David only acted in the 1999 French movie.
  ASSERT_EQ(result->tuples.size(), 2u);
  EXPECT_TRUE(result->index.count({Value("Alice")}));
  EXPECT_TRUE(result->index.count({Value("Bob")}));
}

// Example 2.1: Alice's provenance and lineage.
TEST_F(EvalTest, AliceProvenanceMatchesExample21) {
  auto result = Evaluate(*ex_.db, ex_.q_inf);
  ASSERT_TRUE(result.ok());
  const size_t alice = result->index.at({Value("Alice")});
  const Dnf& prov = result->ProvenanceOf(alice);
  ASSERT_EQ(prov.num_clauses(), 3u);

  std::vector<Clause> want = {
      {ex_.a1, ex_.m1, ex_.c1, ex_.r1},
      {ex_.a1, ex_.m2, ex_.c1, ex_.r2},
      {ex_.a1, ex_.m3, ex_.c2, ex_.r3},
  };
  for (auto& c : want) std::sort(c.begin(), c.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(prov.clauses(), want);

  // Lineage = the 9 distinct facts.
  std::vector<FactId> lineage = result->LineageOf(alice);
  EXPECT_EQ(lineage.size(), 9u);
}

// End-to-end: evaluator provenance + exact Shapley reproduces Example 2.2.
TEST_F(EvalTest, AliceShapleyMatchesExample22) {
  auto result = Evaluate(*ex_.db, ex_.q_inf);
  ASSERT_TRUE(result.ok());
  const size_t alice = result->index.at({Value("Alice")});
  const auto v = ComputeShapleyExactUnlimited(result->ProvenanceOf(alice));
  EXPECT_NEAR(v.at(ex_.c2), 19.0 / 252.0, 1e-12);
  EXPECT_NEAR(v.at(ex_.c1), 10.0 / 63.0, 1e-12);
}

TEST_F(EvalTest, Q1ProjectsMovieTitles) {
  auto result = Evaluate(*ex_.db, ex_.q_1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples.size(), 3u);
  EXPECT_TRUE(result->index.count({Value("Superman")}));
  EXPECT_TRUE(result->index.count({Value("Batman")}));
  EXPECT_TRUE(result->index.count({Value("Spiderman")}));
}

TEST_F(EvalTest, UnionMergesProvenance) {
  Query u = ex_.q_inf;
  u.blocks.push_back(ex_.q_inf.blocks[0]);  // self-union: same provenance
  auto once = Evaluate(*ex_.db, ex_.q_inf);
  auto twice = Evaluate(*ex_.db, u);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  ASSERT_EQ(once->tuples.size(), twice->tuples.size());
  const size_t a1 = once->index.at({Value("Alice")});
  const size_t a2 = twice->index.at({Value("Alice")});
  EXPECT_EQ(once->ProvenanceOf(a1).clauses(),
            twice->ProvenanceOf(a2).clauses());
}

TEST_F(EvalTest, UnionOfDisjointFiltersAddsTuples) {
  // 2007 movies UNION 1999 movies (projection: title).
  SpjBlock b2007;
  b2007.tables = {"movies"};
  b2007.selections = {{{"movies", "year"}, CompareOp::kEq,
                       Value(int64_t{2007})}};
  b2007.projections = {{"movies", "title"}};
  SpjBlock b1999 = b2007;
  b1999.selections[0].literal = Value(int64_t{1999});
  Query u;
  u.id = "u";
  u.blocks = {b2007, b1999};
  auto result = Evaluate(*ex_.db, u);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 4u);
  EXPECT_TRUE(result->index.count({Value("OldFilm")}));
}

TEST_F(EvalTest, EmptyResultIsOk) {
  Query q = ex_.q_inf;
  q.blocks[0].selections[1].literal = Value(int64_t{1800});
  auto result = Evaluate(*ex_.db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
}

TEST_F(EvalTest, ErrorsOnUnknownTable) {
  Query q = ex_.q_inf;
  q.blocks[0].tables.push_back("nonexistent");
  EXPECT_FALSE(Evaluate(*ex_.db, q).ok());
}

TEST_F(EvalTest, ErrorsOnUnknownColumn) {
  Query q = ex_.q_inf;
  q.blocks[0].selections.push_back(
      {{"movies", "budget"}, CompareOp::kEq, Value(int64_t{1})});
  EXPECT_FALSE(Evaluate(*ex_.db, q).ok());
}

TEST_F(EvalTest, ErrorsOnSelfJoin) {
  Query q = ex_.q_inf;
  q.blocks[0].tables.push_back("movies");
  EXPECT_FALSE(Evaluate(*ex_.db, q).ok());
}

TEST_F(EvalTest, ErrorsOnPredicateOverUnjoinedTable) {
  SpjBlock b;
  b.tables = {"movies"};
  b.projections = {{"movies", "title"}};
  b.selections = {{{"actors", "age"}, CompareOp::kGt, Value(int64_t{20})}};
  Query q;
  q.id = "bad";
  q.blocks = {b};
  EXPECT_FALSE(Evaluate(*ex_.db, q).ok());
}

TEST_F(EvalTest, SingleTableScanWithProjectionDedup) {
  SpjBlock b;
  b.tables = {"movies"};
  b.projections = {{"movies", "year"}};
  Query q;
  q.id = "years";
  q.blocks = {b};
  auto result = Evaluate(*ex_.db, q);
  ASSERT_TRUE(result.ok());
  // Years 2007 (three movies) and 1999 → two distinct tuples, and the 2007
  // tuple's provenance must have three single-fact clauses.
  ASSERT_EQ(result->tuples.size(), 2u);
  const size_t y2007 = result->index.at({Value(int64_t{2007})});
  EXPECT_EQ(result->ProvenanceOf(y2007).num_clauses(), 3u);
  for (const auto& c : result->ProvenanceOf(y2007).clauses()) {
    EXPECT_EQ(c.size(), 1u);
  }
}

}  // namespace
}  // namespace lshap
