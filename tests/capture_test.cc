// Tests of the evaluator's provenance-capture modes.
#include <gtest/gtest.h>

#include "datasets/imdb.h"
#include "eval/evaluator.h"
#include "paper_fixture.h"
#include "query/generator.h"

namespace lshap {
namespace {

TEST(CaptureTest, TuplesIdenticalAcrossModes) {
  PaperExample ex = MakePaperExample();
  auto full = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kFull);
  auto lineage = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kLineageOnly);
  auto none = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kNone);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lineage.ok());
  ASSERT_TRUE(none.ok());
  ASSERT_EQ(full->tuples.size(), lineage->tuples.size());
  ASSERT_EQ(full->tuples.size(), none->tuples.size());
  for (const auto& [tuple, idx] : full->index) {
    EXPECT_TRUE(lineage->index.count(tuple));
    EXPECT_TRUE(none->index.count(tuple));
  }
}

TEST(CaptureTest, LineageOnlyMatchesFullLineage) {
  PaperExample ex = MakePaperExample();
  auto full = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kFull);
  auto lineage = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kLineageOnly);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lineage.ok());
  for (const auto& [tuple, idx] : full->index) {
    const size_t lidx = lineage->index.at(tuple);
    EXPECT_EQ(full->LineageOf(idx), lineage->LineageOf(lidx))
        << OutputTupleToString(tuple);
  }
}

TEST(CaptureTest, StorageShapePerMode) {
  PaperExample ex = MakePaperExample();
  auto full = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kFull);
  auto lineage = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kLineageOnly);
  auto none = Evaluate(*ex.db, ex.q_inf, ProvenanceCapture::kNone);
  EXPECT_EQ(full->provenance.size(), full->tuples.size());
  EXPECT_EQ(full->lineages.size(), full->tuples.size());
  EXPECT_TRUE(lineage->provenance.empty());
  EXPECT_EQ(lineage->lineages.size(), lineage->tuples.size());
  EXPECT_TRUE(none->provenance.empty());
  EXPECT_TRUE(none->lineages.empty());
}

TEST(CaptureTest, PropertyLineageAgreesOnRandomQueries) {
  GeneratedDb data = MakeImdbDatabase({});
  QueryGenConfig cfg;
  cfg.max_tables = 3;
  cfg.union_prob = 0.25;
  QueryGenerator gen(data.db.get(), data.graph, cfg, 909);
  for (int trial = 0; trial < 30; ++trial) {
    const Query q = gen.Generate("cap" + std::to_string(trial));
    auto full = Evaluate(*data.db, q, ProvenanceCapture::kFull);
    auto lineage = Evaluate(*data.db, q, ProvenanceCapture::kLineageOnly);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(lineage.ok());
    ASSERT_EQ(full->tuples.size(), lineage->tuples.size()) << q.ToSql();
    for (const auto& [tuple, idx] : full->index) {
      const size_t lidx = lineage->index.at(tuple);
      EXPECT_EQ(full->LineageOf(idx), lineage->LineageOf(lidx)) << q.ToSql();
    }
  }
}

}  // namespace
}  // namespace lshap
