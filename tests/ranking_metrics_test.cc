#include <gtest/gtest.h>

#include <cmath>

#include "metrics/ranking_metrics.h"

namespace lshap {
namespace {

TEST(NdcgTest, PerfectRankingScoresOne) {
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.2}};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 3}, gold, 10), 1.0);
}

TEST(NdcgTest, WorstRankingScoresBelowOne) {
  ShapleyValues gold = {{1, 0.9}, {2, 0.05}, {3, 0.05}};
  const double best = NdcgAtK({1, 2, 3}, gold, 10);
  const double worst = NdcgAtK({3, 2, 1}, gold, 10);
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_LT(worst, best);
  EXPECT_GT(worst, 0.0);
}

TEST(NdcgTest, RespectsCutoff) {
  // Perfect in the top-2; garbage afterwards is invisible to NDCG@2.
  ShapleyValues gold = {{1, 0.5}, {2, 0.4}, {3, 0.1}, {4, 0.0}};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 4, 3}, gold, 2), 1.0);
}

TEST(NdcgTest, ExactValueForKnownSwap) {
  // gold: a=3, b=2, c=1 (relevance). predicted order: b, a, c.
  ShapleyValues gold = {{10, 3.0}, {20, 2.0}, {30, 1.0}};
  const double dcg = 2.0 / std::log2(2) + 3.0 / std::log2(3) +
                     1.0 / std::log2(4);
  const double idcg = 3.0 / std::log2(2) + 2.0 / std::log2(3) +
                      1.0 / std::log2(4);
  EXPECT_NEAR(NdcgAtK({20, 10, 30}, gold, 10), dcg / idcg, 1e-12);
}

TEST(NdcgTest, AllZeroGoldIsVacuouslyPerfect) {
  ShapleyValues gold = {{1, 0.0}, {2, 0.0}};
  EXPECT_DOUBLE_EQ(NdcgAtK({2, 1}, gold, 10), 1.0);
}

TEST(NdcgTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, 10), 1.0);
}

TEST(NdcgTest, DuplicatedPredictionsCannotExceedOne) {
  // Regression: a prediction repeating the top fact used to earn its gain
  // once per occurrence, pushing DCG past IDCG (NDCG > 1).
  ShapleyValues gold = {{1, 0.9}, {2, 0.1}};
  const double spam = NdcgAtK({1, 1, 1, 1, 2}, gold, 10);
  EXPECT_LE(spam, 1.0);
  // The duplicate occupies rank 2 but contributes nothing, so the honest
  // ranking {1, 2} strictly beats {1, 1, 2}.
  EXPECT_LT(NdcgAtK({1, 1, 2}, gold, 10), NdcgAtK({1, 2}, gold, 10));
  // Exact value: fact 2's gain lands at rank 3 (discount log2(4)).
  const double dcg = 0.9 / std::log2(2) + 0.1 / std::log2(4);
  const double idcg = 0.9 / std::log2(2) + 0.1 / std::log2(3);
  EXPECT_NEAR(NdcgAtK({1, 1, 2}, gold, 10), dcg / idcg, 1e-12);
}

TEST(NdcgTest, AlwaysWithinUnitInterval) {
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.2}};
  const std::vector<std::vector<FactId>> rankings = {
      {1, 2, 3}, {3, 2, 1}, {1, 1, 1}, {2, 2, 3, 3, 1, 1}, {7, 8, 9}, {}};
  for (const auto& r : rankings) {
    const double v = NdcgAtK(r, gold, 10);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(PrecisionTest, PerfectTopK) {
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.15}, {4, 0.05}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, gold, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, gold, 3), 1.0);
}

TEST(PrecisionTest, SetBasedNotOrderBased) {
  // Top-3 contains the right facts in the wrong order: still 1.0.
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.15}, {4, 0.05}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 1, 2, 4}, gold, 3), 1.0);
  // But p@1 sees the wrong head.
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 1, 2, 4}, gold, 1), 0.0);
}

TEST(PrecisionTest, PartialOverlap) {
  ShapleyValues gold = {{1, 0.4}, {2, 0.3}, {3, 0.2}, {4, 0.1}};
  // predicted top-3 {1, 4, 2} vs gold top-3 {1, 2, 3}: overlap 2.
  EXPECT_NEAR(PrecisionAtK({1, 4, 2, 3}, gold, 3), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionTest, ShortListsCapDepth) {
  ShapleyValues gold = {{1, 0.7}, {2, 0.3}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2}, gold, 5), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, gold, 5), 0.0);
}

TEST(PrecisionTest, GoldTiesAtBoundaryAreOrderIndependent) {
  // Facts 2 and 3 tie exactly at the k=2 boundary. Whichever of them a
  // ranking surfaces must score the same — historically the strict-k gold
  // cutoff admitted only the tiebreak winner, so P@k depended on which
  // tied fact the prediction (or a hash-map iteration order) preferred.
  ShapleyValues gold = {{1, 0.6}, {2, 0.2}, {3, 0.2}, {4, 0.0}};
  const double with_2 = PrecisionAtK({1, 2}, gold, 2);
  const double with_3 = PrecisionAtK({1, 3}, gold, 2);
  EXPECT_DOUBLE_EQ(with_2, with_3);
  EXPECT_DOUBLE_EQ(with_2, 1.0);
  // A fact below the tied boundary is still a miss.
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 4}, gold, 2), 0.5);
}

TEST(PrecisionTest, TiedGoldIdenticalAcrossInsertionOrders) {
  // The same tied gold scores inserted in different orders (different
  // unordered_map iteration orders) must produce identical P@k for every
  // prediction.
  const std::vector<std::pair<FactId, double>> items = {
      {5, 0.25}, {9, 0.25}, {2, 0.25}, {7, 0.25}, {4, 0.0}};
  ShapleyValues forward, backward;
  for (const auto& [f, v] : items) forward[f] = v;
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    backward[it->first] = it->second;
  }
  const std::vector<std::vector<FactId>> predictions = {
      {5, 9, 2}, {2, 7, 9}, {9, 4, 5}, {4, 2, 7}};
  for (const auto& pred : predictions) {
    for (size_t k = 1; k <= 4; ++k) {
      EXPECT_DOUBLE_EQ(PrecisionAtK(pred, forward, k),
                       PrecisionAtK(pred, backward, k))
          << "k=" << k;
      EXPECT_EQ(RankByScore(forward), RankByScore(backward));
    }
  }
  // All four tied facts are equally top-2; any two of them score 1.0.
  EXPECT_DOUBLE_EQ(PrecisionAtK({7, 2}, forward, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({9, 5}, forward, 2), 1.0);
}

TEST(PrecisionTest, BoundaryExpansionKeepsUnitRange) {
  // Everything tied: the expanded gold set is the whole lineage, and P@k
  // still caps at 1.
  ShapleyValues gold = {{1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.5}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({4, 3, 2, 1}, gold, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({4, 3, 2, 1}, gold, 10), 1.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(MseTest, Basics) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 2.0}, {1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

}  // namespace
}  // namespace lshap
