#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

// Random monotone DNF over [0, num_vars).
Dnf RandomDnf(Rng& rng, size_t num_vars, size_t num_clauses,
              size_t max_clause_len) {
  std::vector<Clause> clauses;
  for (size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    const size_t len = 1 + rng.NextBounded(max_clause_len);
    for (size_t i = 0; i < len; ++i) {
      clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
    }
    clauses.push_back(clause);
  }
  return Dnf(std::move(clauses));
}

TEST(ShapleyBruteTest, SingleFact) {
  const Dnf d(std::vector<Clause>{{7}});
  const auto v = ComputeShapleyBrute(d).value();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.at(7), 1.0);
}

TEST(ShapleyBruteTest, ConjunctionSplitsEvenly) {
  const Dnf d(std::vector<Clause>{{1, 2}});
  const auto v = ComputeShapleyBrute(d).value();
  EXPECT_DOUBLE_EQ(v.at(1), 0.5);
  EXPECT_DOUBLE_EQ(v.at(2), 0.5);
}

TEST(ShapleyBruteTest, DisjunctionSplitsEvenly) {
  const Dnf d(std::vector<Clause>{{1}, {2}});
  const auto v = ComputeShapleyBrute(d).value();
  EXPECT_DOUBLE_EQ(v.at(1), 0.5);
  EXPECT_DOUBLE_EQ(v.at(2), 0.5);
}

TEST(ShapleyBruteTest, RefusesOversizedLineage) {
  // 26 independent single-fact clauses: 2^26 subset masks would be required;
  // the guard must refuse instead of CHECK-aborting on generated provenance.
  std::vector<Clause> clauses;
  for (FactId f = 0; f < 26; ++f) clauses.push_back({f});
  const auto r = ComputeShapleyBrute(Dnf(std::move(clauses)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// Example 2.2 of the paper: Shapley(q_inf, Alice, c2) = 19/252 and
// Shapley(q_inf, Alice, c1) = 10/63, over the 9-variable provenance
// (a1 m1 c1 r1) ∨ (a1 m2 c1 r2) ∨ (a1 m3 c2 r3).
TEST(ShapleyExactTest, PaperExample22) {
  const FactId a1 = 0, m1 = 1, c1 = 2, r1 = 3, m2 = 4, r2 = 5, m3 = 6,
               c2 = 7, r3 = 8;
  const Dnf d(std::vector<Clause>{{a1, m1, c1, r1}, {a1, m2, c1, r2}, {a1, m3, c2, r3}});
  const auto v = ComputeShapleyExactUnlimited(d);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_NEAR(v.at(c2), 19.0 / 252.0, 1e-12);
  EXPECT_NEAR(v.at(c1), 10.0 / 63.0, 1e-12);
  // c1 supports two derivations of Alice, c2 only one (Example 1.1).
  EXPECT_GT(v.at(c1), v.at(c2));
  // a1 appears in every clause and must dominate everything.
  for (const auto& [f, val] : v) {
    if (f != a1) {
      EXPECT_GT(v.at(a1), val);
    }
  }
}

// Efficiency: for monotone provenance satisfied by the full database and
// not by the empty one, Shapley values sum to exactly 1.
TEST(ShapleyExactTest, EfficiencyAxiom) {
  Rng rng(52);
  for (int trial = 0; trial < 40; ++trial) {
    const Dnf d = RandomDnf(rng, 2 + rng.NextBounded(8), 1 + rng.NextBounded(5), 3);
    const auto v = ComputeShapleyExactUnlimited(d);
    double sum = 0.0;
    for (const auto& [f, val] : v) sum += val;
    EXPECT_NEAR(sum, 1.0, 1e-9) << d.ToString();
  }
}

// Symmetry: variables playing interchangeable roles get equal values.
TEST(ShapleyExactTest, SymmetryAxiom) {
  const Dnf d(std::vector<Clause>{{1, 2}, {1, 3}});
  const auto v = ComputeShapleyExactUnlimited(d);
  EXPECT_NEAR(v.at(2), v.at(3), 1e-12);
  EXPECT_GT(v.at(1), v.at(2));
}

// Null players: a variable appearing only in absorbed clauses has value 0.
TEST(ShapleyExactTest, NullPlayerAxiom) {
  const Dnf d(std::vector<Clause>{{1}, {1, 9}});
  const auto v = ComputeShapleyExactUnlimited(d);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at(1), 1.0);
  EXPECT_DOUBLE_EQ(v.at(9), 0.0);
}

// The core cross-check: the circuit algorithm must agree with brute-force
// enumeration on random DNFs.
TEST(ShapleyExactTest, MatchesBruteForceOnRandomDnfs) {
  Rng rng(77);
  for (int trial = 0; trial < 80; ++trial) {
    const size_t num_vars = 2 + rng.NextBounded(11);  // ≤ 12 vars
    const Dnf d = RandomDnf(rng, num_vars, 1 + rng.NextBounded(6), 4);
    const auto exact = ComputeShapleyExactUnlimited(d);
    const auto brute = ComputeShapleyBrute(d).value();
    ASSERT_EQ(exact.size(), brute.size()) << d.ToString();
    for (const auto& [f, val] : brute) {
      EXPECT_NEAR(exact.at(f), val, 1e-9) << "var " << f << " in "
                                          << d.ToString();
    }
  }
}

TEST(ShapleyExactTest, HandlesLargerLineages) {
  // 3 chains of 10 variables (30 vars total) — far beyond brute force, and
  // the decomposition keeps the circuit tiny.
  std::vector<Clause> clauses;
  for (FactId base = 0; base < 30; base += 10) {
    Clause c;
    for (FactId i = 0; i < 10; ++i) c.push_back(base + i);
    clauses.push_back(c);
  }
  const auto v = ComputeShapleyExactUnlimited(Dnf(std::move(clauses)));
  ASSERT_EQ(v.size(), 30u);
  double sum = 0.0;
  for (const auto& [f, val] : v) {
    sum += val;
    EXPECT_GT(val, 0.0);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Symmetric chains: all variables equal.
  EXPECT_NEAR(v.at(0), v.at(29), 1e-10);
}

TEST(ShapleyMonteCarloTest, ConvergesToExact) {
  Rng data_rng(31);
  const Dnf d = RandomDnf(data_rng, 8, 4, 3);
  const auto exact = ComputeShapleyExactUnlimited(d);
  Rng mc_rng(32);
  const auto mc = ComputeShapleyMonteCarloUnlimited(d, 20000, mc_rng);
  for (const auto& [f, val] : exact) {
    EXPECT_NEAR(mc.at(f), val, 0.02) << "var " << f;
  }
}

// ---- Relation-stratified Monte Carlo (ComputeShapleyStratified) ----

// Strata by fact-id parity: a cheap stand-in for "relation of origin" that
// still yields at least two non-trivial groups on random DNFs.
std::vector<uint32_t> ParityStrata(const Dnf& d) {
  const std::vector<FactId> vars = d.Variables();
  std::vector<uint32_t> strata(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    strata[i] = static_cast<uint32_t>(vars[i] % 2);
  }
  return strata;
}

TEST(StratifiedMcTest, DeterministicUnderFixedSeed) {
  Rng data_rng(41);
  const Dnf d = RandomDnf(data_rng, 10, 5, 3);
  const auto strata = ParityStrata(d);
  // 256 samples with the default 64-permutation pilot: both the pilot and
  // the main pass run, so determinism covers the whole allocation path.
  Rng a(7);
  const auto va = ComputeShapleyStratifiedUnlimited(d, strata, 256, a);
  Rng b(7);
  const auto vb = ComputeShapleyStratifiedUnlimited(d, strata, 256, b);
  ASSERT_EQ(va.size(), vb.size());
  for (const auto& [f, val] : va) {
    EXPECT_DOUBLE_EQ(vb.at(f), val) << "var " << f;
  }
}

TEST(StratifiedMcTest, ConvergesToExact) {
  Rng data_rng(31);
  const Dnf d = RandomDnf(data_rng, 8, 4, 3);
  const auto exact = ComputeShapleyExactUnlimited(d);
  Rng rng(33);
  const auto strat =
      ComputeShapleyStratifiedUnlimited(d, ParityStrata(d), 20000, rng);
  double sum = 0.0;
  for (const auto& [f, val] : exact) {
    EXPECT_NEAR(strat.at(f), val, 0.02) << "var " << f;
  }
  for (const auto& [f, val] : strat) sum += val;
  // The estimator is per-fact (not permutation-walk), so efficiency holds
  // only in expectation — but it must hold tightly at this sample count.
  EXPECT_NEAR(sum, 1.0, 0.05);
}

TEST(StratifiedMcTest, BudgetExhaustionLeaksNoPartialState) {
  Rng data_rng(41);
  const Dnf d = RandomDnf(data_rng, 10, 5, 3);
  const auto strata = ParityStrata(d);
  // 10 work units cannot cover the 64-permutation pilot, let alone the
  // main pass: the call must fail sticky with no values returned.
  ExecutionBudget budget({0.0, 10});
  Rng rng(7);
  const auto r = ComputeShapleyStratified(d, strata, 256, rng, budget);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.tripped());
  EXPECT_EQ(budget.trip_site(), kSiteShapleyStratPilot);
}

TEST(StratifiedMcTest, FaultInMainPassTripsCleanly) {
  Rng data_rng(41);
  const Dnf d = RandomDnf(data_rng, 10, 5, 3);
  const auto strata = ParityStrata(d);
  FaultInjector fault;
  fault.FailAt(kSiteShapleyStratSample, 3);
  ExecutionBudget budget({0.0, 0}, nullptr, &fault);
  Rng rng(7);
  const auto r = ComputeShapleyStratified(d, strata, 256, rng, budget);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(budget.trip_site(), kSiteShapleyStratSample);
}

TEST(StratifiedMcTest, MatchesProportionalWhenPilotSkipped) {
  Rng data_rng(41);
  const Dnf d = RandomDnf(data_rng, 10, 5, 3);
  const auto strata = ParityStrata(d);
  // num_samples below 2x the default pilot budget auto-skips the pilot; the
  // result must be bit-identical to explicitly requesting no pilot, i.e.
  // the fallback is plain proportional allocation, not a degraded hybrid.
  StratifiedMcOptions no_pilot;
  no_pilot.pilot_permutations = 0;
  Rng a(9);
  const auto auto_skipped = ComputeShapleyStratifiedUnlimited(d, strata, 100, a);
  Rng b(9);
  const auto explicit_off =
      ComputeShapleyStratifiedUnlimited(d, strata, 100, b, no_pilot);
  ASSERT_EQ(auto_skipped.size(), explicit_off.size());
  for (const auto& [f, val] : auto_skipped) {
    EXPECT_DOUBLE_EQ(explicit_off.at(f), val) << "var " << f;
  }
}

TEST(StratifiedMcTest, RejectsMalformedArguments) {
  Rng data_rng(41);
  const Dnf d = RandomDnf(data_rng, 6, 3, 3);
  ExecutionBudget budget = ExecutionBudget::Unlimited();
  Rng rng(1);
  // Strata not aligned with the variable list.
  std::vector<uint32_t> short_strata(d.Variables().size() - 1, 0);
  auto r = ComputeShapleyStratified(d, short_strata, 64, rng, budget);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Zero samples.
  const std::vector<uint32_t> strata(d.Variables().size(), 0);
  r = ComputeShapleyStratified(d, strata, 0, rng, budget);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CnfProxyTest, TopFactMatchesExactOnSimpleProvenance) {
  // c1 supports two clauses, c2 one: the proxy must rank c1 above c2, and
  // the all-clause variable a1 on top.
  const FactId a1 = 0, m1 = 1, c1 = 2, r1 = 3, m2 = 4, r2 = 5, m3 = 6,
               c2 = 7, r3 = 8;
  const Dnf d(std::vector<Clause>{{a1, m1, c1, r1}, {a1, m2, c1, r2}, {a1, m3, c2, r3}});
  const auto proxy = ComputeCnfProxyUnlimited(d);
  ASSERT_EQ(proxy.size(), 9u);
  EXPECT_GT(proxy.at(c1), proxy.at(c2));
  const auto ranking = RankByScore(proxy);
  EXPECT_EQ(ranking[0], a1);
}

TEST(RankByScoreTest, DescendingWithIdTiebreak) {
  ShapleyValues scores = {{5, 0.3}, {2, 0.9}, {9, 0.3}, {1, 0.0}};
  const auto ranking = RankByScore(scores);
  EXPECT_EQ(ranking, (std::vector<FactId>{2, 5, 9, 1}));
}

}  // namespace
}  // namespace lshap
