#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "eval/evaluator.h"
#include "paper_fixture.h"
#include "similarity/hungarian.h"
#include "similarity/kendall.h"
#include "similarity/similarity.h"

namespace lshap {
namespace {

TEST(KendallTest, IdenticalRankingsDistanceZero) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({3, 2, 1}, {9, 5, 0}), 0.0);
}

TEST(KendallTest, ReversedRankingsDistanceOne) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({1, 2, 3}, {3, 2, 1}), 1.0);
}

TEST(KendallTest, TieInOneCostsHalf) {
  // Pair (a,b): tied in first, ordered in second → 0.5 / 1 pair.
  EXPECT_DOUBLE_EQ(KendallTauDistance({1, 1}, {1, 2}), 0.5);
}

TEST(KendallTest, TiesInBothAreFree) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({2, 2, 2}, {5, 5, 5}), 0.0);
}

TEST(KendallTest, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauDistance({1}, {2}), 0.0);
}

TEST(KendallTest, SymmetricInArguments) {
  const std::vector<double> a = {0.5, 0.1, 0.9, 0.1};
  const std::vector<double> b = {0.2, 0.8, 0.3, 0.0};
  EXPECT_DOUBLE_EQ(KendallTauDistance(a, b), KendallTauDistance(b, a));
}

TEST(HungarianTest, PicksDiagonalWhenOptimal) {
  const std::vector<std::vector<double>> w = {
      {10, 1, 1}, {1, 10, 1}, {1, 1, 10}};
  const auto match = MaxWeightMatching(w);
  EXPECT_EQ(match, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(MatchingWeight(w, match), 30.0);
}

TEST(HungarianTest, SolvesNonTrivialAssignment) {
  // Greedy (row-wise argmax) would pick (0,0)=9 then (1,1)=1: total 10.
  // Optimal is (0,1)=8 and (1,0)=7: total 15.
  const std::vector<std::vector<double>> w = {{9, 8}, {7, 1}};
  const auto match = MaxWeightMatching(w);
  EXPECT_EQ(match, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(MatchingWeight(w, match), 15.0);
}

TEST(HungarianTest, RectangularLeavesExtraRowsUnmatched) {
  const std::vector<std::vector<double>> w = {{5}, {9}, {2}};
  const auto match = MaxWeightMatching(w);
  int matched = 0;
  for (int m : match) {
    if (m >= 0) ++matched;
  }
  EXPECT_EQ(matched, 1);
  EXPECT_EQ(match[1], 0);  // highest weight wins the single column
}

TEST(HungarianTest, RandomInstancesBeatGreedy) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(5);
    std::vector<std::vector<double>> w(n, std::vector<double>(n));
    for (auto& row : w) {
      for (auto& v : row) v = rng.NextDouble();
    }
    const auto match = MaxWeightMatching(w);
    // Exhaustive optimum for small n.
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    double best = 0.0;
    do {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += w[i][perm[i]];
      best = std::max(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(MatchingWeight(w, match), best, 1e-9);
  }
}

// Example 2.3: sim_s(q_inf, q_1) = 5/8.
TEST(SyntaxSimilarityTest, PaperExample23) {
  PaperExample ex = MakePaperExample();
  EXPECT_DOUBLE_EQ(SyntaxSimilarity(ex.q_inf, ex.q_1), 5.0 / 8.0);
}

TEST(SyntaxSimilarityTest, IdenticalQueriesScoreOne) {
  PaperExample ex = MakePaperExample();
  EXPECT_DOUBLE_EQ(SyntaxSimilarity(ex.q_inf, ex.q_inf), 1.0);
}

TEST(WitnessSimilarityTest, DisjointProjectionsScoreZero) {
  PaperExample ex = MakePaperExample();
  auto r_inf = Evaluate(*ex.db, ex.q_inf);
  auto r_1 = Evaluate(*ex.db, ex.q_1);
  ASSERT_TRUE(r_inf.ok());
  ASSERT_TRUE(r_1.ok());
  // Actor names vs movie titles share no tuples.
  EXPECT_DOUBLE_EQ(WitnessSimilarity(r_inf->tuples, r_1->tuples), 0.0);
}

TEST(WitnessSimilarityTest, JaccardOfOverlap) {
  const std::vector<OutputTuple> a = {{Value("Alice")}, {Value("Bob")}};
  const std::vector<OutputTuple> b = {{Value("Alice")}, {Value("Carol")},
                                      {Value("Dan")}};
  EXPECT_DOUBLE_EQ(WitnessSimilarity(a, b), 0.25);
  EXPECT_DOUBLE_EQ(WitnessSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(WitnessSimilarity({}, {}), 0.0);
}

// Rank similarity captures what witness similarity misses: q3 in Figure 3
// projects a different column but has identical computation. We model this
// with two "queries" whose contributions share fact rankings exactly.
TEST(RankSimilarityTest, ProjectionChangeStillPerfectlySimilar) {
  ShapleyValues ranking1 = {{1, 0.5}, {2, 0.3}, {3, 0.2}};
  ShapleyValues ranking2 = {{1, 0.2}, {2, 0.5}, {3, 0.3}};
  std::vector<TupleContribution> a = {{{Value("Alice")}, ranking1},
                                      {{Value("Bob")}, ranking2}};
  std::vector<TupleContribution> b = {{{Value(int64_t{45})}, ranking1},
                                      {{Value(int64_t{30})}, ranking2}};
  EXPECT_NEAR(RankSimilarity(a, b), 1.0, 1e-9);
}

TEST(RankSimilarityTest, OppositeRankingsScoreLow) {
  ShapleyValues up = {{1, 0.1}, {2, 0.2}, {3, 0.7}};
  ShapleyValues down = {{1, 0.7}, {2, 0.2}, {3, 0.1}};
  std::vector<TupleContribution> a = {{{Value("x")}, up}};
  std::vector<TupleContribution> b = {{{Value("y")}, down}};
  // Single edge with Kendall distance 1 → weight 0.
  EXPECT_NEAR(RankSimilarity(a, b), 0.0, 1e-9);
}

TEST(RankSimilarityTest, UnbalancedSidesPenalizedByDenominator) {
  ShapleyValues r = {{1, 0.6}, {2, 0.4}};
  std::vector<TupleContribution> a = {{{Value("x")}, r}};
  std::vector<TupleContribution> b = {{{Value("y")}, r},
                                      {{Value("z")}, r},
                                      {{Value("w")}, r}};
  // |M| = 1, weight 1; denominator = 1 + 3 - 1 = 3.
  EXPECT_NEAR(RankSimilarity(a, b), 1.0 / 3.0, 1e-9);
}

TEST(RankSimilarityTest, EmptySidesScoreZero) {
  std::vector<TupleContribution> empty;
  ShapleyValues r = {{1, 1.0}};
  std::vector<TupleContribution> one = {{{Value("x")}, r}};
  EXPECT_DOUBLE_EQ(RankSimilarity(empty, one), 0.0);
}

TEST(RankSimilarityTest, SymmetricInArguments) {
  ShapleyValues r1 = {{1, 0.6}, {2, 0.4}, {5, 0.0}};
  ShapleyValues r2 = {{1, 0.1}, {3, 0.9}};
  ShapleyValues r3 = {{2, 0.5}, {3, 0.5}};
  std::vector<TupleContribution> a = {{{Value("x")}, r1}, {{Value("y")}, r2}};
  std::vector<TupleContribution> b = {{{Value("u")}, r3}};
  EXPECT_NEAR(RankSimilarity(a, b), RankSimilarity(b, a), 1e-12);
}

}  // namespace
}  // namespace lshap
