// Unit tests of the LearnShapley model wrapper: heads, training steps,
// weight snapshots, determinism and clone independence.
#include <gtest/gtest.h>

#include "learnshapley/model.h"

namespace lshap {
namespace {

EncoderConfig TinyConfig() {
  EncoderConfig cfg;
  cfg.vocab_size = 32;
  cfg.max_len = 12;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 16;
  return cfg;
}

EncodedPair MakeInput(std::initializer_list<int> ids) {
  EncodedPair p;
  p.ids.assign(ids);
  p.mask.assign(p.ids.size(), true);
  return p;
}

TEST(ModelTest, DeterministicConstruction) {
  LearnShapleyModel a(TinyConfig(), 42);
  LearnShapleyModel b(TinyConfig(), 42);
  const EncodedPair input = MakeInput({1, 5, 6, 2, 7});
  EXPECT_FLOAT_EQ(a.PredictShapley(input), b.PredictShapley(input));
  const auto sa = a.PredictSimilarities(input);
  const auto sb = b.PredictSimilarities(input);
  EXPECT_FLOAT_EQ(sa.rank, sb.rank);
  EXPECT_FLOAT_EQ(sa.witness, sb.witness);
  EXPECT_FLOAT_EQ(sa.syntax, sb.syntax);
}

TEST(ModelTest, DifferentSeedsGiveDifferentModels) {
  LearnShapleyModel a(TinyConfig(), 1);
  LearnShapleyModel b(TinyConfig(), 2);
  const EncodedPair input = MakeInput({1, 5, 6, 2, 7});
  EXPECT_NE(a.PredictShapley(input), b.PredictShapley(input));
}

TEST(ModelTest, FinetuneStepAccumulatesGradients) {
  LearnShapleyModel m(TinyConfig(), 3);
  const EncodedPair input = MakeInput({1, 5, 6, 2});
  const float loss = m.FinetuneStep(input, 10.0f);
  EXPECT_GT(loss, 0.0f);
  double grad_norm = 0.0;
  for (Param* p : m.Params()) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      grad_norm += static_cast<double>(p->grad.data()[i]) *
                   p->grad.data()[i];
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

TEST(ModelTest, PretrainStepRespectsObjectiveMask) {
  LearnShapleyModel m(TinyConfig(), 4);
  const EncodedPair input = MakeInput({1, 5, 2, 6});
  // With only the syntax objective enabled, the loss is exactly the syntax
  // head's squared error — the other heads' (large) targets are ignored.
  const auto sims = m.PredictSimilarities(input);
  PretrainObjectives only_syntax{false, false, true};
  const float loss = m.PretrainStep(input, /*sim_rank=*/1e3, /*sim_witness=*/
                                    1e3, /*sim_syntax=*/0.25, only_syntax);
  const float expected = (sims.syntax - 0.25f) * (sims.syntax - 0.25f);
  EXPECT_NEAR(loss, expected, 1e-4f);

  // Enabling the rank head with its huge target must blow the loss up.
  for (Param* p : m.Params()) p->ZeroGrad();
  PretrainObjectives rank_too{true, false, true};
  const float bigger = m.PretrainStep(input, 1e3, 1e3, 0.25, rank_too);
  EXPECT_GT(bigger, loss + 1e4f);
}

TEST(ModelTest, SnapshotRestoreRoundTrip) {
  LearnShapleyModel m(TinyConfig(), 5);
  const EncodedPair input = MakeInput({1, 5, 6, 2});
  const float before = m.PredictShapley(input);
  const auto snapshot = m.SnapshotWeights();

  // Crudely perturb every weight.
  for (Param* p : m.Params()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += 0.5f;
    }
  }
  EXPECT_NE(m.PredictShapley(input), before);

  m.RestoreWeights(snapshot);
  EXPECT_FLOAT_EQ(m.PredictShapley(input), before);
}

TEST(ModelTest, CopyIsIndependent) {
  LearnShapleyModel a(TinyConfig(), 6);
  LearnShapleyModel b = a;
  const EncodedPair input = MakeInput({1, 5, 6, 2});
  const float before = b.PredictShapley(input);
  // Train the original; the copy must not move.
  a.FinetuneStep(input, 100.0f);
  for (Param* p : a.Params()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += 0.1f;
    }
  }
  EXPECT_FLOAT_EQ(b.PredictShapley(input), before);
  EXPECT_NE(a.PredictShapley(input), before);
}

TEST(ModelTest, ParamsCoverEncoderAndHeads) {
  LearnShapleyModel m(TinyConfig(), 7);
  // Encoder params plus 4 heads × (W, b).
  const size_t encoder_params =
      TransformerEncoder(TinyConfig()).Params().size();
  EXPECT_EQ(m.Params().size(), encoder_params + 8);
}

TEST(ModelTest, RepeatedFinetuneOnOneSampleDrivesLossDown) {
  // Mini sanity: a tiny Adam loop on a single (input, target) pair must
  // overfit it.
  LearnShapleyModel m(TinyConfig(), 8);
  const EncodedPair input = MakeInput({1, 5, 6, 2, 9, 9});
  AdamConfig acfg;
  acfg.lr = 1e-2f;
  Adam opt(m.Params(), acfg);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 150; ++step) {
    last = m.FinetuneStep(input, 42.0f);
    if (step == 0) first = last;
    opt.Step();
  }
  EXPECT_LT(last, first / 100.0f);
}

}  // namespace
}  // namespace lshap
