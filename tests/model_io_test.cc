#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/fileio.h"
#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/model_io.h"
#include "learnshapley/trainer.h"

namespace lshap {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  ModelIoTest() : data_(MakeImdbDatabase({})), pool_(2) {
    CorpusConfig cfg;
    cfg.seed = 12;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    sims_ = ComputeSimilarityMatrices(corpus_, 6, pool_);
    path_ = ::testing::TempDir() + "/model_io_test.lshapm";
  }
  ~ModelIoTest() override { std::remove(path_.c_str()); }

  TrainResult QuickTrain() {
    TrainConfig cfg;
    cfg.do_pretrain = false;
    cfg.finetune_epochs = 1;
    cfg.finetune_samples_per_epoch = 64;
    cfg.batch_size = 32;
    cfg.seed = 13;
    return TrainLearnShapley(corpus_, sims_, cfg, pool_);
  }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  SimilarityMatrices sims_;
  std::string path_;
};

TEST_F(ModelIoTest, SaveLoadPredictionsBitIdentical) {
  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), trained.ranker->name());

  for (size_t e : corpus_.test_idx) {
    const auto a = trained.ranker->Score(corpus_, e, 0);
    const auto b = (*loaded)->Score(corpus_, e, 0);
    ASSERT_EQ(a.size(), b.size());
    // Scores may differ by the (monotone) shapley_scale factor; the ranking
    // must be identical and the underlying model outputs proportional.
    EXPECT_EQ(RankByScore(a), RankByScore(b));
    break;
  }
}

TEST_F(ModelIoTest, RawModelOutputsExactlyPreserved) {
  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Compare the raw head output on a fixed encoded input.
  EncodedPair input;
  input.ids = {Vocab::kCls, 7, 9, Vocab::kSep, 11};
  input.mask.assign(input.ids.size(), true);
  EXPECT_FLOAT_EQ(trained.ranker->model().PredictShapley(input),
                  (*loaded)->model().PredictShapley(input));
}

TEST_F(ModelIoTest, LoadRejectsGarbage) {
  {
    std::ofstream out(path_);
    out << "definitely not a model\n";
  }
  EXPECT_FALSE(LoadRanker(path_).ok());
  EXPECT_FALSE(LoadRanker(path_ + ".missing").ok());
}

TEST_F(ModelIoTest, SaveIsAtomicAndRecoversFromKilledWriter) {
  // A writer killed mid-save leaves only a temp file; the final path never
  // holds a partial model.
  {
    std::ofstream out(TempWritePath(path_));
    out << "LSHAPM partial garbage from a dead process";
  }
  EXPECT_FALSE(LoadRanker(path_).ok());  // nothing committed

  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  // The save overwrote the stale temp, committed via rename, and cleaned up.
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::ifstream tmp(TempWritePath(path_));
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace lshap
