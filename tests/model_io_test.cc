#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fileio.h"
#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "learnshapley/model_io.h"
#include "learnshapley/trainer.h"
#include "ml/quant.h"

namespace lshap {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  ModelIoTest() : data_(MakeImdbDatabase({})), pool_(2) {
    CorpusConfig cfg;
    cfg.seed = 12;
    cfg.num_base_queries = 8;
    cfg.max_outputs_per_query = 6;
    cfg.query_gen.max_tables = 3;
    corpus_ = BuildCorpus(*data_.db, data_.graph, cfg, pool_);
    sims_ = ComputeSimilarityMatrices(corpus_, 6, pool_);
    path_ = ::testing::TempDir() + "/model_io_test.lshapm";
  }
  ~ModelIoTest() override { std::remove(path_.c_str()); }

  TrainResult QuickTrain() {
    TrainConfig cfg;
    cfg.do_pretrain = false;
    cfg.finetune_epochs = 1;
    cfg.finetune_samples_per_epoch = 64;
    cfg.batch_size = 32;
    cfg.seed = 13;
    return TrainLearnShapley(corpus_, sims_, cfg, pool_);
  }

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
  SimilarityMatrices sims_;
  std::string path_;
};

TEST_F(ModelIoTest, SaveLoadPredictionsBitIdentical) {
  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), trained.ranker->name());

  for (size_t e : corpus_.test_idx) {
    const auto a = trained.ranker->Score(corpus_, e, 0);
    const auto b = (*loaded)->Score(corpus_, e, 0);
    ASSERT_EQ(a.size(), b.size());
    // Scores may differ by the (monotone) shapley_scale factor; the ranking
    // must be identical and the underlying model outputs proportional.
    EXPECT_EQ(RankByScore(a), RankByScore(b));
    break;
  }
}

TEST_F(ModelIoTest, RawModelOutputsExactlyPreserved) {
  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Compare the raw head output on a fixed encoded input.
  EncodedPair input;
  input.ids = {Vocab::kCls, 7, 9, Vocab::kSep, 11};
  input.mask.assign(input.ids.size(), true);
  EXPECT_FLOAT_EQ(trained.ranker->model().PredictShapley(input),
                  (*loaded)->model().PredictShapley(input));
}

TEST_F(ModelIoTest, LoadRejectsGarbage) {
  {
    std::ofstream out(path_);
    out << "definitely not a model\n";
  }
  EXPECT_FALSE(LoadRanker(path_).ok());
  EXPECT_FALSE(LoadRanker(path_ + ".missing").ok());
}

TEST_F(ModelIoTest, SaveIsAtomicAndRecoversFromKilledWriter) {
  // A writer killed mid-save leaves only a temp file; the final path never
  // holds a partial model.
  {
    std::ofstream out(TempWritePath(path_));
    out << "LSHAPM partial garbage from a dead process";
  }
  EXPECT_FALSE(LoadRanker(path_).ok());  // nothing committed

  TrainResult trained = QuickTrain();
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());
  // The save overwrote the stale temp, committed via rename, and cleaned up.
  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::ifstream tmp(TempWritePath(path_));
  EXPECT_FALSE(tmp.good());
}

TEST_F(ModelIoTest, QuantizedSectionRoundTrips) {
  TrainResult trained = QuickTrain();
  trained.ranker->Configure(
      RankerConfig{}.WithMode(InferenceMode::kQuantized));
  ASSERT_NE(trained.ranker->quantized_model(), nullptr);
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());

  auto loaded = LoadRanker(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->config().mode, InferenceMode::kQuantized);
  ASSERT_NE((*loaded)->quantized_model(), nullptr);

  // The int8 weights, scales and biases round-trip losslessly: identical
  // quantized predictions on a fixed input.
  EncodedPair input;
  input.ids = {Vocab::kCls, 7, 9, Vocab::kSep, 11};
  input.mask.assign(input.ids.size(), true);
  QuantScratch a, b;
  EXPECT_EQ(trained.ranker->quantized_model()->PredictShapley(input, a),
            (*loaded)->quantized_model()->PredictShapley(input, b));

  // And so do the float weights next to them.
  EXPECT_EQ(trained.ranker->model().PredictShapley(input),
            (*loaded)->model().PredictShapley(input));
}

TEST_F(ModelIoTest, CorruptedQuantSectionIsRejected) {
  TrainResult trained = QuickTrain();
  trained.ranker->Configure(
      RankerConfig{}.WithMode(InferenceMode::kQuantized));
  ASSERT_TRUE(SaveRanker(*trained.ranker, path_).ok());

  // Flip one int8 weight in the stored text. The per-line parse still
  // succeeds — only the FNV-1a checksum can catch it.
  std::string contents;
  {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    contents = ss.str();
  }
  const size_t pos = contents.find("\nqweights ");
  ASSERT_NE(pos, std::string::npos);
  const size_t val_pos = pos + std::string("\nqweights ").size();
  // Replace the first weight with a different in-range value.
  const size_t val_end = contents.find_first_of(" \n", val_pos);
  const int old_val = std::atoi(contents.substr(val_pos).c_str());
  const int new_val = old_val == 13 ? 14 : 13;
  contents.replace(val_pos, val_end - val_pos, std::to_string(new_val));
  {
    std::ofstream out(path_);
    out << contents;
  }

  auto loaded = LoadRanker(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace lshap
