// Fault-injection and budget tests for the BuildCorpus graceful-degradation
// ladder: each rung (exact -> stratified -> Monte-Carlo -> CNF proxy ->
// skip) must engage deterministically, BuildStats must account for every
// sampled tuple, and a starved build must still terminate with a valid
// corpus.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>

#include "corpus/corpus.h"
#include "corpus/io.h"
#include "datasets/imdb.h"
#include "provenance/compiler.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

CorpusConfig SmallConfig() {
  CorpusConfig cfg;
  cfg.seed = 3;
  cfg.num_base_queries = 10;
  cfg.max_outputs_per_query = 8;
  cfg.query_gen.max_tables = 3;
  // Keep the fallback rung fast; agreement quality is tested elsewhere.
  cfg.mc_fallback_samples = 300;
  return cfg;
}

size_t TotalContributions(const Corpus& c) {
  size_t n = 0;
  for (const auto& e : c.entries) n += e.contributions.size();
  return n;
}

void ExpectValidSplit(const Corpus& c) {
  std::set<size_t> all;
  for (size_t i : c.train_idx) all.insert(i);
  for (size_t i : c.dev_idx) all.insert(i);
  for (size_t i : c.test_idx) all.insert(i);
  EXPECT_EQ(all.size(), c.entries.size());
  EXPECT_EQ(c.train_idx.size() + c.dev_idx.size() + c.test_idx.size(),
            c.entries.size());
}

// Every build must satisfy the no-silent-loss invariant: each sampled tuple
// lands on exactly one rung, and tuples without ground truth leave a skip
// record.
void ExpectLadderAccounting(const Corpus& c) {
  const BuildStats& s = c.stats;
  EXPECT_EQ(TotalContributions(c),
            s.exact + s.stratified + s.monte_carlo + s.cnf_proxy);
  EXPECT_EQ(s.attempted(), TotalContributions(c) + s.skipped);
}

class CorpusBudgetTest : public ::testing::Test {
 protected:
  CorpusBudgetTest() : data_(MakeImdbDatabase({})), pool_(4) {}

  Corpus Build(const CorpusConfig& cfg) {
    return BuildCorpus(*data_.db, data_.graph, cfg, pool_);
  }

  GeneratedDb data_;
  ThreadPool pool_;
};

TEST_F(CorpusBudgetTest, UnbudgetedBuildUsesOnlyExactRung) {
  const Corpus c = Build(SmallConfig());
  EXPECT_GT(c.stats.exact, 0u);
  EXPECT_EQ(c.stats.monte_carlo, 0u);
  EXPECT_EQ(c.stats.cnf_proxy, 0u);
  // The only possible skips are syntactic pre-filter drops.
  size_t prefiltered = 0;
  auto it = c.stats.budget_trips.find(kSiteCorpusPrefilter);
  if (it != c.stats.budget_trips.end()) prefiltered = it->second;
  EXPECT_EQ(c.stats.skipped, prefiltered);
  EXPECT_GT(c.stats.wall_seconds, 0.0);
  ExpectLadderAccounting(c);
  ExpectValidSplit(c);
}

TEST_F(CorpusBudgetTest, CompilerExhaustionDegradesEveryTupleToMonteCarlo) {
  const Corpus baseline = Build(SmallConfig());

  FaultInjector fault;
  fault.FailWithProbability(kSiteCompilerExpand, 1.0);
  CorpusConfig cfg = SmallConfig();
  cfg.fault_injector = &fault;
  const Corpus degraded = Build(cfg);

  // BuildCorpus completed (we are here, no abort) and every tuple that the
  // baseline computed exactly fell to the Monte-Carlo rung instead.
  EXPECT_EQ(degraded.stats.exact, 0u);
  EXPECT_EQ(degraded.stats.monte_carlo, baseline.stats.exact);
  EXPECT_EQ(degraded.stats.attempted(), baseline.stats.attempted());
  EXPECT_EQ(degraded.stats.budget_trips.at(kSiteCompilerExpand),
            baseline.stats.exact);
  ExpectLadderAccounting(degraded);
  ExpectValidSplit(degraded);

  // The Monte-Carlo ground truth is still a valid Shapley distribution.
  for (const auto& e : degraded.entries) {
    for (const auto& contrib : e.contributions) {
      double sum = 0.0;
      for (const auto& [f, v] : contrib.shapley) sum += v;
      EXPECT_NEAR(sum, 1.0, 1e-6);
    }
  }
}

TEST_F(CorpusBudgetTest, DoubleFaultFallsToCnfProxy) {
  const Corpus baseline = Build(SmallConfig());

  FaultInjector fault;
  fault.FailWithProbability(kSiteCompilerExpand, 1.0);
  fault.FailWithProbability(kSiteShapleyMcSample, 1.0);
  CorpusConfig cfg = SmallConfig();
  cfg.fault_injector = &fault;
  const Corpus degraded = Build(cfg);

  EXPECT_EQ(degraded.stats.exact, 0u);
  EXPECT_EQ(degraded.stats.monte_carlo, 0u);
  EXPECT_EQ(degraded.stats.cnf_proxy, baseline.stats.exact);
  EXPECT_EQ(degraded.stats.attempted(), baseline.stats.attempted());
  ExpectLadderAccounting(degraded);
  ExpectValidSplit(degraded);
}

TEST_F(CorpusBudgetTest, TripleFaultSkipsEverythingWithoutAborting) {
  const Corpus baseline = Build(SmallConfig());

  FaultInjector fault;
  fault.FailWithProbability(kSiteCompilerExpand, 1.0);
  fault.FailWithProbability(kSiteShapleyMcSample, 1.0);
  fault.FailWithProbability(kSiteCnfProxy, 1.0);
  CorpusConfig cfg = SmallConfig();
  cfg.fault_injector = &fault;
  const Corpus degraded = Build(cfg);

  // All rungs tripped for every tuple: nothing computed, everything skipped,
  // and the accounting proves no tuple was silently lost.
  EXPECT_EQ(TotalContributions(degraded), 0u);
  EXPECT_TRUE(degraded.entries.empty());
  EXPECT_EQ(degraded.stats.skipped, degraded.stats.attempted());
  EXPECT_EQ(degraded.stats.attempted(), baseline.stats.attempted());
  ExpectLadderAccounting(degraded);
  ExpectValidSplit(degraded);
}

TEST_F(CorpusBudgetTest, SingleFaultDegradesExactlyOneTupleDeterministically) {
  // A single-threaded pool makes the site hit counter deterministic, so the
  // k-th Shannon expansion belongs to the same tuple on every run.
  ThreadPool serial_pool(1);
  auto build_with_fault = [&]() {
    FaultInjector fault;
    fault.FailAt(kSiteCompilerExpand, 40);
    CorpusConfig cfg = SmallConfig();
    cfg.fault_injector = &fault;
    return BuildCorpus(*data_.db, data_.graph, cfg, serial_pool);
  };
  const Corpus a = build_with_fault();
  const Corpus b = build_with_fault();

  EXPECT_EQ(a.stats.monte_carlo, 1u);
  EXPECT_EQ(a.stats.monte_carlo, b.stats.monte_carlo);
  EXPECT_EQ(a.stats.exact, b.stats.exact);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t e = 0; e < a.entries.size(); ++e) {
    ASSERT_EQ(a.entries[e].contributions.size(),
              b.entries[e].contributions.size());
    for (size_t i = 0; i < a.entries[e].contributions.size(); ++i) {
      // Identical values fact by fact — including the MC-degraded tuple,
      // whose sampler is seeded by job index, not by thread timing.
      const auto& ca = a.entries[e].contributions[i].shapley;
      const auto& cb = b.entries[e].contributions[i].shapley;
      ASSERT_EQ(ca.size(), cb.size());
      for (const auto& [f, v] : ca) EXPECT_DOUBLE_EQ(cb.at(f), v);
    }
  }
}

TEST_F(CorpusBudgetTest, TinyNodeBudgetStillYieldsValidCorpus) {
  CorpusConfig cfg = SmallConfig();
  cfg.max_circuit_nodes = 1;  // every exact compile trips immediately
  const Corpus c = Build(cfg);

  EXPECT_EQ(c.stats.exact, 0u);
  EXPECT_GT(c.stats.monte_carlo, 0u);
  EXPECT_FALSE(c.entries.empty());
  ExpectLadderAccounting(c);
  ExpectValidSplit(c);
  EXPECT_GT(c.train_idx.size(), 0u);
}

TEST_F(CorpusBudgetTest, ExpiredBuildDeadlineSkipsRemainingTuples) {
  const Corpus baseline = Build(SmallConfig());

  CorpusConfig cfg = SmallConfig();
  cfg.build_deadline_seconds = 1e-9;  // expired before the wave starts
  const Corpus c = Build(cfg);

  // The build still terminates, produces an (empty but valid) corpus, and
  // records every unprocessed tuple as a deadline skip.
  EXPECT_EQ(c.stats.exact, 0u);
  EXPECT_EQ(c.stats.skipped, c.stats.attempted());
  EXPECT_EQ(c.stats.attempted(), baseline.stats.attempted());
  EXPECT_GT(c.stats.budget_trips.at(kSiteCorpusBuildDeadline), 0u);
  ExpectLadderAccounting(c);
  ExpectValidSplit(c);
}

TEST_F(CorpusBudgetTest, BuildStatsRoundTripThroughCorpusIo) {
  FaultInjector fault;
  fault.FailWithProbability(kSiteCompilerExpand, 1.0);
  CorpusConfig cfg = SmallConfig();
  cfg.fault_injector = &fault;
  const Corpus c = Build(cfg);

  const std::string path =
      ::testing::TempDir() + "/corpus_budget_test.lshap";
  ASSERT_TRUE(SaveCorpus(c, path).ok());
  auto loaded = LoadCorpus(data_.db.get(), path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->stats.exact, c.stats.exact);
  EXPECT_EQ(loaded->stats.monte_carlo, c.stats.monte_carlo);
  EXPECT_EQ(loaded->stats.cnf_proxy, c.stats.cnf_proxy);
  EXPECT_EQ(loaded->stats.skipped, c.stats.skipped);
  EXPECT_NEAR(loaded->stats.wall_seconds, c.stats.wall_seconds, 1e-5);
  EXPECT_EQ(loaded->stats.budget_trips, c.stats.budget_trips);
}

// --- The stratified rung (stratified_fallback_samples > 0). ---

TEST_F(CorpusBudgetTest, StratifiedRungCatchesTuplesExactDrops) {
  CorpusConfig mc_cfg = SmallConfig();
  mc_cfg.max_circuit_nodes = 1;  // force every tuple off the exact rung
  const Corpus mc = Build(mc_cfg);

  CorpusConfig cfg = mc_cfg;
  cfg.stratified_fallback_samples = 64;
  const Corpus c = Build(cfg);

  // Every tuple the rung-off build degraded to Monte-Carlo lands on the
  // stratified rung instead, and the rung counts still sum to the total.
  EXPECT_EQ(c.stats.exact, 0u);
  EXPECT_EQ(c.stats.stratified, mc.stats.monte_carlo);
  EXPECT_EQ(c.stats.monte_carlo, 0u);
  EXPECT_EQ(c.stats.attempted(), mc.stats.attempted());
  ExpectLadderAccounting(c);
  ExpectValidSplit(c);

  // Stratified ground truth is still a (approximately efficient) Shapley
  // distribution over each tuple's lineage.
  for (const auto& e : c.entries) {
    for (const auto& contrib : e.contributions) {
      double sum = 0.0;
      for (const auto& [f, v] : contrib.shapley) sum += v;
      EXPECT_NEAR(sum, 1.0, 0.35);
    }
  }
}

TEST_F(CorpusBudgetTest, RungOffDefaultsLeaveTextOutputUnchanged) {
  // stratified_fallback_samples = 0 is the historical configuration: the
  // text serialization must carry no trace of the new rung, so pre-rung
  // builds reproduce their output bit for bit.
  const Corpus c = Build(SmallConfig());
  EXPECT_EQ(c.stats.stratified, 0u);
  const std::string path = ::testing::TempDir() + "/corpus_rung_off.lshap";
  ASSERT_TRUE(SaveCorpus(c, path).ok());
  std::ifstream in(path);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(contents.find("strat:"), std::string::npos);
}

TEST_F(CorpusBudgetTest, StratifiedStatsRoundTripThroughTextIo) {
  CorpusConfig cfg = SmallConfig();
  cfg.max_circuit_nodes = 1;
  cfg.stratified_fallback_samples = 64;
  const Corpus c = Build(cfg);
  ASSERT_GT(c.stats.stratified, 0u);

  const std::string path = ::testing::TempDir() + "/corpus_strat.lshap";
  ASSERT_TRUE(SaveCorpus(c, path).ok());
  auto loaded = LoadCorpus(data_.db.get(), path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->stats.stratified, c.stats.stratified);
  EXPECT_EQ(loaded->stats.exact, c.stats.exact);
  EXPECT_EQ(loaded->stats.monte_carlo, c.stats.monte_carlo);
  EXPECT_EQ(loaded->stats.skipped, c.stats.skipped);
}

// --- Sharded builds (num_shards > 1). ---

void ExpectSameCorpusContent(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t e = 0; e < a.entries.size(); ++e) {
    EXPECT_EQ(a.entries[e].query.id, b.entries[e].query.id);
    EXPECT_EQ(a.entries[e].query.ToSql(), b.entries[e].query.ToSql());
    ASSERT_EQ(a.entries[e].all_outputs, b.entries[e].all_outputs);
    ASSERT_EQ(a.entries[e].contributions.size(),
              b.entries[e].contributions.size());
    for (size_t i = 0; i < a.entries[e].contributions.size(); ++i) {
      const auto& ca = a.entries[e].contributions[i];
      const auto& cb = b.entries[e].contributions[i];
      EXPECT_EQ(ca.tuple, cb.tuple);
      ASSERT_EQ(ca.shapley.size(), cb.shapley.size());
      for (const auto& [f, v] : ca.shapley) {
        ASSERT_TRUE(cb.shapley.count(f));
        EXPECT_DOUBLE_EQ(cb.shapley.at(f), v);
      }
    }
  }
  EXPECT_EQ(a.train_idx, b.train_idx);
  EXPECT_EQ(a.dev_idx, b.dev_idx);
  EXPECT_EQ(a.test_idx, b.test_idx);
}

void ExpectPerShardStatsMergeToTotals(const BuildStats& s,
                                      size_t num_shards) {
  ASSERT_EQ(s.per_shard.size(), num_shards);
  size_t exact = 0, strat = 0, mc = 0, cnf = 0, skipped = 0;
  std::map<std::string, size_t> trips;
  for (const ShardBuildStats& ss : s.per_shard) {
    exact += ss.exact;
    strat += ss.stratified;
    mc += ss.monte_carlo;
    cnf += ss.cnf_proxy;
    skipped += ss.skipped;
    for (const auto& [site, n] : ss.budget_trips) trips[site] += n;
  }
  EXPECT_EQ(exact, s.exact);
  EXPECT_EQ(strat, s.stratified);
  EXPECT_EQ(mc, s.monte_carlo);
  EXPECT_EQ(cnf, s.cnf_proxy);
  EXPECT_EQ(skipped, s.skipped);
  EXPECT_EQ(trips, s.budget_trips);
}

// The determinism contract of DESIGN.md §10.4: the merged corpus is a pure
// function of the config — identical for every shard count.
TEST_F(CorpusBudgetTest, ShardedBuildIsShardCountInvariant) {
  const Corpus k1 = Build(SmallConfig());
  for (size_t k : {2u, 8u}) {
    CorpusConfig cfg = SmallConfig();
    cfg.num_shards = k;
    const Corpus ck = Build(cfg);
    ExpectSameCorpusContent(k1, ck);
    EXPECT_EQ(ck.stats.exact, k1.stats.exact);
    EXPECT_EQ(ck.stats.monte_carlo, k1.stats.monte_carlo);
    EXPECT_EQ(ck.stats.cnf_proxy, k1.stats.cnf_proxy);
    EXPECT_EQ(ck.stats.skipped, k1.stats.skipped);
    EXPECT_EQ(ck.stats.budget_trips, k1.stats.budget_trips);
    ExpectPerShardStatsMergeToTotals(ck.stats, k);
    ExpectLadderAccounting(ck);
    ExpectValidSplit(ck);
  }
}

TEST_F(CorpusBudgetTest, ShardedBuildIsThreadCountInvariant) {
  CorpusConfig cfg = SmallConfig();
  cfg.num_shards = 8;
  ThreadPool serial(1);
  const Corpus a = BuildCorpus(*data_.db, data_.graph, cfg, serial);
  const Corpus b = Build(cfg);
  ExpectSameCorpusContent(a, b);
  EXPECT_EQ(a.stats.budget_trips, b.stats.budget_trips);
}

// Degradation rungs engage per job, so they too must be independent of the
// shard count (the MC sampler is seeded by global job index).
TEST_F(CorpusBudgetTest, ShardedBuildMatchesUnderDegradation) {
  CorpusConfig cfg = SmallConfig();
  cfg.max_circuit_nodes = 1;  // every exact compile trips to Monte-Carlo
  const Corpus k1 = Build(cfg);
  CorpusConfig cfg4 = cfg;
  cfg4.num_shards = 4;
  const Corpus k4 = Build(cfg4);
  EXPECT_GT(k4.stats.monte_carlo, 0u);
  ExpectSameCorpusContent(k1, k4);
  EXPECT_EQ(k4.stats.budget_trips, k1.stats.budget_trips);
  ExpectPerShardStatsMergeToTotals(k4.stats, 4);
}

// The stratified rung is seeded by global job index exactly like the MC
// rung, so the merged corpus must stay a pure function of the config —
// identical for every shard count and thread count.
TEST_F(CorpusBudgetTest, StratifiedRungIsShardAndThreadCountInvariant) {
  CorpusConfig cfg = SmallConfig();
  cfg.max_circuit_nodes = 1;  // every tuple lands on the stratified rung
  cfg.stratified_fallback_samples = 64;
  const Corpus k1 = Build(cfg);
  EXPECT_GT(k1.stats.stratified, 0u);
  for (size_t k : {2u, 8u}) {
    CorpusConfig cfgk = cfg;
    cfgk.num_shards = k;
    const Corpus ck = Build(cfgk);
    ExpectSameCorpusContent(k1, ck);
    EXPECT_EQ(ck.stats.stratified, k1.stats.stratified);
    EXPECT_EQ(ck.stats.budget_trips, k1.stats.budget_trips);
    ExpectPerShardStatsMergeToTotals(ck.stats, k);
    ExpectLadderAccounting(ck);
  }
  ThreadPool serial(1);
  CorpusConfig cfg8 = cfg;
  cfg8.num_shards = 8;
  const Corpus serial8 = BuildCorpus(*data_.db, data_.graph, cfg8, serial);
  const Corpus pooled8 = Build(cfg8);
  ExpectSameCorpusContent(serial8, pooled8);
  EXPECT_EQ(serial8.stats.stratified, pooled8.stats.stratified);
}

TEST_F(CorpusBudgetTest, StratifiedStatsRoundTripThroughBinaryShards) {
  const std::string path =
      ::testing::TempDir() + "/corpus_strat_shards.lshapc";
  CorpusConfig cfg = SmallConfig();
  cfg.max_circuit_nodes = 1;
  cfg.stratified_fallback_samples = 64;
  cfg.num_shards = 2;
  auto stats = BuildCorpusToShards(*data_.db, data_.graph, cfg, pool_, path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GT(stats->stratified, 0u);

  auto loaded = LoadCorpusShards(data_.db.get(), path);
  for (size_t s = 0; s < 2; ++s) {
    std::remove((path + (s == 0 ? ".shard000" : ".shard001")).c_str());
  }
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->stats.stratified, stats->stratified);
  ExpectPerShardStatsMergeToTotals(loaded->stats, 2);

  // The binary path agrees tuple for tuple with the in-memory build.
  CorpusConfig mem_cfg = cfg;
  mem_cfg.num_shards = 1;
  const Corpus mem = BuildCorpus(*data_.db, data_.graph, mem_cfg, pool_);
  ExpectSameCorpusContent(mem, *loaded);
}

TEST_F(CorpusBudgetTest, BuildToShardsMatchesInMemoryBuild) {
  const std::string path =
      ::testing::TempDir() + "/corpus_budget_shards.lshapc";
  CorpusConfig cfg = SmallConfig();
  cfg.num_shards = 2;
  auto stats = BuildCorpusToShards(*data_.db, data_.graph, cfg, pool_, path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto loaded = LoadCorpusShards(data_.db.get(), path);
  for (size_t s = 0; s < 2; ++s) {
    std::remove((path + (s == 0 ? ".shard000" : ".shard001")).c_str());
  }
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Corpus mem = Build(SmallConfig());
  ExpectSameCorpusContent(mem, *loaded);
  EXPECT_EQ(loaded->stats.exact, mem.stats.exact);
  EXPECT_EQ(loaded->stats.budget_trips, mem.stats.budget_trips);
  ExpectPerShardStatsMergeToTotals(loaded->stats, 2);
}

}  // namespace
}  // namespace lshap
