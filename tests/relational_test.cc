#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/database.h"
#include "relational/string_pool.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace lshap {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(int64_t{42}).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("Universal").ToString(), "Universal");
}

TEST(ValueTest, SqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("USA").ToSqlLiteral(), "'USA'");
  EXPECT_EQ(Value(int64_t{2007}).ToSqlLiteral(), "2007");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(), Value(int64_t{0}));         // null < numeric
  EXPECT_LT(Value(int64_t{5}), Value("a"));      // numeric < string
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_EQ(Value("hi").Hash(), Value("hi").Hash());
}

TEST(SchemaTest, ColumnLookup) {
  Schema s("movies", {{"title", ColumnType::kString},
                      {"year", ColumnType::kInt}});
  EXPECT_EQ(s.table_name(), "movies");
  EXPECT_EQ(s.num_columns(), 2u);
  ASSERT_TRUE(s.ColumnIndex("year").ok());
  EXPECT_EQ(*s.ColumnIndex("year"), 1u);
  EXPECT_FALSE(s.ColumnIndex("rating").ok());
  EXPECT_TRUE(s.HasColumn("title"));
  EXPECT_FALSE(s.HasColumn("studio"));
}

TEST(DatabaseTest, InsertAndResolveFacts) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt},
                                       {"b", ColumnType::kString}}))
                  .ok());
  auto f0 = db.Insert("t", {Value(int64_t{1}), Value("x")});
  auto f1 = db.Insert("t", {Value(int64_t{2}), Value("y")});
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  EXPECT_NE(*f0, *f1);
  EXPECT_EQ(db.num_facts(), 2u);
  EXPECT_EQ(db.FactValues(*f1)[1], Value("y"));
  EXPECT_EQ(db.FactTableName(*f0), "t");
  EXPECT_EQ(db.FactToString(*f0), "t(1, x)");
}

TEST(DatabaseTest, RejectsDuplicateTable) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  EXPECT_FALSE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
}

TEST(DatabaseTest, RejectsArityMismatch) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  EXPECT_FALSE(db.Insert("t", {Value(int64_t{1}), Value(int64_t{2})}).ok());
}

TEST(DatabaseTest, RejectsUnknownTable) {
  Database db("test");
  EXPECT_FALSE(db.Insert("nope", {Value(int64_t{1})}).ok());
  EXPECT_FALSE(db.FindTable("nope").ok());
}

TEST(StringPoolTest, InternDedupsAndFinds) {
  StringPool pool;
  const StringId a = pool.Intern("alpha");
  const StringId b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "alpha");
  EXPECT_EQ(pool.Get(b), "beta");
  EXPECT_EQ(pool.Find("beta"), b);
  // Find() never mutates: a miss returns the sentinel and adds nothing.
  EXPECT_EQ(pool.Find("gamma"), kInvalidStringId);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPoolTest, IdsAreDense) {
  StringPool pool;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.Intern("s" + std::to_string(i)), static_cast<StringId>(i));
  }
}

TEST(ColumnDataTest, TypedAppendAndRead) {
  StringPool pool;
  ColumnData ints(ColumnType::kInt);
  ints.AppendInt(-7);
  ints.AppendInt(12);
  EXPECT_EQ(ints.IntAt(0), -7);
  EXPECT_EQ(ints.IntAt(1), 12);
  EXPECT_EQ(ints.GetValue(0, pool), Value(int64_t{-7}));

  ColumnData strs(ColumnType::kString);
  strs.AppendString(pool.Intern("x"));
  EXPECT_EQ(strs.GetValue(0, pool), Value("x"));
}

TEST(ColumnDataTest, KeyWordMatchesValueEquality) {
  StringPool pool;
  // Negative zero and positive zero compare equal as doubles, so their key
  // words must collide; raw bit patterns would not.
  ColumnData dbl(ColumnType::kDouble);
  dbl.AppendDouble(0.0);
  dbl.AppendDouble(-0.0);
  dbl.AppendDouble(1.5);
  EXPECT_EQ(dbl.KeyWord(0), dbl.KeyWord(1));
  EXPECT_NE(dbl.KeyWord(0), dbl.KeyWord(2));
  EXPECT_EQ(dbl.KeyWord(2), std::bit_cast<uint64_t>(1.5));

  ColumnData ints(ColumnType::kInt);
  ints.AppendInt(-1);
  ints.AppendInt(-1);
  ints.AppendInt(3);
  EXPECT_EQ(ints.KeyWord(0), ints.KeyWord(1));
  EXPECT_NE(ints.KeyWord(0), ints.KeyWord(2));

  ColumnData strs(ColumnType::kString);
  strs.AppendString(pool.Intern("a"));
  strs.AppendString(pool.Intern("b"));
  strs.AppendString(pool.Intern("a"));
  EXPECT_EQ(strs.KeyWord(0), strs.KeyWord(2));
  EXPECT_NE(strs.KeyWord(0), strs.KeyWord(1));
}

TEST(DatabaseTest, TableAppenderBuildsRows) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt},
                                       {"b", ColumnType::kString},
                                       {"c", ColumnType::kDouble}}))
                  .ok());
  TableAppender app = db.AppenderFor("t");
  const FactId f0 = app.Begin().Int(1).Str("one").Real(1.5).Commit();
  const FactId f1 = app.Begin().Int(2).Str("two").Real(2.5).Commit();
  EXPECT_NE(f0, f1);
  const Table* t = *db.FindTable("t");
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->DecodeRow(0),
            (std::vector<Value>{Value(int64_t{1}), Value("one"), Value(1.5)}));
  EXPECT_EQ(t->GetValue(1, 1), Value("two"));
  EXPECT_EQ(t->fact_id(1), f1);
  // Int() promotes into kDouble columns, matching the old Value semantics.
  app.Begin().Int(3).Str("three").Int(4).Commit();
  EXPECT_EQ(t->GetValue(2, 2), Value(4.0));
}

TEST(DatabaseTest, SharedStringsInternOnce) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"s", ColumnType::kString}})).ok());
  ASSERT_TRUE(db.AddTable(Schema("u", {{"s", ColumnType::kString}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value("shared")}).ok());
  ASSERT_TRUE(db.Insert("u", {Value("shared")}).ok());
  ASSERT_TRUE(db.Insert("u", {Value("only_u")}).ok());
  EXPECT_EQ(db.string_pool().size(), 2u);
  // Same string in different tables maps to the same id — the invariant the
  // evaluator's interned-key joins rely on.
  const Table* t = *db.FindTable("t");
  const Table* u = *db.FindTable("u");
  EXPECT_EQ(t->column(0).KeyWord(0), u->column(0).KeyWord(0));
}

TEST(DatabaseTest, InsertRejectsTypeMismatch) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt},
                                       {"b", ColumnType::kString}}))
                  .ok());
  EXPECT_FALSE(db.Insert("t", {Value("oops"), Value("x")}).ok());
  EXPECT_FALSE(db.Insert("t", {Value(int64_t{1}), Value(int64_t{2})}).ok());
  // A rejected row must not leave partial column state behind.
  EXPECT_EQ((*db.FindTable("t"))->num_rows(), 0u);
  ASSERT_TRUE(db.Insert("t", {Value(int64_t{1}), Value("x")}).ok());
  EXPECT_EQ((*db.FindTable("t"))->num_rows(), 1u);
  // Value::Null() is NOT a mismatch: NULL is a storable cell for any column
  // type (see null_semantics_test for the full ingest surface).
  ASSERT_TRUE(db.Insert("t", {Value::Null(), Value("x")}).ok());
  EXPECT_EQ((*db.FindTable("t"))->num_rows(), 2u);
  EXPECT_TRUE((*db.FindTable("t"))->GetValue(1, 0).is_null());
}

TEST(OutputTupleTest, HashAndToString) {
  OutputTuple t = {Value("Alice"), Value(int64_t{45})};
  OutputTuple same = {Value("Alice"), Value(int64_t{45})};
  OutputTuple other = {Value("Bob"), Value(int64_t{45})};
  OutputTupleHash h;
  EXPECT_EQ(h(t), h(same));
  EXPECT_EQ(t, same);
  EXPECT_NE(t, other);
  EXPECT_EQ(OutputTupleToString(t), "(Alice, 45)");
}

// ---------------------------------------------------------------------------
// Batch ingest (relational/table.h): the three ingest shapes must produce
// byte-identical tables and fact ids.
// ---------------------------------------------------------------------------

Schema BatchSchema() {
  return Schema("t", {{"a", ColumnType::kInt},
                      {"b", ColumnType::kString},
                      {"c", ColumnType::kDouble}});
}

// The reference: row-at-a-time ingest of three rows. Note the Int() fed to
// the kDouble column — the promotion rule batch ingest must reproduce.
// (unique_ptr because Database pins interior pointers and is immovable.)
std::unique_ptr<Database> RowAtATimeDb() {
  auto db = std::make_unique<Database>("test");
  EXPECT_TRUE(db->AddTable(BatchSchema()).ok());
  TableAppender app = db->AppenderFor("t");
  app.Begin().Int(1).Str("x").Real(0.5).Commit();
  app.Begin().Int(2).Str("y").Int(7).Commit();
  app.Begin().Int(3).Str("x").Real(-1.25).Commit();
  return db;
}

void ExpectSameTable(const Database& got, const Database& want) {
  const Table* tg = *got.FindTable("t");
  const Table* tw = *want.FindTable("t");
  ASSERT_EQ(tg->num_rows(), tw->num_rows());
  for (size_t i = 0; i < tw->num_rows(); ++i) {
    EXPECT_EQ(tg->DecodeRow(i), tw->DecodeRow(i)) << "row " << i;
    EXPECT_EQ(tg->fact_id(i), tw->fact_id(i)) << "row " << i;
  }
  EXPECT_EQ(got.num_facts(), want.num_facts());
}

TEST(BatchIngestTest, AppendColumnMatchesRowAtATime) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(BatchSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  const std::vector<int64_t> a = {1, 2, 3};
  const std::vector<std::string> b = {"x", "y", "x"};
  const std::vector<double> cc = {0.5, 7.0, -1.25};
  const std::vector<FactId> ids =
      app.AppendColumn(0, std::span<const int64_t>(a))
          .AppendColumn(1, std::span<const std::string>(b))
          .AppendColumn(2, std::span<const double>(cc))
          .CommitRows();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);  // fact ids in row order
  EXPECT_LT(ids[1], ids[2]);
  ExpectSameTable(db, *RowAtATimeDb());
}

TEST(BatchIngestTest, IntSpanPromotesIntoDoubleColumn) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"c", ColumnType::kDouble}})).ok());
  TableAppender app = db.AppenderFor("t");
  const std::vector<int64_t> v = {4, -2};
  app.AppendColumn(0, std::span<const int64_t>(v)).CommitRows();
  const Table* t = *db.FindTable("t");
  EXPECT_EQ(t->GetValue(0, 0), Value(4.0));
  EXPECT_EQ(t->GetValue(1, 0), Value(-2.0));
}

TEST(BatchIngestTest, RowBatchMatchesRowAtATime) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(BatchSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  RowBatch batch(app.schema());
  batch.Begin().Int(1).Str("x").Real(0.5).End();
  batch.Begin().Int(2).Str("y").Int(7).End();  // Int into kDouble promotes
  batch.Begin().Int(3).Str("x").Real(-1.25).End();
  EXPECT_EQ(batch.num_rows(), 3u);
  const std::vector<FactId> ids = app.Append(batch);
  ASSERT_EQ(ids.size(), 3u);
  ExpectSameTable(db, *RowAtATimeDb());
}

TEST(BatchIngestTest, EmptyBatchCommitsNothing) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(BatchSchema()).ok());
  TableAppender app = db.AppenderFor("t");
  EXPECT_TRUE(app.CommitRows().empty());
  RowBatch batch(app.schema());
  EXPECT_TRUE(app.Append(batch).empty());
  EXPECT_EQ((*db.FindTable("t"))->num_rows(), 0u);
}

TEST(BatchIngestTest, BatchesInterleaveWithRowAtATime) {
  // A committed batch and a committed row can alternate freely; fact ids
  // stay dense and in ingest order.
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  TableAppender app = db.AppenderFor("t");
  const std::vector<int64_t> first = {10, 11};
  app.AppendColumn(0, std::span<const int64_t>(first)).CommitRows();
  const FactId mid = app.Begin().Int(12).Commit();
  const std::vector<int64_t> last = {13};
  const std::vector<FactId> tail =
      app.AppendColumn(0, std::span<const int64_t>(last)).CommitRows();
  const Table* t = *db.FindTable("t");
  ASSERT_EQ(t->num_rows(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t->GetValue(i, 0), Value(static_cast<int64_t>(10 + i)));
  }
  EXPECT_LT(mid, tail[0]);
}

}  // namespace
}  // namespace lshap
