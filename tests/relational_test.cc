#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace lshap {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(int64_t{42}).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("Universal").ToString(), "Universal");
}

TEST(ValueTest, SqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("USA").ToSqlLiteral(), "'USA'");
  EXPECT_EQ(Value(int64_t{2007}).ToSqlLiteral(), "2007");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(), Value(int64_t{0}));         // null < numeric
  EXPECT_LT(Value(int64_t{5}), Value("a"));      // numeric < string
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_EQ(Value("hi").Hash(), Value("hi").Hash());
}

TEST(SchemaTest, ColumnLookup) {
  Schema s("movies", {{"title", ColumnType::kString},
                      {"year", ColumnType::kInt}});
  EXPECT_EQ(s.table_name(), "movies");
  EXPECT_EQ(s.num_columns(), 2u);
  ASSERT_TRUE(s.ColumnIndex("year").ok());
  EXPECT_EQ(*s.ColumnIndex("year"), 1u);
  EXPECT_FALSE(s.ColumnIndex("rating").ok());
  EXPECT_TRUE(s.HasColumn("title"));
  EXPECT_FALSE(s.HasColumn("studio"));
}

TEST(DatabaseTest, InsertAndResolveFacts) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt},
                                       {"b", ColumnType::kString}}))
                  .ok());
  auto f0 = db.Insert("t", {Value(int64_t{1}), Value("x")});
  auto f1 = db.Insert("t", {Value(int64_t{2}), Value("y")});
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  EXPECT_NE(*f0, *f1);
  EXPECT_EQ(db.num_facts(), 2u);
  EXPECT_EQ(db.FactValues(*f1)[1], Value("y"));
  EXPECT_EQ(db.FactTableName(*f0), "t");
  EXPECT_EQ(db.FactToString(*f0), "t(1, x)");
}

TEST(DatabaseTest, RejectsDuplicateTable) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  EXPECT_FALSE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
}

TEST(DatabaseTest, RejectsArityMismatch) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(Schema("t", {{"a", ColumnType::kInt}})).ok());
  EXPECT_FALSE(db.Insert("t", {Value(int64_t{1}), Value(int64_t{2})}).ok());
}

TEST(DatabaseTest, RejectsUnknownTable) {
  Database db("test");
  EXPECT_FALSE(db.Insert("nope", {Value(int64_t{1})}).ok());
  EXPECT_FALSE(db.FindTable("nope").ok());
}

TEST(OutputTupleTest, HashAndToString) {
  OutputTuple t = {Value("Alice"), Value(int64_t{45})};
  OutputTuple same = {Value("Alice"), Value(int64_t{45})};
  OutputTuple other = {Value("Bob"), Value(int64_t{45})};
  OutputTupleHash h;
  EXPECT_EQ(h(t), h(same));
  EXPECT_EQ(t, same);
  EXPECT_NE(t, other);
  EXPECT_EQ(OutputTupleToString(t), "(Alice, 45)");
}

}  // namespace
}  // namespace lshap
