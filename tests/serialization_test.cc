#include <gtest/gtest.h>

#include "learnshapley/serialization.h"
#include "ml/tokenizer.h"
#include "paper_fixture.h"

namespace lshap {
namespace {

TEST(SerializationTest, QueryTokensAreSqlTokens) {
  PaperExample ex = MakePaperExample();
  const auto tokens = QueryTokens(ex.q_inf);
  EXPECT_EQ(tokens[0], "select");
  EXPECT_EQ(tokens[1], "distinct");
}

TEST(SerializationTest, TupleTokens) {
  const auto tokens = TupleTokens({Value("Alice"), Value(int64_t{45})});
  // "(Alice, 45)" → ( alice , 45 )
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"(", "alice", ",", "45", ")"}));
}

TEST(SerializationTest, OverlapMarkerBuckets) {
  PaperExample ex = MakePaperExample();
  // Tuple (Alice): the actors fact "actors(Alice, 45)" shares "alice" →
  // ovl1; the companies fact shares nothing → ovl0.
  const auto tuple_tokens = TupleTokens({Value("Alice")});
  const auto actor = FactTokensWithContext(*ex.db, ex.a1, tuple_tokens);
  EXPECT_EQ(actor[0], "ovl1");
  const auto company = FactTokensWithContext(*ex.db, ex.c1, tuple_tokens);
  EXPECT_EQ(company[0], "ovl0");

  // A tuple containing both values of the fact → ovl2.
  const auto rich_tuple =
      TupleTokens({Value("Alice"), Value(int64_t{45})});
  const auto both = FactTokensWithContext(*ex.db, ex.a1, rich_tuple);
  EXPECT_EQ(both[0], "ovl2");
}

TEST(SerializationTest, MarkerPrependsWithoutDroppingFactTokens) {
  PaperExample ex = MakePaperExample();
  const auto plain = FactTokens(*ex.db, ex.m1);
  const auto with = FactTokensWithContext(*ex.db, ex.m1, {});
  ASSERT_EQ(with.size(), plain.size() + 1);
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(with[i + 1], plain[i]);
  }
}

TEST(EncodeSegmentsTest, ShortSegmentsSurviveTruncation) {
  Vocab v;
  std::vector<std::string> query(100, "q");
  std::vector<std::string> tuple = {"alice", "45"};
  std::vector<std::string> fact = {"ovl1", "actors", "alice"};
  v.AddTokens(query);
  v.AddTokens(tuple);
  v.AddTokens(fact);
  const EncodedPair p = EncodeSegments(v, {query, tuple, fact}, 32);
  ASSERT_LE(p.ids.size(), 32u);
  // The fact and tuple tokens must all be present (query absorbs the cut).
  size_t found = 0;
  for (int id : p.ids) {
    if (id >= Vocab::kNumSpecial &&
        v.token(id) != "q") {
      ++found;
    }
  }
  EXPECT_EQ(found, tuple.size() + fact.size());
}

TEST(EncodeSegmentsTest, EqualSegmentsSplitEvenly) {
  Vocab v;
  std::vector<std::string> a(50, "a");
  std::vector<std::string> b(50, "b");
  v.AddTokens(a);
  v.AddTokens(b);
  const EncodedPair p = EncodeSegments(v, {a, b}, 42);
  size_t count_a = 0;
  size_t count_b = 0;
  for (int id : p.ids) {
    if (id < Vocab::kNumSpecial) continue;
    if (v.token(id) == "a") ++count_a;
    if (v.token(id) == "b") ++count_b;
  }
  EXPECT_EQ(count_a, count_b);
  EXPECT_EQ(count_a + count_b + 2, p.ids.size());  // [CLS] + [SEP]
}

}  // namespace
}  // namespace lshap
