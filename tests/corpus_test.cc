#include <gtest/gtest.h>

#include <set>

#include "corpus/corpus.h"
#include "datasets/imdb.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

CorpusConfig SmallConfig() {
  CorpusConfig cfg;
  cfg.seed = 3;
  cfg.num_base_queries = 10;
  cfg.max_outputs_per_query = 8;
  cfg.query_gen.max_tables = 3;
  return cfg;
}

class CorpusTest : public ::testing::Test {
 protected:
  CorpusTest()
      : data_(MakeImdbDatabase({})),
        pool_(4),
        corpus_(BuildCorpus(*data_.db, data_.graph, SmallConfig(), pool_)) {}

  GeneratedDb data_;
  ThreadPool pool_;
  Corpus corpus_;
};

TEST_F(CorpusTest, BuildsNonEmptyCorpus) {
  EXPECT_GT(corpus_.entries.size(), 5u);
  for (const auto& e : corpus_.entries) {
    EXPECT_FALSE(e.all_outputs.empty());
    EXPECT_FALSE(e.contributions.empty());
    EXPECT_LE(e.contributions.size(), SmallConfig().max_outputs_per_query);
  }
}

TEST_F(CorpusTest, SplitPartitionsEntries) {
  std::set<size_t> all;
  for (size_t i : corpus_.train_idx) all.insert(i);
  for (size_t i : corpus_.dev_idx) all.insert(i);
  for (size_t i : corpus_.test_idx) all.insert(i);
  EXPECT_EQ(all.size(), corpus_.entries.size());
  EXPECT_EQ(corpus_.train_idx.size() + corpus_.dev_idx.size() +
                corpus_.test_idx.size(),
            corpus_.entries.size());
  EXPECT_GT(corpus_.train_idx.size(), corpus_.test_idx.size());
}

TEST_F(CorpusTest, ShapleyValuesAreValidDistributions) {
  for (const auto& e : corpus_.entries) {
    for (const auto& c : e.contributions) {
      ASSERT_FALSE(c.shapley.empty());
      double sum = 0.0;
      for (const auto& [f, v] : c.shapley) {
        EXPECT_GE(v, -1e-9);
        EXPECT_LE(v, 1.0 + 1e-9);
        sum += v;
      }
      // Monotone provenance satisfied by the full DB: efficiency holds.
      EXPECT_NEAR(sum, 1.0, 1e-6);
    }
  }
}

TEST_F(CorpusTest, DeterministicAcrossBuilds) {
  ThreadPool pool(4);
  Corpus again = BuildCorpus(*data_.db, data_.graph, SmallConfig(), pool);
  ASSERT_EQ(again.entries.size(), corpus_.entries.size());
  for (size_t i = 0; i < again.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].query.ToSql(),
              corpus_.entries[i].query.ToSql());
    ASSERT_EQ(again.entries[i].contributions.size(),
              corpus_.entries[i].contributions.size());
    for (size_t c = 0; c < again.entries[i].contributions.size(); ++c) {
      EXPECT_EQ(again.entries[i].contributions[c].tuple,
                corpus_.entries[i].contributions[c].tuple);
    }
  }
  EXPECT_EQ(again.train_idx, corpus_.train_idx);
}

TEST_F(CorpusTest, StatsAddUp) {
  const SplitStats train = ComputeSplitStats(corpus_, corpus_.train_idx);
  const SplitStats dev = ComputeSplitStats(corpus_, corpus_.dev_idx);
  const SplitStats test = ComputeSplitStats(corpus_, corpus_.test_idx);
  EXPECT_EQ(train.queries + dev.queries + test.queries,
            corpus_.entries.size());
  EXPECT_GT(train.results, 0u);
  EXPECT_GT(train.facts, 0u);
}

TEST_F(CorpusTest, TrainSeenFactsComeFromTrainSplit) {
  const auto seen = TrainSeenFacts(corpus_);
  EXPECT_FALSE(seen.empty());
  std::set<FactId> expected;
  for (size_t i : corpus_.train_idx) {
    for (const auto& c : corpus_.entries[i].contributions) {
      for (const auto& [f, v] : c.shapley) expected.insert(f);
    }
  }
  EXPECT_EQ(seen.size(), expected.size());
}

TEST_F(CorpusTest, SimilarityMatricesAreSymmetricWithUnitDiagonal) {
  const SimilarityMatrices sims =
      ComputeSimilarityMatrices(corpus_, 10, pool_);
  const size_t n = corpus_.entries.size();
  ASSERT_EQ(sims.syntax.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sims.syntax[i][i], 1.0, 1e-9);
    EXPECT_GE(sims.rank[i][i], 0.99);  // self rank-similarity is perfect
    for (size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(sims.syntax[i][j], sims.syntax[j][i]);
      EXPECT_DOUBLE_EQ(sims.witness[i][j], sims.witness[j][i]);
      EXPECT_DOUBLE_EQ(sims.rank[i][j], sims.rank[j][i]);
      EXPECT_GE(sims.syntax[i][j], 0.0);
      EXPECT_LE(sims.syntax[i][j], 1.0);
      EXPECT_GE(sims.rank[i][j], 0.0);
      EXPECT_LE(sims.rank[i][j], 1.0 + 1e-9);
    }
  }
}

TEST_F(CorpusTest, MeanGroupSimilarityExcludesDiagonal) {
  std::vector<std::vector<double>> m = {{1.0, 0.5}, {0.5, 1.0}};
  EXPECT_DOUBLE_EQ(MeanGroupSimilarity(m, {0, 1}, {0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(MeanGroupSimilarity(m, {0}, {0}), 0.0);
}

}  // namespace
}  // namespace lshap
