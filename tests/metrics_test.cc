#include <gtest/gtest.h>

#include <cmath>

#include "metrics/ranking_metrics.h"

namespace lshap {
namespace {

TEST(NdcgTest, PerfectRankingScoresOne) {
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.2}};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 3}, gold, 10), 1.0);
}

TEST(NdcgTest, WorstRankingScoresBelowOne) {
  ShapleyValues gold = {{1, 0.9}, {2, 0.05}, {3, 0.05}};
  const double best = NdcgAtK({1, 2, 3}, gold, 10);
  const double worst = NdcgAtK({3, 2, 1}, gold, 10);
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_LT(worst, best);
  EXPECT_GT(worst, 0.0);
}

TEST(NdcgTest, RespectsCutoff) {
  // Perfect in the top-2; garbage afterwards is invisible to NDCG@2.
  ShapleyValues gold = {{1, 0.5}, {2, 0.4}, {3, 0.1}, {4, 0.0}};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 4, 3}, gold, 2), 1.0);
}

TEST(NdcgTest, ExactValueForKnownSwap) {
  // gold: a=3, b=2, c=1 (relevance). predicted order: b, a, c.
  ShapleyValues gold = {{10, 3.0}, {20, 2.0}, {30, 1.0}};
  const double dcg = 2.0 / std::log2(2) + 3.0 / std::log2(3) +
                     1.0 / std::log2(4);
  const double idcg = 3.0 / std::log2(2) + 2.0 / std::log2(3) +
                      1.0 / std::log2(4);
  EXPECT_NEAR(NdcgAtK({20, 10, 30}, gold, 10), dcg / idcg, 1e-12);
}

TEST(NdcgTest, AllZeroGoldIsVacuouslyPerfect) {
  ShapleyValues gold = {{1, 0.0}, {2, 0.0}};
  EXPECT_DOUBLE_EQ(NdcgAtK({2, 1}, gold, 10), 1.0);
}

TEST(NdcgTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, 10), 1.0);
}

TEST(PrecisionTest, PerfectTopK) {
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.15}, {4, 0.05}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, gold, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, gold, 3), 1.0);
}

TEST(PrecisionTest, SetBasedNotOrderBased) {
  // Top-3 contains the right facts in the wrong order: still 1.0.
  ShapleyValues gold = {{1, 0.5}, {2, 0.3}, {3, 0.15}, {4, 0.05}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 1, 2, 4}, gold, 3), 1.0);
  // But p@1 sees the wrong head.
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 1, 2, 4}, gold, 1), 0.0);
}

TEST(PrecisionTest, PartialOverlap) {
  ShapleyValues gold = {{1, 0.4}, {2, 0.3}, {3, 0.2}, {4, 0.1}};
  // predicted top-3 {1, 4, 2} vs gold top-3 {1, 2, 3}: overlap 2.
  EXPECT_NEAR(PrecisionAtK({1, 4, 2, 3}, gold, 3), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionTest, ShortListsCapDepth) {
  ShapleyValues gold = {{1, 0.7}, {2, 0.3}};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2}, gold, 5), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, gold, 5), 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(MseTest, Basics) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 2.0}, {1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

}  // namespace
}  // namespace lshap
