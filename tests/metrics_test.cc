// Tests for the observability substrate (src/common/metrics.h): sharded
// counter merge, histogram bucket-edge semantics, nested span trees, the
// no-op (disabled) mode, and concurrent mutation vs. ToJson snapshots.
#include "common/metrics.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace lshap {
namespace {

TEST(MetricsCounter, SingleThreadTotals) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("events");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(registry.CounterValue("events"), 42u);
  // Same name resolves to the same cell.
  Counter again = registry.GetCounter("events");
  again.Inc(8);
  EXPECT_EQ(registry.CounterValue("events"), 50u);
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
}

TEST(MetricsCounter, ShardMergeAcrossThreads) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("events");
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() mutable {
      for (int i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.CounterValue("events"),
            static_cast<uint64_t>(kThreads) * kIncsPerThread);
}

TEST(MetricsGauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge g = registry.GetGauge("loss");
  g.Set(0.75);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("loss"), 0.75);
  g.Set(-3.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("loss"), -3.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("missing"), 0.0);
}

TEST(MetricsHistogram, BucketEdgesInclusiveUpperBound) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("sizes", {1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1      -> bucket 0
  h.Observe(1.0);    // == edge   -> bucket 0 (upper bound is inclusive)
  h.Observe(1.0001); // > 1       -> bucket 1
  h.Observe(10.0);   // == edge   -> bucket 1
  h.Observe(99.0);   //           -> bucket 2
  h.Observe(100.0);  // == edge   -> bucket 2
  h.Observe(5000.0); // overflow  -> bucket 3
  std::vector<uint64_t> expected = {2, 2, 2, 1};
  EXPECT_EQ(registry.HistogramBuckets("sizes"), expected);
}

TEST(MetricsHistogram, ShardMergeAcrossThreads) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("lat", ExponentialBuckets(1.0, 2.0, 4));
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([h, t]() mutable {
      for (int i = 0; i < 1000; ++i) h.Observe(static_cast<double>(t));
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (uint64_t c : registry.HistogramBuckets("lat")) total += c;
  EXPECT_EQ(total, 6000u);
}

TEST(MetricsHistogram, ExponentialBuckets) {
  std::vector<double> expected = {0.5, 1.0, 2.0, 4.0};
  EXPECT_EQ(ExponentialBuckets(0.5, 2.0, 4), expected);
}

TEST(MetricsSpan, NestedSpansAggregateByPath) {
  MetricsRegistry registry;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan outer(&registry, "build");
    {
      ScopedSpan inner(&registry, "scan");
    }
    {
      ScopedSpan inner(&registry, "scan");
    }
    ScopedSpan other(&registry, "join");
  }
  EXPECT_EQ(registry.SpanAt({"build"}).count, 3u);
  EXPECT_EQ(registry.SpanAt({"build", "scan"}).count, 6u);
  EXPECT_EQ(registry.SpanAt({"build", "join"}).count, 3u);
  // "scan" exists only under "build", not at the root.
  EXPECT_EQ(registry.SpanAt({"scan"}).count, 0u);
  EXPECT_GE(registry.SpanAt({"build"}).total_seconds, 0.0);
}

TEST(MetricsSpan, SeparateThreadsMergeByName) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry]() {
      ScopedSpan outer(&registry, "work");
      ScopedSpan inner(&registry, "step");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.SpanAt({"work"}).count, 4u);
  EXPECT_EQ(registry.SpanAt({"work", "step"}).count, 4u);
}

TEST(MetricsNoop, DisabledHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.Inc(100);
  g.Set(1.0);
  h.Observe(5.0);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());

  // Null-registry resolvers hand back the same inert handles, and a null
  // ScopedSpan records nothing anywhere.
  Counter c2 = CounterFor(nullptr, "x");
  c2.Inc();
  EXPECT_FALSE(c2.enabled());
  EXPECT_FALSE(GaugeFor(nullptr, "x").enabled());
  EXPECT_FALSE(HistogramFor(nullptr, "x", {1.0}).enabled());
  {
    ScopedSpan span(nullptr, "ghost");
  }

  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("x"), 0u);
  EXPECT_EQ(registry.SpanAt({"ghost"}).count, 0u);
}

TEST(MetricsJson, EmptyRegistryIsWellFormed) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {},\n  \"spans\": []\n}\n");
}

TEST(MetricsJson, SnapshotContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Inc(7);
  registry.GetGauge("g.two").Set(1.5);
  registry.GetHistogram("h.three", {1.0, 2.0}).Observe(1.5);
  {
    ScopedSpan outer(&registry, "outer");
    ScopedSpan inner(&registry, "inner");
  }
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"c.one\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
}

TEST(MetricsJson, EscapesMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\nstuff").Inc();
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nstuff\": 1"),
            std::string::npos);
}

// ToJson must be safe to call while writers are mid-flight (the bench
// harness dumps the registry while pool threads may still be winding down).
// Run under TSan via tools/check.sh.
TEST(MetricsConcurrency, SnapshotDuringWrites) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("spin");
  Histogram h = registry.GetHistogram("spin_hist", {10.0, 100.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, c, h, &registry]() mutable {
      do {
        ScopedSpan span(&registry, "spin_span");
        c.Inc();
        h.Observe(42.0);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string json = registry.ToJson();
    EXPECT_FALSE(json.empty());
    (void)registry.SpanAt({"spin_span"});
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_GT(registry.CounterValue("spin"), 0u);
}

TEST(MetricsRegistryLifetime, FreshRegistryAfterDestruction) {
  // The thread-local trace cache keys on a process-unique registry id, so a
  // new registry allocated after an old one dies never sees stale traces.
  for (int i = 0; i < 3; ++i) {
    auto registry = std::make_unique<MetricsRegistry>();
    {
      ScopedSpan span(registry.get(), "ephemeral");
    }
    EXPECT_EQ(registry->SpanAt({"ephemeral"}).count, 1u);
  }
}

TEST(MetricsRegistryGlobal, IsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(MetricsHistogram, QuantileFromBucketCounts) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  // 10 observations <=1, 5 in (1,2], 4 in (2,4], 1 in (4,8], 0 overflow.
  const std::vector<uint64_t> counts = {10, 5, 4, 1, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.6), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 1.0), 8.0);
}

TEST(MetricsHistogram, QuantileEdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 0}, 0.99), 0.0);  // empty
  // Overflow observations report the last finite bound (conservative).
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 7}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({}, {}, 0.5), 0.0);
  // Quantiles are clamped to [0, 1].
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {3, 0, 0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {3, 0, 0}, -1.0), 1.0);
}

}  // namespace
}  // namespace lshap
