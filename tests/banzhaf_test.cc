#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "provenance/bool_expr.h"
#include "shapley/shapley.h"

namespace lshap {
namespace {

// Brute-force Banzhaf: fraction of coalitions E ⊆ vars∖{f} where f is
// pivotal.
ShapleyValues BruteBanzhaf(const Dnf& d) {
  ShapleyValues out;
  const auto vars = d.Variables();
  const size_t n = vars.size();
  for (size_t i = 0; i < n; ++i) {
    long double pivotal = 0.0L;
    const size_t bit = size_t{1} << i;
    for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
      if (mask & bit) continue;
      std::vector<FactId> without;
      std::vector<FactId> with;
      for (size_t j = 0; j < n; ++j) {
        if (mask & (size_t{1} << j)) {
          without.push_back(vars[j]);
          with.push_back(vars[j]);
        }
      }
      with.push_back(vars[i]);
      std::sort(with.begin(), with.end());
      if (d.Evaluate(with) && !d.Evaluate(without)) pivotal += 1.0L;
    }
    out[vars[i]] = static_cast<double>(
        pivotal / std::pow(2.0L, static_cast<long double>(n - 1)));
  }
  return out;
}

TEST(BanzhafTest, SingleFact) {
  const Dnf d(std::vector<Clause>{{5}});
  const auto v = ComputeBanzhafExactUnlimited(d);
  EXPECT_DOUBLE_EQ(v.at(5), 1.0);
}

TEST(BanzhafTest, ConjunctionAndDisjunction) {
  // x1 ∧ x2: each pivotal iff the other is present → 1/2.
  const auto conj = ComputeBanzhafExactUnlimited(Dnf(std::vector<Clause>{{1, 2}}));
  EXPECT_DOUBLE_EQ(conj.at(1), 0.5);
  EXPECT_DOUBLE_EQ(conj.at(2), 0.5);
  // x1 ∨ x2: each pivotal iff the other is absent → 1/2.
  const auto disj = ComputeBanzhafExactUnlimited(Dnf(std::vector<Clause>{{1}, {2}}));
  EXPECT_DOUBLE_EQ(disj.at(1), 0.5);
  EXPECT_DOUBLE_EQ(disj.at(2), 0.5);
}

TEST(BanzhafTest, UnlikeShapleyDoesNotSumToOne) {
  // 3-way disjunction: Banzhaf(x) = P(other two absent) = 1/4 each; the
  // total 3/4 ≠ 1 (Banzhaf is not efficient), while Shapley sums to 1.
  const Dnf d(std::vector<Clause>{{1}, {2}, {3}});
  const auto banzhaf = ComputeBanzhafExactUnlimited(d);
  EXPECT_DOUBLE_EQ(banzhaf.at(1), 0.25);
  const auto shapley = ComputeShapleyExactUnlimited(d);
  double sum_s = 0.0;
  for (const auto& [f, v] : shapley) sum_s += v;
  EXPECT_NEAR(sum_s, 1.0, 1e-12);
}

TEST(BanzhafTest, MatchesBruteForceOnRandomDnfs) {
  Rng rng(3030);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t num_vars = 2 + rng.NextBounded(9);
    std::vector<Clause> clauses;
    const size_t num_clauses = 1 + rng.NextBounded(5);
    for (size_t c = 0; c < num_clauses; ++c) {
      Clause clause;
      const size_t len = 1 + rng.NextBounded(3);
      for (size_t i = 0; i < len; ++i) {
        clause.push_back(static_cast<FactId>(rng.NextBounded(num_vars)));
      }
      clauses.push_back(clause);
    }
    const Dnf d(std::move(clauses));
    const auto exact = ComputeBanzhafExactUnlimited(d);
    const auto brute = BruteBanzhaf(d);
    ASSERT_EQ(exact.size(), brute.size());
    for (const auto& [f, v] : brute) {
      EXPECT_NEAR(exact.at(f), v, 1e-9) << "var " << f << " in "
                                        << d.ToString();
    }
  }
}

TEST(BanzhafTest, RankingUsuallyAgreesWithShapley) {
  // On hub-structured provenance the two indices share the top fact.
  const Dnf d(std::vector<Clause>{{0, 1, 10}, {0, 1, 11}, {0, 2, 12}});
  const auto shapley = ComputeShapleyExactUnlimited(d);
  const auto banzhaf = ComputeBanzhafExactUnlimited(d);
  EXPECT_EQ(RankByScore(shapley)[0], RankByScore(banzhaf)[0]);
}

}  // namespace
}  // namespace lshap
