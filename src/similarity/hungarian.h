#ifndef LSHAP_SIMILARITY_HUNGARIAN_H_
#define LSHAP_SIMILARITY_HUNGARIAN_H_

#include <vector>

namespace lshap {

// Maximum-weight bipartite matching (assignment) via the Hungarian algorithm
// with potentials, O(n^2 m). `weights[i][j]` is the non-negative weight of
// matching left node i to right node j; rectangular inputs are allowed and
// are padded internally. Returns, for each left node, the matched right node
// or -1. Every node on the smaller side is matched (zero-weight matches are
// possible and count toward the matching size).
std::vector<int> MaxWeightMatching(
    const std::vector<std::vector<double>>& weights);

// Total weight of a matching produced by MaxWeightMatching.
double MatchingWeight(const std::vector<std::vector<double>>& weights,
                      const std::vector<int>& match);

}  // namespace lshap

#endif  // LSHAP_SIMILARITY_HUNGARIAN_H_
