#ifndef LSHAP_SIMILARITY_KENDALL_H_
#define LSHAP_SIMILARITY_KENDALL_H_

#include <vector>

namespace lshap {

// Normalized Kendall tau distance between two rankings given as score
// vectors over a shared item universe (higher score = better rank). Ties are
// handled with the K^(1/2) convention of Fagin et al.: a pair tied in one
// ranking but ordered in the other costs 1/2; a pair ordered oppositely
// costs 1. The result is in [0, 1] (0 = identical rankings). A universe of
// fewer than two items has distance 0 by convention.
double KendallTauDistance(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace lshap

#endif  // LSHAP_SIMILARITY_KENDALL_H_
