#ifndef LSHAP_SIMILARITY_SIMILARITY_H_
#define LSHAP_SIMILARITY_SIMILARITY_H_

#include <vector>

#include "query/ast.h"
#include "relational/tuple.h"
#include "shapley/shapley.h"

namespace lshap {

// One output tuple together with the Shapley values of its lineage facts —
// the unit of comparison for rank-based similarity.
struct TupleContribution {
  OutputTuple tuple;
  ShapleyValues shapley;
};

// Syntax-based similarity (Section 2.3): Jaccard similarity of the queries'
// operation sets (projections, selections, equi-joins).
double SyntaxSimilarity(const Query& a, const Query& b);

// Witness-based similarity (Section 2.3): Jaccard similarity of the output
// tuple sets. Tuples compare by value, so queries with different projection
// clauses rarely share witnesses.
double WitnessSimilarity(const std::vector<OutputTuple>& a,
                         const std::vector<OutputTuple>& b);

// Rank-based similarity (Section 3.2): build the complete bipartite graph
// between the two queries' output tuples, weight each edge by
// 1 − KendallTauDistance between the tuples' fact rankings (over the union
// of the two lineages, facts absent from a lineage scoring 0), take a
// maximum-weight matching M and return Σ_e∈M w(e) / (|a| + |b| − |M|).
double RankSimilarity(const std::vector<TupleContribution>& a,
                      const std::vector<TupleContribution>& b);

}  // namespace lshap

#endif  // LSHAP_SIMILARITY_SIMILARITY_H_
