#include "similarity/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace lshap {

std::vector<int> MaxWeightMatching(
    const std::vector<std::vector<double>>& weights) {
  const size_t rows = weights.size();
  if (rows == 0) return {};
  const size_t cols = weights[0].size();
  for (const auto& row : weights) LSHAP_CHECK_EQ(row.size(), cols);
  if (cols == 0) return std::vector<int>(rows, -1);

  // Square the problem and convert to minimization. The classic potentials
  // formulation below (e-maxx style) is 1-indexed over an n x n cost matrix.
  const size_t n = std::max(rows, cols);
  double max_w = 0.0;
  for (const auto& row : weights) {
    for (double w : row) {
      LSHAP_CHECK_GE(w, 0.0);
      max_w = std::max(max_w, w);
    }
  }
  auto cost = [&](size_t i, size_t j) -> double {
    if (i < rows && j < cols) return max_w - weights[i][j];
    return max_w;  // dummy row/col
  };

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);     // p[j] = row matched to column j
  std::vector<size_t> way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> match(rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    const size_t i = p[j];
    if (i >= 1 && i <= rows && j <= cols) {
      match[i - 1] = static_cast<int>(j - 1);
    }
  }
  return match;
}

double MatchingWeight(const std::vector<std::vector<double>>& weights,
                      const std::vector<int>& match) {
  double total = 0.0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (match[i] >= 0) total += weights[i][static_cast<size_t>(match[i])];
  }
  return total;
}

}  // namespace lshap
