#include "similarity/similarity.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "similarity/hungarian.h"
#include "similarity/kendall.h"

namespace lshap {

double SyntaxSimilarity(const Query& a, const Query& b) {
  const std::set<std::string> ops_a = Operations(a);
  const std::set<std::string> ops_b = Operations(b);
  if (ops_a.empty() && ops_b.empty()) return 0.0;
  size_t intersection = 0;
  for (const auto& op : ops_a) {
    if (ops_b.count(op) > 0) ++intersection;
  }
  const size_t uni = ops_a.size() + ops_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double WitnessSimilarity(const std::vector<OutputTuple>& a,
                         const std::vector<OutputTuple>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<OutputTuple, OutputTupleHash> set_a(a.begin(), a.end());
  std::unordered_set<OutputTuple, OutputTupleHash> set_b(b.begin(), b.end());
  size_t intersection = 0;
  for (const auto& t : set_a) {
    if (set_b.count(t) > 0) ++intersection;
  }
  const size_t uni = set_a.size() + set_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double RankSimilarity(const std::vector<TupleContribution>& a,
                      const std::vector<TupleContribution>& b) {
  if (a.empty() || b.empty()) return 0.0;

  std::vector<std::vector<double>> weights(
      a.size(), std::vector<double>(b.size(), 0.0));
  std::vector<FactId> universe;
  std::vector<double> scores_a;
  std::vector<double> scores_b;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      // Union of the two lineages; facts missing from one side score 0.
      universe.clear();
      universe.reserve(a[i].shapley.size() + b[j].shapley.size());
      for (const auto& [f, v] : a[i].shapley) universe.push_back(f);
      for (const auto& [f, v] : b[j].shapley) universe.push_back(f);
      std::sort(universe.begin(), universe.end());
      universe.erase(std::unique(universe.begin(), universe.end()),
                     universe.end());
      scores_a.assign(universe.size(), 0.0);
      scores_b.assign(universe.size(), 0.0);
      for (size_t u = 0; u < universe.size(); ++u) {
        auto it_a = a[i].shapley.find(universe[u]);
        if (it_a != a[i].shapley.end()) scores_a[u] = it_a->second;
        auto it_b = b[j].shapley.find(universe[u]);
        if (it_b != b[j].shapley.end()) scores_b[u] = it_b->second;
      }
      weights[i][j] = 1.0 - KendallTauDistance(scores_a, scores_b);
    }
  }

  const std::vector<int> match = MaxWeightMatching(weights);
  const double total = MatchingWeight(weights, match);
  const double matching_size =
      static_cast<double>(std::min(a.size(), b.size()));
  const double denom =
      static_cast<double>(a.size() + b.size()) - matching_size;
  return total / denom;
}

}  // namespace lshap
