#include "similarity/kendall.h"

#include "common/check.h"

namespace lshap {

double KendallTauDistance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  LSHAP_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double penalty = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;           // tied in both: free
      if (da == 0.0 || db == 0.0) {
        penalty += 0.5;                                // tied in exactly one
      } else if ((da > 0.0) != (db > 0.0)) {
        penalty += 1.0;                                // discordant
      }
    }
  }
  const double total_pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return penalty / total_pairs;
}

}  // namespace lshap
