#ifndef LSHAP_DATASETS_IMDB_H_
#define LSHAP_DATASETS_IMDB_H_

#include <cstdint>
#include <memory>

#include "query/generator.h"
#include "relational/database.h"

namespace lshap {

// Size knobs for the synthetic IMDB-like database. Defaults are scaled so
// that query evaluation plus exact Shapley ground truth for a ~100-query log
// completes in seconds while preserving the paper's lineage statistics
// (average ≈18 contributing facts per result, heavy-tailed fact reuse).
struct ImdbConfig {
  uint64_t seed = 7;
  size_t num_companies = 24;
  size_t num_actors = 120;
  size_t num_movies = 220;
  size_t num_roles = 700;
  // Zipf exponents controlling reuse skew: popular companies produce many
  // movies, popular actors play many roles.
  double company_zipf = 0.9;
  double actor_zipf = 0.8;
  // Probability that a nullable non-key cell (companies.country, actors.age,
  // movies.year) is NULL instead of a drawn value. Join-key columns never go
  // null, so the join graph's FK structure is preserved. The per-cell draw
  // is guarded: the default of 0 consumes NO RNG draws, keeping default
  // databases byte-identical to the pre-null generator (pinned by the
  // fact-table fingerprints in null_semantics_test).
  double null_prob = 0.0;
};

// The generated database together with its join graph (which the query
// generator consumes). Schema mirrors the paper's running example:
//   movies(title, year, company)
//   actors(name, age)
//   companies(name, country)
//   roles(movie, actor)
struct GeneratedDb {
  std::unique_ptr<Database> db;
  SchemaGraph graph;
};

GeneratedDb MakeImdbDatabase(const ImdbConfig& config);

}  // namespace lshap

#endif  // LSHAP_DATASETS_IMDB_H_
