#include "datasets/academic.h"

#include <iterator>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace lshap {

namespace {

const char* const kOrgStems[] = {
    "University of California San Diego",
    "University of Michigan",
    "Tel Aviv University",
    "ETH Zurich",
    "MIT",
    "Stanford University",
    "Tsinghua University",
    "University of Tokyo",
    "Oxford University",
    "TU Munich",
};

const char* const kDomainNames[] = {
    "Software Engineering", "Databases",       "Machine Learning",
    "Computer Networks",    "Security",        "Theory",
    "Graphics",             "Systems",         "HCI",
    "Bioinformatics",       "Robotics",        "Compilers",
};

const char* const kConfStems[] = {
    "SIGMOD", "VLDB",  "ICDE", "EDBT",  "PODS", "CAV",  "ISSRE",
    "NeurIPS", "ICML", "KDD",  "WWW",   "OSDI", "SOSP", "CCS",
};

const char* const kPaperAdjectives[] = {
    "Efficient", "Scalable", "Robust",    "Adaptive", "Incremental",
    "Parallel",  "Learned",  "Declarative", "Unified", "Provenance-Aware",
};

const char* const kPaperNouns[] = {
    "Query Processing",  "Fact Attribution",   "Index Structures",
    "Stream Processing", "Data Cleaning",      "View Maintenance",
    "Model Training",    "Graph Analytics",    "Consensus Protocols",
    "Access Control",
};

const char* const kAuthorFirst[] = {
    "Dana", "Daniel", "Nave",  "Maya",  "Omer", "Yael", "Amir",
    "Noa",  "Eli",    "Tamar", "Gil",   "Rona", "Adi",  "Ben",
};

const char* const kAuthorLast[] = {
    "Arad",    "Deutch", "Frost",  "Levi",   "Cohen", "Mizrahi",
    "Peretz",  "Biton",  "Avital", "Shaked", "Golan", "Navon",
};

}  // namespace

GeneratedDb MakeAcademicDatabase(const AcademicConfig& config) {
  Rng rng(config.seed);
  auto db = std::make_unique<Database>("academic");
  LSHAP_CHECK(config.null_prob >= 0.0 && config.null_prob <= 1.0);
  // Guarded null draw (see AcademicConfig::null_prob): at the default of 0
  // this never touches the RNG, preserving the pre-null draw interleaving.
  const auto draw_null = [&rng, &config]() {
    return config.null_prob > 0.0 && rng.NextDouble() < config.null_prob;
  };

  LSHAP_CHECK(db->AddTable(Schema("organization",
                                  {{"id", ColumnType::kInt},
                                   {"name", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("author",
                                  {{"id", ColumnType::kInt},
                                   {"name", ColumnType::kString},
                                   {"org_id", ColumnType::kInt},
                                   {"paper_count", ColumnType::kInt},
                                   {"citation_count", ColumnType::kInt}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("publication",
                                  {{"pid", ColumnType::kInt},
                                   {"title", ColumnType::kString},
                                   {"year", ColumnType::kInt},
                                   {"cid", ColumnType::kInt},
                                   {"citations", ColumnType::kInt}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("writes",
                                  {{"author_id", ColumnType::kInt},
                                   {"pub_id", ColumnType::kInt}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("conference",
                                  {{"cid", ColumnType::kInt},
                                   {"name", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("domain",
                                  {{"did", ColumnType::kInt},
                                   {"name", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("domain_conference",
                                  {{"cid", ColumnType::kInt},
                                   {"did", ColumnType::kInt}}))
                  .ok());

  // Organizations — no RNG involved, so this table uses the pure
  // column-at-a-time ingest shape (see relational/table.h); the RNG-driven
  // tables below stage RowBatches to keep their per-row draw order.
  {
    TableAppender organizations = db->AppenderFor("organization");
    std::vector<int64_t> ids(config.num_organizations);
    std::vector<std::string> names;
    names.reserve(config.num_organizations);
    for (size_t i = 0; i < config.num_organizations; ++i) {
      ids[i] = static_cast<int64_t>(i);
      std::string name = kOrgStems[i % std::size(kOrgStems)];
      if (i >= std::size(kOrgStems)) {
        name += StrFormat(" Campus %zu", i / std::size(kOrgStems) + 1);
      }
      names.push_back(std::move(name));
    }
    organizations.AppendColumn(0, std::span<const int64_t>(ids))
        .AppendColumn(1, std::span<const std::string>(names))
        .CommitRows();
  }

  // Authors.
  {
    TableAppender authors = db->AppenderFor("author");
    RowBatch batch(authors.schema());
    for (size_t i = 0; i < config.num_authors; ++i) {
      std::string name =
          std::string(kAuthorFirst[rng.NextBounded(std::size(kAuthorFirst))]) +
          " " + kAuthorLast[rng.NextBounded(std::size(kAuthorLast))] +
          StrFormat(" #%zu", i);
      const int64_t org =
          static_cast<int64_t>(rng.NextBounded(config.num_organizations));
      const int64_t papers = rng.NextInt(1, 160);
      const int64_t citations = papers * rng.NextInt(2, 90);
      batch.Begin().Int(static_cast<int64_t>(i)).Str(name).Int(org);
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Int(papers);
      }
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Int(citations);
      }
      batch.End();
    }
    authors.Append(batch);
  }

  // Conferences, domains and their many-to-many bridge. The first two are
  // RNG-free: columnar ingest again.
  {
    TableAppender conferences = db->AppenderFor("conference");
    std::vector<int64_t> ids(config.num_conferences);
    std::vector<std::string> names;
    names.reserve(config.num_conferences);
    for (size_t i = 0; i < config.num_conferences; ++i) {
      ids[i] = static_cast<int64_t>(i);
      std::string name = kConfStems[i % std::size(kConfStems)];
      if (i >= std::size(kConfStems)) {
        name += StrFormat(" Workshop %zu", i / std::size(kConfStems));
      }
      names.push_back(std::move(name));
    }
    conferences.AppendColumn(0, std::span<const int64_t>(ids))
        .AppendColumn(1, std::span<const std::string>(names))
        .CommitRows();
  }
  {
    TableAppender domains = db->AppenderFor("domain");
    std::vector<int64_t> ids(config.num_domains);
    std::vector<std::string_view> names(config.num_domains);
    for (size_t i = 0; i < config.num_domains; ++i) {
      ids[i] = static_cast<int64_t>(i);
      names[i] = kDomainNames[i % std::size(kDomainNames)];
    }
    domains.AppendColumn(0, std::span<const int64_t>(ids))
        .AppendColumn(1, std::span<const std::string_view>(names))
        .CommitRows();
  }
  {
    TableAppender bridge = db->AppenderFor("domain_conference");
    RowBatch batch(bridge.schema());
    std::unordered_set<uint64_t> seen;
    size_t attempts = 0;
    while (batch.num_rows() < config.num_domain_conference &&
           attempts < config.num_domain_conference * 20) {
      ++attempts;
      const uint64_t cid = rng.NextBounded(config.num_conferences);
      const uint64_t did = rng.NextBounded(config.num_domains);
      if (!seen.insert(cid * 1000 + did).second) continue;
      batch.Begin()
          .Int(static_cast<int64_t>(cid))
          .Int(static_cast<int64_t>(did))
          .End();
    }
    bridge.Append(batch);
  }

  // Publications, with Zipf-skewed conference popularity.
  ZipfSampler conf_sampler(config.num_conferences, config.conference_zipf);
  {
    TableAppender publications = db->AppenderFor("publication");
    RowBatch batch(publications.schema());
    for (size_t i = 0; i < config.num_publications; ++i) {
      std::string title =
          std::string(
              kPaperAdjectives[rng.NextBounded(std::size(kPaperAdjectives))]) +
          " " + kPaperNouns[rng.NextBounded(std::size(kPaperNouns))] +
          StrFormat(" v%zu", i);
      const int64_t year = rng.NextInt(2000, 2023);
      const int64_t cid = static_cast<int64_t>(conf_sampler.Sample(rng));
      const int64_t citations = rng.NextInt(0, 400);
      batch.Begin().Int(static_cast<int64_t>(i)).Str(title);
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Int(year);
      }
      batch.Int(cid);
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Int(citations);
      }
      batch.End();
    }
    publications.Append(batch);
  }

  // Authorship, with Zipf-skewed author productivity.
  ZipfSampler author_sampler(config.num_authors, config.author_zipf);
  {
    TableAppender writes = db->AppenderFor("writes");
    RowBatch batch(writes.schema());
    std::unordered_set<uint64_t> seen;
    size_t attempts = 0;
    while (batch.num_rows() < config.num_writes &&
           attempts < config.num_writes * 10) {
      ++attempts;
      const uint64_t author = author_sampler.Sample(rng);
      const uint64_t pub = rng.NextBounded(config.num_publications);
      if (!seen.insert(author * 1000000 + pub).second) continue;
      batch.Begin()
          .Int(static_cast<int64_t>(author))
          .Int(static_cast<int64_t>(pub))
          .End();
    }
    writes.Append(batch);
  }

  // Ingest is complete: freeze the dictionary so ordered/prefix string
  // predicates evaluate over lexicographic ranks instead of text.
  db->FreezeStringOrder();

  SchemaGraph graph;
  graph.tables = {"organization", "author",    "publication", "writes",
                  "conference",   "domain",    "domain_conference"};
  graph.edges = {
      {{"author", "org_id"}, {"organization", "id"}},
      {{"writes", "author_id"}, {"author", "id"}},
      {{"writes", "pub_id"}, {"publication", "pid"}},
      {{"publication", "cid"}, {"conference", "cid"}},
      {{"domain_conference", "cid"}, {"conference", "cid"}},
      {{"domain_conference", "did"}, {"domain", "did"}},
  };
  return {std::move(db), std::move(graph)};
}

}  // namespace lshap
