#include "datasets/imdb.h"

#include <iterator>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace lshap {

namespace {

const char* const kCompanyStems[] = {
    "Universal", "Warner",  "Paramount", "Columbia", "Fox",
    "Lionsgate", "Miramax", "NewLine",   "Orion",    "Gaumont",
    "Studio",    "Castle",  "Summit",    "Vertigo",  "Apex",
};

const char* const kCountries[] = {"USA", "USA", "USA", "UK",
                                  "France", "Germany", "Canada"};

const char* const kTitleAdjectives[] = {
    "Dark",  "Silent", "Golden", "Lost",   "Final", "Hidden",
    "Iron",  "Last",   "Broken", "Crimson", "Frozen", "Wild",
};

const char* const kTitleNouns[] = {
    "Empire", "Horizon", "Garden", "Witness", "Signal", "Harbor",
    "Engine", "Mirror",  "Island", "Canyon",  "Letter", "Voyage",
};

const char* const kFirstNames[] = {
    "Alice", "Bob",   "Carol", "David", "Erin",  "Frank", "Grace",
    "Heidi", "Ivan",  "Judy",  "Karl",  "Laura", "Mike",  "Nina",
    "Oscar", "Peggy", "Quinn", "Rita",  "Sam",   "Tina",
};

const char* const kLastNames[] = {
    "Smith", "Jones", "Brown", "Davis", "Miller", "Wilson", "Moore",
    "Clark", "Lewis", "Walker", "Young", "King",   "Baron",  "Hale",
};

}  // namespace

GeneratedDb MakeImdbDatabase(const ImdbConfig& config) {
  Rng rng(config.seed);
  auto db = std::make_unique<Database>("imdb");
  LSHAP_CHECK(config.null_prob >= 0.0 && config.null_prob <= 1.0);
  // Guarded null draw (see ImdbConfig::null_prob): at the default of 0 this
  // never touches the RNG, so the draw interleaving — and therefore every
  // generated cell — matches the pre-null generator exactly.
  const auto draw_null = [&rng, &config]() {
    return config.null_prob > 0.0 && rng.NextDouble() < config.null_prob;
  };

  LSHAP_CHECK(db->AddTable(Schema("companies",
                                  {{"name", ColumnType::kString},
                                   {"country", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("actors", {{"name", ColumnType::kString},
                                             {"age", ColumnType::kInt}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("movies",
                                  {{"title", ColumnType::kString},
                                   {"year", ColumnType::kInt},
                                   {"company", ColumnType::kString}}))
                  .ok());
  LSHAP_CHECK(db->AddTable(Schema("roles", {{"movie", ColumnType::kString},
                                            {"actor", ColumnType::kString}}))
                  .ok());

  // Companies. Each table is staged into a RowBatch and appended in one
  // call — the batch ingest path (see relational/table.h). The RNG draws
  // stay interleaved exactly as the old row-at-a-time loops made them, so
  // generated content is unchanged.
  TableAppender companies = db->AppenderFor("companies");
  std::vector<std::string> company_names;
  company_names.reserve(config.num_companies);
  constexpr size_t kNumStems = std::size(kCompanyStems);
  {
    RowBatch batch(companies.schema());
    for (size_t i = 0; i < config.num_companies; ++i) {
      std::string name = kCompanyStems[i % kNumStems];
      if (i >= kNumStems) name += StrFormat(" %zu", i / kNumStems + 1);
      batch.Begin().Str(name);
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Str(kCountries[rng.NextBounded(std::size(kCountries))]);
      }
      batch.End();
      company_names.push_back(std::move(name));
    }
    companies.Append(batch);
  }

  // Actors.
  TableAppender actors = db->AppenderFor("actors");
  std::vector<std::string> actor_names;
  actor_names.reserve(config.num_actors);
  {
    RowBatch batch(actors.schema());
    for (size_t i = 0; i < config.num_actors; ++i) {
      std::string name =
          std::string(kFirstNames[rng.NextBounded(std::size(kFirstNames))]) +
          " " + kLastNames[rng.NextBounded(std::size(kLastNames))];
      name += StrFormat(" #%zu", i);  // ensure uniqueness
      batch.Begin().Str(name);
      if (draw_null()) {
        batch.Null();
      } else {
        batch.Int(rng.NextInt(18, 80));
      }
      batch.End();
      actor_names.push_back(std::move(name));
    }
    actors.Append(batch);
  }

  // Movies, with Zipf-skewed company popularity.
  TableAppender movies = db->AppenderFor("movies");
  ZipfSampler company_sampler(config.num_companies, config.company_zipf);
  std::vector<std::string> movie_titles;
  movie_titles.reserve(config.num_movies);
  {
    RowBatch batch(movies.schema());
    for (size_t i = 0; i < config.num_movies; ++i) {
      std::string title =
          std::string(
              kTitleAdjectives[rng.NextBounded(std::size(kTitleAdjectives))]) +
          " " + kTitleNouns[rng.NextBounded(std::size(kTitleNouns))];
      title += StrFormat(" (%zu)", i);  // ensure uniqueness
      const bool year_null = draw_null();
      const int64_t year = year_null ? 0 : rng.NextInt(1990, 2023);
      const std::string& company = company_names[company_sampler.Sample(rng)];
      batch.Begin().Str(title);
      if (year_null) {
        batch.Null();
      } else {
        batch.Int(year);
      }
      batch.Str(company).End();
      movie_titles.push_back(std::move(title));
    }
    movies.Append(batch);
  }

  // Roles, with Zipf-skewed actor popularity; duplicates are skipped.
  TableAppender roles = db->AppenderFor("roles");
  ZipfSampler actor_sampler(config.num_actors, config.actor_zipf);
  std::unordered_set<std::string> seen_roles;
  {
    RowBatch batch(roles.schema());
    size_t attempts = 0;
    while (batch.num_rows() < config.num_roles &&
           attempts < config.num_roles * 10) {
      ++attempts;
      const std::string& movie =
          movie_titles[rng.NextBounded(movie_titles.size())];
      const std::string& actor = actor_names[actor_sampler.Sample(rng)];
      if (!seen_roles.insert(movie + "\x1f" + actor).second) continue;
      batch.Begin().Str(movie).Str(actor).End();
    }
    roles.Append(batch);
  }

  // Ingest is complete: freeze the dictionary so ordered/prefix string
  // predicates evaluate over lexicographic ranks instead of text.
  db->FreezeStringOrder();

  SchemaGraph graph;
  graph.tables = {"companies", "actors", "movies", "roles"};
  graph.edges = {
      {{"movies", "title"}, {"roles", "movie"}},
      {{"actors", "name"}, {"roles", "actor"}},
      {{"movies", "company"}, {"companies", "name"}},
  };
  return {std::move(db), std::move(graph)};
}

}  // namespace lshap
