#ifndef LSHAP_DATASETS_ACADEMIC_H_
#define LSHAP_DATASETS_ACADEMIC_H_

#include <cstdint>

#include "datasets/imdb.h"  // for GeneratedDb

namespace lshap {

// Size knobs for the synthetic Microsoft-Academic-like database. Defaults
// target the paper's reported shape for this corpus: ~312 results per query
// and ~8 contributing facts per result, with a heavy tail.
struct AcademicConfig {
  uint64_t seed = 11;
  size_t num_organizations = 18;
  size_t num_authors = 140;
  size_t num_publications = 320;
  size_t num_writes = 520;
  size_t num_conferences = 32;
  size_t num_domains = 10;
  size_t num_domain_conference = 48;
  double author_zipf = 0.9;
  double conference_zipf = 0.7;
  // Probability that a nullable non-key cell (author.paper_count,
  // author.citation_count, publication.year, publication.citations) is NULL.
  // Ids and FK columns never go null. Guarded draw — the default of 0
  // consumes no RNG and keeps default databases byte-identical to the
  // pre-null generator (see ImdbConfig::null_prob).
  double null_prob = 0.0;
};

// Schema mirrors the Academic examples in the paper (Figure 8):
//   organization(id, name)
//   author(id, name, org_id, paper_count, citation_count)
//   publication(pid, title, year, cid, citations)
//   writes(author_id, pub_id)
//   conference(cid, name)
//   domain(did, name)
//   domain_conference(cid, did)
GeneratedDb MakeAcademicDatabase(const AcademicConfig& config);

}  // namespace lshap

#endif  // LSHAP_DATASETS_ACADEMIC_H_
