#ifndef LSHAP_CORPUS_STREAM_H_
#define LSHAP_CORPUS_STREAM_H_

// Shard-at-a-time corpus access (DESIGN.md §10.5).
//
// A CorpusStream presents a corpus as K shards of entries plus the global
// split/stats metadata, without promising that all entries are resident at
// once. The trainer and evaluator consume streams, so their peak corpus
// memory is bounded by the largest shard (times the cursor lookahead), not
// the corpus. Two implementations:
//
//   InMemoryCorpusStream  — a resident Corpus viewed as one shard; slices
//                           alias the corpus (zero copies), so streaming
//                           consumers degrade to exactly the historical
//                           resident behaviour.
//   ShardedCorpusStream   — packed binary shards (format.h) decoded on
//                           demand, with resident-entry accounting that
//                           proves the boundedness claim in tests/benches.
//
// ShardCursor walks a stream's shards in a caller-chosen order with
// lookahead prefetch on a ThreadPool: while the consumer processes shard
// i, shard i+1 decodes on a worker.

#include <atomic>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "corpus/corpus.h"
#include "corpus/format.h"

namespace lshap {

// FaultInjector site polled at the head of ShardedCorpusStream::ReadShard.
inline constexpr char kSiteStreamRead[] = "corpus.stream.read";

// One decoded shard, packaged as a Corpus chunk so FactScorer::Score and
// everything else written against `const Corpus&` consumes slices
// unchanged. `corpus->entries[i]` is the shard entry with global index
// `base_entry + i` (the index space of the train/dev/test splits).
//
// InMemoryCorpusStream's single slice aliases the *whole* resident corpus
// (base_entry 0, split vectors included), so corpus-global consumers —
// e.g. the NearestQueries baselines, which scan train entries — behave
// exactly as before. ShardedCorpusStream slices hold only the shard's
// entries with empty splits; consumers that need corpus-global state must
// use a resident corpus.
struct CorpusSlice {
  size_t shard_index = 0;
  size_t base_entry = 0;
  std::shared_ptr<const Corpus> corpus;

  size_t size() const { return corpus ? corpus->entries.size() : 0; }
};

// Read-only sharded view of a corpus. Implementations must make ReadShard
// safe to call from multiple threads concurrently (ShardCursor prefetches
// on pool workers).
class CorpusStream {
 public:
  virtual ~CorpusStream() = default;

  virtual const Database& db() const = 0;
  virtual size_t num_shards() const = 0;
  virtual size_t num_entries() const = 0;
  // Global index of shard s's first entry / its entry count.
  virtual size_t shard_base(size_t s) const = 0;
  virtual size_t shard_entries(size_t s) const = 0;
  virtual const std::vector<size_t>& train_idx() const = 0;
  virtual const std::vector<size_t>& dev_idx() const = 0;
  virtual const std::vector<size_t>& test_idx() const = 0;
  virtual const BuildStats& stats() const = 0;

  virtual Result<CorpusSlice> ReadShard(size_t s) const = 0;

  // Shard index holding global entry `i` (shards partition the entry range
  // contiguously).
  size_t ShardOf(size_t i) const;
};

// A resident Corpus as a single-shard stream. The corpus must outlive the
// stream; slices alias its entries without copying.
class InMemoryCorpusStream : public CorpusStream {
 public:
  explicit InMemoryCorpusStream(const Corpus& corpus);

  const Database& db() const override { return *corpus_->db; }
  size_t num_shards() const override { return 1; }
  size_t num_entries() const override { return corpus_->entries.size(); }
  size_t shard_base(size_t) const override { return 0; }
  size_t shard_entries(size_t) const override {
    return corpus_->entries.size();
  }
  const std::vector<size_t>& train_idx() const override {
    return corpus_->train_idx;
  }
  const std::vector<size_t>& dev_idx() const override {
    return corpus_->dev_idx;
  }
  const std::vector<size_t>& test_idx() const override {
    return corpus_->test_idx;
  }
  const BuildStats& stats() const override { return corpus_->stats; }

  Result<CorpusSlice> ReadShard(size_t s) const override;

 private:
  const Corpus* corpus_;
};

// Packed binary shards decoded on demand. Open validates the manifest
// against the database (name/fact count, then fact-table fingerprint);
// each ReadShard re-validates its shard file's checksum and fingerprint.
class ShardedCorpusStream : public CorpusStream {
 public:
  static Result<ShardedCorpusStream> Open(const Database* db,
                                          const std::string& path);

  const Database& db() const override { return *db_; }
  size_t num_shards() const override { return manifest_.num_shards(); }
  size_t num_entries() const override {
    return static_cast<size_t>(manifest_.total_entries());
  }
  size_t shard_base(size_t s) const override { return bases_[s]; }
  size_t shard_entries(size_t s) const override {
    return static_cast<size_t>(manifest_.shard_entries[s]);
  }
  const std::vector<size_t>& train_idx() const override {
    return manifest_.train_idx;
  }
  const std::vector<size_t>& dev_idx() const override {
    return manifest_.dev_idx;
  }
  const std::vector<size_t>& test_idx() const override {
    return manifest_.test_idx;
  }
  const BuildStats& stats() const override { return manifest_.stats; }

  Result<CorpusSlice> ReadShard(size_t s) const override;

  const CorpusManifest& manifest() const { return manifest_; }

  // Attaches a fault injector to every subsequent ReadShard (polled at
  // kSiteStreamRead before the shard file opens, then threaded through
  // ShardReader's kSiteShardOpen / kSiteShardRecord sites). Injected
  // faults surface as a clean non-OK ReadShard with no slice published
  // and no resident-entry accounting — never partial state. Not owned;
  // set once before concurrent readers start.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Resident-entry accounting: decoded entries currently alive across all
  // outstanding slices, and the high-water mark. This is the measured
  // backing for "trainer memory is bounded by shard size, not corpus
  // size" — a streaming consumer's peak stays ~2 shards (current +
  // prefetch) however many shards the corpus has.
  size_t resident_entries() const;
  size_t peak_resident_entries() const;

 private:
  struct ResidentCounter {
    std::atomic<size_t> resident{0};
    std::atomic<size_t> peak{0};
  };

  ShardedCorpusStream() = default;

  const Database* db_ = nullptr;
  std::string path_;
  uint64_t fingerprint_ = 0;
  CorpusManifest manifest_;
  std::vector<size_t> bases_;
  std::shared_ptr<ResidentCounter> counter_;
  FaultInjector* fault_ = nullptr;  // not owned; may be null
};

// Walks a stream's shards with lookahead prefetch. While the consumer
// holds slice i, slice i+1 decodes on `pool` (synchronously in Next when
// pool is null). At most two decoded shards are alive at once — the one
// just returned and the prefetch — as long as the consumer drops each
// slice before the next Next() call.
class ShardCursor {
 public:
  // `visit_order` selects which shards to visit and in what order; empty
  // means all shards in shard order. Skipping shards a pass does not need
  // (e.g. dev-only evaluation) is just a shorter order. The stream must
  // outlive the cursor.
  ShardCursor(const CorpusStream& stream, ThreadPool* pool = nullptr,
              std::vector<size_t> visit_order = {});
  ~ShardCursor();

  ShardCursor(const ShardCursor&) = delete;
  ShardCursor& operator=(const ShardCursor&) = delete;

  bool Done() const { return next_ >= order_.size() && inflight_.empty(); }

  // Returns the next slice in visit order; kFailedPrecondition when called
  // past Done().
  Result<CorpusSlice> Next();

 private:
  void PrefetchOne();

  const CorpusStream& stream_;
  ThreadPool* pool_;
  std::vector<size_t> order_;
  size_t next_ = 0;  // next order_ position to schedule
  std::deque<std::future<Result<CorpusSlice>>> inflight_;
};

}  // namespace lshap

#endif  // LSHAP_CORPUS_STREAM_H_
