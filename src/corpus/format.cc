#include "corpus/format.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/fileio.h"
#include "common/strings.h"
#include "query/parser.h"

namespace lshap {

namespace {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// Value tags inside packed tuples.
enum ValueTag : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValDouble = 2,
  kValString = 3,
};

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsToFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

void PutString(std::string& out, std::string_view s) {
  PutVarint(out, s.size());
  out.append(s.data(), s.size());
}

void PutDouble(std::string& out, double d) { PutFixed64(out, DoubleBits(d)); }

void PutFixed32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void EncodeValue(const Value& v, std::string& out) {
  if (v.is_null()) {
    out.push_back(static_cast<char>(kValNull));
  } else if (v.is_int()) {
    out.push_back(static_cast<char>(kValInt));
    PutZigzag(out, v.AsInt());
  } else if (v.is_double()) {
    out.push_back(static_cast<char>(kValDouble));
    PutDouble(out, v.AsDouble());
  } else {
    out.push_back(static_cast<char>(kValString));
    PutString(out, v.AsString());
  }
}

void EncodeTuple(const OutputTuple& t, std::string& out) {
  PutVarint(out, t.size());
  for (const Value& v : t) EncodeValue(v, out);
}

// Sanity ceilings on decoded counts, so a corrupted length varint fails
// with kInvalidArgument instead of a gigabyte allocation. Generously above
// anything the builder produces.
inline constexpr uint64_t kMaxArity = 1 << 10;
inline constexpr uint64_t kMaxListLen = 1 << 26;

Result<Value> DecodeValue(ByteReader& r) {
  std::string_view tag = r.Bytes(1);
  if (!r.ok()) return Status::InvalidArgument("truncated value tag");
  switch (static_cast<uint8_t>(tag[0])) {
    case kValNull:
      return Value();
    case kValInt:
      return Value(r.Zigzag());
    case kValDouble:
      return Value(BitsToDouble(r.Fixed64()));
    case kValString: {
      uint64_t n = r.Varint();
      if (!r.ok() || n > r.remaining()) {
        return Status::InvalidArgument("truncated string value");
      }
      return Value(std::string(r.Bytes(static_cast<size_t>(n))));
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown value tag %u", static_cast<uint8_t>(tag[0])));
  }
}

Result<OutputTuple> DecodeTuple(ByteReader& r) {
  const uint64_t arity = r.Varint();
  if (!r.ok() || arity > kMaxArity) {
    return Status::InvalidArgument("bad tuple arity");
  }
  OutputTuple t;
  t.reserve(static_cast<size_t>(arity));
  for (uint64_t i = 0; i < arity; ++i) {
    auto v = DecodeValue(r);
    if (!v.ok()) return v.status();
    t.push_back(std::move(*v));
  }
  if (!r.ok()) return Status::InvalidArgument("truncated tuple");
  return t;
}

void PutStatsMap(std::string& out,
                 const std::map<std::string, size_t>& trips) {
  PutVarint(out, trips.size());
  for (const auto& [site, count] : trips) {
    PutString(out, site);
    PutVarint(out, count);
  }
}

Result<std::map<std::string, size_t>> ReadStatsMap(ByteReader& r) {
  std::map<std::string, size_t> trips;
  const uint64_t n = r.Varint();
  if (!r.ok() || n > kMaxListLen) {
    return Status::InvalidArgument("bad budget-trip count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t len = r.Varint();
    if (!r.ok() || len > r.remaining()) {
      return Status::InvalidArgument("truncated budget-trip site");
    }
    std::string site(r.Bytes(static_cast<size_t>(len)));
    const uint64_t count = r.Varint();
    if (!r.ok()) return Status::InvalidArgument("truncated budget-trip count");
    trips[std::move(site)] = static_cast<size_t>(count);
  }
  return trips;
}

Result<std::vector<size_t>> ReadIndexVector(ByteReader& r,
                                            uint64_t num_entries) {
  const uint64_t n = r.Varint();
  if (!r.ok() || n > kMaxListLen) {
    return Status::InvalidArgument("bad split index count");
  }
  std::vector<size_t> idx;
  idx.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = r.Varint();
    if (!r.ok()) return Status::InvalidArgument("truncated split index");
    if (v >= num_entries) {
      return Status::InvalidArgument("split index out of range");
    }
    idx.push_back(static_cast<size_t>(v));
  }
  return idx;
}

}  // namespace

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void PutZigzag(std::string& out, int64_t v) {
  PutVarint(out, (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63));
}

uint64_t ByteReader::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!ok_ || pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    const uint8_t b = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  ok_ = false;  // > 10 continuation bytes: not a valid varint
  return 0;
}

int64_t ByteReader::Zigzag() {
  const uint64_t v = Varint();
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

uint64_t ByteReader::Fixed64() {
  if (!ok_ || size_ - pos_ < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

std::string_view ByteReader::Bytes(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string_view out(data_ + pos_, n);
  pos_ += n;
  return out;
}

uint64_t FnvChecksum(const char* data, size_t n) {
  uint64_t h = kFnvOffset;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void EncodeCorpusEntry(const CorpusEntry& entry, ShapleyPayload payload,
                       std::string& out) {
  PutString(out, entry.query.id);
  PutString(out, entry.query.ToSql());
  PutVarint(out, entry.all_outputs.size());
  for (const OutputTuple& t : entry.all_outputs) EncodeTuple(t, out);
  PutVarint(out, entry.contributions.size());
  for (const TupleContribution& c : entry.contributions) {
    EncodeTuple(c.tuple, out);
    // Lineage fact ids sorted and delta-coded; Shapley values follow in
    // the same order, so the two arrays zip back together on decode.
    std::vector<FactId> facts;
    facts.reserve(c.shapley.size());
    for (const auto& [f, v] : c.shapley) facts.push_back(f);
    std::sort(facts.begin(), facts.end());
    PutVarint(out, facts.size());
    FactId prev = 0;
    for (size_t i = 0; i < facts.size(); ++i) {
      PutVarint(out, facts[i] - (i == 0 ? 0 : prev));
      prev = facts[i];
    }
    for (FactId f : facts) {
      const double v = c.shapley.at(f);
      if (payload == ShapleyPayload::kFloat64) {
        PutDouble(out, v);
      } else {
        PutFixed32(out, FloatBits(static_cast<float>(v)));
      }
    }
  }
}

Result<RawRecord> DecodeRawRecord(ByteReader& r, ShapleyPayload payload,
                                  size_t num_db_facts) {
  RawRecord rec;
  uint64_t len = r.Varint();
  if (!r.ok() || len > r.remaining()) {
    return Status::InvalidArgument("truncated query id");
  }
  rec.query_id = std::string(r.Bytes(static_cast<size_t>(len)));
  len = r.Varint();
  if (!r.ok() || len > r.remaining()) {
    return Status::InvalidArgument("truncated query sql");
  }
  rec.sql = std::string(r.Bytes(static_cast<size_t>(len)));

  const uint64_t num_outputs = r.Varint();
  if (!r.ok() || num_outputs > kMaxListLen) {
    return Status::InvalidArgument("bad output count");
  }
  rec.all_outputs.reserve(static_cast<size_t>(num_outputs));
  for (uint64_t i = 0; i < num_outputs; ++i) {
    auto t = DecodeTuple(r);
    if (!t.ok()) return t.status();
    rec.all_outputs.push_back(std::move(*t));
  }

  const uint64_t num_contribs = r.Varint();
  if (!r.ok() || num_contribs > kMaxListLen) {
    return Status::InvalidArgument("bad contribution count");
  }
  rec.contributions.reserve(static_cast<size_t>(num_contribs));
  for (uint64_t i = 0; i < num_contribs; ++i) {
    TupleContribution contrib;
    auto t = DecodeTuple(r);
    if (!t.ok()) return t.status();
    contrib.tuple = std::move(*t);

    const uint64_t k = r.Varint();
    if (!r.ok() || k > kMaxListLen) {
      return Status::InvalidArgument("bad lineage size");
    }
    std::vector<FactId> facts(static_cast<size_t>(k));
    uint64_t acc = 0;
    for (uint64_t j = 0; j < k; ++j) {
      acc += r.Varint();
      if (!r.ok() || acc >= num_db_facts) {
        return Status::InvalidArgument("fact id out of range");
      }
      facts[static_cast<size_t>(j)] = static_cast<FactId>(acc);
    }
    contrib.shapley.reserve(static_cast<size_t>(k));
    for (uint64_t j = 0; j < k; ++j) {
      double v;
      if (payload == ShapleyPayload::kFloat64) {
        v = BitsToDouble(r.Fixed64());
      } else {
        std::string_view raw = r.Bytes(4);
        if (!r.ok()) break;
        uint32_t bits;
        std::memcpy(&bits, raw.data(), 4);
        v = static_cast<double>(BitsToFloat(bits));
      }
      contrib.shapley[facts[static_cast<size_t>(j)]] = v;
    }
    if (!r.ok()) return Status::InvalidArgument("truncated shapley payload");
    rec.contributions.push_back(std::move(contrib));
  }
  return rec;
}

Result<CorpusEntry> DecodeCorpusEntry(ByteReader& r, ShapleyPayload payload,
                                      const Database& db) {
  auto raw = DecodeRawRecord(r, payload, db.num_facts());
  if (!raw.ok()) return raw.status();
  auto query = ParseQuery(db, raw->sql, raw->query_id);
  if (!query.ok()) return query.status();
  CorpusEntry entry;
  entry.query = std::move(*query);
  entry.all_outputs = std::move(raw->all_outputs);
  entry.contributions = std::move(raw->contributions);
  return entry;
}

// --- ShardWriter ---

struct ShardWriter::Impl {
  std::string path;
  std::ofstream out;
  uint64_t db_fingerprint;
  uint32_t shard_index;
  uint64_t base_entry;
  ShapleyPayload payload;
  uint64_t hash = kFnvOffset;  // running FNV over everything written
  std::string scratch;
  bool finished = false;
  bool failed = false;

  void WriteHashed(const char* data, size_t n) {
    out.write(data, static_cast<std::streamsize>(n));
    const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash ^= p[i];
      hash *= kFnvPrime;
    }
  }
};

ShardWriter::ShardWriter(std::string path, uint64_t db_fingerprint,
                         uint32_t shard_index, uint64_t base_entry,
                         ShapleyPayload payload)
    : impl_(new Impl) {
  impl_->path = std::move(path);
  impl_->db_fingerprint = db_fingerprint;
  impl_->shard_index = shard_index;
  impl_->base_entry = base_entry;
  impl_->payload = payload;
  // Stream into the sibling temp path; Finish renames it over `path`.
  impl_->out.open(TempWritePath(impl_->path),
                  std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    impl_->failed = true;
    return;
  }
  impl_->WriteHashed(kShardMagic, 8);
  bytes_ = 8;
}

ShardWriter::~ShardWriter() {
  // Abandoned (never Finished) writers leave no half-written file behind;
  // the final path was never touched, only the temp needs removing.
  if (!impl_->finished && !impl_->failed) {
    impl_->out.close();
    std::remove(TempWritePath(impl_->path).c_str());
  }
  delete impl_;
}

Status ShardWriter::Append(const CorpusEntry& entry) {
  if (impl_->failed) {
    return Status::Internal("cannot open '" + impl_->path + "' for write");
  }
  offsets_.push_back(bytes_);
  impl_->scratch.clear();
  EncodeCorpusEntry(entry, impl_->payload, impl_->scratch);
  impl_->WriteHashed(impl_->scratch.data(), impl_->scratch.size());
  bytes_ += impl_->scratch.size();
  if (!impl_->out) {
    impl_->failed = true;
    return Status::Internal("write to '" + impl_->path + "' failed");
  }
  return Status::Ok();
}

Status ShardWriter::Finish(const ShardBuildStats* stats) {
  if (impl_->failed) {
    return Status::Internal("cannot open '" + impl_->path + "' for write");
  }
  const uint64_t footer_offset = bytes_;
  std::string footer;
  // The fingerprint sits first, at a fixed offset from the footer, so both
  // the loader and the corruption tests can locate it without parsing.
  PutFixed64(footer, impl_->db_fingerprint);
  PutVarint(footer, impl_->shard_index);
  PutVarint(footer, impl_->base_entry);
  footer.push_back(static_cast<char>(impl_->payload));
  PutVarint(footer, offsets_.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < offsets_.size(); ++i) {
    PutVarint(footer, offsets_[i] - (i == 0 ? 0 : prev));
    prev = offsets_[i];
  }
  PutVarint(footer, stats ? stats->exact : 0);
  PutVarint(footer, stats ? stats->monte_carlo : 0);
  PutVarint(footer, stats ? stats->cnf_proxy : 0);
  PutVarint(footer, stats ? stats->skipped : 0);
  // Version-02 extension; kept after the v1 fields so the v1 reader layout
  // is a strict prefix.
  PutVarint(footer, stats ? stats->stratified : 0);
  // Checksum covers [0, footer_offset): the record region the offsets
  // point into. The footer guards itself with the trailer structure.
  PutFixed64(footer, impl_->hash);
  impl_->out.write(footer.data(),
                   static_cast<std::streamsize>(footer.size()));
  char trailer[16];
  std::memcpy(trailer, &footer_offset, 8);
  std::memcpy(trailer + 8, kShardTrailerMagic, 8);
  impl_->out.write(trailer, 16);
  bytes_ += footer.size() + 16;
  impl_->out.flush();
  if (!impl_->out) {
    impl_->failed = true;
    return Status::Internal("write to '" + impl_->path + "' failed");
  }
  impl_->out.close();
  // Only a complete, sealed shard ever reaches the final name.
  Status committed = CommitTempFile(impl_->path);
  if (!committed.ok()) {
    impl_->failed = true;
    return committed;
  }
  impl_->finished = true;
  return Status::Ok();
}

// --- ShardReader ---

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string buf;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat '" + path + "'");
  buf.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(buf.data(), size);
  if (!in) return Status::Internal("short read on '" + path + "'");
  return buf;
}

}  // namespace

Result<ShardReader> ShardReader::Open(const std::string& path,
                                      uint64_t expected_fingerprint,
                                      FaultInjector* fault) {
  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("corpus shard '" + path + "': " + what);
  };
  if (fault != nullptr) {
    Status injected = fault->OnSite(kSiteShardOpen);
    if (!injected.ok()) return injected;
  }
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();

  ShardReader reader;
  reader.buffer_ = std::move(*bytes);
  const std::string& buf = reader.buffer_;
  // Minimum viable file: magic + footer (>= fingerprint + checksum) +
  // trailer.
  if (buf.size() < 8 + 16 + 16) return bad("file too small");
  const bool v2 = std::memcmp(buf.data(), kShardMagic, 8) == 0;
  if (!v2 && std::memcmp(buf.data(), kShardMagicV1, 8) != 0) {
    return bad("bad magic (not a packed corpus shard)");
  }
  if (std::memcmp(buf.data() + buf.size() - 8, kShardTrailerMagic, 8) != 0) {
    return bad("bad trailer magic (truncated or corrupted)");
  }
  uint64_t footer_offset;
  std::memcpy(&footer_offset, buf.data() + buf.size() - 16, 8);
  if (footer_offset < 8 || footer_offset > buf.size() - 16 - 16) {
    return bad("footer offset out of range");
  }
  reader.records_end_ = static_cast<size_t>(footer_offset);

  ByteReader r(buf.data() + footer_offset,
               buf.size() - 16 - static_cast<size_t>(footer_offset));
  ShardFooter& f = reader.footer_;
  f.db_fingerprint = r.Fixed64();
  f.shard_index = static_cast<uint32_t>(r.Varint());
  f.base_entry = r.Varint();
  std::string_view payload_byte = r.Bytes(1);
  if (!r.ok()) return bad("truncated footer");
  const uint8_t pb = static_cast<uint8_t>(payload_byte[0]);
  if (pb > static_cast<uint8_t>(ShapleyPayload::kFloat32)) {
    return bad(StrFormat("unknown shapley payload encoding %u", pb));
  }
  f.payload = static_cast<ShapleyPayload>(pb);
  const uint64_t num_records = r.Varint();
  if (!r.ok() || num_records > kMaxListLen) return bad("bad record count");
  f.record_offsets.reserve(static_cast<size_t>(num_records));
  uint64_t acc = 0;
  for (uint64_t i = 0; i < num_records; ++i) {
    acc += r.Varint();
    if (!r.ok() || acc < 8 || acc >= footer_offset) {
      return bad("record offset out of range");
    }
    if (!f.record_offsets.empty() && acc <= f.record_offsets.back()) {
      return bad("record offsets not increasing");
    }
    f.record_offsets.push_back(acc);
  }
  f.exact = static_cast<size_t>(r.Varint());
  f.monte_carlo = static_cast<size_t>(r.Varint());
  f.cnf_proxy = static_cast<size_t>(r.Varint());
  f.skipped = static_cast<size_t>(r.Varint());
  if (v2) f.stratified = static_cast<size_t>(r.Varint());
  f.checksum = r.Fixed64();
  if (!r.ok()) return bad("truncated footer");

  const uint64_t actual =
      FnvChecksum(buf.data(), static_cast<size_t>(footer_offset));
  if (actual != f.checksum) {
    return bad(StrFormat("checksum mismatch (stored %016llx, computed "
                         "%016llx) — file is corrupted",
                         static_cast<unsigned long long>(f.checksum),
                         static_cast<unsigned long long>(actual)));
  }
  if (expected_fingerprint != 0 &&
      f.db_fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(StrFormat(
        "corpus shard '%s' was built over a database with fact-table "
        "fingerprint %016llx, but the given database fingerprints %016llx "
        "— same name/size is not enough, the fact tables differ",
        path.c_str(), static_cast<unsigned long long>(f.db_fingerprint),
        static_cast<unsigned long long>(expected_fingerprint)));
  }
  reader.fault_ = fault;
  return reader;
}

Result<RawRecord> ShardReader::ReadRawRecord(size_t i,
                                             size_t num_db_facts) const {
  if (fault_ != nullptr) {
    Status injected = fault_->OnSite(kSiteShardRecord);
    if (!injected.ok()) return injected;
  }
  if (i >= footer_.record_offsets.size()) {
    return Status::InvalidArgument(
        StrFormat("record %zu out of range (shard has %zu)", i,
                  footer_.record_offsets.size()));
  }
  const size_t begin = static_cast<size_t>(footer_.record_offsets[i]);
  const size_t end = i + 1 < footer_.record_offsets.size()
                         ? static_cast<size_t>(footer_.record_offsets[i + 1])
                         : records_end_;
  ByteReader r(buffer_.data() + begin, end - begin);
  auto rec = DecodeRawRecord(r, footer_.payload, num_db_facts);
  if (rec.ok() && r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("record %zu has %zu trailing bytes", i, r.remaining()));
  }
  return rec;
}

Result<CorpusEntry> ShardReader::ReadRecord(size_t i,
                                            const Database& db) const {
  if (fault_ != nullptr) {
    Status injected = fault_->OnSite(kSiteShardRecord);
    if (!injected.ok()) return injected;
  }
  if (i >= footer_.record_offsets.size()) {
    return Status::InvalidArgument(
        StrFormat("record %zu out of range (shard has %zu)", i,
                  footer_.record_offsets.size()));
  }
  const size_t begin = static_cast<size_t>(footer_.record_offsets[i]);
  const size_t end = i + 1 < footer_.record_offsets.size()
                         ? static_cast<size_t>(footer_.record_offsets[i + 1])
                         : records_end_;
  ByteReader r(buffer_.data() + begin, end - begin);
  auto entry = DecodeCorpusEntry(r, footer_.payload, db);
  if (entry.ok() && r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("record %zu has %zu trailing bytes", i, r.remaining()));
  }
  return entry;
}

// --- Manifest ---

namespace {

void PutShardStats(std::string& out, const ShardBuildStats& s) {
  PutVarint(out, s.shard_index);
  PutVarint(out, s.entries);
  PutVarint(out, s.exact);
  PutVarint(out, s.monte_carlo);
  PutVarint(out, s.cnf_proxy);
  PutVarint(out, s.skipped);
  // Version-02 extension, after the v1 fixed fields.
  PutVarint(out, s.stratified);
  PutFixed64(out, DoubleBits(s.wall_seconds));
  PutStatsMap(out, s.budget_trips);
}

Result<ShardBuildStats> ReadShardStats(ByteReader& r, bool v2) {
  ShardBuildStats s;
  s.shard_index = static_cast<uint32_t>(r.Varint());
  s.entries = static_cast<size_t>(r.Varint());
  s.exact = static_cast<size_t>(r.Varint());
  s.monte_carlo = static_cast<size_t>(r.Varint());
  s.cnf_proxy = static_cast<size_t>(r.Varint());
  s.skipped = static_cast<size_t>(r.Varint());
  if (v2) s.stratified = static_cast<size_t>(r.Varint());
  s.wall_seconds = BitsToDouble(r.Fixed64());
  auto trips = ReadStatsMap(r);
  if (!trips.ok()) return trips.status();
  s.budget_trips = std::move(*trips);
  if (!r.ok()) return Status::InvalidArgument("truncated shard stats");
  return s;
}

}  // namespace

Status WriteManifest(const CorpusManifest& manifest,
                     const std::string& path) {
  std::string out;
  out.append(kManifestMagic, 8);
  // Fingerprint at fixed offset 8, same rationale as the shard footer.
  PutFixed64(out, manifest.db_fingerprint);
  PutString(out, manifest.db_name);
  PutVarint(out, manifest.db_facts);
  out.push_back(static_cast<char>(manifest.payload));
  PutVarint(out, manifest.shard_entries.size());
  for (uint64_t e : manifest.shard_entries) PutVarint(out, e);
  // Split permutations are stored verbatim: their order is the shuffled
  // order the trainer iterates, not an artifact to canonicalise away.
  for (const std::vector<size_t>* idx :
       {&manifest.train_idx, &manifest.dev_idx, &manifest.test_idx}) {
    PutVarint(out, idx->size());
    for (size_t i : *idx) PutVarint(out, i);
  }
  const BuildStats& st = manifest.stats;
  PutVarint(out, st.exact);
  PutVarint(out, st.monte_carlo);
  PutVarint(out, st.cnf_proxy);
  PutVarint(out, st.skipped);
  // Version-02 extension, after the v1 fixed fields.
  PutVarint(out, st.stratified);
  PutFixed64(out, DoubleBits(st.wall_seconds));
  PutStatsMap(out, st.budget_trips);
  PutVarint(out, st.per_shard.size());
  for (const ShardBuildStats& s : st.per_shard) PutShardStats(out, s);
  PutFixed64(out, FnvChecksum(out.data(), out.size()));

  return WriteFileAtomic(path, out);
}

Result<CorpusManifest> ReadManifest(const std::string& path) {
  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("corpus manifest '" + path + "': " + what);
  };
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& buf = *bytes;
  if (buf.size() < 8 + 8 + 8) return bad("file too small");
  const bool v2 = std::memcmp(buf.data(), kManifestMagic, 8) == 0;
  if (!v2 && std::memcmp(buf.data(), kManifestMagicV1, 8) != 0) {
    return bad("bad magic (not a packed corpus manifest)");
  }
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, buf.data() + buf.size() - 8, 8);
  const uint64_t actual = FnvChecksum(buf.data(), buf.size() - 8);
  if (actual != stored_checksum) {
    return bad(StrFormat("checksum mismatch (stored %016llx, computed "
                         "%016llx) — file is corrupted",
                         static_cast<unsigned long long>(stored_checksum),
                         static_cast<unsigned long long>(actual)));
  }

  CorpusManifest m;
  ByteReader r(buf.data() + 8, buf.size() - 8 - 8);
  m.db_fingerprint = r.Fixed64();
  uint64_t len = r.Varint();
  if (!r.ok() || len > r.remaining()) return bad("truncated db name");
  m.db_name = std::string(r.Bytes(static_cast<size_t>(len)));
  m.db_facts = r.Varint();
  std::string_view payload_byte = r.Bytes(1);
  if (!r.ok()) return bad("truncated header");
  const uint8_t pb = static_cast<uint8_t>(payload_byte[0]);
  if (pb > static_cast<uint8_t>(ShapleyPayload::kFloat32)) {
    return bad(StrFormat("unknown shapley payload encoding %u", pb));
  }
  m.payload = static_cast<ShapleyPayload>(pb);
  const uint64_t num_shards = r.Varint();
  if (!r.ok() || num_shards == 0 || num_shards > kMaxListLen) {
    return bad("bad shard count");
  }
  m.shard_entries.reserve(static_cast<size_t>(num_shards));
  for (uint64_t i = 0; i < num_shards; ++i) {
    m.shard_entries.push_back(r.Varint());
  }
  if (!r.ok()) return bad("truncated shard table");
  const uint64_t total = m.total_entries();
  for (std::vector<size_t>* idx : {&m.train_idx, &m.dev_idx, &m.test_idx}) {
    auto v = ReadIndexVector(r, total);
    if (!v.ok()) return bad(v.status().message());
    *idx = std::move(*v);
  }
  BuildStats& st = m.stats;
  st.exact = static_cast<size_t>(r.Varint());
  st.monte_carlo = static_cast<size_t>(r.Varint());
  st.cnf_proxy = static_cast<size_t>(r.Varint());
  st.skipped = static_cast<size_t>(r.Varint());
  if (v2) st.stratified = static_cast<size_t>(r.Varint());
  st.wall_seconds = BitsToDouble(r.Fixed64());
  auto trips = ReadStatsMap(r);
  if (!trips.ok()) return bad(trips.status().message());
  st.budget_trips = std::move(*trips);
  const uint64_t num_shard_stats = r.Varint();
  if (!r.ok() || num_shard_stats > kMaxListLen) {
    return bad("bad per-shard stats count");
  }
  st.per_shard.reserve(static_cast<size_t>(num_shard_stats));
  for (uint64_t i = 0; i < num_shard_stats; ++i) {
    auto s = ReadShardStats(r, v2);
    if (!s.ok()) return bad(s.status().message());
    st.per_shard.push_back(std::move(*s));
  }
  if (!r.ok() || r.remaining() != 0) return bad("truncated or oversized");
  return m;
}

bool LooksLikeManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, 8);
  return in && (std::memcmp(magic, kManifestMagic, 8) == 0 ||
                std::memcmp(magic, kManifestMagicV1, 8) == 0);
}

std::string ShardFileName(const std::string& base, size_t shard_index) {
  return base + StrFormat(".shard%03zu", shard_index);
}

}  // namespace lshap
