#include "corpus/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fileio.h"
#include "common/strings.h"
#include "corpus/format.h"
#include "query/parser.h"

namespace lshap {

namespace {

constexpr char kFieldSep = '\x1f';

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case kFieldSep:
        out += "\\u";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::InvalidArgument("dangling escape in corpus file");
    }
    switch (s[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'u':
        out += kFieldSep;
        break;
      default:
        return Status::InvalidArgument("unknown escape in corpus file");
    }
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  if (v.is_null()) return "N";
  if (v.is_int()) return "I" + std::to_string(v.AsInt());
  if (v.is_double()) return "D" + StrFormat("%.17g", v.AsDouble());
  return "S" + v.AsString();
}

Result<Value> DeserializeValue(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty value field");
  const std::string body = s.substr(1);
  switch (s[0]) {
    case 'N':
      return Value();
    case 'I':
      return Value(static_cast<int64_t>(std::stoll(body)));
    case 'D':
      return Value(std::stod(body));
    case 'S':
      return Value(body);
  }
  return Status::InvalidArgument("unknown value tag '" + s.substr(0, 1) +
                                 "'");
}

std::string SerializeTuple(const OutputTuple& t) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += kFieldSep;
    out += EscapeField(SerializeValue(t[i]));
  }
  return out;
}

Result<OutputTuple> DeserializeTuple(const std::string& line) {
  OutputTuple t;
  if (line.empty()) return t;
  for (const std::string& field : Split(line, kFieldSep)) {
    auto unescaped = UnescapeField(field);
    if (!unescaped.ok()) return unescaped.status();
    auto value = DeserializeValue(*unescaped);
    if (!value.ok()) return value.status();
    t.push_back(std::move(*value));
  }
  return t;
}

void WriteIndexLine(std::ofstream& out, const char* name,
                    const std::vector<size_t>& idx) {
  out << name;
  for (size_t i : idx) out << ' ' << i;
  out << '\n';
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  if (corpus.db == nullptr) {
    return Status::FailedPrecondition("corpus has no database");
  }
  // Stream into the sibling temp path and rename into place on success, so
  // a crash mid-save never leaves a truncated corpus under the final name.
  const std::string tmp = TempWritePath(path);
  std::ofstream out(tmp);
  if (!out) return Status::Internal("cannot open '" + tmp + "' for write");

  out << "LSHAP_CORPUS 1\n";
  // The fnv token is the fact-table fingerprint: name + fact count alone
  // cannot tell two same-shaped databases apart. Loaders tolerate its
  // absence (older files) but reject a mismatch.
  out << "db " << corpus.db->name() << ' ' << corpus.db->num_facts() << ' '
      << StrFormat("fnv:%016llx",
                   static_cast<unsigned long long>(
                       FactTableFingerprint(*corpus.db)))
      << '\n';
  // Build provenance: which degradation-ladder rung produced each tuple's
  // ground truth (see BuildStats). Older readers that predate this line are
  // gone; LoadCorpus tolerates its absence for older files.
  out << "stats " << corpus.stats.exact << ' ' << corpus.stats.monte_carlo
      << ' ' << corpus.stats.cnf_proxy << ' ' << corpus.stats.skipped << ' '
      << StrFormat("%.6f", corpus.stats.wall_seconds) << ' '
      << corpus.stats.budget_trips.size();
  for (const auto& [site, count] : corpus.stats.budget_trips) {
    out << ' ' << site << ':' << count;
  }
  // The stratified rung postdates the fixed-position fields, so it rides as
  // a trailing key:value token — and only when nonzero, keeping files from
  // default (rung-off) builds byte-identical to the historical format.
  if (corpus.stats.stratified > 0) {
    out << " strat:" << corpus.stats.stratified;
  }
  out << '\n';
  out << "entries " << corpus.entries.size() << '\n';
  for (const auto& e : corpus.entries) {
    out << "entry " << e.query.id << '\n';
    out << "sql " << EscapeField(e.query.ToSql()) << '\n';
    out << "outputs " << e.all_outputs.size() << '\n';
    for (const auto& t : e.all_outputs) {
      out << "O " << SerializeTuple(t) << '\n';
    }
    out << "contribs " << e.contributions.size() << '\n';
    for (const auto& c : e.contributions) {
      out << "C " << SerializeTuple(c.tuple) << '\n';
      out << "S " << c.shapley.size();
      for (const auto& [f, v] : c.shapley) {
        out << ' ' << f << ':' << StrFormat("%.17g", v);
      }
      out << '\n';
    }
  }
  WriteIndexLine(out, "train", corpus.train_idx);
  WriteIndexLine(out, "dev", corpus.dev_idx);
  WriteIndexLine(out, "test", corpus.test_idx);
  out.flush();
  if (!out) {
    out.close();
    std::remove(tmp.c_str());
    return Status::Internal("write to '" + tmp + "' failed");
  }
  out.close();
  return CommitTempFile(path);
}

Result<Corpus> LoadCorpus(const Database* db, const std::string& path) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  // Binary corpora are detected by magic, so callers need only one load
  // entry point regardless of which format produced the file.
  if (LooksLikeManifest(path)) return LoadCorpusShards(db, path);
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("corpus file '" + path + "': " + what);
  };

  std::string line;
  if (!std::getline(in, line) || line != "LSHAP_CORPUS 1") {
    return bad("missing header");
  }
  std::string word;
  {
    if (!std::getline(in, line)) return bad("missing db line");
    std::istringstream ls(line);
    std::string name;
    size_t facts = 0;
    ls >> word >> name >> facts;
    if (word != "db") return bad("expected db line");
    if (name != db->name() || facts != db->num_facts()) {
      return Status::FailedPrecondition(
          StrFormat("corpus was built over database '%s' (%zu facts), got "
                    "'%s' (%zu facts)",
                    name.c_str(), facts, db->name().c_str(),
                    db->num_facts()));
    }
    std::string token;
    if (ls >> token && StartsWith(token, "fnv:")) {
      uint64_t stored = 0;
      try {
        stored = std::stoull(token.substr(4), nullptr, 16);
      } catch (...) {
        return bad("malformed fnv token");
      }
      const uint64_t actual = FactTableFingerprint(*db);
      if (stored != actual) {
        return Status::InvalidArgument(StrFormat(
            "corpus file '%s' was built over a database with fact-table "
            "fingerprint %016llx, but the given database fingerprints "
            "%016llx — same name/size is not enough, the fact tables "
            "differ",
            path.c_str(), static_cast<unsigned long long>(stored),
            static_cast<unsigned long long>(actual)));
      }
    }
  }

  Corpus corpus;
  corpus.db = db;
  if (!std::getline(in, line)) return bad("missing entries line");
  if (StartsWith(line, "stats ")) {
    std::istringstream ls(line.substr(6));
    size_t num_trips = 0;
    if (!(ls >> corpus.stats.exact >> corpus.stats.monte_carlo >>
          corpus.stats.cnf_proxy >> corpus.stats.skipped >>
          corpus.stats.wall_seconds >> num_trips)) {
      return bad("malformed stats line");
    }
    for (size_t i = 0; i < num_trips; ++i) {
      std::string pair;
      if (!(ls >> pair)) return bad("truncated stats trip list");
      const size_t colon = pair.rfind(':');
      if (colon == std::string::npos) return bad("malformed stats trip");
      corpus.stats.budget_trips[pair.substr(0, colon)] =
          std::stoul(pair.substr(colon + 1));
    }
    // Optional trailing tokens (absent in older files): currently only the
    // stratified-rung count.
    std::string extra;
    while (ls >> extra) {
      if (StartsWith(extra, "strat:")) {
        corpus.stats.stratified = std::stoul(extra.substr(6));
      }
    }
    if (!std::getline(in, line)) return bad("missing entries line");
  }
  size_t num_entries = 0;
  {
    std::istringstream ls(line);
    ls >> word >> num_entries;
    if (word != "entries") return bad("expected entries line");
  }

  for (size_t e = 0; e < num_entries; ++e) {
    CorpusEntry entry;
    if (!std::getline(in, line) || !StartsWith(line, "entry ")) {
      return bad("expected entry line");
    }
    const std::string id = line.substr(6);
    if (!std::getline(in, line) || !StartsWith(line, "sql ")) {
      return bad("expected sql line");
    }
    auto sql = UnescapeField(line.substr(4));
    if (!sql.ok()) return sql.status();
    auto query = ParseQuery(*db, *sql, id);
    if (!query.ok()) return query.status();
    entry.query = std::move(*query);

    size_t num_outputs = 0;
    if (!std::getline(in, line)) return bad("expected outputs line");
    {
      std::istringstream ls(line);
      ls >> word >> num_outputs;
      if (word != "outputs") return bad("expected outputs line");
    }
    entry.all_outputs.reserve(num_outputs);
    for (size_t i = 0; i < num_outputs; ++i) {
      if (!std::getline(in, line) || !StartsWith(line, "O ")) {
        return bad("expected O line");
      }
      auto tuple = DeserializeTuple(line.substr(2));
      if (!tuple.ok()) return tuple.status();
      entry.all_outputs.push_back(std::move(*tuple));
    }

    size_t num_contribs = 0;
    if (!std::getline(in, line)) return bad("expected contribs line");
    {
      std::istringstream ls(line);
      ls >> word >> num_contribs;
      if (word != "contribs") return bad("expected contribs line");
    }
    entry.contributions.reserve(num_contribs);
    for (size_t i = 0; i < num_contribs; ++i) {
      TupleContribution contrib;
      if (!std::getline(in, line) || !StartsWith(line, "C ")) {
        return bad("expected C line");
      }
      auto tuple = DeserializeTuple(line.substr(2));
      if (!tuple.ok()) return tuple.status();
      contrib.tuple = std::move(*tuple);
      if (!std::getline(in, line) || !StartsWith(line, "S ")) {
        return bad("expected S line");
      }
      std::istringstream ls(line.substr(2));
      size_t k = 0;
      ls >> k;
      for (size_t j = 0; j < k; ++j) {
        std::string pair;
        if (!(ls >> pair)) return bad("truncated shapley list");
        const size_t colon = pair.find(':');
        if (colon == std::string::npos) return bad("malformed shapley pair");
        const FactId f =
            static_cast<FactId>(std::stoul(pair.substr(0, colon)));
        if (f >= db->num_facts()) return bad("fact id out of range");
        contrib.shapley[f] = std::stod(pair.substr(colon + 1));
      }
      entry.contributions.push_back(std::move(contrib));
    }
    corpus.entries.push_back(std::move(entry));
  }

  auto read_index = [&](const char* name,
                        std::vector<size_t>& idx) -> Status {
    if (!std::getline(in, line)) return bad(std::string("missing ") + name);
    std::istringstream ls(line);
    ls >> word;
    if (word != name) return bad(std::string("expected ") + name + " line");
    size_t i;
    while (ls >> i) {
      if (i >= corpus.entries.size()) return bad("split index out of range");
      idx.push_back(i);
    }
    return Status::Ok();
  };
  Status s = read_index("train", corpus.train_idx);
  if (!s.ok()) return s;
  s = read_index("dev", corpus.dev_idx);
  if (!s.ok()) return s;
  s = read_index("test", corpus.test_idx);
  if (!s.ok()) return s;
  return corpus;
}

Status SaveCorpusShards(const Corpus& corpus, const std::string& path,
                        size_t num_shards, bool f32_payload) {
  if (corpus.db == nullptr) {
    return Status::FailedPrecondition("corpus has no database");
  }
  if (num_shards == 0) num_shards = 1;
  const uint64_t fingerprint = FactTableFingerprint(*corpus.db);
  const ShapleyPayload payload =
      f32_payload ? ShapleyPayload::kFloat32 : ShapleyPayload::kFloat64;

  CorpusManifest manifest;
  manifest.db_name = corpus.db->name();
  manifest.db_facts = corpus.db->num_facts();
  manifest.db_fingerprint = fingerprint;
  manifest.payload = payload;
  manifest.train_idx = corpus.train_idx;
  manifest.dev_idx = corpus.dev_idx;
  manifest.test_idx = corpus.test_idx;
  manifest.stats = corpus.stats;

  // Re-saves carry the build's per-shard rung provenance into the shard
  // footers only when this save's partition matches the build's (same
  // shard count and entry distribution); otherwise the footers hold zeros
  // and the manifest still has the full BuildStats.
  const std::vector<ShardBuildStats>& per_shard = corpus.stats.per_shard;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t lo = corpus.entries.size() * s / num_shards;
    const size_t hi = corpus.entries.size() * (s + 1) / num_shards;
    ShardWriter writer(ShardFileName(path, s), fingerprint,
                       static_cast<uint32_t>(s), lo, payload);
    for (size_t i = lo; i < hi; ++i) {
      Status st = writer.Append(corpus.entries[i]);
      if (!st.ok()) return st;
    }
    const ShardBuildStats* stats = nullptr;
    if (per_shard.size() == num_shards && per_shard[s].entries == hi - lo) {
      stats = &per_shard[s];
    }
    Status st = writer.Finish(stats);
    if (!st.ok()) return st;
    manifest.shard_entries.push_back(hi - lo);
  }
  return WriteManifest(manifest, path);
}

Result<Corpus> LoadCorpusShards(const Database* db, const std::string& path) {
  return LoadCorpusShards(db, path, ShardLoadOptions{}, nullptr);
}

namespace {

// Loads every record of one shard, fully validated, or fails without
// touching the output corpus — the unit quarantine mode skips.
Result<std::vector<CorpusEntry>> LoadOneShard(const Database& db,
                                              const std::string& shard_path,
                                              uint64_t fingerprint,
                                              size_t shard_index,
                                              uint64_t expected_records,
                                              FaultInjector* fault) {
  auto reader = ShardReader::Open(shard_path, fingerprint, fault);
  if (!reader.ok()) return reader.status();
  if (reader->footer().shard_index != shard_index ||
      reader->num_records() != expected_records) {
    return Status::InvalidArgument(StrFormat(
        "corpus shard '%s' does not match its manifest (shard %u with "
        "%zu records, manifest expects shard %zu with %zu records)",
        shard_path.c_str(), reader->footer().shard_index,
        reader->num_records(), shard_index,
        static_cast<size_t>(expected_records)));
  }
  std::vector<CorpusEntry> entries;
  entries.reserve(reader->num_records());
  for (size_t i = 0; i < reader->num_records(); ++i) {
    auto entry = reader->ReadRecord(i, db);
    if (!entry.ok()) return entry.status();
    entries.push_back(std::move(*entry));
  }
  return entries;
}

}  // namespace

Result<Corpus> LoadCorpusShards(const Database* db, const std::string& path,
                                const ShardLoadOptions& options,
                                ShardLoadReport* report) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (report != nullptr) *report = ShardLoadReport{};
  auto manifest = ReadManifest(path);
  if (!manifest.ok()) return manifest.status();
  const CorpusManifest& m = *manifest;
  if (m.db_name != db->name() || m.db_facts != db->num_facts()) {
    return Status::FailedPrecondition(
        StrFormat("corpus was built over database '%s' (%zu facts), got "
                  "'%s' (%zu facts)",
                  m.db_name.c_str(), static_cast<size_t>(m.db_facts),
                  db->name().c_str(), db->num_facts()));
  }
  const uint64_t fingerprint = FactTableFingerprint(*db);
  if (m.db_fingerprint != fingerprint) {
    return Status::InvalidArgument(StrFormat(
        "corpus manifest '%s' was built over a database with fact-table "
        "fingerprint %016llx, but the given database fingerprints %016llx "
        "— same name/size is not enough, the fact tables differ",
        path.c_str(), static_cast<unsigned long long>(m.db_fingerprint),
        static_cast<unsigned long long>(fingerprint)));
  }

  Corpus corpus;
  corpus.db = db;
  corpus.stats = m.stats;
  corpus.entries.reserve(static_cast<size_t>(m.total_entries()));
  // Maps manifest-global entry index -> loaded entry index (or npos when
  // the entry's shard was quarantined), for split-index remapping.
  constexpr size_t kDropped = static_cast<size_t>(-1);
  std::vector<size_t> remap(static_cast<size_t>(m.total_entries()), kDropped);
  size_t global = 0;
  bool any_skipped = false;
  for (size_t s = 0; s < m.num_shards(); ++s) {
    const std::string shard_path = ShardFileName(path, s);
    auto entries = LoadOneShard(*db, shard_path, fingerprint, s,
                                m.shard_entries[s], options.fault);
    if (!entries.ok()) {
      if (options.strict) return entries.status();
      any_skipped = true;
      if (report != nullptr) {
        report->skipped_shards.push_back(
            {s, entries.status().code(), entries.status().message()});
        report->dropped_entries += static_cast<size_t>(m.shard_entries[s]);
      }
      global += static_cast<size_t>(m.shard_entries[s]);
      continue;
    }
    if (report != nullptr) ++report->loaded_shards;
    for (CorpusEntry& entry : *entries) {
      remap[global++] = corpus.entries.size();
      corpus.entries.push_back(std::move(entry));
    }
  }

  size_t dropped_refs = 0;
  auto remap_split = [&](const std::vector<size_t>& in,
                         std::vector<size_t>& out) {
    out.reserve(in.size());
    for (size_t i : in) {
      if (remap[i] == kDropped) {
        ++dropped_refs;
      } else {
        out.push_back(remap[i]);
      }
    }
  };
  if (any_skipped) {
    remap_split(m.train_idx, corpus.train_idx);
    remap_split(m.dev_idx, corpus.dev_idx);
    remap_split(m.test_idx, corpus.test_idx);
  } else {
    corpus.train_idx = m.train_idx;
    corpus.dev_idx = m.dev_idx;
    corpus.test_idx = m.test_idx;
  }
  if (report != nullptr) report->dropped_split_refs = dropped_refs;
  return corpus;
}

}  // namespace lshap
