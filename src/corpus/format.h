#ifndef LSHAP_CORPUS_FORMAT_H_
#define LSHAP_CORPUS_FORMAT_H_

// Packed binary corpus shard format (DESIGN.md §10).
//
// A binary corpus is a manifest file plus K shard files:
//
//   <base>            manifest: db identity + fingerprint, shard table,
//                     train/dev/test split permutations, BuildStats
//   <base>.shard000   shard 0: packed records + footer index
//   <base>.shard001   ...
//
// Each shard file is
//
//   [magic 8B] [record 0] [record 1] ... [footer] [footer_offset 8B] [magic 8B]
//
// where a record is one CorpusEntry with varint-packed lengths, zigzag
// varint ints, delta-encoded sorted fact-id lists, and raw little-endian
// f64 (or optionally f32-quantized) Shapley payloads. The footer carries
// the database fact-table fingerprint, the record offset index, per-rung
// BuildStats counts for the shard, and an FNV-1a checksum of everything
// before the footer — so truncation, corruption and database mismatch are
// each detected with a precise error. Readers parse in place over one
// loaded buffer (no per-field copies beyond the decoded entry itself).
//
// The line-oriented text format (corpus/io.h) remains the differential
// oracle: both formats load to identical Corpus objects.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "corpus/corpus.h"

namespace lshap {

// FaultInjector sites in the shard-read path. Armed in tests to prove
// that injected I/O and decode faults surface as clean Result<T> errors
// with no partial state (corpus_stream_test.cc).
inline constexpr char kSiteShardOpen[] = "corpus.shard_open";
inline constexpr char kSiteShardRecord[] = "corpus.shard_record";

// Format magics, 8 bytes each. The trailing version digits gate evolution:
// readers reject files whose magic they do not know. Version 02 appended
// the stratified-rung count to the footer/manifest stats blocks; writers
// emit 02 and readers accept both (01 files load with stratified == 0).
inline constexpr char kShardMagic[9] = "LSHPCS02";
inline constexpr char kShardMagicV1[9] = "LSHPCS01";
inline constexpr char kShardTrailerMagic[9] = "LSHPSFTR";
inline constexpr char kManifestMagic[9] = "LSHPCM02";
inline constexpr char kManifestMagicV1[9] = "LSHPCM01";

// How a shard encodes Shapley payloads.
enum class ShapleyPayload : uint8_t {
  kFloat64 = 0,  // lossless round trip (the default)
  kFloat32 = 1,  // half the payload bytes; ~1e-7 relative quantization
};

// --- Varint primitives (LEB128, zigzag for signed), shared by the shard
// writer/reader and the manifest codec. ---

void PutVarint(std::string& out, uint64_t v);
void PutZigzag(std::string& out, int64_t v);

inline void PutFixed64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

// Bounds-checked cursor over a byte buffer. All getters are no-ops after
// the first failure; callers check ok() once per record (or per header)
// instead of after every field.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  uint64_t Varint();
  int64_t Zigzag();
  uint64_t Fixed64();
  // Returns a view into the underlying buffer (zero-copy); empty on error.
  std::string_view Bytes(size_t n);

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  void Fail() { ok_ = false; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// FNV-1a over a byte range (the checksum primitive of both file kinds).
uint64_t FnvChecksum(const char* data, size_t n);

// --- Record codec. ---

// Appends one packed record for `entry` to `out`.
void EncodeCorpusEntry(const CorpusEntry& entry, ShapleyPayload payload,
                       std::string& out);

// A record decoded without a database: the query stays as (id, sql) text.
// What tools/corpus_inspect prints, and the intermediate step of full
// decoding (CorpusEntry needs the database to re-parse the query).
struct RawRecord {
  std::string query_id;
  std::string sql;
  std::vector<OutputTuple> all_outputs;
  std::vector<TupleContribution> contributions;
};

// Decodes one record in place. Fact ids are validated against
// `num_db_facts`; any malformed field fails with kInvalidArgument.
Result<RawRecord> DecodeRawRecord(ByteReader& reader, ShapleyPayload payload,
                                  size_t num_db_facts);

// Full decode: raw record plus query re-parse against `db`.
Result<CorpusEntry> DecodeCorpusEntry(ByteReader& reader,
                                      ShapleyPayload payload,
                                      const Database& db);

// --- Shard files. ---

// Everything a shard's footer records about its payload.
struct ShardFooter {
  uint64_t db_fingerprint = 0;
  uint32_t shard_index = 0;
  uint64_t base_entry = 0;  // global index of the shard's first entry
  ShapleyPayload payload = ShapleyPayload::kFloat64;
  std::vector<uint64_t> record_offsets;  // absolute, one per record
  // Per-rung BuildStats breakdown for the shard (zero when the shard was
  // written by a plain re-save that has no per-shard provenance; stratified
  // is additionally zero for version-01 files, which predate the rung).
  size_t exact = 0;
  size_t stratified = 0;
  size_t monte_carlo = 0;
  size_t cnf_proxy = 0;
  size_t skipped = 0;
  uint64_t checksum = 0;  // FNV-1a of bytes [0, footer_offset)
};

// Streams packed records to `path`, then seals the file with the footer
// index and checksum. Records are written (and flushed to the OS) as they
// are appended, so the builder's memory never holds more than the entry
// being encoded. The stream actually targets TempWritePath(path); Finish
// renames it into place, so a writer killed mid-shard never leaves a
// partial file under the final name (common/fileio.h).
class ShardWriter {
 public:
  ShardWriter(std::string path, uint64_t db_fingerprint, uint32_t shard_index,
              uint64_t base_entry,
              ShapleyPayload payload = ShapleyPayload::kFloat64);
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  Status Append(const CorpusEntry& entry);

  // Writes the footer (embedding `stats`' rung counts when non-null) and
  // closes the file. Must be the last call.
  Status Finish(const ShardBuildStats* stats = nullptr);

  size_t num_records() const { return offsets_.size(); }
  uint64_t bytes_written() const { return bytes_; }

 private:
  struct Impl;
  Impl* impl_;
  std::vector<uint64_t> offsets_;
  uint64_t bytes_ = 0;
};

// Zero-copy reader over one loaded shard file: the whole file is read into
// a single buffer, the footer is parsed and checksum-verified, and records
// decode on demand straight out of the buffer.
class ShardReader {
 public:
  // Validates magic, trailer, footer and checksum; `expected_fingerprint`
  // (when non-zero) must match the footer's db fingerprint or the open
  // fails with kInvalidArgument — the provenance check that the corpus was
  // built over exactly this database. A non-null `fault` is polled at
  // kSiteShardOpen before the file is read and retained for per-record
  // polls at kSiteShardRecord.
  static Result<ShardReader> Open(const std::string& path,
                                  uint64_t expected_fingerprint = 0,
                                  FaultInjector* fault = nullptr);

  const ShardFooter& footer() const { return footer_; }
  size_t num_records() const { return footer_.record_offsets.size(); }
  uint64_t file_bytes() const { return buffer_.size(); }

  Result<CorpusEntry> ReadRecord(size_t i, const Database& db) const;
  Result<RawRecord> ReadRawRecord(size_t i, size_t num_db_facts) const;

 private:
  ShardReader() = default;

  std::string buffer_;
  ShardFooter footer_;
  size_t records_end_ = 0;  // == footer offset
  FaultInjector* fault_ = nullptr;  // not owned; may be null
};

// --- Manifest. ---

// The corpus-level index: database identity, shard table, split
// permutations and BuildStats (including per-shard breakdowns).
struct CorpusManifest {
  std::string db_name;
  uint64_t db_facts = 0;
  uint64_t db_fingerprint = 0;
  ShapleyPayload payload = ShapleyPayload::kFloat64;
  std::vector<uint64_t> shard_entries;  // entries per shard, shard order
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;
  BuildStats stats;

  size_t num_shards() const { return shard_entries.size(); }
  uint64_t total_entries() const {
    uint64_t n = 0;
    for (uint64_t e : shard_entries) n += e;
    return n;
  }
};

Status WriteManifest(const CorpusManifest& manifest, const std::string& path);
Result<CorpusManifest> ReadManifest(const std::string& path);

// True if the file at `path` starts with the manifest magic — how
// LoadCorpus auto-detects binary corpora.
bool LooksLikeManifest(const std::string& path);

// Canonical shard file name: "<base>.shard000", "<base>.shard001", ...
std::string ShardFileName(const std::string& base, size_t shard_index);

}  // namespace lshap

#endif  // LSHAP_CORPUS_FORMAT_H_
