#include "corpus/corpus.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/check.h"
#include "common/rng.h"
#include "eval/evaluator.h"
#include "shapley/shapley.h"

namespace lshap {

Corpus BuildCorpus(const Database& db, const SchemaGraph& graph,
                   const CorpusConfig& config, ThreadPool& pool) {
  Corpus corpus;
  corpus.db = &db;

  QueryGenerator generator(&db, graph, config.query_gen, config.seed);
  const std::vector<Query> log =
      generator.GenerateLog(config.num_base_queries, db.name());

  Rng rng(config.seed ^ 0xc0ffee);

  // Evaluate each query; keep those with non-empty (and bounded) results.
  struct Pending {
    Query query;
    EvalResult result;
    std::vector<size_t> sampled;  // output indices to compute Shapley for
  };
  std::vector<Pending> pending;
  for (const Query& q : log) {
    auto eval = Evaluate(db, q);
    if (!eval.ok()) continue;
    EvalResult result = std::move(eval).value();
    if (result.tuples.size() < config.min_outputs_per_query) continue;

    Pending p;
    p.query = q;
    const size_t total = result.tuples.size();
    const size_t want = std::min(total, config.max_outputs_per_query);
    p.sampled = rng.SampleWithoutReplacement(total, want);
    std::sort(p.sampled.begin(), p.sampled.end());
    p.result = std::move(result);
    pending.push_back(std::move(p));
  }

  // Exact Shapley ground truth, parallel over (query, tuple) pairs.
  struct Job {
    size_t entry;
    size_t slot;
    const Dnf* prov;
  };
  corpus.entries.resize(pending.size());
  std::vector<Job> jobs;
  for (size_t e = 0; e < pending.size(); ++e) {
    Pending& p = pending[e];
    CorpusEntry& entry = corpus.entries[e];
    entry.query = p.query;
    entry.all_outputs = std::move(p.result.tuples);
    size_t slot = 0;
    for (size_t idx : p.sampled) {
      const Dnf& prov = p.result.provenance[idx];
      if (prov.Variables().size() > config.max_lineage ||
          prov.num_clauses() > config.max_clauses) {
        continue;
      }
      entry.contributions.push_back({entry.all_outputs[idx], {}});
      jobs.push_back({e, slot, &prov});
      ++slot;
    }
  }
  ParallelFor(pool, jobs.size(), [&](size_t j) {
    const Job& job = jobs[j];
    corpus.entries[job.entry].contributions[job.slot].shapley =
        ComputeShapleyExact(*job.prov);
  });

  // Drop entries that ended with no usable contributions.
  std::vector<CorpusEntry> kept;
  kept.reserve(corpus.entries.size());
  for (auto& e : corpus.entries) {
    if (!e.contributions.empty()) kept.push_back(std::move(e));
  }
  corpus.entries = std::move(kept);

  // Query-level 70/10/20 split.
  std::vector<size_t> order(corpus.entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t n_train =
      static_cast<size_t>(config.train_frac * static_cast<double>(order.size()));
  const size_t n_dev =
      static_cast<size_t>(config.dev_frac * static_cast<double>(order.size()));
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < n_train) {
      corpus.train_idx.push_back(order[i]);
    } else if (i < n_train + n_dev) {
      corpus.dev_idx.push_back(order[i]);
    } else {
      corpus.test_idx.push_back(order[i]);
    }
  }
  return corpus;
}

SimilarityMatrices ComputeSimilarityMatrices(const Corpus& corpus,
                                             size_t max_tuples_for_rank,
                                             ThreadPool& pool) {
  const size_t n = corpus.entries.size();
  SimilarityMatrices m;
  m.syntax.assign(n, std::vector<double>(n, 0.0));
  m.witness.assign(n, std::vector<double>(n, 0.0));
  m.rank.assign(n, std::vector<double>(n, 0.0));

  // Truncated contribution views for the (expensive) rank similarity.
  std::vector<std::vector<TupleContribution>> capped(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = corpus.entries[i].contributions;
    const size_t take = std::min(c.size(), max_tuples_for_rank);
    capped[i].assign(c.begin(), c.begin() + static_cast<ptrdiff_t>(take));
  }

  // Upper-triangle pairs, parallelized.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) pairs.emplace_back(i, j);
  }
  ParallelFor(pool, pairs.size(), [&](size_t p) {
    const auto [i, j] = pairs[p];
    const CorpusEntry& a = corpus.entries[i];
    const CorpusEntry& b = corpus.entries[j];
    const double syn = SyntaxSimilarity(a.query, b.query);
    const double wit = WitnessSimilarity(a.all_outputs, b.all_outputs);
    const double rnk = RankSimilarity(capped[i], capped[j]);
    m.syntax[i][j] = m.syntax[j][i] = syn;
    m.witness[i][j] = m.witness[j][i] = wit;
    m.rank[i][j] = m.rank[j][i] = rnk;
  });
  return m;
}

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& split) {
  SplitStats stats;
  stats.queries = split.size();
  for (size_t i : split) {
    const CorpusEntry& e = corpus.entries[i];
    stats.results += e.all_outputs.size();
    for (const auto& c : e.contributions) stats.facts += c.shapley.size();
  }
  return stats;
}

std::unordered_set<FactId> TrainSeenFacts(const Corpus& corpus) {
  std::unordered_set<FactId> seen;
  for (size_t i : corpus.train_idx) {
    for (const auto& c : corpus.entries[i].contributions) {
      for (const auto& [f, v] : c.shapley) seen.insert(f);
    }
  }
  return seen;
}

double MeanGroupSimilarity(const std::vector<std::vector<double>>& matrix,
                           const std::vector<size_t>& group_a,
                           const std::vector<size_t>& group_b) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i : group_a) {
    for (size_t j : group_b) {
      if (i == j) continue;
      sum += matrix[i][j];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace lshap
