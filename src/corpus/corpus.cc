#include "corpus/corpus.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "corpus/format.h"
#include "eval/evaluator.h"
#include "shapley/shapley.h"

namespace lshap {

namespace {

// Per-job record of which ladder rung produced the ground truth (or that
// the tuple was skipped / never processed) plus the budget-trip sites hit
// along the way. Filled by worker threads (one slot per job, no sharing)
// and folded into BuildStats serially after the wave, so the recorded
// counts are deterministic regardless of thread interleaving.
struct LadderOutcome {
  enum Rung : uint8_t {
    kNotRun = 0,
    kExact,
    kStratified,
    kMonteCarlo,
    kCnfProxy,
    kSkip
  };
  Rung rung = kNotRun;
  std::vector<std::string> trip_sites;
};

}  // namespace

// BuildCorpus's metric handles — the registry-backed successor of the
// ad-hoc BuildStats counters. BuildStats stays (it is serialized with the
// corpus and printed by the benches); the fold loop mirrors every count
// into these handles so one --metrics-json snapshot carries the rung
// transitions alongside the evaluator and trainer sections.
struct CorpusMetricSet {
  Counter queries_generated, queries_kept, tuples_prefiltered, jobs,
      rung_exact, rung_stratified, rung_monte_carlo, rung_cnf_proxy,
      rung_skipped, budget_trips;
  Histogram lineage_facts, circuit_nodes;
  Gauge wall_seconds;

  CorpusMetricSet() = default;
  explicit CorpusMetricSet(MetricsRegistry* r)
      : queries_generated(CounterFor(r, "corpus.queries_generated")),
        queries_kept(CounterFor(r, "corpus.queries_kept")),
        tuples_prefiltered(CounterFor(r, "corpus.tuples_prefiltered")),
        jobs(CounterFor(r, "corpus.ground_truth_jobs")),
        rung_exact(CounterFor(r, "corpus.rung_exact")),
        rung_stratified(CounterFor(r, "corpus.rung_stratified")),
        rung_monte_carlo(CounterFor(r, "corpus.rung_monte_carlo")),
        rung_cnf_proxy(CounterFor(r, "corpus.rung_cnf_proxy")),
        rung_skipped(CounterFor(r, "corpus.rung_skipped")),
        budget_trips(CounterFor(r, "corpus.budget_trips")),
        lineage_facts(HistogramFor(r, "corpus.lineage_facts",
                                   ExponentialBuckets(1.0, 2.0, 10))),
        circuit_nodes(HistogramFor(r, "corpus.circuit_nodes",
                                   ExponentialBuckets(4.0, 4.0, 10))),
        wall_seconds(GaugeFor(r, "corpus.wall_seconds")) {}
};

namespace {

// One finished shard, handed to the build's sink in shard order: the kept
// entries (empty contributions and empty entries already dropped) and the
// shard's own ladder accounting.
struct ShardResult {
  uint32_t shard_index = 0;
  std::vector<CorpusEntry> entries;
  ShardBuildStats stats;
};

// The sharded build driver behind BuildCorpus and BuildCorpusToShards.
//
// Determinism contract (DESIGN.md §10.4): the query log is partitioned into
// K contiguous slices, and the sequential sampling RNG stream — output
// sampling per kept query, then the final split shuffle — is consumed in
// shard order, exactly the order the K=1 build consumes it. The
// stratified and Monte-Carlo fallback rungs are seeded by global job index
// (a running counter across shards, with distinct per-rung mix
// constants). So the merged entries, splits and rung counts are
// identical for every K and thread count; only wall-clock deadline trips
// can differ run to run.
//
// `sink` receives each ShardResult in shard order and owns the entries
// from then on — the driver never holds more than one shard's entries.
template <typename Sink>
BuildStats RunShardedBuild(const Database& db, const SchemaGraph& graph,
                           const CorpusConfig& config, ThreadPool& pool,
                           const CorpusMetricSet& metrics, Sink&& sink,
                           std::vector<size_t>& train_idx,
                           std::vector<size_t>& dev_idx,
                           std::vector<size_t>& test_idx) {
  WallTimer build_timer;
  ScopedSpan build_span(config.metrics, "corpus.build");

  std::vector<Query> log;
  {
    ScopedSpan span(config.metrics, "corpus.generate_log");
    QueryGenerator generator(&db, graph, config.query_gen, config.seed);
    log = generator.GenerateLog(config.num_base_queries, db.name());
    metrics.queries_generated.Inc(log.size());
  }

  Rng rng(config.seed ^ 0xc0ffee);
  // The registry threads through to the evaluator, so a corpus build's
  // snapshot also carries the eval.* section for its query replay.
  const EvalOptions eval_options =
      EvalOptions().WithMetrics(config.metrics);

  const size_t num_shards = std::max<size_t>(1, config.num_shards);
  // Whole-build deadline, shared by every shard's wave. Anchored right
  // before the first wave launches — for K=1 that is the historical anchor
  // point (after log evaluation, before the ladder).
  using Clock = std::chrono::steady_clock;
  const bool has_build_deadline = config.build_deadline_seconds > 0.0;
  bool deadline_anchored = false;
  Clock::time_point build_deadline{};

  BuildStats stats;
  stats.per_shard.reserve(num_shards);
  // Global ladder-job counter: jobs are enumerated in the same order for
  // every K, and this index seeds the sampling fallbacks (stratified and
  // plain MC), so rung results are shard-count-invariant.
  size_t job_counter = 0;
  size_t total_kept = 0;  // kept entries across shards, for the split

  for (size_t s = 0; s < num_shards; ++s) {
    WallTimer shard_timer;
    ShardResult shard;
    shard.shard_index = static_cast<uint32_t>(s);
    shard.stats.shard_index = static_cast<uint32_t>(s);
    ShardBuildStats& sstats = shard.stats;

    // This shard's contiguous slice of the query log.
    const size_t lo = log.size() * s / num_shards;
    const size_t hi = log.size() * (s + 1) / num_shards;

    // Evaluate the slice; keep queries with non-empty (bounded) results.
    struct Pending {
      Query query;
      EvalResult result;
      std::vector<size_t> sampled;  // output indices to compute Shapley for
    };
    std::vector<Pending> pending;
    {
      ScopedSpan span(config.metrics, "corpus.evaluate_log");
      for (size_t qi = lo; qi < hi; ++qi) {
        auto eval = Evaluate(db, log[qi], eval_options);
        if (!eval.ok()) continue;
        EvalResult result = std::move(eval).value();
        if (result.tuples.size() < config.min_outputs_per_query) continue;

        Pending p;
        p.query = log[qi];
        const size_t total = result.tuples.size();
        const size_t want = std::min(total, config.max_outputs_per_query);
        p.sampled = rng.SampleWithoutReplacement(total, want);
        std::sort(p.sampled.begin(), p.sampled.end());
        p.result = std::move(result);
        pending.push_back(std::move(p));
      }
      metrics.queries_kept.Inc(pending.size());
    }

    // Shapley ground truth, parallel over this shard's (query, tuple)
    // pairs, each pair descending the degradation ladder under the
    // configured budgets.
    struct Job {
      size_t entry;
      size_t slot;
      const Dnf* prov;
      size_t global;  // global job index (MC fallback seed)
    };
    shard.entries.resize(pending.size());
    std::vector<Job> jobs;
    for (size_t e = 0; e < pending.size(); ++e) {
      Pending& p = pending[e];
      CorpusEntry& entry = shard.entries[e];
      entry.query = p.query;
      entry.all_outputs = std::move(p.result.tuples);
      size_t slot = 0;
      for (size_t idx : p.sampled) {
        const Dnf& prov = p.result.provenance[idx];
        if (prov.Variables().size() > config.max_lineage ||
            prov.num_clauses() > config.max_clauses) {
          // The syntactic pre-filter is the outermost skip rung: the tuple
          // never reaches the ladder, but it still leaves a skip record.
          ++sstats.skipped;
          ++sstats.budget_trips[kSiteCorpusPrefilter];
          metrics.tuples_prefiltered.Inc();
          continue;
        }
        metrics.lineage_facts.Observe(
            static_cast<double>(prov.Variables().size()));
        entry.contributions.push_back({entry.all_outputs[idx], {}});
        jobs.push_back({e, slot, &prov, job_counter++});
        ++slot;
      }
    }

    if (has_build_deadline && !deadline_anchored) {
      build_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 config.build_deadline_seconds));
      deadline_anchored = true;
    }
    // Each shard's wave gets its own token; the shared deadline anchor
    // still expires every later shard's jobs at their first check.
    CancelToken shard_cancel;

    std::vector<LadderOutcome> outcomes(jobs.size());
    const auto ladder = [&](size_t j) -> Status {
      const Job& job = jobs[j];
      LadderOutcome& outcome = outcomes[j];
      ShapleyValues& dest =
          shard.entries[job.entry].contributions[job.slot].shapley;
      if (has_build_deadline && Clock::now() >= build_deadline) {
        return Status::ResourceExhausted("corpus build deadline exceeded");
      }

      // Rung 1: exact circuit Shapley under the full per-tuple budget.
      {
        ExecutionBudget budget(
            {config.tuple_deadline_seconds, config.max_circuit_nodes},
            &shard_cancel, config.fault_injector);
        Result<ShapleyValues> exact = ComputeShapleyExact(*job.prov, budget);
        if (exact.ok()) {
          dest = std::move(exact).value();
          outcome.rung = LadderOutcome::kExact;
          // Charge accounting runs even on an unlimited budget, so after a
          // successful exact rung the charged units are (almost exactly)
          // the compiled circuit's node count.
          metrics.circuit_nodes.Observe(
              static_cast<double>(budget.charged_units()));
          return Status::Ok();
        }
        outcome.trip_sites.push_back(budget.trip_site());
        if (exact.status().code() == StatusCode::kCancelled) {
          return exact.status();
        }
      }
      // Rung 2 (opt-in): relation-stratified MC estimate with a fresh
      // deadline. Strata come from each lineage fact's source table; the
      // rng is seeded per global job index (with a mix constant distinct
      // from the plain-MC rung's) so the result is deterministic
      // regardless of thread or shard assignment.
      if (config.stratified_fallback_samples > 0) {
        const std::vector<FactId> lineage = job.prov->Variables();
        std::vector<uint32_t> strata(lineage.size());
        for (size_t i = 0; i < lineage.size(); ++i) {
          strata[i] = db.FactTableIndex(lineage[i]);
        }
        ExecutionBudget budget({config.tuple_deadline_seconds, 0},
                               &shard_cancel, config.fault_injector);
        Rng strat_rng(config.seed ^
                      (0xda942042e4dd58b5ULL * (job.global + 1)));
        Result<ShapleyValues> strat = ComputeShapleyStratified(
            *job.prov, strata, config.stratified_fallback_samples,
            strat_rng, budget);
        if (strat.ok()) {
          dest = std::move(strat).value();
          outcome.rung = LadderOutcome::kStratified;
          return Status::Ok();
        }
        outcome.trip_sites.push_back(budget.trip_site());
        if (strat.status().code() == StatusCode::kCancelled) {
          return strat.status();
        }
      }
      // Rung 3: plain Monte-Carlo estimate with a fixed sample budget and
      // a fresh deadline. Seeded per global job index so the fallback is
      // deterministic regardless of thread or shard assignment.
      {
        ExecutionBudget budget({config.tuple_deadline_seconds, 0},
                               &shard_cancel, config.fault_injector);
        Rng mc_rng(config.seed ^
                   (0x9e3779b97f4a7c15ULL * (job.global + 1)));
        Result<ShapleyValues> mc = ComputeShapleyMonteCarlo(
            *job.prov, config.mc_fallback_samples, mc_rng, budget);
        if (mc.ok()) {
          dest = std::move(mc).value();
          outcome.rung = LadderOutcome::kMonteCarlo;
          return Status::Ok();
        }
        outcome.trip_sites.push_back(budget.trip_site());
        if (mc.status().code() == StatusCode::kCancelled) return mc.status();
      }
      // Rung 4: CNF-proxy ranking scores (polynomial closed form).
      {
        ExecutionBudget budget({config.tuple_deadline_seconds, 0},
                               &shard_cancel, config.fault_injector);
        Result<ShapleyValues> proxy = ComputeCnfProxy(*job.prov, budget);
        if (proxy.ok()) {
          dest = std::move(proxy).value();
          outcome.rung = LadderOutcome::kCnfProxy;
          return Status::Ok();
        }
        outcome.trip_sites.push_back(budget.trip_site());
        if (proxy.status().code() == StatusCode::kCancelled) {
          return proxy.status();
        }
      }
      // Rung 5: skip. The tuple is dropped below with a stats record; the
      // wave itself keeps going.
      outcome.rung = LadderOutcome::kSkip;
      return Status::Ok();
    };
    metrics.jobs.Inc(jobs.size());
    // The wave status is deliberately dropped: a cancelled build is not an
    // error of the build — the unprocessed jobs are folded into the skip
    // accounting below and the (partial) shard is still valid.
    {
      ScopedSpan span(config.metrics, "corpus.ground_truth");
      (void)ParallelFor(pool, jobs.size(), shard_cancel, ladder);
    }

    // Fold the per-job outcomes into the shard's stats serially
    // (deterministic counts), then drop the contributions that got no
    // ground truth.
    for (const LadderOutcome& outcome : outcomes) {
      switch (outcome.rung) {
        case LadderOutcome::kExact:
          ++sstats.exact;
          break;
        case LadderOutcome::kStratified:
          ++sstats.stratified;
          break;
        case LadderOutcome::kMonteCarlo:
          ++sstats.monte_carlo;
          break;
        case LadderOutcome::kCnfProxy:
          ++sstats.cnf_proxy;
          break;
        case LadderOutcome::kSkip:
          ++sstats.skipped;
          break;
        case LadderOutcome::kNotRun:
          // Build cancelled (or deadline hit) before this tuple ran.
          ++sstats.skipped;
          ++sstats.budget_trips[kSiteCorpusBuildDeadline];
          break;
      }
      for (const std::string& site : outcome.trip_sites) {
        ++sstats.budget_trips[site];
      }
    }
    for (auto& e : shard.entries) {
      e.contributions.erase(
          std::remove_if(e.contributions.begin(), e.contributions.end(),
                         [](const TupleContribution& c) {
                           return c.shapley.empty();
                         }),
          e.contributions.end());
    }
    // Drop entries that ended with no usable contributions.
    std::vector<CorpusEntry> kept;
    kept.reserve(shard.entries.size());
    for (auto& e : shard.entries) {
      if (!e.contributions.empty()) kept.push_back(std::move(e));
    }
    shard.entries = std::move(kept);

    sstats.entries = shard.entries.size();
    sstats.wall_seconds = shard_timer.ElapsedSeconds();
    total_kept += shard.entries.size();

    // Merge this shard into the totals — in shard order, on the driver
    // thread, never under a mutex in completion order — so the merged
    // counts are deterministic at any thread count.
    stats.exact += sstats.exact;
    stats.stratified += sstats.stratified;
    stats.monte_carlo += sstats.monte_carlo;
    stats.cnf_proxy += sstats.cnf_proxy;
    stats.skipped += sstats.skipped;
    for (const auto& [site, n] : sstats.budget_trips) {
      stats.budget_trips[site] += n;
    }
    if (config.metrics != nullptr) {
      // Per-shard rung counters, opt-in like every corpus.* metric.
      const std::string prefix = StrFormat("corpus.shard%03zu.", s);
      CounterFor(config.metrics, prefix + "entries").Inc(sstats.entries);
      CounterFor(config.metrics, prefix + "rung_exact").Inc(sstats.exact);
      CounterFor(config.metrics, prefix + "rung_stratified")
          .Inc(sstats.stratified);
      CounterFor(config.metrics, prefix + "rung_monte_carlo")
          .Inc(sstats.monte_carlo);
      CounterFor(config.metrics, prefix + "rung_cnf_proxy")
          .Inc(sstats.cnf_proxy);
      CounterFor(config.metrics, prefix + "rung_skipped")
          .Inc(sstats.skipped);
    }
    stats.per_shard.push_back(sstats);
    sink(std::move(shard));
  }

  ScopedSpan finalize_span(config.metrics, "corpus.finalize");
  // Query-level 70/10/20 split over the merged entry order, drawn from the
  // same sequential RNG stream — the step after the last shard's sampling,
  // exactly as in the K=1 build.
  std::vector<size_t> order(total_kept);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t n_train = static_cast<size_t>(
      config.train_frac * static_cast<double>(order.size()));
  const size_t n_dev = static_cast<size_t>(
      config.dev_frac * static_cast<double>(order.size()));
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < n_train) {
      train_idx.push_back(order[i]);
    } else if (i < n_train + n_dev) {
      dev_idx.push_back(order[i]);
    } else {
      test_idx.push_back(order[i]);
    }
  }

  stats.wall_seconds = build_timer.ElapsedSeconds();
  // Mirror the merged BuildStats into the registry (rung counts are
  // deterministic; see the shard-order merge above).
  metrics.rung_exact.Inc(stats.exact);
  metrics.rung_stratified.Inc(stats.stratified);
  metrics.rung_monte_carlo.Inc(stats.monte_carlo);
  metrics.rung_cnf_proxy.Inc(stats.cnf_proxy);
  metrics.rung_skipped.Inc(stats.skipped);
  for (const auto& [site, n] : stats.budget_trips) {
    metrics.budget_trips.Inc(n);
  }
  metrics.wall_seconds.Set(stats.wall_seconds);
  return stats;
}

}  // namespace

Corpus BuildCorpus(const Database& db, const SchemaGraph& graph,
                   const CorpusConfig& config, ThreadPool& pool) {
  const CorpusMetricSet metrics(config.metrics);
  Corpus corpus;
  corpus.db = &db;
  corpus.stats = RunShardedBuild(
      db, graph, config, pool, metrics,
      [&corpus](ShardResult&& shard) {
        for (CorpusEntry& e : shard.entries) {
          corpus.entries.push_back(std::move(e));
        }
      },
      corpus.train_idx, corpus.dev_idx, corpus.test_idx);
  return corpus;
}

Result<BuildStats> BuildCorpusToShards(const Database& db,
                                       const SchemaGraph& graph,
                                       const CorpusConfig& config,
                                       ThreadPool& pool,
                                       const std::string& path) {
  const CorpusMetricSet metrics(config.metrics);
  const uint64_t fingerprint = FactTableFingerprint(db);
  Status write_status = Status::Ok();
  std::vector<uint64_t> shard_entries;
  uint64_t base_entry = 0;
  std::vector<size_t> train_idx, dev_idx, test_idx;
  BuildStats stats = RunShardedBuild(
      db, graph, config, pool, metrics,
      [&](ShardResult&& shard) {
        if (!write_status.ok()) return;  // first write error wins
        ShardWriter writer(ShardFileName(path, shard.shard_index),
                           fingerprint, shard.shard_index, base_entry);
        for (const CorpusEntry& e : shard.entries) {
          write_status = writer.Append(e);
          if (!write_status.ok()) return;
        }
        write_status = writer.Finish(&shard.stats);
        if (!write_status.ok()) return;
        base_entry += shard.entries.size();
        shard_entries.push_back(shard.entries.size());
      },
      train_idx, dev_idx, test_idx);
  if (!write_status.ok()) return write_status;

  CorpusManifest manifest;
  manifest.db_name = db.name();
  manifest.db_facts = db.num_facts();
  manifest.db_fingerprint = fingerprint;
  manifest.shard_entries = std::move(shard_entries);
  manifest.train_idx = std::move(train_idx);
  manifest.dev_idx = std::move(dev_idx);
  manifest.test_idx = std::move(test_idx);
  manifest.stats = stats;
  Status s = WriteManifest(manifest, path);
  if (!s.ok()) return s;
  return stats;
}

SimilarityMatrices ComputeSimilarityMatrices(const Corpus& corpus,
                                             size_t max_tuples_for_rank,
                                             ThreadPool& pool) {
  const size_t n = corpus.entries.size();
  SimilarityMatrices m;
  m.syntax.assign(n, std::vector<double>(n, 0.0));
  m.witness.assign(n, std::vector<double>(n, 0.0));
  m.rank.assign(n, std::vector<double>(n, 0.0));

  // Truncated contribution views for the (expensive) rank similarity.
  std::vector<std::vector<TupleContribution>> capped(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = corpus.entries[i].contributions;
    const size_t take = std::min(c.size(), max_tuples_for_rank);
    capped[i].assign(c.begin(), c.begin() + static_cast<ptrdiff_t>(take));
  }

  // Upper-triangle pairs, parallelized.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) pairs.emplace_back(i, j);
  }
  ParallelFor(pool, pairs.size(), [&](size_t p) {
    const auto [i, j] = pairs[p];
    const CorpusEntry& a = corpus.entries[i];
    const CorpusEntry& b = corpus.entries[j];
    const double syn = SyntaxSimilarity(a.query, b.query);
    const double wit = WitnessSimilarity(a.all_outputs, b.all_outputs);
    const double rnk = RankSimilarity(capped[i], capped[j]);
    m.syntax[i][j] = m.syntax[j][i] = syn;
    m.witness[i][j] = m.witness[j][i] = wit;
    m.rank[i][j] = m.rank[j][i] = rnk;
  });
  return m;
}

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& split) {
  SplitStats stats;
  stats.queries = split.size();
  for (size_t i : split) {
    const CorpusEntry& e = corpus.entries[i];
    stats.results += e.all_outputs.size();
    for (const auto& c : e.contributions) stats.facts += c.shapley.size();
  }
  return stats;
}

std::unordered_set<FactId> TrainSeenFacts(const Corpus& corpus) {
  std::unordered_set<FactId> seen;
  for (size_t i : corpus.train_idx) {
    for (const auto& c : corpus.entries[i].contributions) {
      for (const auto& [f, v] : c.shapley) seen.insert(f);
    }
  }
  return seen;
}

double MeanGroupSimilarity(const std::vector<std::vector<double>>& matrix,
                           const std::vector<size_t>& group_a,
                           const std::vector<size_t>& group_b) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i : group_a) {
    for (size_t j : group_b) {
      if (i == j) continue;
      sum += matrix[i][j];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace lshap
