#include "corpus/corpus.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "shapley/shapley.h"

namespace lshap {

namespace {

// Per-job record of which ladder rung produced the ground truth (or that
// the tuple was skipped / never processed) plus the budget-trip sites hit
// along the way. Filled by worker threads (one slot per job, no sharing)
// and folded into BuildStats serially after the wave, so the recorded
// counts are deterministic regardless of thread interleaving.
struct LadderOutcome {
  enum Rung : uint8_t { kNotRun = 0, kExact, kMonteCarlo, kCnfProxy, kSkip };
  Rung rung = kNotRun;
  std::vector<std::string> trip_sites;
};

}  // namespace

// BuildCorpus's metric handles — the registry-backed successor of the
// ad-hoc BuildStats counters. BuildStats stays (it is serialized with the
// corpus and printed by the benches); the fold loop mirrors every count
// into these handles so one --metrics-json snapshot carries the rung
// transitions alongside the evaluator and trainer sections.
struct CorpusMetricSet {
  Counter queries_generated, queries_kept, tuples_prefiltered, jobs,
      rung_exact, rung_monte_carlo, rung_cnf_proxy, rung_skipped,
      budget_trips;
  Histogram lineage_facts, circuit_nodes;
  Gauge wall_seconds;

  CorpusMetricSet() = default;
  explicit CorpusMetricSet(MetricsRegistry* r)
      : queries_generated(CounterFor(r, "corpus.queries_generated")),
        queries_kept(CounterFor(r, "corpus.queries_kept")),
        tuples_prefiltered(CounterFor(r, "corpus.tuples_prefiltered")),
        jobs(CounterFor(r, "corpus.ground_truth_jobs")),
        rung_exact(CounterFor(r, "corpus.rung_exact")),
        rung_monte_carlo(CounterFor(r, "corpus.rung_monte_carlo")),
        rung_cnf_proxy(CounterFor(r, "corpus.rung_cnf_proxy")),
        rung_skipped(CounterFor(r, "corpus.rung_skipped")),
        budget_trips(CounterFor(r, "corpus.budget_trips")),
        lineage_facts(HistogramFor(r, "corpus.lineage_facts",
                                   ExponentialBuckets(1.0, 2.0, 10))),
        circuit_nodes(HistogramFor(r, "corpus.circuit_nodes",
                                   ExponentialBuckets(4.0, 4.0, 10))),
        wall_seconds(GaugeFor(r, "corpus.wall_seconds")) {}
};

Corpus BuildCorpus(const Database& db, const SchemaGraph& graph,
                   const CorpusConfig& config, ThreadPool& pool) {
  WallTimer build_timer;
  ScopedSpan build_span(config.metrics, "corpus.build");
  const CorpusMetricSet metrics(config.metrics);
  Corpus corpus;
  corpus.db = &db;

  std::vector<Query> log;
  {
    ScopedSpan span(config.metrics, "corpus.generate_log");
    QueryGenerator generator(&db, graph, config.query_gen, config.seed);
    log = generator.GenerateLog(config.num_base_queries, db.name());
    metrics.queries_generated.Inc(log.size());
  }

  Rng rng(config.seed ^ 0xc0ffee);

  // Evaluate each query; keep those with non-empty (and bounded) results.
  // The registry threads through to the evaluator, so a corpus build's
  // snapshot also carries the eval.* section for its query replay.
  const EvalOptions eval_options =
      EvalOptions().WithMetrics(config.metrics);
  struct Pending {
    Query query;
    EvalResult result;
    std::vector<size_t> sampled;  // output indices to compute Shapley for
  };
  std::vector<Pending> pending;
  {
    ScopedSpan span(config.metrics, "corpus.evaluate_log");
    for (const Query& q : log) {
      auto eval = Evaluate(db, q, eval_options);
      if (!eval.ok()) continue;
      EvalResult result = std::move(eval).value();
      if (result.tuples.size() < config.min_outputs_per_query) continue;

      Pending p;
      p.query = q;
      const size_t total = result.tuples.size();
      const size_t want = std::min(total, config.max_outputs_per_query);
      p.sampled = rng.SampleWithoutReplacement(total, want);
      std::sort(p.sampled.begin(), p.sampled.end());
      p.result = std::move(result);
      pending.push_back(std::move(p));
    }
    metrics.queries_kept.Inc(pending.size());
  }

  // Shapley ground truth, parallel over (query, tuple) pairs, each pair
  // descending the degradation ladder under the configured budgets.
  struct Job {
    size_t entry;
    size_t slot;
    const Dnf* prov;
  };
  corpus.entries.resize(pending.size());
  BuildStats& stats = corpus.stats;
  std::vector<Job> jobs;
  for (size_t e = 0; e < pending.size(); ++e) {
    Pending& p = pending[e];
    CorpusEntry& entry = corpus.entries[e];
    entry.query = p.query;
    entry.all_outputs = std::move(p.result.tuples);
    size_t slot = 0;
    for (size_t idx : p.sampled) {
      const Dnf& prov = p.result.provenance[idx];
      if (prov.Variables().size() > config.max_lineage ||
          prov.num_clauses() > config.max_clauses) {
        // The syntactic pre-filter is the outermost skip rung: the tuple
        // never reaches the ladder, but it still leaves a skip record.
        ++stats.skipped;
        ++stats.budget_trips[kSiteCorpusPrefilter];
        metrics.tuples_prefiltered.Inc();
        continue;
      }
      metrics.lineage_facts.Observe(
          static_cast<double>(prov.Variables().size()));
      entry.contributions.push_back({entry.all_outputs[idx], {}});
      jobs.push_back({e, slot, &prov});
      ++slot;
    }
  }

  // Whole-build deadline: checked at every job start; on expiry the token
  // cancels the wave (and, via the per-tuple budgets, any rung mid-flight).
  using Clock = std::chrono::steady_clock;
  const bool has_build_deadline = config.build_deadline_seconds > 0.0;
  const Clock::time_point build_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             config.build_deadline_seconds));
  CancelToken build_cancel;

  std::vector<LadderOutcome> outcomes(jobs.size());
  const auto ladder = [&](size_t j) -> Status {
    const Job& job = jobs[j];
    LadderOutcome& outcome = outcomes[j];
    ShapleyValues& dest =
        corpus.entries[job.entry].contributions[job.slot].shapley;
    if (has_build_deadline && Clock::now() >= build_deadline) {
      return Status::ResourceExhausted("corpus build deadline exceeded");
    }

    // Rung 1: exact circuit Shapley under the full per-tuple budget.
    {
      ExecutionBudget budget(
          {config.tuple_deadline_seconds, config.max_circuit_nodes},
          &build_cancel, config.fault_injector);
      Result<ShapleyValues> exact = ComputeShapleyExact(*job.prov, budget);
      if (exact.ok()) {
        dest = std::move(exact).value();
        outcome.rung = LadderOutcome::kExact;
        // Charge accounting runs even on an unlimited budget, so after a
        // successful exact rung the charged units are (almost exactly) the
        // compiled circuit's node count.
        metrics.circuit_nodes.Observe(
            static_cast<double>(budget.charged_units()));
        return Status::Ok();
      }
      outcome.trip_sites.push_back(budget.trip_site());
      if (exact.status().code() == StatusCode::kCancelled) {
        return exact.status();
      }
    }
    // Rung 2: Monte-Carlo estimate with a fixed sample budget and a fresh
    // deadline. Seeded per job index so the fallback is deterministic
    // regardless of which thread runs it.
    {
      ExecutionBudget budget({config.tuple_deadline_seconds, 0},
                             &build_cancel, config.fault_injector);
      Rng mc_rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)));
      Result<ShapleyValues> mc = ComputeShapleyMonteCarlo(
          *job.prov, config.mc_fallback_samples, mc_rng, budget);
      if (mc.ok()) {
        dest = std::move(mc).value();
        outcome.rung = LadderOutcome::kMonteCarlo;
        return Status::Ok();
      }
      outcome.trip_sites.push_back(budget.trip_site());
      if (mc.status().code() == StatusCode::kCancelled) return mc.status();
    }
    // Rung 3: CNF-proxy ranking scores (polynomial closed form).
    {
      ExecutionBudget budget({config.tuple_deadline_seconds, 0},
                             &build_cancel, config.fault_injector);
      Result<ShapleyValues> proxy = ComputeCnfProxy(*job.prov, budget);
      if (proxy.ok()) {
        dest = std::move(proxy).value();
        outcome.rung = LadderOutcome::kCnfProxy;
        return Status::Ok();
      }
      outcome.trip_sites.push_back(budget.trip_site());
      if (proxy.status().code() == StatusCode::kCancelled) {
        return proxy.status();
      }
    }
    // Rung 4: skip. The tuple is dropped below with a stats record; the
    // wave itself keeps going.
    outcome.rung = LadderOutcome::kSkip;
    return Status::Ok();
  };
  metrics.jobs.Inc(jobs.size());
  // The wave status is deliberately dropped: a cancelled build is not an
  // error of BuildCorpus — the unprocessed jobs are folded into the skip
  // accounting below and the (partial) corpus is still valid.
  {
    ScopedSpan span(config.metrics, "corpus.ground_truth");
    (void)ParallelFor(pool, jobs.size(), build_cancel, ladder);
  }
  ScopedSpan finalize_span(config.metrics, "corpus.finalize");

  // Fold the per-job outcomes into BuildStats serially (deterministic
  // counts), then drop the contributions that got no ground truth.
  for (const LadderOutcome& outcome : outcomes) {
    switch (outcome.rung) {
      case LadderOutcome::kExact:
        ++stats.exact;
        break;
      case LadderOutcome::kMonteCarlo:
        ++stats.monte_carlo;
        break;
      case LadderOutcome::kCnfProxy:
        ++stats.cnf_proxy;
        break;
      case LadderOutcome::kSkip:
        ++stats.skipped;
        break;
      case LadderOutcome::kNotRun:
        // Build cancelled (or deadline hit) before this tuple ran.
        ++stats.skipped;
        ++stats.budget_trips[kSiteCorpusBuildDeadline];
        break;
    }
    for (const std::string& site : outcome.trip_sites) {
      ++stats.budget_trips[site];
    }
  }
  for (auto& e : corpus.entries) {
    e.contributions.erase(
        std::remove_if(e.contributions.begin(), e.contributions.end(),
                       [](const TupleContribution& c) {
                         return c.shapley.empty();
                       }),
        e.contributions.end());
  }

  // Drop entries that ended with no usable contributions.
  std::vector<CorpusEntry> kept;
  kept.reserve(corpus.entries.size());
  for (auto& e : corpus.entries) {
    if (!e.contributions.empty()) kept.push_back(std::move(e));
  }
  corpus.entries = std::move(kept);

  // Query-level 70/10/20 split.
  std::vector<size_t> order(corpus.entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t n_train =
      static_cast<size_t>(config.train_frac * static_cast<double>(order.size()));
  const size_t n_dev =
      static_cast<size_t>(config.dev_frac * static_cast<double>(order.size()));
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < n_train) {
      corpus.train_idx.push_back(order[i]);
    } else if (i < n_train + n_dev) {
      corpus.dev_idx.push_back(order[i]);
    } else {
      corpus.test_idx.push_back(order[i]);
    }
  }
  stats.wall_seconds = build_timer.ElapsedSeconds();
  // Mirror the folded BuildStats into the registry (rung counts are
  // deterministic; see the serial fold above).
  metrics.rung_exact.Inc(stats.exact);
  metrics.rung_monte_carlo.Inc(stats.monte_carlo);
  metrics.rung_cnf_proxy.Inc(stats.cnf_proxy);
  metrics.rung_skipped.Inc(stats.skipped);
  for (const auto& [site, n] : stats.budget_trips) {
    metrics.budget_trips.Inc(n);
  }
  metrics.wall_seconds.Set(stats.wall_seconds);
  return corpus;
}

SimilarityMatrices ComputeSimilarityMatrices(const Corpus& corpus,
                                             size_t max_tuples_for_rank,
                                             ThreadPool& pool) {
  const size_t n = corpus.entries.size();
  SimilarityMatrices m;
  m.syntax.assign(n, std::vector<double>(n, 0.0));
  m.witness.assign(n, std::vector<double>(n, 0.0));
  m.rank.assign(n, std::vector<double>(n, 0.0));

  // Truncated contribution views for the (expensive) rank similarity.
  std::vector<std::vector<TupleContribution>> capped(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = corpus.entries[i].contributions;
    const size_t take = std::min(c.size(), max_tuples_for_rank);
    capped[i].assign(c.begin(), c.begin() + static_cast<ptrdiff_t>(take));
  }

  // Upper-triangle pairs, parallelized.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) pairs.emplace_back(i, j);
  }
  ParallelFor(pool, pairs.size(), [&](size_t p) {
    const auto [i, j] = pairs[p];
    const CorpusEntry& a = corpus.entries[i];
    const CorpusEntry& b = corpus.entries[j];
    const double syn = SyntaxSimilarity(a.query, b.query);
    const double wit = WitnessSimilarity(a.all_outputs, b.all_outputs);
    const double rnk = RankSimilarity(capped[i], capped[j]);
    m.syntax[i][j] = m.syntax[j][i] = syn;
    m.witness[i][j] = m.witness[j][i] = wit;
    m.rank[i][j] = m.rank[j][i] = rnk;
  });
  return m;
}

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& split) {
  SplitStats stats;
  stats.queries = split.size();
  for (size_t i : split) {
    const CorpusEntry& e = corpus.entries[i];
    stats.results += e.all_outputs.size();
    for (const auto& c : e.contributions) stats.facts += c.shapley.size();
  }
  return stats;
}

std::unordered_set<FactId> TrainSeenFacts(const Corpus& corpus) {
  std::unordered_set<FactId> seen;
  for (size_t i : corpus.train_idx) {
    for (const auto& c : corpus.entries[i].contributions) {
      for (const auto& [f, v] : c.shapley) seen.insert(f);
    }
  }
  return seen;
}

double MeanGroupSimilarity(const std::vector<std::vector<double>>& matrix,
                           const std::vector<size_t>& group_a,
                           const std::vector<size_t>& group_b) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i : group_a) {
    for (size_t j : group_b) {
      if (i == j) continue;
      sum += matrix[i][j];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace lshap
