#ifndef LSHAP_CORPUS_IO_H_
#define LSHAP_CORPUS_IO_H_

#include <string>

#include "common/status.h"
#include "corpus/corpus.h"

namespace lshap {

// Saves a corpus (queries as SQL, witnesses, sampled contributions with
// exact Shapley values, and the train/dev/test split) to a line-oriented
// text file — the redistributable DBShap artifact.
//
// Fact ids are database-relative: loading requires the same deterministic
// database build (same generator config and seed), which the header records
// by database name and fact count.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

// Loads a corpus previously written by SaveCorpus. Queries are re-parsed
// from their SQL; `db` must be the same database instance the corpus was
// built over (validated by name and fact count).
Result<Corpus> LoadCorpus(const Database* db, const std::string& path);

}  // namespace lshap

#endif  // LSHAP_CORPUS_IO_H_
