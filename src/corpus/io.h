#ifndef LSHAP_CORPUS_IO_H_
#define LSHAP_CORPUS_IO_H_

#include <string>

#include "common/status.h"
#include "corpus/corpus.h"

namespace lshap {

// Saves a corpus (queries as SQL, witnesses, sampled contributions with
// exact Shapley values, and the train/dev/test split) to a line-oriented
// text file — the human-greppable differential oracle for the packed
// binary format below.
//
// Fact ids are database-relative: loading requires the same deterministic
// database build (same generator config and seed), which the header records
// by database name, fact count and an FNV-1a fact-table fingerprint.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

// Loads a corpus previously written by SaveCorpus or SaveCorpusShards (the
// binary manifest magic is auto-detected). Queries are re-parsed from their
// SQL; `db` must be the same database instance the corpus was built over —
// validated by name and fact count (kFailedPrecondition) and, when the file
// records one, by fact-table fingerprint (kInvalidArgument: same name and
// size but different facts).
Result<Corpus> LoadCorpus(const Database* db, const std::string& path);

// Saves a corpus as a packed binary manifest at `path` plus
// `<path>.shardNNN` shard files (format.h). `num_shards` 0 means one
// shard; entries are partitioned contiguously. `f32_payload` stores
// Shapley values quantized to float32 (half the payload bytes, ~1e-7
// relative error) instead of the lossless float64 default.
Status SaveCorpusShards(const Corpus& corpus, const std::string& path,
                        size_t num_shards = 0, bool f32_payload = false);

// Loads a packed binary corpus written by SaveCorpusShards or
// BuildCorpusToShards. Validates the manifest and every shard against
// `db`'s fact-table fingerprint and each shard file's checksum.
Result<Corpus> LoadCorpusShards(const Database* db, const std::string& path);

}  // namespace lshap

#endif  // LSHAP_CORPUS_IO_H_
