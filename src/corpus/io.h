#ifndef LSHAP_CORPUS_IO_H_
#define LSHAP_CORPUS_IO_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "corpus/corpus.h"

namespace lshap {

// Saves a corpus (queries as SQL, witnesses, sampled contributions with
// exact Shapley values, and the train/dev/test split) to a line-oriented
// text file — the human-greppable differential oracle for the packed
// binary format below.
//
// Fact ids are database-relative: loading requires the same deterministic
// database build (same generator config and seed), which the header records
// by database name, fact count and an FNV-1a fact-table fingerprint.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

// Loads a corpus previously written by SaveCorpus or SaveCorpusShards (the
// binary manifest magic is auto-detected). Queries are re-parsed from their
// SQL; `db` must be the same database instance the corpus was built over —
// validated by name and fact count (kFailedPrecondition) and, when the file
// records one, by fact-table fingerprint (kInvalidArgument: same name and
// size but different facts).
Result<Corpus> LoadCorpus(const Database* db, const std::string& path);

// Saves a corpus as a packed binary manifest at `path` plus
// `<path>.shardNNN` shard files (format.h). `num_shards` 0 means one
// shard; entries are partitioned contiguously. `f32_payload` stores
// Shapley values quantized to float32 (half the payload bytes, ~1e-7
// relative error) instead of the lossless float64 default.
Status SaveCorpusShards(const Corpus& corpus, const std::string& path,
                        size_t num_shards = 0, bool f32_payload = false);

// Shard-load policy. The default (strict) fails the whole load on the
// first bad shard. Non-strict is quarantine mode: a shard that is missing,
// truncated, corrupted, or provenance-mismatched is skipped with per-shard
// accounting in ShardLoadReport, and the surviving entries (with their
// split indices remapped) still load — for salvaging a partially damaged
// corpus directory. Manifest errors and database identity/fingerprint
// mismatches are fatal in both modes: without a trusted manifest there is
// nothing sound to quarantine against.
struct ShardLoadOptions {
  bool strict = true;
  // Optional fault injector threaded into ShardReader::Open (polled at
  // kSiteShardOpen / kSiteShardRecord); tests use it to force read faults.
  FaultInjector* fault = nullptr;
};

// Per-shard accounting of a quarantined load.
struct ShardLoadReport {
  struct SkippedShard {
    size_t shard_index = 0;
    StatusCode code = StatusCode::kInternal;  // why the shard was skipped
    std::string reason;                      // the full error message
  };
  size_t loaded_shards = 0;
  std::vector<SkippedShard> skipped_shards;
  // Entries lost with the skipped shards (from the manifest shard table),
  // and train/dev/test split references that pointed into them.
  size_t dropped_entries = 0;
  size_t dropped_split_refs = 0;
};

// Loads a packed binary corpus written by SaveCorpusShards or
// BuildCorpusToShards. Validates the manifest and every shard against
// `db`'s fact-table fingerprint and each shard file's checksum.
Result<Corpus> LoadCorpusShards(const Database* db, const std::string& path);

// As above with an explicit load policy; `report` (optional) receives the
// per-shard accounting. In strict mode a successful load reports all
// shards loaded and nothing skipped.
Result<Corpus> LoadCorpusShards(const Database* db, const std::string& path,
                                const ShardLoadOptions& options,
                                ShardLoadReport* report = nullptr);

}  // namespace lshap

#endif  // LSHAP_CORPUS_IO_H_
