#ifndef LSHAP_CORPUS_CORPUS_H_
#define LSHAP_CORPUS_CORPUS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/budget.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "query/generator.h"
#include "relational/database.h"
#include "similarity/similarity.h"

namespace lshap {

// Everything DBShap stores for one query: the query, its full output (the
// witness set), and — for a sampled subset of outputs — the exact Shapley
// value of every lineage fact.
struct CorpusEntry {
  Query query;
  std::vector<OutputTuple> all_outputs;
  // Sampled (output tuple, exact Shapley values) pairs; the tuple's lineage
  // is exactly the key set of `shapley`.
  std::vector<TupleContribution> contributions;
};

// Synthetic budget-trip sites recorded by the corpus builder in addition to
// the engine sites (kSiteCompilerExpand, kSiteShapleyCount, ...).
inline constexpr char kSiteCorpusPrefilter[] = "corpus.prefilter";
inline constexpr char kSiteCorpusBuildDeadline[] = "corpus.build_deadline";

// What one shard's worker did during a sharded build: its slice of the
// query log, the rung each of its sampled tuples landed on, and the budget
// trips it recorded. Shard stats merge associatively in shard order into
// the whole-build BuildStats, so the merged totals are identical for any
// shard count.
struct ShardBuildStats {
  uint32_t shard_index = 0;
  size_t entries = 0;      // corpus entries this shard contributed
  size_t exact = 0;
  size_t stratified = 0;
  size_t monte_carlo = 0;
  size_t cnf_proxy = 0;
  size_t skipped = 0;
  double wall_seconds = 0.0;  // this shard's ladder wall time
  std::map<std::string, size_t> budget_trips;

  size_t attempted() const {
    return exact + stratified + monte_carlo + cnf_proxy + skipped;
  }
};

// What the graceful-degradation ladder did during one BuildCorpus run. Each
// sampled output tuple lands on exactly one rung:
//   exact -> stratified -> monte_carlo -> cnf_proxy -> skipped
// (the stratified rung only exists when stratified_fallback_samples > 0;
// the historical ladder goes straight from exact to monte_carlo). The
// invariant `exact + stratified + monte_carlo + cnf_proxy + skipped ==
// attempted()` means no tuple is ever silently lost: a tuple without
// ground truth always leaves a skip record with a trip site explaining why.
struct BuildStats {
  size_t exact = 0;        // rung 1: exact circuit Shapley
  size_t stratified = 0;   // rung 2: relation-stratified MC (opt-in)
  size_t monte_carlo = 0;  // rung 3: permutation-sampling estimate
  size_t cnf_proxy = 0;    // rung 4: CNF-proxy ranking scores
  // rung 5: dropped — pre-filtered (max_lineage / max_clauses), every
  // computing rung tripped its budget, or the build was cancelled before
  // the tuple was processed.
  size_t skipped = 0;
  double wall_seconds = 0.0;  // whole-build wall time
  // Budget-trip occurrences keyed by check site (ExecutionBudget trip sites
  // plus the synthetic corpus.* sites above). Merged from the per-shard
  // maps in shard order — never under a mutex in completion order — so the
  // totals are deterministic at any thread count.
  std::map<std::string, size_t> budget_trips;
  // Per-shard breakdown, one slot per shard in shard order. Size equals the
  // build's num_shards (a single slot for the historical K=1 build).
  std::vector<ShardBuildStats> per_shard;

  size_t attempted() const {
    return exact + stratified + monte_carlo + cnf_proxy + skipped;
  }
};

// A DBShap-style corpus over one database: query log with ground truth and
// the 70/10/20 query-level split of Section 4.
struct Corpus {
  const Database* db = nullptr;
  std::vector<CorpusEntry> entries;
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;
  BuildStats stats;
};

// Follows the options-builder convention (DESIGN.md §9.4): a
// default-constructed config reproduces the historical corpus bit-for-bit,
// and every knob has a chainable With* setter.
struct CorpusConfig {
  uint64_t seed = 1;
  // Base queries to generate; mutated variants multiply this by ~2-3x.
  size_t num_base_queries = 40;
  // Cap on outputs per query for which exact Shapley values are computed
  // (DBShap computes all; we sample for tractability — see DESIGN.md).
  size_t max_outputs_per_query = 30;
  // Skip output tuples whose lineage exceeds this (circuit compilation for
  // pathological provenance can blow up; the paper's max is ~200).
  size_t max_lineage = 200;
  // Skip output tuples with more derivations than this — dense multi-hub
  // provenance is where knowledge compilation degenerates (it is PP-hard in
  // general).
  size_t max_clauses = 120;
  // Queries with fewer results than this are dropped from the log.
  size_t min_outputs_per_query = 1;
  double train_frac = 0.7;
  double dev_frac = 0.1;
  QueryGenConfig query_gen;

  // --- Resource governance (DESIGN.md "Resource governance & degraded
  // modes"). The defaults reproduce the historical unbounded behaviour. ---
  // Per-tuple wall-clock allowance, applied afresh to each ladder rung;
  // 0 = no deadline.
  double tuple_deadline_seconds = 0.0;
  // Circuit-node/work allowance for the exact rung's compilation (one unit
  // per circuit node); 0 = unlimited. This is the principled replacement
  // for relying solely on the max_lineage/max_clauses pre-filter: it bounds
  // the *actual* compiled size, not a syntactic proxy of it.
  size_t max_circuit_nodes = 0;
  // Sample budget of the Monte-Carlo fallback rung.
  size_t mc_fallback_samples = 20000;
  // Per-fact sample budget of the relation-stratified MC rung, tried
  // between exact and plain MC (DESIGN.md §13). 0 (the default) disables
  // the rung, reproducing the historical exact -> MC ladder bit-for-bit.
  // Because stratification cuts variance at equal budget, a useful setting
  // is below mc_fallback_samples — equal estimator quality for less work,
  // so more tuples finish above the CNF-proxy rung under a tight
  // tuple deadline.
  size_t stratified_fallback_samples = 0;
  // Whole-build wall-clock allowance; 0 = none. On expiry the parallel
  // ground-truth wave is cancelled cooperatively and every unprocessed
  // tuple is recorded as skipped (site corpus.build_deadline).
  double build_deadline_seconds = 0.0;
  // Number of build shards. The query log is partitioned contiguously into
  // this many slices, each evaluated and laddered by an independent worker;
  // shards merge in stable shard order, so any value reproduces the K=1
  // (historical) corpus bit-for-bit when no wall-clock deadline fires.
  size_t num_shards = 1;
  // Deterministic test hook forcing budget trips at exact sites; not owned.
  FaultInjector* fault_injector = nullptr;
  // Observability opt-in: when set, BuildCorpus records corpus.* counters
  // (rung transitions, budget trips, circuit sizes) and phase spans into
  // the registry, and threads it through every per-query Evaluate call.
  // The registry only observes; corpus contents are identical either way.
  MetricsRegistry* metrics = nullptr;

  CorpusConfig& WithSeed(uint64_t s) { seed = s; return *this; }
  CorpusConfig& WithNumBaseQueries(size_t n) {
    num_base_queries = n;
    return *this;
  }
  CorpusConfig& WithMaxOutputsPerQuery(size_t n) {
    max_outputs_per_query = n;
    return *this;
  }
  CorpusConfig& WithMaxLineage(size_t n) { max_lineage = n; return *this; }
  CorpusConfig& WithMaxClauses(size_t n) { max_clauses = n; return *this; }
  CorpusConfig& WithMinOutputsPerQuery(size_t n) {
    min_outputs_per_query = n;
    return *this;
  }
  CorpusConfig& WithSplit(double train, double dev) {
    train_frac = train;
    dev_frac = dev;
    return *this;
  }
  CorpusConfig& WithQueryGen(const QueryGenConfig& qg) {
    query_gen = qg;
    return *this;
  }
  CorpusConfig& WithTupleDeadlineSeconds(double s) {
    tuple_deadline_seconds = s;
    return *this;
  }
  CorpusConfig& WithMaxCircuitNodes(size_t n) {
    max_circuit_nodes = n;
    return *this;
  }
  CorpusConfig& WithMcFallbackSamples(size_t n) {
    mc_fallback_samples = n;
    return *this;
  }
  CorpusConfig& WithStratifiedFallbackSamples(size_t n) {
    stratified_fallback_samples = n;
    return *this;
  }
  CorpusConfig& WithBuildDeadlineSeconds(double s) {
    build_deadline_seconds = s;
    return *this;
  }
  CorpusConfig& WithNumShards(size_t k) {
    num_shards = k == 0 ? 1 : k;
    return *this;
  }
  CorpusConfig& WithFaultInjector(FaultInjector* f) {
    fault_injector = f;
    return *this;
  }
  CorpusConfig& WithMetrics(MetricsRegistry* m) { metrics = m; return *this; }
};

// Generates a query log over `db`, evaluates it with provenance, computes
// Shapley ground truth for sampled outputs (in parallel over `pool`), and
// splits queries into train/dev/test. Each tuple's ground truth descends a
// graceful-degradation ladder under the configured budgets — exact circuit
// Shapley, then (when enabled) a relation-stratified MC estimate, then a
// plain Monte-Carlo estimate, then the CNF proxy, then skip — with
// per-rung counts and budget-trip sites recorded in Corpus::stats.
// Deterministic for a fixed config whenever no deadline fires (budget trips
// caused by wall-clock deadlines depend on machine speed; node budgets and
// fault injection are exactly reproducible).
Corpus BuildCorpus(const Database& db, const SchemaGraph& graph,
                   const CorpusConfig& config, ThreadPool& pool);

// Sharded-build variant that streams each shard's entries straight into the
// packed binary shard files at `path` (manifest plus one
// `<path>.shardNNN` per shard) instead of materialising a resident Corpus.
// Builder memory holds one entry at a time per shard; the written corpus
// loads back (LoadCorpusShards / LoadCorpus auto-detect) identical to what
// BuildCorpus returns for the same config. Returns the merged BuildStats.
Result<BuildStats> BuildCorpusToShards(const Database& db,
                                       const SchemaGraph& graph,
                                       const CorpusConfig& config,
                                       ThreadPool& pool,
                                       const std::string& path);

// Pairwise query-similarity matrices over a corpus (Figure 7, Table 2).
struct SimilarityMatrices {
  std::vector<std::vector<double>> syntax;
  std::vector<std::vector<double>> witness;
  std::vector<std::vector<double>> rank;
};

// Computes all three N x N matrices; rank similarity caps each query's
// output side at `max_tuples_for_rank` contributions. Symmetric with unit
// diagonal.
SimilarityMatrices ComputeSimilarityMatrices(const Corpus& corpus,
                                             size_t max_tuples_for_rank,
                                             ThreadPool& pool);

// Per-split counts for Table 1.
struct SplitStats {
  size_t queries = 0;
  size_t results = 0;   // output tuples across the split (full witness sets)
  size_t facts = 0;     // contributing facts across sampled contributions
};

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& split);

// The set of facts appearing in any training contribution's lineage — used
// by the seen/unseen analyses (Section 5.7).
std::unordered_set<FactId> TrainSeenFacts(const Corpus& corpus);

// Mean similarity between two groups of queries (e.g. train vs. test) under
// a precomputed matrix; pairs (i, i) are excluded.
double MeanGroupSimilarity(const std::vector<std::vector<double>>& matrix,
                           const std::vector<size_t>& group_a,
                           const std::vector<size_t>& group_b);

}  // namespace lshap

#endif  // LSHAP_CORPUS_CORPUS_H_
