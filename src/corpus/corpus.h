#ifndef LSHAP_CORPUS_CORPUS_H_
#define LSHAP_CORPUS_CORPUS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "query/generator.h"
#include "relational/database.h"
#include "similarity/similarity.h"

namespace lshap {

// Everything DBShap stores for one query: the query, its full output (the
// witness set), and — for a sampled subset of outputs — the exact Shapley
// value of every lineage fact.
struct CorpusEntry {
  Query query;
  std::vector<OutputTuple> all_outputs;
  // Sampled (output tuple, exact Shapley values) pairs; the tuple's lineage
  // is exactly the key set of `shapley`.
  std::vector<TupleContribution> contributions;
};

// A DBShap-style corpus over one database: query log with ground truth and
// the 70/10/20 query-level split of Section 4.
struct Corpus {
  const Database* db = nullptr;
  std::vector<CorpusEntry> entries;
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;
};

struct CorpusConfig {
  uint64_t seed = 1;
  // Base queries to generate; mutated variants multiply this by ~2-3x.
  size_t num_base_queries = 40;
  // Cap on outputs per query for which exact Shapley values are computed
  // (DBShap computes all; we sample for tractability — see DESIGN.md).
  size_t max_outputs_per_query = 30;
  // Skip output tuples whose lineage exceeds this (circuit compilation for
  // pathological provenance can blow up; the paper's max is ~200).
  size_t max_lineage = 200;
  // Skip output tuples with more derivations than this — dense multi-hub
  // provenance is where knowledge compilation degenerates (it is PP-hard in
  // general).
  size_t max_clauses = 120;
  // Queries with fewer results than this are dropped from the log.
  size_t min_outputs_per_query = 1;
  double train_frac = 0.7;
  double dev_frac = 0.1;
  QueryGenConfig query_gen;
};

// Generates a query log over `db`, evaluates it with provenance, computes
// exact Shapley ground truth for sampled outputs (in parallel over `pool`),
// and splits queries into train/dev/test.
Corpus BuildCorpus(const Database& db, const SchemaGraph& graph,
                   const CorpusConfig& config, ThreadPool& pool);

// Pairwise query-similarity matrices over a corpus (Figure 7, Table 2).
struct SimilarityMatrices {
  std::vector<std::vector<double>> syntax;
  std::vector<std::vector<double>> witness;
  std::vector<std::vector<double>> rank;
};

// Computes all three N x N matrices; rank similarity caps each query's
// output side at `max_tuples_for_rank` contributions. Symmetric with unit
// diagonal.
SimilarityMatrices ComputeSimilarityMatrices(const Corpus& corpus,
                                             size_t max_tuples_for_rank,
                                             ThreadPool& pool);

// Per-split counts for Table 1.
struct SplitStats {
  size_t queries = 0;
  size_t results = 0;   // output tuples across the split (full witness sets)
  size_t facts = 0;     // contributing facts across sampled contributions
};

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& split);

// The set of facts appearing in any training contribution's lineage — used
// by the seen/unseen analyses (Section 5.7).
std::unordered_set<FactId> TrainSeenFacts(const Corpus& corpus);

// Mean similarity between two groups of queries (e.g. train vs. test) under
// a precomputed matrix; pairs (i, i) are excluded.
double MeanGroupSimilarity(const std::vector<std::vector<double>>& matrix,
                           const std::vector<size_t>& group_a,
                           const std::vector<size_t>& group_b);

}  // namespace lshap

#endif  // LSHAP_CORPUS_CORPUS_H_
