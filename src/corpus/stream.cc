#include "corpus/stream.h"

#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

size_t CorpusStream::ShardOf(size_t i) const {
  LSHAP_CHECK_LT(i, num_entries());
  // K is small (shards are coarse units); a linear scan beats keeping a
  // parallel cumulative array in every implementation.
  for (size_t s = 0; s < num_shards(); ++s) {
    if (i < shard_base(s) + shard_entries(s)) return s;
  }
  return num_shards() - 1;
}

InMemoryCorpusStream::InMemoryCorpusStream(const Corpus& corpus)
    : corpus_(&corpus) {
  LSHAP_CHECK(corpus.db != nullptr);
}

Result<CorpusSlice> InMemoryCorpusStream::ReadShard(size_t s) const {
  if (s != 0) {
    return Status::InvalidArgument(
        StrFormat("in-memory stream has one shard, got %zu", s));
  }
  CorpusSlice slice;
  slice.shard_index = 0;
  slice.base_entry = 0;
  // Alias the resident corpus: no copy, no ownership (the corpus outlives
  // the stream by contract).
  slice.corpus = std::shared_ptr<const Corpus>(corpus_, [](const Corpus*) {});
  return slice;
}

Result<ShardedCorpusStream> ShardedCorpusStream::Open(
    const Database* db, const std::string& path) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  auto manifest = ReadManifest(path);
  if (!manifest.ok()) return manifest.status();
  if (manifest->db_name != db->name() ||
      manifest->db_facts != db->num_facts()) {
    return Status::FailedPrecondition(
        StrFormat("corpus was built over database '%s' (%zu facts), got "
                  "'%s' (%zu facts)",
                  manifest->db_name.c_str(),
                  static_cast<size_t>(manifest->db_facts),
                  db->name().c_str(), db->num_facts()));
  }
  const uint64_t fingerprint = FactTableFingerprint(*db);
  if (manifest->db_fingerprint != fingerprint) {
    return Status::InvalidArgument(StrFormat(
        "corpus manifest '%s' was built over a database with fact-table "
        "fingerprint %016llx, but the given database fingerprints %016llx "
        "— same name/size is not enough, the fact tables differ",
        path.c_str(),
        static_cast<unsigned long long>(manifest->db_fingerprint),
        static_cast<unsigned long long>(fingerprint)));
  }

  ShardedCorpusStream stream;
  stream.db_ = db;
  stream.path_ = path;
  stream.fingerprint_ = fingerprint;
  stream.manifest_ = std::move(*manifest);
  stream.bases_.reserve(stream.manifest_.num_shards());
  size_t base = 0;
  for (uint64_t n : stream.manifest_.shard_entries) {
    stream.bases_.push_back(base);
    base += static_cast<size_t>(n);
  }
  stream.counter_ = std::make_shared<ResidentCounter>();
  return stream;
}

Result<CorpusSlice> ShardedCorpusStream::ReadShard(size_t s) const {
  if (s >= manifest_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %zu out of range (corpus has %zu)", s,
                  manifest_.num_shards()));
  }
  if (fault_ != nullptr) {
    Status injected = fault_->OnSite(kSiteStreamRead);
    if (!injected.ok()) return injected;
  }
  const std::string shard_path = ShardFileName(path_, s);
  auto reader = ShardReader::Open(shard_path, fingerprint_, fault_);
  if (!reader.ok()) return reader.status();
  if (reader->footer().shard_index != s ||
      reader->num_records() !=
          static_cast<size_t>(manifest_.shard_entries[s])) {
    return Status::InvalidArgument(StrFormat(
        "corpus shard '%s' does not match its manifest (shard %u with %zu "
        "records, manifest expects shard %zu with %zu records)",
        shard_path.c_str(), reader->footer().shard_index,
        reader->num_records(), s,
        static_cast<size_t>(manifest_.shard_entries[s])));
  }

  auto chunk = std::make_unique<Corpus>();
  chunk->db = db_;
  chunk->entries.reserve(reader->num_records());
  for (size_t i = 0; i < reader->num_records(); ++i) {
    auto entry = reader->ReadRecord(i, *db_);
    if (!entry.ok()) return entry.status();
    chunk->entries.push_back(std::move(*entry));
  }

  const size_t n = chunk->entries.size();
  std::shared_ptr<ResidentCounter> counter = counter_;
  size_t cur = counter->resident.fetch_add(n) + n;
  size_t peak = counter->peak.load();
  while (cur > peak && !counter->peak.compare_exchange_weak(peak, cur)) {
  }

  CorpusSlice slice;
  slice.shard_index = s;
  slice.base_entry = bases_[s];
  // The deleter keeps the counter alive, so slices may outlive the stream.
  slice.corpus = std::shared_ptr<const Corpus>(
      chunk.release(), [counter, n](const Corpus* p) {
        counter->resident.fetch_sub(n);
        delete p;
      });
  return slice;
}

size_t ShardedCorpusStream::resident_entries() const {
  return counter_->resident.load();
}

size_t ShardedCorpusStream::peak_resident_entries() const {
  return counter_->peak.load();
}

ShardCursor::ShardCursor(const CorpusStream& stream, ThreadPool* pool,
                         std::vector<size_t> visit_order)
    : stream_(stream), pool_(pool), order_(std::move(visit_order)) {
  if (order_.empty()) {
    order_.resize(stream.num_shards());
    for (size_t s = 0; s < order_.size(); ++s) order_[s] = s;
  }
  // Warm the pipeline: shard order_[0] starts decoding immediately so the
  // first Next() overlaps with whatever the consumer does before it.
  if (pool_ != nullptr) PrefetchOne();
}

ShardCursor::~ShardCursor() {
  // A prefetch task captures `this`'s stream reference; drain before the
  // members go away.
  for (auto& f : inflight_) {
    if (f.valid()) f.wait();
  }
}

void ShardCursor::PrefetchOne() {
  if (next_ >= order_.size()) return;
  const size_t s = order_[next_++];
  if (pool_ == nullptr) {
    std::promise<Result<CorpusSlice>> done;
    done.set_value(stream_.ReadShard(s));
    inflight_.push_back(done.get_future());
    return;
  }
  auto task = std::make_shared<std::packaged_task<Result<CorpusSlice>()>>(
      [this, s] { return stream_.ReadShard(s); });
  inflight_.push_back(task->get_future());
  if (!pool_->Schedule([task] { (*task)(); }).ok()) {
    (*task)();  // pool shut down: decode inline, the future still resolves
  }
}

Result<CorpusSlice> ShardCursor::Next() {
  if (inflight_.empty()) PrefetchOne();
  if (inflight_.empty()) {
    return Status::FailedPrecondition("shard cursor exhausted");
  }
  std::future<Result<CorpusSlice>> front = std::move(inflight_.front());
  inflight_.pop_front();
  // Keep one decode in flight while the consumer works on this slice.
  PrefetchOne();
  return front.get();
}

}  // namespace lshap
