#include "learnshapley/model.h"

namespace lshap {

LearnShapleyModel::LearnShapleyModel(const EncoderConfig& encoder_config,
                                     uint64_t seed) {
  EncoderConfig cfg = encoder_config;
  cfg.seed = seed;
  encoder_ = TransformerEncoder(cfg);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  head_rank_ = Linear(cfg.dim, 1, rng);
  head_witness_ = Linear(cfg.dim, 1, rng);
  head_syntax_ = Linear(cfg.dim, 1, rng);
  head_shapley_ = Linear(cfg.dim, 1, rng);
}

namespace {

// Extracts the [CLS] row (row 0) as a 1×dim tensor.
Tensor ClsRow(const Tensor& hidden) {
  Tensor cls(1, hidden.cols());
  std::copy(hidden.row_data(0), hidden.row_data(0) + hidden.cols(),
            cls.row_data(0));
  return cls;
}

}  // namespace

float LearnShapleyModel::PretrainStep(const EncodedPair& pair,
                                      double sim_rank, double sim_witness,
                                      double sim_syntax,
                                      const PretrainObjectives& objectives) {
  const Tensor hidden = encoder_.Forward(pair.ids, pair.mask);
  const Tensor cls = ClsRow(hidden);

  float loss = 0.0f;
  Tensor d_cls(1, cls.cols());
  auto run_head = [&](Linear& head, double target) {
    const Tensor pred = head.Forward(cls);
    const float err = pred.at(0, 0) - static_cast<float>(target);
    loss += err * err;
    Tensor d_pred(1, 1);
    d_pred.at(0, 0) = 2.0f * err;
    d_cls.Add(head.Backward(d_pred));
  };
  if (objectives.rank) run_head(head_rank_, sim_rank);
  if (objectives.witness) run_head(head_witness_, sim_witness);
  if (objectives.syntax) run_head(head_syntax_, sim_syntax);

  Tensor d_hidden(hidden.rows(), hidden.cols());
  std::copy(d_cls.row_data(0), d_cls.row_data(0) + d_cls.cols(),
            d_hidden.row_data(0));
  encoder_.Backward(d_hidden);
  return loss;
}

LearnShapleyModel::Similarities LearnShapleyModel::PredictSimilarities(
    const EncodedPair& pair) {
  const Tensor hidden = encoder_.Forward(pair.ids, pair.mask);
  const Tensor cls = ClsRow(hidden);
  Similarities out;
  out.rank = head_rank_.Forward(cls).at(0, 0);
  out.witness = head_witness_.Forward(cls).at(0, 0);
  out.syntax = head_syntax_.Forward(cls).at(0, 0);
  return out;
}

float LearnShapleyModel::FinetuneStep(const EncodedPair& input, float target) {
  const Tensor hidden = encoder_.Forward(input.ids, input.mask);
  const Tensor cls = ClsRow(hidden);
  const Tensor pred = head_shapley_.Forward(cls);
  const float err = pred.at(0, 0) - target;

  Tensor d_pred(1, 1);
  d_pred.at(0, 0) = 2.0f * err;
  const Tensor d_cls = head_shapley_.Backward(d_pred);
  Tensor d_hidden(hidden.rows(), hidden.cols());
  std::copy(d_cls.row_data(0), d_cls.row_data(0) + d_cls.cols(),
            d_hidden.row_data(0));
  encoder_.Backward(d_hidden);
  return err * err;
}

float LearnShapleyModel::PredictShapley(const EncodedPair& input) {
  const Tensor hidden = encoder_.Forward(input.ids, input.mask);
  const Tensor cls = ClsRow(hidden);
  return head_shapley_.Forward(cls).at(0, 0);
}

float LearnShapleyModel::PredictShapley(const EncodedPair& input,
                                        InferenceArena& arena) const {
  arena.Reset();
  Tensor& hidden = arena.Get(input.ids.size(), encoder_.config().dim);
  encoder_.ForwardInference(input.ids, input.mask, arena, hidden);
  Tensor& cls = arena.Get(1, hidden.cols());
  std::copy(hidden.row_data(0), hidden.row_data(0) + hidden.cols(),
            cls.row_data(0));
  Tensor& pred = arena.Get(1, 1);
  head_shapley_.ForwardInference(cls, pred);
  return pred.at(0, 0);
}

std::vector<Param*> LearnShapleyModel::Params() {
  std::vector<Param*> params = encoder_.Params();
  head_rank_.CollectParams(params);
  head_witness_.CollectParams(params);
  head_syntax_.CollectParams(params);
  head_shapley_.CollectParams(params);
  return params;
}

std::vector<Tensor> LearnShapleyModel::SnapshotWeights() {
  std::vector<Tensor> out;
  for (Param* p : Params()) out.push_back(p->value);
  return out;
}

void LearnShapleyModel::RestoreWeights(const std::vector<Tensor>& snapshot) {
  std::vector<Param*> params = Params();
  LSHAP_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

// ------------------------------------------------- QuantizedShapleyModel

QuantizedShapleyModel QuantizedShapleyModel::FromModel(
    const LearnShapleyModel& model) {
  QuantizedShapleyModel q;
  q.encoder_ = QuantizedEncoder::FromEncoder(model.encoder());
  q.head_shapley_ = QuantizedLinear::FromFloat(
      model.head_shapley().w().value, model.head_shapley().b().value);
  return q;
}

float QuantizedShapleyModel::PredictShapley(const EncodedPair& input,
                                            QuantScratch& scratch) const {
  scratch.Reset();
  Tensor& hidden =
      scratch.arena.Get(input.ids.size(), encoder_.config().dim);
  encoder_.Forward(input.ids, input.mask, scratch, hidden);
  // [CLS] row → quantize → Shapley head.
  int8_t* qx = scratch.Row(head_shapley_.in_pad());
  float act_scale = 0.0f;
  SimdKernels().quantize_row(hidden.row_data(0), hidden.cols(), qx,
                             &act_scale);
  float pred = 0.0f;
  head_shapley_.Forward(qx, act_scale, &pred);
  return pred;
}

std::vector<const QuantizedLinear*> QuantizedShapleyModel::AllLinears() const {
  std::vector<const QuantizedLinear*> out = encoder_.AllLinears();
  out.push_back(&head_shapley_);
  return out;
}

std::vector<QuantizedLinear*> QuantizedShapleyModel::MutableLinears() {
  std::vector<QuantizedLinear*> out = encoder_.MutableLinears();
  out.push_back(&head_shapley_);
  return out;
}

}  // namespace lshap
