#include "learnshapley/evaluate.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "metrics/ranking_metrics.h"

namespace lshap {

namespace {

// NDCG@10 restricted to a subset of the lineage: both the predicted ranking
// and the gold relevances are filtered to `subset` before scoring.
double PartialNdcg(const std::vector<FactId>& predicted,
                   const ShapleyValues& gold,
                   const std::unordered_set<FactId>& train_seen,
                   bool want_seen) {
  std::vector<FactId> filtered_pred;
  ShapleyValues filtered_gold;
  for (FactId f : predicted) {
    const bool is_seen = train_seen.count(f) > 0;
    if (is_seen == want_seen) filtered_pred.push_back(f);
  }
  for (const auto& [f, v] : gold) {
    const bool is_seen = train_seen.count(f) > 0;
    if (is_seen == want_seen) filtered_gold[f] = v;
  }
  return NdcgAtK(filtered_pred, filtered_gold, 10);
}

// Scores every contribution of one decoded slice in parallel and writes
// the results into `per_pos` (indexed by split position, then contribution
// index). `members` lists the (split position, global entry) pairs of this
// slice's shard, in split order.
void EvaluateSlice(const CorpusSlice& slice,
                   const std::vector<std::pair<size_t, size_t>>& members,
                   FactScorer& scorer,
                   const std::unordered_set<FactId>& train_seen,
                   ThreadPool& pool,
                   std::vector<std::vector<EvalPoint>>& per_pos) {
  const Corpus& chunk = *slice.corpus;
  struct Job {
    size_t pos;       // position in the split vector
    size_t local_e;   // entry index within the slice chunk
    size_t global_e;  // corpus-global entry index
    size_t c;         // contribution index
  };
  std::vector<Job> jobs;
  for (const auto& [pos, e] : members) {
    const size_t local = e - slice.base_entry;
    const size_t num_contribs = chunk.entries[local].contributions.size();
    per_pos[pos].resize(num_contribs);
    for (size_t c = 0; c < num_contribs; ++c) {
      jobs.push_back({pos, local, e, c});
    }
  }

  // Per-worker scorer clones; jobs are claimed off a shared counter.
  const size_t num_workers = std::max<size_t>(1, pool.num_threads());
  std::vector<std::unique_ptr<FactScorer>> clones;
  clones.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) clones.push_back(scorer.Clone());

  std::atomic<size_t> next{0};
  auto work = [&](size_t worker) {
    FactScorer& local = *clones[worker];
    for (;;) {
      const size_t j = next.fetch_add(1);
      if (j >= jobs.size()) return;
      const Job& job = jobs[j];
      const CorpusEntry& entry = chunk.entries[job.local_e];
      const TupleContribution& contrib = entry.contributions[job.c];
      const ShapleyValues& gold = contrib.shapley;

      const ShapleyValues predicted = local.Score(chunk, job.local_e, job.c);
      const std::vector<FactId> ranking = RankByScore(predicted);

      EvalPoint& pt = per_pos[job.pos][job.c];
      pt.entry_idx = job.global_e;
      pt.contrib_idx = job.c;
      pt.ndcg10 = NdcgAtK(ranking, gold, 10);
      pt.p1 = PrecisionAtK(ranking, gold, 1);
      pt.p3 = PrecisionAtK(ranking, gold, 3);
      pt.p5 = PrecisionAtK(ranking, gold, 5);
      pt.lineage_size = gold.size();
      pt.num_tables = entry.query.NumTables();
      if (!train_seen.empty()) {
        size_t seen = 0;
        for (const auto& [f, v] : gold) {
          if (train_seen.count(f) > 0) ++seen;
        }
        pt.has_seen = seen > 0;
        pt.has_unseen = seen < gold.size();
        if (pt.has_seen) {
          pt.seen_ndcg10 = PartialNdcg(ranking, gold, train_seen, true);
        }
        if (pt.has_unseen) {
          pt.unseen_ndcg10 = PartialNdcg(ranking, gold, train_seen, false);
        }
      }
    }
  };
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Schedule([&work, w] { work(w); });
  }
  pool.Wait();
}

}  // namespace

Result<EvalSummary> EvaluateScorerStream(
    const CorpusStream& stream, const std::vector<size_t>& split,
    FactScorer& scorer, const std::unordered_set<FactId>& train_seen,
    ThreadPool& pool) {
  // Group split positions by shard (split order preserved within a shard),
  // so each shard is decoded exactly once per pass.
  std::vector<std::vector<std::pair<size_t, size_t>>> by_shard(
      stream.num_shards());
  for (size_t pos = 0; pos < split.size(); ++pos) {
    const size_t e = split[pos];
    if (e >= stream.num_entries()) {
      return Status::InvalidArgument(
          StrFormat("split entry %zu out of range (corpus has %zu entries)",
                    e, stream.num_entries()));
    }
    by_shard[stream.ShardOf(e)].emplace_back(pos, e);
  }
  std::vector<size_t> visit;
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) visit.push_back(s);
  }

  // Results keyed by split position so that flattening below reproduces the
  // resident evaluator's (split position, contribution) point order exactly,
  // regardless of which shard each entry lives in.
  std::vector<std::vector<EvalPoint>> per_pos(split.size());

  if (!visit.empty()) {
    ShardCursor cursor(stream, &pool, visit);
    while (!cursor.Done()) {
      auto slice = cursor.Next();
      if (!slice.ok()) return slice.status();
      EvaluateSlice(*slice, by_shard[slice->shard_index], scorer, train_seen,
                    pool, per_pos);
    }
  }

  EvalSummary summary;
  for (auto& points : per_pos) {
    for (EvalPoint& pt : points) summary.points.push_back(pt);
  }

  std::vector<double> ndcg, p1, p3, p5;
  ndcg.reserve(summary.points.size());
  for (const auto& pt : summary.points) {
    ndcg.push_back(pt.ndcg10);
    p1.push_back(pt.p1);
    p3.push_back(pt.p3);
    p5.push_back(pt.p5);
  }
  summary.ndcg10 = Mean(ndcg);
  summary.p1 = Mean(p1);
  summary.p3 = Mean(p3);
  summary.p5 = Mean(p5);
  return summary;
}

EvalSummary EvaluateScorer(const Corpus& corpus,
                           const std::vector<size_t>& split,
                           FactScorer& scorer,
                           const std::unordered_set<FactId>& train_seen,
                           ThreadPool& pool) {
  // The in-memory stream has one shard aliasing the whole corpus, so the
  // streaming evaluator enumerates and scores exactly the jobs this
  // function always has.
  InMemoryCorpusStream stream(corpus);
  auto summary = EvaluateScorerStream(stream, split, scorer, train_seen, pool);
  LSHAP_CHECK(summary.ok());
  return std::move(*summary);
}

}  // namespace lshap
