#include "learnshapley/evaluate.h"

#include <algorithm>
#include <atomic>

#include "metrics/ranking_metrics.h"

namespace lshap {

namespace {

// NDCG@10 restricted to a subset of the lineage: both the predicted ranking
// and the gold relevances are filtered to `subset` before scoring.
double PartialNdcg(const std::vector<FactId>& predicted,
                   const ShapleyValues& gold,
                   const std::unordered_set<FactId>& train_seen,
                   bool want_seen) {
  std::vector<FactId> filtered_pred;
  ShapleyValues filtered_gold;
  for (FactId f : predicted) {
    const bool is_seen = train_seen.count(f) > 0;
    if (is_seen == want_seen) filtered_pred.push_back(f);
  }
  for (const auto& [f, v] : gold) {
    const bool is_seen = train_seen.count(f) > 0;
    if (is_seen == want_seen) filtered_gold[f] = v;
  }
  return NdcgAtK(filtered_pred, filtered_gold, 10);
}

}  // namespace

EvalSummary EvaluateScorer(const Corpus& corpus,
                           const std::vector<size_t>& split,
                           FactScorer& scorer,
                           const std::unordered_set<FactId>& train_seen,
                           ThreadPool& pool) {
  struct Job {
    size_t entry_idx;
    size_t contrib_idx;
  };
  std::vector<Job> jobs;
  for (size_t e : split) {
    for (size_t c = 0; c < corpus.entries[e].contributions.size(); ++c) {
      jobs.push_back({e, c});
    }
  }

  EvalSummary summary;
  summary.points.resize(jobs.size());

  // Per-worker scorer clones; jobs are claimed off a shared counter.
  const size_t num_workers = std::max<size_t>(1, pool.num_threads());
  std::vector<std::unique_ptr<FactScorer>> clones;
  clones.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) clones.push_back(scorer.Clone());

  std::atomic<size_t> next{0};
  auto work = [&](size_t worker) {
    FactScorer& local = *clones[worker];
    for (;;) {
      const size_t j = next.fetch_add(1);
      if (j >= jobs.size()) return;
      const Job& job = jobs[j];
      const CorpusEntry& entry = corpus.entries[job.entry_idx];
      const TupleContribution& contrib = entry.contributions[job.contrib_idx];
      const ShapleyValues& gold = contrib.shapley;

      const ShapleyValues predicted =
          local.Score(corpus, job.entry_idx, job.contrib_idx);
      const std::vector<FactId> ranking = RankByScore(predicted);

      EvalPoint& pt = summary.points[j];
      pt.entry_idx = job.entry_idx;
      pt.contrib_idx = job.contrib_idx;
      pt.ndcg10 = NdcgAtK(ranking, gold, 10);
      pt.p1 = PrecisionAtK(ranking, gold, 1);
      pt.p3 = PrecisionAtK(ranking, gold, 3);
      pt.p5 = PrecisionAtK(ranking, gold, 5);
      pt.lineage_size = gold.size();
      pt.num_tables = entry.query.NumTables();
      if (!train_seen.empty()) {
        size_t seen = 0;
        for (const auto& [f, v] : gold) {
          if (train_seen.count(f) > 0) ++seen;
        }
        pt.has_seen = seen > 0;
        pt.has_unseen = seen < gold.size();
        if (pt.has_seen) {
          pt.seen_ndcg10 = PartialNdcg(ranking, gold, train_seen, true);
        }
        if (pt.has_unseen) {
          pt.unseen_ndcg10 = PartialNdcg(ranking, gold, train_seen, false);
        }
      }
    }
  };
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Schedule([&work, w] { work(w); });
  }
  pool.Wait();

  std::vector<double> ndcg, p1, p3, p5;
  ndcg.reserve(summary.points.size());
  for (const auto& pt : summary.points) {
    ndcg.push_back(pt.ndcg10);
    p1.push_back(pt.p1);
    p3.push_back(pt.p3);
    p5.push_back(pt.p5);
  }
  summary.ndcg10 = Mean(ndcg);
  summary.p1 = Mean(p1);
  summary.p3 = Mean(p3);
  summary.p5 = Mean(p5);
  return summary;
}

}  // namespace lshap
