#ifndef LSHAP_LEARNSHAPLEY_MODEL_H_
#define LSHAP_LEARNSHAPLEY_MODEL_H_

#include <string>
#include <vector>

#include "ml/adam.h"
#include "ml/encoder.h"
#include "ml/quant.h"
#include "ml/tokenizer.h"

namespace lshap {

// Which pre-training similarity objectives are enabled (the Table 4
// ablation switches these off individually).
struct PretrainObjectives {
  bool rank = true;
  bool witness = true;
  bool syntax = true;

  bool AnyEnabled() const { return rank || witness || syntax; }
};

// The LearnShapley network (Figure 4): a shared MiniBERT encoder with three
// similarity regression heads used during pre-training and one Shapley
// regression head used during fine-tuning and inference. All heads read the
// [CLS] representation.
//
// The model is copyable; copies share nothing, which is how evaluation
// parallelizes across threads.
class LearnShapleyModel {
 public:
  LearnShapleyModel() = default;
  LearnShapleyModel(const EncoderConfig& encoder_config, uint64_t seed);

  // --- Pre-training (query-pair similarity regression) ---

  // Runs one pair through the encoder and the enabled heads, accumulates
  // gradients of the summed MSE losses, and returns the loss value.
  float PretrainStep(const EncodedPair& pair, double sim_rank,
                     double sim_witness, double sim_syntax,
                     const PretrainObjectives& objectives);

  // Predicted similarities for a pair (inference; no gradients).
  struct Similarities {
    float rank = 0.0f;
    float witness = 0.0f;
    float syntax = 0.0f;
  };
  Similarities PredictSimilarities(const EncodedPair& pair);

  // --- Fine-tuning (Shapley regression) ---

  // One (query, tuple, fact) sample; `target` is the Shapley value already
  // scaled (×1000 per the paper). Returns the sample loss.
  float FinetuneStep(const EncodedPair& input, float target);

  // Predicted (scaled) Shapley value.
  float PredictShapley(const EncodedPair& input);

  // Const, scratch-free twin of PredictShapley: bit-identical result, all
  // intermediates from the caller's per-thread arena. This is what lets one
  // model instance serve many threads (serving, parallel evaluation).
  float PredictShapley(const EncodedPair& input, InferenceArena& arena) const;

  std::vector<Param*> Params();

  // Deep snapshot/restore of all weights, for best-checkpoint selection.
  std::vector<Tensor> SnapshotWeights();
  void RestoreWeights(const std::vector<Tensor>& snapshot);

  const EncoderConfig& encoder_config() const { return encoder_.config(); }
  const TransformerEncoder& encoder() const { return encoder_; }
  const Linear& head_shapley() const { return head_shapley_; }

 private:
  TransformerEncoder encoder_;
  Linear head_rank_;
  Linear head_witness_;
  Linear head_syntax_;
  Linear head_shapley_;
};

// Int8 quantized snapshot of a trained LearnShapleyModel's inference path:
// the encoder plus the Shapley head (the similarity heads are pre-training
// only). Immutable and thread-safe to share; callers bring a QuantScratch.
class QuantizedShapleyModel {
 public:
  QuantizedShapleyModel() = default;

  static QuantizedShapleyModel FromModel(const LearnShapleyModel& model);

  // Quantized counterpart of LearnShapleyModel::PredictShapley.
  float PredictShapley(const EncodedPair& input, QuantScratch& scratch) const;

  const QuantizedEncoder& encoder() const { return encoder_; }

  // Every int8 layer in serialization order: the encoder's (per layer
  // q,k,v,out,ffn1,ffn2) followed by the Shapley head.
  std::vector<const QuantizedLinear*> AllLinears() const;
  std::vector<QuantizedLinear*> MutableLinears();

 private:
  QuantizedEncoder encoder_;
  QuantizedLinear head_shapley_;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_MODEL_H_
