#ifndef LSHAP_LEARNSHAPLEY_MODEL_H_
#define LSHAP_LEARNSHAPLEY_MODEL_H_

#include <string>
#include <vector>

#include "ml/adam.h"
#include "ml/encoder.h"
#include "ml/tokenizer.h"

namespace lshap {

// Which pre-training similarity objectives are enabled (the Table 4
// ablation switches these off individually).
struct PretrainObjectives {
  bool rank = true;
  bool witness = true;
  bool syntax = true;

  bool AnyEnabled() const { return rank || witness || syntax; }
};

// The LearnShapley network (Figure 4): a shared MiniBERT encoder with three
// similarity regression heads used during pre-training and one Shapley
// regression head used during fine-tuning and inference. All heads read the
// [CLS] representation.
//
// The model is copyable; copies share nothing, which is how evaluation
// parallelizes across threads.
class LearnShapleyModel {
 public:
  LearnShapleyModel() = default;
  LearnShapleyModel(const EncoderConfig& encoder_config, uint64_t seed);

  // --- Pre-training (query-pair similarity regression) ---

  // Runs one pair through the encoder and the enabled heads, accumulates
  // gradients of the summed MSE losses, and returns the loss value.
  float PretrainStep(const EncodedPair& pair, double sim_rank,
                     double sim_witness, double sim_syntax,
                     const PretrainObjectives& objectives);

  // Predicted similarities for a pair (inference; no gradients).
  struct Similarities {
    float rank = 0.0f;
    float witness = 0.0f;
    float syntax = 0.0f;
  };
  Similarities PredictSimilarities(const EncodedPair& pair);

  // --- Fine-tuning (Shapley regression) ---

  // One (query, tuple, fact) sample; `target` is the Shapley value already
  // scaled (×1000 per the paper). Returns the sample loss.
  float FinetuneStep(const EncodedPair& input, float target);

  // Predicted (scaled) Shapley value.
  float PredictShapley(const EncodedPair& input);

  std::vector<Param*> Params();

  // Deep snapshot/restore of all weights, for best-checkpoint selection.
  std::vector<Tensor> SnapshotWeights();
  void RestoreWeights(const std::vector<Tensor>& snapshot);

  const EncoderConfig& encoder_config() const { return encoder_.config(); }

 private:
  TransformerEncoder encoder_;
  Linear head_rank_;
  Linear head_witness_;
  Linear head_syntax_;
  Linear head_shapley_;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_MODEL_H_
