#ifndef LSHAP_LEARNSHAPLEY_SERIALIZATION_H_
#define LSHAP_LEARNSHAPLEY_SERIALIZATION_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "relational/database.h"
#include "relational/tuple.h"

namespace lshap {

// Token streams the model consumes. Queries serialize as their SQL text,
// output tuples as their value list, facts as "table(v1, ..., vk)" — all
// through the shared SQL tokenizer, so table names, column names and values
// share vocabulary entries across the three kinds of segments.
std::vector<std::string> QueryTokens(const Query& q);
std::vector<std::string> TupleTokens(const OutputTuple& t);
std::vector<std::string> FactTokens(const Database& db, FactId f);

// Fact serialization for the fine-tuning/inference input: the fact's tokens
// prefixed with an overlap marker (ovl0 / ovl1 / ovl2) bucketing how many
// content tokens the fact shares with the output tuple. BERT-scale models
// learn this cross-segment matching on their own; at MiniBERT scale the
// explicit marker recovers it (a capacity-compensating preprocessing step,
// documented in DESIGN.md — both inputs are available at deployment).
std::vector<std::string> FactTokensWithContext(
    const Database& db, FactId f, const std::vector<std::string>& tuple_tokens);

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_SERIALIZATION_H_
