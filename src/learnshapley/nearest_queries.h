#ifndef LSHAP_LEARNSHAPLEY_NEAREST_QUERIES_H_
#define LSHAP_LEARNSHAPLEY_NEAREST_QUERIES_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "learnshapley/scorer.h"

namespace lshap {

enum class SimilarityMetric { kSyntax, kWitness, kRank };

const char* SimilarityMetricName(SimilarityMetric metric);

// The Nearest Queries baseline (Section 5.1): to score a fact f for a new
// query, find the n most similar *training* queries under the chosen metric
// and average f's (per-query mean) Shapley value across them; facts unseen
// in those queries score 0. With the rank metric this is a controlled
// experiment, since rank similarity itself requires the gold Shapley values
// of the test query.
class NearestQueriesScorer : public FactScorer {
 public:
  // `train_subset` selects which training entries the baseline may use
  // (Figure 11 trains on fractions of the log); empty means corpus.train_idx.
  NearestQueriesScorer(const Corpus* corpus, const SimilarityMatrices* sims,
                       SimilarityMetric metric, size_t num_neighbors = 3,
                       std::vector<size_t> train_subset = {});

  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override;
  std::unique_ptr<FactScorer> Clone() const override;
  std::string name() const override;

  // The n nearest training entries (by the configured metric) to the given
  // entry, with their similarity scores. Exposed for Figure 10.
  std::vector<std::pair<size_t, double>> Neighbors(size_t entry_idx) const;

  // Observability opt-in: histograms how many KNN candidates each Score
  // call ranks (knn.candidates) and counts scoring calls (knn.scores).
  // Copied by Clone, like LearnShapleyRanker's handles.
  void set_metrics(MetricsRegistry* registry);

 private:
  const Corpus* corpus_;
  const SimilarityMatrices* sims_;
  SimilarityMetric metric_;
  size_t num_neighbors_;
  std::vector<size_t> train_subset_;
  // Per train entry: mean Shapley value of each fact across the entry's
  // contributions where it appears.
  std::unordered_map<size_t, std::unordered_map<FactId, double>> fact_means_;
  Counter scores_;
  Histogram candidates_;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_NEAREST_QUERIES_H_
