#ifndef LSHAP_LEARNSHAPLEY_TRAINER_H_
#define LSHAP_LEARNSHAPLEY_TRAINER_H_

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "corpus/corpus.h"
#include "corpus/stream.h"
#include "learnshapley/ranker.h"

namespace lshap {

// Training configuration for the full LearnShapley pipeline (pre-train on
// similarity objectives, fine-tune on Shapley regression, checkpoint on the
// dev split). Follows the options-builder convention (DESIGN.md §9.4):
// default-constructed reproduces the paper pipeline, every knob chains.
struct TrainConfig {
  enum class ModelSize { kBase, kLarge, kSmallAblation };

  ModelSize model_size = ModelSize::kBase;
  PretrainObjectives objectives;
  // Section 5.5 ablation: skip pre-training entirely ("BERT fine-tune only"
  // corresponds to do_pretrain = false on the base model; the
  // small-transformer ablation uses kSmallAblation + do_pretrain = false).
  bool do_pretrain = true;

  size_t pretrain_epochs = 3;
  size_t pretrain_pairs_per_epoch = 1024;
  size_t finetune_epochs = 4;
  size_t finetune_samples_per_epoch = 4096;
  size_t batch_size = 64;
  // A gentler pre-training rate preserves the fine-tunability of the small
  // encoder (at 2e-3 the similarity objectives distort the embeddings
  // enough to erase the pre-training benefit).
  float pretrain_lr = 5e-4f;
  float finetune_lr = 2e-3f;
  // Per-epoch multiplicative learning-rate decay (both stages).
  float lr_decay = 0.9f;
  // Target scaling. The paper multiplies raw Shapley values by 1000 before
  // regression (suited to BERT's pretrained optimization regime); for the
  // from-scratch MiniBERT a small scale over per-tuple-normalized targets
  // conditions the loss far better (measured +0.03 NDCG / +0.2 p@1). Set
  // shapley_scale = 1000 and normalize_targets_per_tuple = false to follow
  // the paper literally.
  float shapley_scale = 10.0f;
  // Divide each fact's target by the maximum Shapley value in its tuple's
  // lineage before scaling. The induced per-tuple ranking is unchanged, but
  // the regression becomes scale-free: absolute Shapley magnitudes depend on
  // the (hidden) lineage size, which a from-scratch MiniBERT wastes capacity
  // estimating. Set false to reproduce the paper's raw-value regression.
  bool normalize_targets_per_tuple = true;
  size_t max_len = 80;
  uint64_t seed = 42;
  // Extension beyond the paper (its Limitations section notes LearnShapley
  // is trained only on positive samples and so cannot separate contributing
  // from non-contributing facts): add this many random non-lineage facts
  // per contribution as zero-target samples during fine-tuning. 0 disables
  // the extension and reproduces the paper's training exactly.
  size_t negative_samples_per_contribution = 0;
  // Restrict training to these corpus entries (Figure 11 log-size sweep);
  // empty means corpus.train_idx.
  std::vector<size_t> train_subset;
  bool verbose = false;
  // Observability opt-in: when set, training records train.* gauges
  // (per-epoch loss, dev metrics, examples/sec), example counters, and an
  // Adam step-time histogram, under "train" > "train.pretrain" /
  // "train.finetune" spans. Null disables all of it at one-branch cost.
  MetricsRegistry* metrics = nullptr;

  TrainConfig& WithModelSize(ModelSize s) { model_size = s; return *this; }
  TrainConfig& WithObjectives(const PretrainObjectives& o) {
    objectives = o;
    return *this;
  }
  TrainConfig& WithDoPretrain(bool on) { do_pretrain = on; return *this; }
  TrainConfig& WithPretrainEpochs(size_t n) {
    pretrain_epochs = n;
    return *this;
  }
  TrainConfig& WithPretrainPairsPerEpoch(size_t n) {
    pretrain_pairs_per_epoch = n;
    return *this;
  }
  TrainConfig& WithFinetuneEpochs(size_t n) {
    finetune_epochs = n;
    return *this;
  }
  TrainConfig& WithFinetuneSamplesPerEpoch(size_t n) {
    finetune_samples_per_epoch = n;
    return *this;
  }
  TrainConfig& WithBatchSize(size_t n) { batch_size = n; return *this; }
  TrainConfig& WithPretrainLr(float lr) { pretrain_lr = lr; return *this; }
  TrainConfig& WithFinetuneLr(float lr) { finetune_lr = lr; return *this; }
  TrainConfig& WithLrDecay(float d) { lr_decay = d; return *this; }
  TrainConfig& WithShapleyScale(float s) { shapley_scale = s; return *this; }
  TrainConfig& WithNormalizeTargetsPerTuple(bool on) {
    normalize_targets_per_tuple = on;
    return *this;
  }
  TrainConfig& WithMaxLen(size_t n) { max_len = n; return *this; }
  TrainConfig& WithSeed(uint64_t s) { seed = s; return *this; }
  TrainConfig& WithNegativeSamplesPerContribution(size_t n) {
    negative_samples_per_contribution = n;
    return *this;
  }
  TrainConfig& WithTrainSubset(std::vector<size_t> subset) {
    train_subset = std::move(subset);
    return *this;
  }
  TrainConfig& WithVerbose(bool on) { verbose = on; return *this; }
  TrainConfig& WithMetrics(MetricsRegistry* m) { metrics = m; return *this; }
};

struct TrainResult {
  std::unique_ptr<LearnShapleyRanker> ranker;
  double pretrain_dev_mse = 0.0;   // of the selected pre-train checkpoint
  double best_dev_ndcg10 = 0.0;    // of the selected fine-tune checkpoint
  double train_seconds = 0.0;
};

// Trains LearnShapley on the corpus' train split (data-parallel across
// `pool` workers with summed-gradient batches) and returns the deployable
// ranker with the best dev-NDCG@10 fine-tune checkpoint restored.
TrainResult TrainLearnShapley(const Corpus& corpus,
                              const SimilarityMatrices& sims,
                              const TrainConfig& config, ThreadPool& pool);

// Streaming variant over a CorpusStream, so peak corpus memory is bounded
// by shard size rather than corpus size.
//
//  - A single-shard stream dispatches to the resident pipeline and (given
//    non-null `sims`) produces exactly the TrainLearnShapley result.
//  - A multi-shard stream runs one decode pass for the vocabulary, then
//    fine-tunes shard at a time per epoch (rotating start shard, per-shard
//    sample shuffles from derived RNG streams, dev evaluation streamed).
//    The result is deterministic for a fixed (config, corpus, shard
//    layout) but intentionally differs from the resident sample order.
//
// `sims` may be null to skip pre-training — the similarity matrices are
// corpus-global (N×N over all entries) and so only exist when the corpus
// was resident at some point.
Result<TrainResult> TrainLearnShapleyStream(const CorpusStream& stream,
                                            const SimilarityMatrices* sims,
                                            const TrainConfig& config,
                                            ThreadPool& pool);

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_TRAINER_H_
