#include "learnshapley/serialization.h"

#include <cctype>
#include <unordered_set>

#include "ml/tokenizer.h"

namespace lshap {

std::vector<std::string> QueryTokens(const Query& q) {
  return TokenizeText(q.ToSql());
}

std::vector<std::string> TupleTokens(const OutputTuple& t) {
  return TokenizeText(OutputTupleToString(t));
}

std::vector<std::string> FactTokens(const Database& db, FactId f) {
  return TokenizeText(db.FactToString(f));
}

namespace {

bool IsContentToken(const std::string& t) {
  // Skip pure punctuation; single characters other than digits carry little
  // matching signal.
  return t.size() > 1 || (t.size() == 1 && std::isalnum(static_cast<unsigned char>(t[0])));
}

}  // namespace

std::vector<std::string> FactTokensWithContext(
    const Database& db, FactId f,
    const std::vector<std::string>& tuple_tokens) {
  std::vector<std::string> fact_tokens = FactTokens(db, f);
  std::unordered_set<std::string> tuple_set;
  for (const auto& t : tuple_tokens) {
    if (IsContentToken(t)) tuple_set.insert(t);
  }
  size_t overlap = 0;
  for (const auto& t : fact_tokens) {
    if (IsContentToken(t) && tuple_set.count(t) > 0) ++overlap;
  }
  const char* marker = overlap == 0 ? "ovl0" : (overlap == 1 ? "ovl1" : "ovl2");
  fact_tokens.insert(fact_tokens.begin(), marker);
  return fact_tokens;
}

}  // namespace lshap
