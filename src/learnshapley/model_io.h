#ifndef LSHAP_LEARNSHAPLEY_MODEL_IO_H_
#define LSHAP_LEARNSHAPLEY_MODEL_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "learnshapley/ranker.h"

namespace lshap {

// Persists a trained LearnShapley ranker — encoder configuration,
// vocabulary, and every weight tensor — to a line-oriented text file, so a
// model trained once can be deployed without retraining (the paper's
// "offline training / online inference" split).
Status SaveRanker(LearnShapleyRanker& ranker, const std::string& path);

// Loads a ranker saved by SaveRanker. Predictions are bit-identical to the
// saved model's.
Result<std::unique_ptr<LearnShapleyRanker>> LoadRanker(
    const std::string& path);

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_MODEL_IO_H_
