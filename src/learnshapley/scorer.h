#ifndef LSHAP_LEARNSHAPLEY_SCORER_H_
#define LSHAP_LEARNSHAPLEY_SCORER_H_

#include <memory>
#include <string>

#include "corpus/corpus.h"
#include "shapley/shapley.h"

namespace lshap {

// Anything that can score the lineage facts of one (query, output tuple)
// pair: LearnShapley, the Nearest Queries baselines, or the exact engine.
// Implementations may only read the contribution's *lineage* (the key set of
// its Shapley map) — never the gold values — except for baselines the paper
// explicitly marks as controlled experiments (rank-based Nearest Queries).
class FactScorer {
 public:
  virtual ~FactScorer() = default;

  // Scores every lineage fact of corpus.entries[entry_idx]
  // .contributions[contrib_idx]. Higher = more contributing.
  virtual ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                              size_t contrib_idx) = 0;

  // Independent copy for parallel evaluation.
  virtual std::unique_ptr<FactScorer> Clone() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_SCORER_H_
