#include "learnshapley/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "learnshapley/evaluate.h"
#include "learnshapley/serialization.h"
#include "ml/adam.h"

namespace lshap {

namespace {

struct PairSample {
  EncodedPair input;
  double sim_rank;
  double sim_witness;
  double sim_syntax;
};

struct FinetuneSample {
  EncodedPair input;
  float target;
};

// Runs batches across worker-local model clones, summing gradients into the
// main model. Weights are re-broadcast to the clones before every batch.
class DataParallelRunner {
 public:
  DataParallelRunner(LearnShapleyModel* main, ThreadPool* pool)
      : main_(main), pool_(pool) {
    const size_t n = std::max<size_t>(1, pool->num_threads());
    clones_.reserve(n);
    for (size_t i = 0; i < n; ++i) clones_.push_back(*main);
  }

  // fn(model, index) must run the sample at `index` through `model`
  // (accumulating grads inside the model) and return its loss.
  template <typename Fn>
  float RunBatch(size_t batch_begin, size_t batch_end, const Fn& fn) {
    Broadcast();
    std::atomic<size_t> next{batch_begin};
    std::vector<float> losses(clones_.size(), 0.0f);
    for (size_t w = 0; w < clones_.size(); ++w) {
      pool_->Schedule([&, w] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= batch_end) return;
          losses[w] += fn(clones_[w], i);
        }
      });
    }
    pool_->Wait();
    // Sum clone gradients into the main model, normalized by batch size.
    const float inv = 1.0f / static_cast<float>(batch_end - batch_begin);
    std::vector<Param*> main_params = main_->Params();
    for (auto& clone : clones_) {
      std::vector<Param*> clone_params = clone.Params();
      for (size_t p = 0; p < main_params.size(); ++p) {
        main_params[p]->grad.AddScaled(clone_params[p]->grad, inv);
        clone_params[p]->ZeroGrad();
      }
    }
    float total = 0.0f;
    for (float l : losses) total += l;
    return total;
  }

 private:
  void Broadcast() {
    std::vector<Param*> main_params = main_->Params();
    for (auto& clone : clones_) {
      std::vector<Param*> clone_params = clone.Params();
      for (size_t p = 0; p < main_params.size(); ++p) {
        clone_params[p]->value = main_params[p]->value;
      }
    }
  }

  LearnShapleyModel* main_;
  ThreadPool* pool_;
  std::vector<LearnShapleyModel> clones_;
};

EncoderConfig MakeEncoderConfig(TrainConfig::ModelSize size,
                                size_t vocab_size, size_t max_len,
                                uint64_t seed) {
  EncoderConfig cfg;
  switch (size) {
    case TrainConfig::ModelSize::kBase:
      cfg = EncoderConfig::Base(vocab_size);
      break;
    case TrainConfig::ModelSize::kLarge:
      cfg = EncoderConfig::Large(vocab_size);
      break;
    case TrainConfig::ModelSize::kSmallAblation:
      cfg = EncoderConfig::SmallAblation(vocab_size);
      break;
  }
  cfg.max_len = max_len;
  cfg.seed = seed;
  return cfg;
}

// Mean MSE of the enabled similarity heads over a set of pair samples,
// evaluated in parallel with per-worker clones.
double PairMse(const std::vector<PairSample>& pairs,
               const PretrainObjectives& objectives,
               const LearnShapleyModel& model, ThreadPool& pool) {
  if (pairs.empty()) return 0.0;
  const size_t num_workers = std::max<size_t>(1, pool.num_threads());
  std::vector<LearnShapleyModel> clones(num_workers, model);
  std::vector<double> sums(num_workers, 0.0);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Schedule([&, w] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= pairs.size()) return;
        const auto sims = clones[w].PredictSimilarities(pairs[i].input);
        double err = 0.0;
        int terms = 0;
        if (objectives.rank) {
          const double d = sims.rank - pairs[i].sim_rank;
          err += d * d;
          ++terms;
        }
        if (objectives.witness) {
          const double d = sims.witness - pairs[i].sim_witness;
          err += d * d;
          ++terms;
        }
        if (objectives.syntax) {
          const double d = sims.syntax - pairs[i].sim_syntax;
          err += d * d;
          ++terms;
        }
        sums[w] += terms > 0 ? err / terms : 0.0;
      }
    });
  }
  pool.Wait();
  double total = 0.0;
  for (double s : sums) total += s;
  return total / static_cast<double>(pairs.size());
}

// Handle bundle resolved once per TrainLearnShapley call; every member is a
// no-op handle when config.metrics is null.
struct TrainMetricSet {
  Counter pretrain_examples, finetune_examples, adam_steps;
  Gauge pretrain_epoch_loss, pretrain_dev_mse, finetune_epoch_loss,
      finetune_dev_ndcg10, examples_per_sec;
  Histogram adam_step_seconds;

  TrainMetricSet() = default;
  explicit TrainMetricSet(MetricsRegistry* r)
      : pretrain_examples(CounterFor(r, "train.pretrain_examples")),
        finetune_examples(CounterFor(r, "train.finetune_examples")),
        adam_steps(CounterFor(r, "train.adam_steps")),
        pretrain_epoch_loss(GaugeFor(r, "train.pretrain_epoch_loss")),
        pretrain_dev_mse(GaugeFor(r, "train.pretrain_dev_mse")),
        finetune_epoch_loss(GaugeFor(r, "train.finetune_epoch_loss")),
        finetune_dev_ndcg10(GaugeFor(r, "train.finetune_dev_ndcg10")),
        examples_per_sec(GaugeFor(r, "train.examples_per_sec")),
        adam_step_seconds(HistogramFor(r, "train.adam_step_seconds",
                                       ExponentialBuckets(1e-5, 4.0, 12))) {}
};

// optimizer.Step() with its wall time observed into the step histogram.
// The timing reads are guarded so the disabled path stays two branches.
template <typename Opt>
void TimedStep(Opt& optimizer, const TrainMetricSet& metrics) {
  if (!metrics.adam_step_seconds.enabled()) {
    optimizer.Step();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  optimizer.Step();
  const auto t1 = std::chrono::steady_clock::now();
  metrics.adam_steps.Inc();
  metrics.adam_step_seconds.Observe(
      std::chrono::duration<double>(t1 - t0).count());
}

std::string RankerName(const TrainConfig& config) {
  std::string name = "LearnShapley-";
  switch (config.model_size) {
    case TrainConfig::ModelSize::kBase:
      name += "base";
      break;
    case TrainConfig::ModelSize::kLarge:
      name += "large";
      break;
    case TrainConfig::ModelSize::kSmallAblation:
      name += "small";
      break;
  }
  if (!config.do_pretrain) name += " (no pre-train)";
  return name;
}

// Pre-training on the similarity objectives. Operates only on cached query
// token streams plus the similarity matrices, so the resident and streaming
// trainers share it verbatim (the matrices are indexed by global entry
// index either way). Restores the best-dev-MSE checkpoint into `model` and
// returns that MSE.
double PretrainOnSims(const std::vector<size_t>& train,
                      const std::vector<size_t>& dev_idx,
                      const std::vector<std::vector<std::string>>& query_tokens,
                      const SimilarityMatrices& sims, const TrainConfig& config,
                      const TrainMetricSet& metrics, const Vocab& vocab,
                      LearnShapleyModel& model, DataParallelRunner& runner,
                      ThreadPool& pool, Rng& rng, size_t& total_examples) {
  ScopedSpan pretrain_span(config.metrics, "train.pretrain");
  // All train-train pairs (i < j) as candidates.
  std::vector<std::pair<size_t, size_t>> train_pairs;
  for (size_t a = 0; a < train.size(); ++a) {
    for (size_t b = a + 1; b < train.size(); ++b) {
      train_pairs.emplace_back(train[a], train[b]);
    }
  }
  // Dev pairs (dev × train) for checkpoint selection, capped.
  std::vector<PairSample> dev_pairs;
  {
    std::vector<std::pair<size_t, size_t>> cands;
    for (size_t d : dev_idx) {
      for (size_t t : train) cands.emplace_back(d, t);
    }
    rng.Shuffle(cands);
    const size_t take = std::min<size_t>(cands.size(), 256);
    for (size_t i = 0; i < take; ++i) {
      const auto [a, b] = cands[i];
      PairSample ps;
      ps.input = EncodeSegments(vocab, {query_tokens[a], query_tokens[b]},
                                config.max_len);
      ps.sim_rank = sims.rank[a][b];
      ps.sim_witness = sims.witness[a][b];
      ps.sim_syntax = sims.syntax[a][b];
      dev_pairs.push_back(std::move(ps));
    }
  }

  Adam optimizer(model.Params(), [&] {
    AdamConfig a;
    a.lr = config.pretrain_lr;
    return a;
  }());

  double best_mse = 1e30;
  std::vector<Tensor> best_weights = model.SnapshotWeights();
  for (size_t epoch = 0; epoch < config.pretrain_epochs; ++epoch) {
    rng.Shuffle(train_pairs);
    const size_t take =
        std::min(train_pairs.size(), config.pretrain_pairs_per_epoch);
    std::vector<PairSample> samples;
    samples.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      const auto [a, b] = train_pairs[i];
      PairSample ps;
      ps.input = EncodeSegments(vocab, {query_tokens[a], query_tokens[b]},
                                config.max_len);
      ps.sim_rank = sims.rank[a][b];
      ps.sim_witness = sims.witness[a][b];
      ps.sim_syntax = sims.syntax[a][b];
      samples.push_back(std::move(ps));
    }
    float epoch_loss = 0.0f;
    for (size_t begin = 0; begin < samples.size();
         begin += config.batch_size) {
      const size_t end = std::min(samples.size(), begin + config.batch_size);
      epoch_loss += runner.RunBatch(begin, end, [&](LearnShapleyModel& m,
                                                    size_t i) {
        return m.PretrainStep(samples[i].input, samples[i].sim_rank,
                              samples[i].sim_witness, samples[i].sim_syntax,
                              config.objectives);
      });
      TimedStep(optimizer, metrics);
    }
    metrics.pretrain_examples.Inc(take);
    total_examples += take;
    metrics.pretrain_epoch_loss.Set(
        static_cast<double>(epoch_loss) /
        static_cast<double>(std::max<size_t>(1, take)));
    const double dev_mse = PairMse(dev_pairs, config.objectives, model, pool);
    metrics.pretrain_dev_mse.Set(dev_mse);
    if (config.verbose) {
      std::fprintf(stderr, "[pretrain] epoch %zu loss %.4f dev-mse %.5f\n",
                   epoch,
                   static_cast<double>(epoch_loss) /
                       static_cast<double>(std::max<size_t>(1, take)),
                   dev_mse);
    }
    if (dev_mse < best_mse) {
      best_mse = dev_mse;
      best_weights = model.SnapshotWeights();
    }
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
  }
  model.RestoreWeights(best_weights);
  return best_mse;
}

// The resident training pipeline over an in-memory corpus. `sims` may be
// null, which skips pre-training (the streaming single-shard dispatch uses
// this when no matrices are available). With non-null sims this is the
// historical TrainLearnShapley bit for bit.
TrainResult TrainResident(const Corpus& corpus,
                          const std::vector<size_t>& train_idx,
                          const std::vector<size_t>& dev_idx,
                          const SimilarityMatrices* sims,
                          const TrainConfig& config, ThreadPool& pool) {
  WallTimer timer;
  ScopedSpan train_span(config.metrics, "train");
  const TrainMetricSet metrics(config.metrics);
  size_t total_examples = 0;
  Rng rng(config.seed);

  const std::vector<size_t>& train =
      config.train_subset.empty() ? train_idx : config.train_subset;

  // ---- Vocabulary and cached token streams (train split only). ----
  auto vocab = std::make_shared<Vocab>();
  std::vector<std::vector<std::string>> query_tokens(corpus.entries.size());
  for (size_t e = 0; e < corpus.entries.size(); ++e) {
    query_tokens[e] = QueryTokens(corpus.entries[e].query);
  }
  for (size_t e : train) {
    vocab->AddTokens(query_tokens[e]);
    for (const auto& c : corpus.entries[e].contributions) {
      vocab->AddTokens(TupleTokens(c.tuple));
      for (const auto& [f, v] : c.shapley) {
        vocab->AddTokens(FactTokens(*corpus.db, f));
      }
    }
  }
  // Overlap markers emitted by FactTokensWithContext.
  vocab->AddTokens({"ovl0", "ovl1", "ovl2"});

  // ---- Model. ----
  const EncoderConfig encoder_cfg = MakeEncoderConfig(
      config.model_size, vocab->size(), config.max_len, config.seed);
  LearnShapleyModel model(encoder_cfg, config.seed);
  DataParallelRunner runner(&model, &pool);

  TrainResult result;

  // ---- Pre-training on similarity objectives. ----
  if (config.do_pretrain && config.objectives.AnyEnabled() &&
      sims != nullptr) {
    result.pretrain_dev_mse =
        PretrainOnSims(train, dev_idx, query_tokens, *sims, config, metrics,
                       *vocab, model, runner, pool, rng, total_examples);
  }

  // ---- Fine-tuning on Shapley regression. ----
  ScopedSpan finetune_span(config.metrics, "train.finetune");
  std::vector<FinetuneSample> all_samples;
  for (size_t e : train) {
    const CorpusEntry& entry = corpus.entries[e];
    for (const auto& c : entry.contributions) {
      const std::vector<std::string> t_tokens = TupleTokens(c.tuple);
      double norm = 1.0;
      if (config.normalize_targets_per_tuple) {
        double max_v = 0.0;
        for (const auto& [f, v] : c.shapley) max_v = std::max(max_v, v);
        if (max_v > 0.0) norm = 1.0 / max_v;
      }
      for (const auto& [f, v] : c.shapley) {
        FinetuneSample fs;
        fs.input = EncodeSegments(
            *vocab,
            {query_tokens[e], t_tokens,
             FactTokensWithContext(*corpus.db, f, t_tokens)},
            config.max_len);
        fs.target = static_cast<float>(v * norm) * config.shapley_scale;
        all_samples.push_back(std::move(fs));
      }
      // Extension: zero-target samples for facts outside the lineage, so
      // the model learns to rank non-contributing facts below contributing
      // ones (needed for lineage-free deployment).
      for (size_t neg = 0; neg < config.negative_samples_per_contribution;
           ++neg) {
        const FactId f = static_cast<FactId>(
            rng.NextBounded(corpus.db->num_facts()));
        if (c.shapley.count(f) > 0) continue;  // accidentally positive
        FinetuneSample fs;
        fs.input = EncodeSegments(
            *vocab,
            {query_tokens[e], t_tokens,
             FactTokensWithContext(*corpus.db, f, t_tokens)},
            config.max_len);
        fs.target = 0.0f;
        all_samples.push_back(std::move(fs));
      }
    }
  }

  Adam optimizer(model.Params(), [&] {
    AdamConfig a;
    a.lr = config.finetune_lr;
    return a;
  }());

  double best_ndcg = -1.0;
  std::vector<Tensor> best_weights = model.SnapshotWeights();
  std::vector<size_t> sample_order(all_samples.size());
  for (size_t i = 0; i < sample_order.size(); ++i) sample_order[i] = i;

  for (size_t epoch = 0; epoch < config.finetune_epochs; ++epoch) {
    rng.Shuffle(sample_order);
    const size_t take =
        std::min(sample_order.size(), config.finetune_samples_per_epoch);
    float epoch_loss = 0.0f;
    for (size_t begin = 0; begin < take; begin += config.batch_size) {
      const size_t end = std::min(take, begin + config.batch_size);
      epoch_loss +=
          runner.RunBatch(begin, end, [&](LearnShapleyModel& m, size_t i) {
            const FinetuneSample& fs = all_samples[sample_order[i]];
            return m.FinetuneStep(fs.input, fs.target);
          });
      TimedStep(optimizer, metrics);
    }
    metrics.finetune_examples.Inc(take);
    total_examples += take;
    metrics.finetune_epoch_loss.Set(
        static_cast<double>(epoch_loss) /
        static_cast<double>(std::max<size_t>(1, take)));
    // Dev NDCG@10 for checkpoint selection.
    LearnShapleyRanker dev_ranker(model, vocab, config.max_len,
                                  config.shapley_scale, "dev");
    const EvalSummary dev =
        EvaluateScorer(corpus, dev_idx, dev_ranker, {}, pool);
    if (config.verbose) {
      std::fprintf(stderr, "[finetune] epoch %zu loss %.2f dev-ndcg %.4f\n",
                   epoch,
                   static_cast<double>(epoch_loss) /
                       static_cast<double>(std::max<size_t>(1, take)),
                   dev.ndcg10);
    }
    metrics.finetune_dev_ndcg10.Set(dev.ndcg10);
    if (dev.ndcg10 > best_ndcg) {
      best_ndcg = dev.ndcg10;
      best_weights = model.SnapshotWeights();
    }
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
  }
  model.RestoreWeights(best_weights);
  result.best_dev_ndcg10 = best_ndcg;

  result.ranker = std::make_unique<LearnShapleyRanker>(
      std::move(model), vocab, config.max_len, config.shapley_scale,
      RankerName(config));
  result.train_seconds = timer.ElapsedSeconds();
  if (result.train_seconds > 0.0) {
    metrics.examples_per_sec.Set(static_cast<double>(total_examples) /
                                 result.train_seconds);
  }
  return result;
}

// Streaming pipeline for multi-shard streams: one decode pass over all
// shards for the vocabulary and query token cache, then per-epoch
// shard-at-a-time fine-tuning with a rotating start shard. Sample
// construction and shuffles use per-(entry, contribution) and per-(epoch,
// shard) derived RNG streams, so the result is a deterministic function of
// (config, corpus, shard layout) — independent of thread count and of how
// fast shards decode.
Result<TrainResult> TrainStreaming(const CorpusStream& stream,
                                   const SimilarityMatrices* sims,
                                   const TrainConfig& config,
                                   ThreadPool& pool) {
  WallTimer timer;
  ScopedSpan train_span(config.metrics, "train");
  const TrainMetricSet metrics(config.metrics);
  size_t total_examples = 0;
  Rng rng(config.seed);
  const Database& db = stream.db();

  const std::vector<size_t>& train =
      config.train_subset.empty() ? stream.train_idx() : config.train_subset;
  std::vector<char> in_train(stream.num_entries(), 0);
  for (size_t e : train) {
    if (e >= stream.num_entries()) {
      return Status::InvalidArgument(
          StrFormat("train entry %zu out of range (corpus has %zu entries)",
                    e, stream.num_entries()));
    }
    in_train[e] = 1;
  }

  // ---- Pass 1: vocabulary + cached query token streams. One decode of
  // every shard; only the (small) token vectors stay resident. Vocabulary
  // insertion order is shard order here, not train-split order, so token
  // ids differ from the resident trainer's — a deliberate property of the
  // streaming mode, deterministic for a fixed shard layout. ----
  auto vocab = std::make_shared<Vocab>();
  std::vector<std::vector<std::string>> query_tokens(stream.num_entries());
  {
    ScopedSpan vocab_span(config.metrics, "train.vocab_pass");
    ShardCursor cursor(stream, &pool);
    while (!cursor.Done()) {
      auto slice = cursor.Next();
      if (!slice.ok()) return slice.status();
      const Corpus& chunk = *slice->corpus;
      for (size_t i = 0; i < chunk.entries.size(); ++i) {
        const size_t e = slice->base_entry + i;
        query_tokens[e] = QueryTokens(chunk.entries[i].query);
        if (!in_train[e]) continue;
        vocab->AddTokens(query_tokens[e]);
        for (const auto& c : chunk.entries[i].contributions) {
          vocab->AddTokens(TupleTokens(c.tuple));
          for (const auto& [f, v] : c.shapley) {
            vocab->AddTokens(FactTokens(db, f));
          }
        }
      }
    }
  }
  vocab->AddTokens({"ovl0", "ovl1", "ovl2"});

  // ---- Model. ----
  const EncoderConfig encoder_cfg = MakeEncoderConfig(
      config.model_size, vocab->size(), config.max_len, config.seed);
  LearnShapleyModel model(encoder_cfg, config.seed);
  DataParallelRunner runner(&model, &pool);

  TrainResult result;

  // ---- Pre-training (needs caller-supplied similarity matrices, which
  // are corpus-global; pass null to skip). ----
  if (config.do_pretrain && config.objectives.AnyEnabled() &&
      sims != nullptr) {
    result.pretrain_dev_mse = PretrainOnSims(
        train, stream.dev_idx(), query_tokens, *sims, config, metrics, *vocab,
        model, runner, pool, rng, total_examples);
  }

  // ---- Fine-tuning, shard at a time. ----
  ScopedSpan finetune_span(config.metrics, "train.finetune");
  Adam optimizer(model.Params(), [&] {
    AdamConfig a;
    a.lr = config.finetune_lr;
    return a;
  }());

  double best_ndcg = -1.0;
  std::vector<Tensor> best_weights = model.SnapshotWeights();

  std::vector<size_t> train_shards;
  {
    std::vector<char> has(stream.num_shards(), 0);
    for (size_t e : train) has[stream.ShardOf(e)] = 1;
    for (size_t s = 0; s < has.size(); ++s) {
      if (has[s]) train_shards.push_back(s);
    }
  }

  for (size_t epoch = 0; epoch < config.finetune_epochs; ++epoch) {
    float epoch_loss = 0.0f;
    size_t epoch_examples = 0;
    if (!train_shards.empty()) {
      // Rotate the starting shard so no shard always trains against the
      // freshest (end-of-epoch) weights.
      std::vector<size_t> order = train_shards;
      std::rotate(order.begin(), order.begin() + (epoch % order.size()),
                  order.end());
      const size_t quota =
          (config.finetune_samples_per_epoch + order.size() - 1) /
          order.size();
      size_t remaining = config.finetune_samples_per_epoch;

      ShardCursor cursor(stream, &pool, order);
      while (!cursor.Done()) {
        auto slice_r = cursor.Next();
        if (!slice_r.ok()) return slice_r.status();
        const CorpusSlice slice = std::move(*slice_r);
        const Corpus& chunk = *slice.corpus;

        // Materialize only this shard's train samples.
        std::vector<FinetuneSample> samples;
        for (size_t i = 0; i < chunk.entries.size(); ++i) {
          const size_t e = slice.base_entry + i;
          if (!in_train[e]) continue;
          const CorpusEntry& entry = chunk.entries[i];
          for (size_t ci = 0; ci < entry.contributions.size(); ++ci) {
            const auto& c = entry.contributions[ci];
            const std::vector<std::string> t_tokens = TupleTokens(c.tuple);
            double norm = 1.0;
            if (config.normalize_targets_per_tuple) {
              double max_v = 0.0;
              for (const auto& [f, v] : c.shapley) {
                max_v = std::max(max_v, v);
              }
              if (max_v > 0.0) norm = 1.0 / max_v;
            }
            for (const auto& [f, v] : c.shapley) {
              FinetuneSample fs;
              fs.input = EncodeSegments(
                  *vocab,
                  {query_tokens[e], t_tokens,
                   FactTokensWithContext(db, f, t_tokens)},
                  config.max_len);
              fs.target = static_cast<float>(v * norm) * config.shapley_scale;
              samples.push_back(std::move(fs));
            }
            if (config.negative_samples_per_contribution > 0) {
              // Derived per-contribution stream, so the negative set does
              // not depend on shard visit order or epoch.
              Rng neg_rng(config.seed ^
                          (0xda942042e4dd58b5ULL * (e + 1)) ^
                          (0x9e3779b97f4a7c15ULL * (ci + 1)));
              for (size_t neg = 0;
                   neg < config.negative_samples_per_contribution; ++neg) {
                const FactId f = static_cast<FactId>(
                    neg_rng.NextBounded(db.num_facts()));
                if (c.shapley.count(f) > 0) continue;
                FinetuneSample fs;
                fs.input = EncodeSegments(
                    *vocab,
                    {query_tokens[e], t_tokens,
                     FactTokensWithContext(db, f, t_tokens)},
                    config.max_len);
                fs.target = 0.0f;
                samples.push_back(std::move(fs));
              }
            }
          }
        }

        // Per-(epoch, shard) derived shuffle: sample order is a function of
        // position in the corpus, not of scheduling.
        Rng order_rng(config.seed ^
                      (0x2545f4914f6cdd1dULL * (epoch + 1)) ^
                      (0x9e3779b97f4a7c15ULL * (slice.shard_index + 1)));
        order_rng.Shuffle(samples);
        const size_t take = std::min({samples.size(), quota, remaining});
        for (size_t begin = 0; begin < take; begin += config.batch_size) {
          const size_t end = std::min(take, begin + config.batch_size);
          epoch_loss += runner.RunBatch(
              begin, end, [&](LearnShapleyModel& m, size_t i) {
                return m.FinetuneStep(samples[i].input, samples[i].target);
              });
          TimedStep(optimizer, metrics);
        }
        remaining -= take;
        epoch_examples += take;
      }
    }

    metrics.finetune_examples.Inc(epoch_examples);
    total_examples += epoch_examples;
    metrics.finetune_epoch_loss.Set(
        static_cast<double>(epoch_loss) /
        static_cast<double>(std::max<size_t>(1, epoch_examples)));
    // Dev NDCG@10 for checkpoint selection, streamed over the dev shards.
    LearnShapleyRanker dev_ranker(model, vocab, config.max_len,
                                  config.shapley_scale, "dev");
    auto dev = EvaluateScorerStream(stream, stream.dev_idx(), dev_ranker, {},
                                    pool);
    if (!dev.ok()) return dev.status();
    if (config.verbose) {
      std::fprintf(stderr, "[finetune] epoch %zu loss %.2f dev-ndcg %.4f\n",
                   epoch,
                   static_cast<double>(epoch_loss) /
                       static_cast<double>(std::max<size_t>(1, epoch_examples)),
                   dev->ndcg10);
    }
    metrics.finetune_dev_ndcg10.Set(dev->ndcg10);
    if (dev->ndcg10 > best_ndcg) {
      best_ndcg = dev->ndcg10;
      best_weights = model.SnapshotWeights();
    }
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
  }
  model.RestoreWeights(best_weights);
  result.best_dev_ndcg10 = best_ndcg;

  result.ranker = std::make_unique<LearnShapleyRanker>(
      std::move(model), vocab, config.max_len, config.shapley_scale,
      RankerName(config));
  result.train_seconds = timer.ElapsedSeconds();
  if (result.train_seconds > 0.0) {
    metrics.examples_per_sec.Set(static_cast<double>(total_examples) /
                                 result.train_seconds);
  }
  return result;
}

}  // namespace

TrainResult TrainLearnShapley(const Corpus& corpus,
                              const SimilarityMatrices& sims,
                              const TrainConfig& config, ThreadPool& pool) {
  return TrainResident(corpus, corpus.train_idx, corpus.dev_idx, &sims,
                       config, pool);
}

Result<TrainResult> TrainLearnShapleyStream(const CorpusStream& stream,
                                            const SimilarityMatrices* sims,
                                            const TrainConfig& config,
                                            ThreadPool& pool) {
  if (stream.num_shards() == 1) {
    // Single shard: the slice is the whole corpus (aliased for an
    // in-memory stream, decoded once for a one-shard binary corpus), so
    // the resident pipeline applies unchanged — and matches
    // TrainLearnShapley exactly when sims is provided.
    auto slice = stream.ReadShard(0);
    if (!slice.ok()) return slice.status();
    return TrainResident(*slice->corpus, stream.train_idx(),
                         stream.dev_idx(), sims, config, pool);
  }
  return TrainStreaming(stream, sims, config, pool);
}

}  // namespace lshap
