#ifndef LSHAP_LEARNSHAPLEY_EVALUATE_H_
#define LSHAP_LEARNSHAPLEY_EVALUATE_H_

#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "corpus/stream.h"
#include "learnshapley/scorer.h"

namespace lshap {

// Metrics for one (query, output tuple) pair, plus the covariates the
// paper's analysis figures plot against.
struct EvalPoint {
  size_t entry_idx = 0;
  size_t contrib_idx = 0;
  double ndcg10 = 0.0;
  double p1 = 0.0;
  double p3 = 0.0;
  double p5 = 0.0;
  size_t lineage_size = 0;
  size_t num_tables = 0;
  // Partial NDCG@10 over the seen / unseen fact subsets (Figure 12); valid
  // only when the corresponding has_* flag is set.
  double seen_ndcg10 = 0.0;
  double unseen_ndcg10 = 0.0;
  bool has_seen = false;
  bool has_unseen = false;
};

struct EvalSummary {
  double ndcg10 = 0.0;  // means over points
  double p1 = 0.0;
  double p3 = 0.0;
  double p5 = 0.0;
  std::vector<EvalPoint> points;
};

// Evaluates `scorer` on every contribution of the given corpus split,
// in parallel with per-worker scorer clones. `train_seen` (may be empty)
// enables the seen/unseen partial metrics.
EvalSummary EvaluateScorer(const Corpus& corpus,
                           const std::vector<size_t>& split,
                           FactScorer& scorer,
                           const std::unordered_set<FactId>& train_seen,
                           ThreadPool& pool);

// Streaming variant: walks only the shards the split touches, one at a
// time with lookahead prefetch, so peak corpus memory is bounded by shard
// size. `split` holds global entry indices; points come back in the same
// (split position, contribution) order as EvaluateScorer, and for a
// single-shard stream the result is identical to the resident evaluator
// (EvaluateScorer is this function over an InMemoryCorpusStream).
//
// The scorer sees each slice's chunk Corpus. With an InMemoryCorpusStream
// that chunk is the full corpus; with a multi-shard stream, scorers that
// read corpus-global state (the NearestQueries baselines) are not
// supported — use a ranker that scores from (db, entry) alone.
Result<EvalSummary> EvaluateScorerStream(
    const CorpusStream& stream, const std::vector<size_t>& split,
    FactScorer& scorer, const std::unordered_set<FactId>& train_seen,
    ThreadPool& pool);

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_EVALUATE_H_
