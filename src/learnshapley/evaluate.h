#ifndef LSHAP_LEARNSHAPLEY_EVALUATE_H_
#define LSHAP_LEARNSHAPLEY_EVALUATE_H_

#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "learnshapley/scorer.h"

namespace lshap {

// Metrics for one (query, output tuple) pair, plus the covariates the
// paper's analysis figures plot against.
struct EvalPoint {
  size_t entry_idx = 0;
  size_t contrib_idx = 0;
  double ndcg10 = 0.0;
  double p1 = 0.0;
  double p3 = 0.0;
  double p5 = 0.0;
  size_t lineage_size = 0;
  size_t num_tables = 0;
  // Partial NDCG@10 over the seen / unseen fact subsets (Figure 12); valid
  // only when the corresponding has_* flag is set.
  double seen_ndcg10 = 0.0;
  double unseen_ndcg10 = 0.0;
  bool has_seen = false;
  bool has_unseen = false;
};

struct EvalSummary {
  double ndcg10 = 0.0;  // means over points
  double p1 = 0.0;
  double p3 = 0.0;
  double p5 = 0.0;
  std::vector<EvalPoint> points;
};

// Evaluates `scorer` on every contribution of the given corpus split,
// in parallel with per-worker scorer clones. `train_seen` (may be empty)
// enables the seen/unseen partial metrics.
EvalSummary EvaluateScorer(const Corpus& corpus,
                           const std::vector<size_t>& split,
                           FactScorer& scorer,
                           const std::unordered_set<FactId>& train_seen,
                           ThreadPool& pool);

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_EVALUATE_H_
