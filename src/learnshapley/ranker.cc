#include "learnshapley/ranker.h"

#include <chrono>

#include "learnshapley/serialization.h"

namespace lshap {

namespace {

// Per-thread inference workspaces. The ranker itself stays const during
// scoring; every thread that scores through a shared instance brings its
// own activation scratch via these.
InferenceArena& TlsArena() {
  thread_local InferenceArena arena;
  return arena;
}

QuantScratch& TlsScratch() {
  thread_local QuantScratch scratch;
  return scratch;
}

}  // namespace

const char* InferenceModeName(InferenceMode mode) {
  switch (mode) {
    case InferenceMode::kFloat:
      return "float";
    case InferenceMode::kQuantized:
      return "quantized";
  }
  return "unknown";
}

LearnShapleyRanker::LearnShapleyRanker(LearnShapleyModel model,
                                       std::shared_ptr<const Vocab> vocab,
                                       size_t max_len, float shapley_scale,
                                       std::string name)
    : model_(std::move(model)),
      vocab_(std::move(vocab)),
      max_len_(max_len),
      shapley_scale_(shapley_scale),
      name_(std::move(name)) {}

void LearnShapleyRanker::set_metrics(MetricsRegistry* registry) {
  facts_scored_ = CounterFor(registry, "rank.facts_scored");
  score_seconds_ = HistogramFor(registry, "rank.score_seconds",
                                ExponentialBuckets(1e-5, 4.0, 12));
}

void LearnShapleyRanker::Configure(const RankerConfig& config) {
  config_ = config;
  if (config_.mode == InferenceMode::kQuantized && quant_ == nullptr) {
    quant_ = std::make_shared<const QuantizedShapleyModel>(
        QuantizedShapleyModel::FromModel(model_));
  }
}

void LearnShapleyRanker::AdoptQuantizedModel(
    std::shared_ptr<const QuantizedShapleyModel> q) {
  quant_ = std::move(q);
  config_.mode = InferenceMode::kQuantized;
}

double LearnShapleyRanker::PredictEncoded(const EncodedPair& input) const {
  const float raw = config_.mode == InferenceMode::kQuantized
                        ? quant_->PredictShapley(input, TlsScratch())
                        : model_.PredictShapley(input, TlsArena());
  return static_cast<double>(raw) / static_cast<double>(shapley_scale_);
}

ShapleyValues LearnShapleyRanker::ScoreLineage(
    const Database& db, const Query& q, const OutputTuple& t,
    const std::vector<FactId>& lineage) const {
  const auto start = score_seconds_.enabled()
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  // Encode the (query, tuple) context once; only the fact segment differs
  // across the tuple's lineage.
  const std::vector<std::string> t_tokens = TupleTokens(t);
  const std::vector<int> q_ids = EncodeTokens(*vocab_, QueryTokens(q));
  const std::vector<int> t_ids = EncodeTokens(*vocab_, t_tokens);
  ShapleyValues out;
  out.reserve(lineage.size());
  for (FactId f : lineage) {
    const std::vector<int> f_ids =
        EncodeTokens(*vocab_, FactTokensWithContext(db, f, t_tokens));
    const EncodedPair input =
        AssembleEncodedSegments({&q_ids, &t_ids, &f_ids}, max_len_);
    out[f] = PredictEncoded(input);
  }
  facts_scored_.Inc(lineage.size());
  if (score_seconds_.enabled()) {
    score_seconds_.Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  }
  return out;
}

Result<ShapleyValues> LearnShapleyRanker::ScoreLineageBudgeted(
    const Database& db, const Query& q, const OutputTuple& t,
    const std::vector<FactId>& lineage, ExecutionBudget& budget) const {
  const auto start = score_seconds_.enabled()
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::vector<std::string> t_tokens = TupleTokens(t);
  const std::vector<int> q_ids = EncodeTokens(*vocab_, QueryTokens(q));
  const std::vector<int> t_ids = EncodeTokens(*vocab_, t_tokens);
  ShapleyValues out;
  out.reserve(lineage.size());
  size_t scored = 0;
  for (FactId f : lineage) {
    Status st = budget.Charge(1, kSiteRankScoreFact);
    if (!st.ok()) {
      facts_scored_.Inc(scored);
      return st;
    }
    const std::vector<int> f_ids =
        EncodeTokens(*vocab_, FactTokensWithContext(db, f, t_tokens));
    const EncodedPair input =
        AssembleEncodedSegments({&q_ids, &t_ids, &f_ids}, max_len_);
    out[f] = PredictEncoded(input);
    ++scored;
  }
  facts_scored_.Inc(scored);
  if (score_seconds_.enabled()) {
    score_seconds_.Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  }
  return out;
}

ShapleyValues LearnShapleyRanker::Score(const Corpus& corpus,
                                        size_t entry_idx,
                                        size_t contrib_idx) {
  const CorpusEntry& entry = corpus.entries[entry_idx];
  const TupleContribution& contrib = entry.contributions[contrib_idx];
  std::vector<FactId> lineage;
  lineage.reserve(contrib.shapley.size());
  for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);
  return ScoreLineage(*corpus.db, entry.query, contrib.tuple, lineage);
}

std::unique_ptr<FactScorer> LearnShapleyRanker::Clone() const {
  return std::make_unique<LearnShapleyRanker>(*this);
}

}  // namespace lshap
