#include "learnshapley/ranker.h"

#include <chrono>

#include "learnshapley/serialization.h"

namespace lshap {

LearnShapleyRanker::LearnShapleyRanker(LearnShapleyModel model,
                                       std::shared_ptr<const Vocab> vocab,
                                       size_t max_len, float shapley_scale,
                                       std::string name)
    : model_(std::move(model)),
      vocab_(std::move(vocab)),
      max_len_(max_len),
      shapley_scale_(shapley_scale),
      name_(std::move(name)) {}

void LearnShapleyRanker::set_metrics(MetricsRegistry* registry) {
  facts_scored_ = CounterFor(registry, "rank.facts_scored");
  score_seconds_ = HistogramFor(registry, "rank.score_seconds",
                                ExponentialBuckets(1e-5, 4.0, 12));
}

ShapleyValues LearnShapleyRanker::ScoreLineage(
    const Database& db, const Query& q, const OutputTuple& t,
    const std::vector<FactId>& lineage) {
  const auto start = score_seconds_.enabled()
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::vector<std::string> q_tokens = QueryTokens(q);
  const std::vector<std::string> t_tokens = TupleTokens(t);
  ShapleyValues out;
  out.reserve(lineage.size());
  for (FactId f : lineage) {
    const EncodedPair input = EncodeSegments(
        *vocab_, {q_tokens, t_tokens, FactTokensWithContext(db, f, t_tokens)},
        max_len_);
    out[f] = static_cast<double>(model_.PredictShapley(input)) /
             static_cast<double>(shapley_scale_);
  }
  facts_scored_.Inc(lineage.size());
  if (score_seconds_.enabled()) {
    score_seconds_.Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  }
  return out;
}

Result<ShapleyValues> LearnShapleyRanker::ScoreLineageBudgeted(
    const Database& db, const Query& q, const OutputTuple& t,
    const std::vector<FactId>& lineage, ExecutionBudget& budget) {
  const auto start = score_seconds_.enabled()
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::vector<std::string> q_tokens = QueryTokens(q);
  const std::vector<std::string> t_tokens = TupleTokens(t);
  ShapleyValues out;
  out.reserve(lineage.size());
  size_t scored = 0;
  for (FactId f : lineage) {
    Status st = budget.Charge(1, kSiteRankScoreFact);
    if (!st.ok()) {
      facts_scored_.Inc(scored);
      return st;
    }
    const EncodedPair input = EncodeSegments(
        *vocab_, {q_tokens, t_tokens, FactTokensWithContext(db, f, t_tokens)},
        max_len_);
    out[f] = static_cast<double>(model_.PredictShapley(input)) /
             static_cast<double>(shapley_scale_);
    ++scored;
  }
  facts_scored_.Inc(scored);
  if (score_seconds_.enabled()) {
    score_seconds_.Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  }
  return out;
}

ShapleyValues LearnShapleyRanker::Score(const Corpus& corpus,
                                        size_t entry_idx,
                                        size_t contrib_idx) {
  const CorpusEntry& entry = corpus.entries[entry_idx];
  const TupleContribution& contrib = entry.contributions[contrib_idx];
  std::vector<FactId> lineage;
  lineage.reserve(contrib.shapley.size());
  for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);
  return ScoreLineage(*corpus.db, entry.query, contrib.tuple, lineage);
}

std::unique_ptr<FactScorer> LearnShapleyRanker::Clone() const {
  return std::make_unique<LearnShapleyRanker>(*this);
}

}  // namespace lshap
