#include "learnshapley/ranker.h"

#include "learnshapley/serialization.h"

namespace lshap {

LearnShapleyRanker::LearnShapleyRanker(LearnShapleyModel model,
                                       std::shared_ptr<const Vocab> vocab,
                                       size_t max_len, float shapley_scale,
                                       std::string name)
    : model_(std::move(model)),
      vocab_(std::move(vocab)),
      max_len_(max_len),
      shapley_scale_(shapley_scale),
      name_(std::move(name)) {}

ShapleyValues LearnShapleyRanker::ScoreLineage(
    const Database& db, const Query& q, const OutputTuple& t,
    const std::vector<FactId>& lineage) {
  const std::vector<std::string> q_tokens = QueryTokens(q);
  const std::vector<std::string> t_tokens = TupleTokens(t);
  ShapleyValues out;
  out.reserve(lineage.size());
  for (FactId f : lineage) {
    const EncodedPair input = EncodeSegments(
        *vocab_, {q_tokens, t_tokens, FactTokensWithContext(db, f, t_tokens)},
        max_len_);
    out[f] = static_cast<double>(model_.PredictShapley(input)) /
             static_cast<double>(shapley_scale_);
  }
  return out;
}

ShapleyValues LearnShapleyRanker::Score(const Corpus& corpus,
                                        size_t entry_idx,
                                        size_t contrib_idx) {
  const CorpusEntry& entry = corpus.entries[entry_idx];
  const TupleContribution& contrib = entry.contributions[contrib_idx];
  std::vector<FactId> lineage;
  lineage.reserve(contrib.shapley.size());
  for (const auto& [f, v] : contrib.shapley) lineage.push_back(f);
  return ScoreLineage(*corpus.db, entry.query, contrib.tuple, lineage);
}

std::unique_ptr<FactScorer> LearnShapleyRanker::Clone() const {
  return std::make_unique<LearnShapleyRanker>(*this);
}

}  // namespace lshap
