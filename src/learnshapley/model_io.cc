#include "learnshapley/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fileio.h"
#include "common/strings.h"

namespace lshap {

Status SaveRanker(LearnShapleyRanker& ranker, const std::string& path) {
  // Stream into the sibling temp path and rename into place on success, so
  // a crash mid-save never leaves a truncated model under the final name.
  const std::string tmp = TempWritePath(path);
  std::ofstream out(tmp);
  if (!out) return Status::Internal("cannot open '" + tmp + "' for write");

  const EncoderConfig& cfg = ranker.model().encoder_config();
  out << "LSHAP_MODEL 1\n";
  out << "name " << ranker.name() << '\n';
  out << "config " << cfg.vocab_size << ' ' << cfg.max_len << ' ' << cfg.dim
      << ' ' << cfg.num_heads << ' ' << cfg.num_layers << ' ' << cfg.ffn_dim
      << ' ' << cfg.seed << '\n';
  out << "ranker " << ranker.max_len() << '\n';

  // Vocabulary (skip the builtin specials; they are recreated on load).
  const Vocab& vocab = ranker.vocab();
  out << "vocab " << (vocab.size() - Vocab::kNumSpecial) << '\n';
  for (size_t i = Vocab::kNumSpecial; i < vocab.size(); ++i) {
    out << vocab.token(static_cast<int>(i)) << '\n';
  }

  // Weights: one tensor per line, lossless hex floats.
  std::vector<Param*> params = ranker.model().Params();
  out << "tensors " << params.size() << '\n';
  for (Param* p : params) {
    out << p->value.rows() << ' ' << p->value.cols();
    for (size_t i = 0; i < p->value.size(); ++i) {
      out << ' ' << StrFormat("%a", static_cast<double>(p->value.data()[i]));
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    out.close();
    std::remove(tmp.c_str());
    return Status::Internal("write to '" + tmp + "' failed");
  }
  out.close();
  return CommitTempFile(path);
}

Result<std::unique_ptr<LearnShapleyRanker>> LoadRanker(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("model file '" + path + "': " + what);
  };

  std::string line;
  if (!std::getline(in, line) || line != "LSHAP_MODEL 1") {
    return bad("missing header");
  }
  if (!std::getline(in, line) || !StartsWith(line, "name ")) {
    return bad("missing name");
  }
  const std::string name = line.substr(5);

  EncoderConfig cfg;
  {
    if (!std::getline(in, line)) return bad("missing config");
    std::istringstream ls(line);
    std::string word;
    ls >> word >> cfg.vocab_size >> cfg.max_len >> cfg.dim >> cfg.num_heads >>
        cfg.num_layers >> cfg.ffn_dim >> cfg.seed;
    if (word != "config" || !ls) return bad("malformed config");
  }
  size_t ranker_max_len = 0;
  {
    if (!std::getline(in, line)) return bad("missing ranker line");
    std::istringstream ls(line);
    std::string word;
    ls >> word >> ranker_max_len;
    if (word != "ranker" || !ls) return bad("malformed ranker line");
  }

  auto vocab = std::make_shared<Vocab>();
  {
    if (!std::getline(in, line)) return bad("missing vocab");
    std::istringstream ls(line);
    std::string word;
    size_t count = 0;
    ls >> word >> count;
    if (word != "vocab" || !ls) return bad("malformed vocab line");
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) return bad("truncated vocab");
      vocab->AddTokens({line});
    }
    if (vocab->size() != cfg.vocab_size) return bad("vocab size mismatch");
  }

  LearnShapleyModel model(cfg, cfg.seed);
  std::vector<Param*> params = model.Params();
  {
    if (!std::getline(in, line)) return bad("missing tensors");
    std::istringstream ls(line);
    std::string word;
    size_t count = 0;
    ls >> word >> count;
    if (word != "tensors" || count != params.size()) {
      return bad("tensor count mismatch");
    }
  }
  for (Param* p : params) {
    if (!std::getline(in, line)) return bad("truncated tensors");
    std::istringstream ls(line);
    size_t rows = 0;
    size_t cols = 0;
    ls >> rows >> cols;
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return bad("tensor shape mismatch");
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      std::string hex;
      if (!(ls >> hex)) return bad("truncated tensor data");
      p->value.data()[i] = std::strtof(hex.c_str(), nullptr);
    }
  }

  // The shapley_scale only affects the (monotone) rescaling of scores, not
  // the ranking; rankers are saved post-training so we keep the default.
  return std::make_unique<LearnShapleyRanker>(std::move(model),
                                              std::move(vocab),
                                              ranker_max_len, 1000.0f, name);
}

}  // namespace lshap
