#include "learnshapley/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fileio.h"
#include "common/strings.h"
#include "corpus/format.h"

namespace lshap {

namespace {

// Canonical byte image of the quantized section, checksummed with the same
// FNV-1a primitive as the corpus shard format: per linear, the dims as
// little-endian u64s, then raw scale/bias floats, then raw int8 weights.
std::string QuantCanonicalBytes(const QuantizedShapleyModel& q) {
  std::string bytes;
  for (const QuantizedLinear* lin : q.AllLinears()) {
    const uint64_t dims[3] = {lin->in(), lin->out(), lin->in_pad()};
    bytes.append(reinterpret_cast<const char*>(dims), sizeof(dims));
    bytes.append(reinterpret_cast<const char*>(lin->scales().data()),
                 lin->scales().size() * sizeof(float));
    bytes.append(reinterpret_cast<const char*>(lin->bias().data()),
                 lin->bias().size() * sizeof(float));
    bytes.append(reinterpret_cast<const char*>(lin->weights().data()),
                 lin->weights().size());
  }
  return bytes;
}

}  // namespace

Status SaveRanker(LearnShapleyRanker& ranker, const std::string& path) {
  // Stream into the sibling temp path and rename into place on success, so
  // a crash mid-save never leaves a truncated model under the final name.
  const std::string tmp = TempWritePath(path);
  std::ofstream out(tmp);
  if (!out) return Status::Internal("cannot open '" + tmp + "' for write");

  const EncoderConfig& cfg = ranker.model().encoder_config();
  out << "LSHAP_MODEL 2\n";
  out << "name " << ranker.name() << '\n';
  out << "config " << cfg.vocab_size << ' ' << cfg.max_len << ' ' << cfg.dim
      << ' ' << cfg.num_heads << ' ' << cfg.num_layers << ' ' << cfg.ffn_dim
      << ' ' << cfg.seed << '\n';
  out << "ranker " << ranker.max_len() << '\n';

  // Vocabulary (skip the builtin specials; they are recreated on load).
  const Vocab& vocab = ranker.vocab();
  out << "vocab " << (vocab.size() - Vocab::kNumSpecial) << '\n';
  for (size_t i = Vocab::kNumSpecial; i < vocab.size(); ++i) {
    out << vocab.token(static_cast<int>(i)) << '\n';
  }

  // Weights: one tensor per line, lossless hex floats.
  std::vector<Param*> params = ranker.model().Params();
  out << "tensors " << params.size() << '\n';
  for (Param* p : params) {
    out << p->value.rows() << ' ' << p->value.cols();
    for (size_t i = 0; i < p->value.size(); ++i) {
      out << ' ' << StrFormat("%a", static_cast<double>(p->value.data()[i]));
    }
    out << '\n';
  }

  // Optional v2 quantized section: present iff the ranker carries an int8
  // model, so float-only artifacts stay byte-compatible with v1 readers
  // modulo the header line.
  if (const QuantizedShapleyModel* q = ranker.quantized_model()) {
    const auto linears = q->AllLinears();
    out << "quant " << linears.size() << ' '
        << InferenceModeName(ranker.config().mode) << '\n';
    for (const QuantizedLinear* lin : linears) {
      out << "qlinear " << lin->in() << ' ' << lin->out() << ' '
          << lin->in_pad() << '\n';
      out << "qscales";
      for (float s : lin->scales()) {
        out << ' ' << StrFormat("%a", static_cast<double>(s));
      }
      out << '\n';
      out << "qbias";
      for (float b : lin->bias()) {
        out << ' ' << StrFormat("%a", static_cast<double>(b));
      }
      out << '\n';
      out << "qweights";
      for (int8_t w : lin->weights()) out << ' ' << static_cast<int>(w);
      out << '\n';
    }
    const std::string bytes = QuantCanonicalBytes(*q);
    out << "qchecksum "
        << StrFormat("%016llx", static_cast<unsigned long long>(FnvChecksum(
                                    bytes.data(), bytes.size())))
        << '\n';
  }

  out.flush();
  if (!out) {
    out.close();
    std::remove(tmp.c_str());
    return Status::Internal("write to '" + tmp + "' failed");
  }
  out.close();
  return CommitTempFile(path);
}

Result<std::unique_ptr<LearnShapleyRanker>> LoadRanker(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("model file '" + path + "': " + what);
  };

  std::string line;
  if (!std::getline(in, line) ||
      (line != "LSHAP_MODEL 1" && line != "LSHAP_MODEL 2")) {
    return bad("missing header");
  }
  const int version = line == "LSHAP_MODEL 1" ? 1 : 2;
  if (!std::getline(in, line) || !StartsWith(line, "name ")) {
    return bad("missing name");
  }
  const std::string name = line.substr(5);

  EncoderConfig cfg;
  {
    if (!std::getline(in, line)) return bad("missing config");
    std::istringstream ls(line);
    std::string word;
    ls >> word >> cfg.vocab_size >> cfg.max_len >> cfg.dim >> cfg.num_heads >>
        cfg.num_layers >> cfg.ffn_dim >> cfg.seed;
    if (word != "config" || !ls) return bad("malformed config");
  }
  size_t ranker_max_len = 0;
  {
    if (!std::getline(in, line)) return bad("missing ranker line");
    std::istringstream ls(line);
    std::string word;
    ls >> word >> ranker_max_len;
    if (word != "ranker" || !ls) return bad("malformed ranker line");
  }

  auto vocab = std::make_shared<Vocab>();
  {
    if (!std::getline(in, line)) return bad("missing vocab");
    std::istringstream ls(line);
    std::string word;
    size_t count = 0;
    ls >> word >> count;
    if (word != "vocab" || !ls) return bad("malformed vocab line");
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) return bad("truncated vocab");
      vocab->AddTokens({line});
    }
    if (vocab->size() != cfg.vocab_size) return bad("vocab size mismatch");
  }

  LearnShapleyModel model(cfg, cfg.seed);
  std::vector<Param*> params = model.Params();
  {
    if (!std::getline(in, line)) return bad("missing tensors");
    std::istringstream ls(line);
    std::string word;
    size_t count = 0;
    ls >> word >> count;
    if (word != "tensors" || count != params.size()) {
      return bad("tensor count mismatch");
    }
  }
  for (Param* p : params) {
    if (!std::getline(in, line)) return bad("truncated tensors");
    std::istringstream ls(line);
    size_t rows = 0;
    size_t cols = 0;
    ls >> rows >> cols;
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return bad("tensor shape mismatch");
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      std::string hex;
      if (!(ls >> hex)) return bad("truncated tensor data");
      p->value.data()[i] = std::strtof(hex.c_str(), nullptr);
    }
  }

  // Optional quantized section (v2 only). The shapes come from quantizing
  // the just-loaded float model, then every scale/bias/weight is overwritten
  // with the stored values and cross-checked against the FNV-1a checksum.
  bool have_quant = false;
  InferenceMode quant_mode = InferenceMode::kQuantized;
  QuantizedShapleyModel qmodel;
  if (version >= 2 && std::getline(in, line) && StartsWith(line, "quant ")) {
    std::istringstream ls(line);
    std::string word;
    std::string mode_name;
    size_t count = 0;
    ls >> word >> count >> mode_name;
    if (!ls) return bad("malformed quant line");
    if (mode_name == "float") {
      quant_mode = InferenceMode::kFloat;
    } else if (mode_name != "quantized") {
      return bad("unknown quant mode '" + mode_name + "'");
    }
    qmodel = QuantizedShapleyModel::FromModel(model);
    std::vector<QuantizedLinear*> linears = qmodel.MutableLinears();
    if (count != linears.size()) return bad("quant linear count mismatch");
    for (QuantizedLinear* lin : linears) {
      if (!std::getline(in, line)) return bad("truncated quant section");
      {
        std::istringstream qs(line);
        size_t in_dim = 0, out_dim = 0, in_pad = 0;
        qs >> word >> in_dim >> out_dim >> in_pad;
        if (word != "qlinear" || !qs || in_dim != lin->in() ||
            out_dim != lin->out() || in_pad != lin->in_pad()) {
          return bad("quant linear shape mismatch");
        }
      }
      if (!std::getline(in, line)) return bad("truncated quant scales");
      {
        std::istringstream qs(line);
        qs >> word;
        if (word != "qscales") return bad("malformed quant scales");
        for (float& s : lin->mutable_scales()) {
          std::string hex;
          if (!(qs >> hex)) return bad("truncated quant scales");
          s = std::strtof(hex.c_str(), nullptr);
        }
      }
      if (!std::getline(in, line)) return bad("truncated quant bias");
      {
        std::istringstream qs(line);
        qs >> word;
        if (word != "qbias") return bad("malformed quant bias");
        for (float& b : lin->mutable_bias()) {
          std::string hex;
          if (!(qs >> hex)) return bad("truncated quant bias");
          b = std::strtof(hex.c_str(), nullptr);
        }
      }
      if (!std::getline(in, line)) return bad("truncated quant weights");
      {
        std::istringstream qs(line);
        qs >> word;
        if (word != "qweights") return bad("malformed quant weights");
        for (int8_t& w : lin->mutable_weights()) {
          int v = 0;
          if (!(qs >> v) || v < -128 || v > 127) {
            return bad("truncated quant weights");
          }
          w = static_cast<int8_t>(v);
        }
      }
    }
    if (!std::getline(in, line) || !StartsWith(line, "qchecksum ")) {
      return bad("missing quant checksum");
    }
    const std::string bytes = QuantCanonicalBytes(qmodel);
    const std::string want =
        StrFormat("%016llx", static_cast<unsigned long long>(
                                 FnvChecksum(bytes.data(), bytes.size())));
    if (line.substr(10) != want) return bad("quant checksum mismatch");
    have_quant = true;
  }

  // The shapley_scale only affects the (monotone) rescaling of scores, not
  // the ranking; rankers are saved post-training so we keep the default.
  auto ranker = std::make_unique<LearnShapleyRanker>(
      std::move(model), std::move(vocab), ranker_max_len, 1000.0f, name);
  if (have_quant) {
    ranker->AdoptQuantizedModel(
        std::make_shared<const QuantizedShapleyModel>(std::move(qmodel)));
    ranker->Configure(RankerConfig{}.WithMode(quant_mode));
  }
  return ranker;
}

}  // namespace lshap
