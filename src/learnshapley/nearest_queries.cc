#include "learnshapley/nearest_queries.h"

#include <algorithm>

#include "common/check.h"

namespace lshap {

const char* SimilarityMetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kSyntax:
      return "syntax";
    case SimilarityMetric::kWitness:
      return "witness";
    case SimilarityMetric::kRank:
      return "rank";
  }
  return "?";
}

NearestQueriesScorer::NearestQueriesScorer(const Corpus* corpus,
                                           const SimilarityMatrices* sims,
                                           SimilarityMetric metric,
                                           size_t num_neighbors,
                                           std::vector<size_t> train_subset)
    : corpus_(corpus),
      sims_(sims),
      metric_(metric),
      num_neighbors_(num_neighbors),
      train_subset_(std::move(train_subset)) {
  LSHAP_CHECK(corpus != nullptr);
  LSHAP_CHECK(sims != nullptr);
  if (train_subset_.empty()) train_subset_ = corpus->train_idx;
  for (size_t e : train_subset_) {
    const CorpusEntry& entry = corpus_->entries[e];
    std::unordered_map<FactId, double> sums;
    std::unordered_map<FactId, size_t> counts;
    for (const auto& c : entry.contributions) {
      for (const auto& [f, v] : c.shapley) {
        sums[f] += v;
        ++counts[f];
      }
    }
    for (auto& [f, s] : sums) s /= static_cast<double>(counts[f]);
    fact_means_.emplace(e, std::move(sums));
  }
}

void NearestQueriesScorer::set_metrics(MetricsRegistry* registry) {
  scores_ = CounterFor(registry, "knn.scores");
  candidates_ = HistogramFor(registry, "knn.candidates",
                             ExponentialBuckets(1.0, 2.0, 12));
}

std::vector<std::pair<size_t, double>> NearestQueriesScorer::Neighbors(
    size_t entry_idx) const {
  const std::vector<std::vector<double>>* matrix = nullptr;
  switch (metric_) {
    case SimilarityMetric::kSyntax:
      matrix = &sims_->syntax;
      break;
    case SimilarityMetric::kWitness:
      matrix = &sims_->witness;
      break;
    case SimilarityMetric::kRank:
      matrix = &sims_->rank;
      break;
  }
  std::vector<std::pair<size_t, double>> candidates;
  candidates.reserve(train_subset_.size());
  for (size_t t : train_subset_) {
    if (t == entry_idx) continue;
    candidates.emplace_back(t, (*matrix)[entry_idx][t]);
  }
  const size_t n = std::min(num_neighbors_, candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(n),
                    candidates.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  candidates.resize(n);
  return candidates;
}

ShapleyValues NearestQueriesScorer::Score(const Corpus& corpus,
                                          size_t entry_idx,
                                          size_t contrib_idx) {
  const TupleContribution& contrib =
      corpus.entries[entry_idx].contributions[contrib_idx];
  scores_.Inc();
  if (candidates_.enabled()) {
    // The candidate pool is every usable train entry, before the top-n cut —
    // the quantity the paper's KNN cost scales with.
    const bool self = std::find(train_subset_.begin(), train_subset_.end(),
                                entry_idx) != train_subset_.end();
    candidates_.Observe(
        static_cast<double>(train_subset_.size() - (self ? 1 : 0)));
  }
  const auto neighbors = Neighbors(entry_idx);

  ShapleyValues out;
  out.reserve(contrib.shapley.size());
  for (const auto& [f, gold] : contrib.shapley) {
    double sum = 0.0;
    for (const auto& [nbr, sim] : neighbors) {
      auto entry_it = fact_means_.find(nbr);
      if (entry_it == fact_means_.end()) continue;
      auto fact_it = entry_it->second.find(f);
      if (fact_it != entry_it->second.end()) sum += fact_it->second;
    }
    out[f] = neighbors.empty()
                 ? 0.0
                 : sum / static_cast<double>(neighbors.size());
  }
  return out;
}

std::unique_ptr<FactScorer> NearestQueriesScorer::Clone() const {
  return std::make_unique<NearestQueriesScorer>(*this);
}

std::string NearestQueriesScorer::name() const {
  return std::string("nearest-queries-") + SimilarityMetricName(metric_);
}

}  // namespace lshap
