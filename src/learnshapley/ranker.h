#ifndef LSHAP_LEARNSHAPLEY_RANKER_H_
#define LSHAP_LEARNSHAPLEY_RANKER_H_

#include <memory>
#include <string>

#include "common/budget.h"
#include "common/metrics.h"
#include "learnshapley/model.h"
#include "learnshapley/scorer.h"
#include "ml/tokenizer.h"

namespace lshap {

// Budget check site polled once per lineage fact in ScoreLineageBudgeted.
inline constexpr char kSiteRankScoreFact[] = "rank.score_fact";

// Which forward pass ScoreLineage runs.
enum class InferenceMode {
  kFloat = 0,      // exact float path (the differential oracle)
  kQuantized = 1,  // int8 SIMD path (DESIGN.md §12)
};

const char* InferenceModeName(InferenceMode mode);

// Opt-in inference settings. The float path stays the default; quantized
// mode derives an int8 model from the float weights on first use.
struct RankerConfig {
  InferenceMode mode = InferenceMode::kFloat;

  RankerConfig& WithMode(InferenceMode m) {
    mode = m;
    return *this;
  }
};

// The deployable LearnShapley artifact: a trained model plus its vocabulary.
// At inference it needs only the query, the output tuple and the lineage —
// no provenance — matching the paper's deployment contract.
//
// Scoring is const and scratch-free (per-thread workspaces live in
// thread-local storage), so a single ranker instance — e.g. the one inside
// a serving snapshot — is safely shareable across worker threads.
class LearnShapleyRanker : public FactScorer {
 public:
  LearnShapleyRanker(LearnShapleyModel model,
                     std::shared_ptr<const Vocab> vocab, size_t max_len,
                     float shapley_scale, std::string name);

  // Direct API for library users: scores an arbitrary (query, tuple,
  // lineage) triple against `db`. The (query, tuple) context is tokenized
  // and vocab-encoded once and reused across the whole lineage.
  ShapleyValues ScoreLineage(const Database& db, const Query& q,
                             const OutputTuple& t,
                             const std::vector<FactId>& lineage) const;

  // Deadline-aware variant: charges one work unit per lineage fact at
  // kSiteRankScoreFact, so a serving deadline interrupts a large lineage
  // between facts instead of after the whole forward-pass loop. Returns the
  // budget's trip status when interrupted — never a partially scored map.
  Result<ShapleyValues> ScoreLineageBudgeted(
      const Database& db, const Query& q, const OutputTuple& t,
      const std::vector<FactId>& lineage, ExecutionBudget& budget) const;

  // FactScorer interface (reads only the lineage keys).
  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override;
  std::unique_ptr<FactScorer> Clone() const override;
  std::string name() const override { return name_; }

  // Applies the inference settings. Switching to kQuantized quantizes the
  // current float weights unless a quantized model was already adopted
  // (e.g. from model_io). Not thread-safe against concurrent scoring —
  // configure before sharing, like set_metrics.
  void Configure(const RankerConfig& config);
  const RankerConfig& config() const { return config_; }

  // Installs a pre-built quantized model (deserialization path) and
  // switches to quantized mode. Clones share the instance.
  void AdoptQuantizedModel(std::shared_ptr<const QuantizedShapleyModel> q);
  const QuantizedShapleyModel* quantized_model() const {
    return quant_.get();
  }

  // Mutable access for training/IO. Mutating weights invalidates any
  // quantized model built from them; re-run Configure afterwards.
  LearnShapleyModel& model() { return model_; }
  const LearnShapleyModel& model() const { return model_; }
  const Vocab& vocab() const { return *vocab_; }
  size_t max_len() const { return max_len_; }
  float shapley_scale() const { return shapley_scale_; }

  // Observability opt-in: records a per-ScoreLineage latency histogram
  // (rank.score_seconds) and a scored-fact counter (rank.facts_scored).
  // Handles are plain values, so Clone() copies them and cloned rankers
  // keep reporting into the same registry; the handles' sharded cells
  // absorb contention when one shared instance is scored from many threads.
  void set_metrics(MetricsRegistry* registry);

 private:
  // One encoded sample through the configured forward pass, descaled.
  double PredictEncoded(const EncodedPair& input) const;

  LearnShapleyModel model_;
  std::shared_ptr<const QuantizedShapleyModel> quant_;
  RankerConfig config_;
  std::shared_ptr<const Vocab> vocab_;
  size_t max_len_;
  float shapley_scale_;
  std::string name_;
  Counter facts_scored_;
  Histogram score_seconds_;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_RANKER_H_
