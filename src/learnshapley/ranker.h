#ifndef LSHAP_LEARNSHAPLEY_RANKER_H_
#define LSHAP_LEARNSHAPLEY_RANKER_H_

#include <memory>
#include <string>

#include "common/budget.h"
#include "common/metrics.h"
#include "learnshapley/model.h"
#include "learnshapley/scorer.h"
#include "ml/tokenizer.h"

namespace lshap {

// Budget check site polled once per lineage fact in ScoreLineageBudgeted.
inline constexpr char kSiteRankScoreFact[] = "rank.score_fact";

// The deployable LearnShapley artifact: a trained model plus its vocabulary.
// At inference it needs only the query, the output tuple and the lineage —
// no provenance — matching the paper's deployment contract.
class LearnShapleyRanker : public FactScorer {
 public:
  LearnShapleyRanker(LearnShapleyModel model,
                     std::shared_ptr<const Vocab> vocab, size_t max_len,
                     float shapley_scale, std::string name);

  // Direct API for library users: scores an arbitrary (query, tuple,
  // lineage) triple against `db`.
  ShapleyValues ScoreLineage(const Database& db, const Query& q,
                             const OutputTuple& t,
                             const std::vector<FactId>& lineage);

  // Deadline-aware variant: charges one work unit per lineage fact at
  // kSiteRankScoreFact, so a serving deadline interrupts a large lineage
  // between facts instead of after the whole forward-pass loop. Returns the
  // budget's trip status when interrupted — never a partially scored map.
  Result<ShapleyValues> ScoreLineageBudgeted(const Database& db,
                                             const Query& q,
                                             const OutputTuple& t,
                                             const std::vector<FactId>& lineage,
                                             ExecutionBudget& budget);

  // FactScorer interface (reads only the lineage keys).
  ShapleyValues Score(const Corpus& corpus, size_t entry_idx,
                      size_t contrib_idx) override;
  std::unique_ptr<FactScorer> Clone() const override;
  std::string name() const override { return name_; }

  LearnShapleyModel& model() { return model_; }
  const Vocab& vocab() const { return *vocab_; }
  size_t max_len() const { return max_len_; }

  // Observability opt-in: records a per-ScoreLineage latency histogram
  // (rank.score_seconds) and a scored-fact counter (rank.facts_scored).
  // Handles are plain values, so Clone() copies them and cloned rankers
  // keep reporting into the same registry (the evaluation harness scores
  // per-worker clones in parallel; the shards absorb the contention).
  void set_metrics(MetricsRegistry* registry);

 private:
  LearnShapleyModel model_;
  std::shared_ptr<const Vocab> vocab_;
  size_t max_len_;
  float shapley_scale_;
  std::string name_;
  Counter facts_scored_;
  Histogram score_seconds_;
};

}  // namespace lshap

#endif  // LSHAP_LEARNSHAPLEY_RANKER_H_
