#include "query/generator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace lshap {

QueryGenerator::QueryGenerator(const Database* db, SchemaGraph graph,
                               QueryGenConfig config, uint64_t seed)
    : db_(db), graph_(std::move(graph)), config_(config), rng_(seed) {
  LSHAP_CHECK(db != nullptr);
  LSHAP_CHECK(!graph_.tables.empty());
  LSHAP_CHECK(config_.string_order_prob >= 0.0);
  LSHAP_CHECK(config_.string_prefix_prob >= 0.0);
  LSHAP_CHECK(config_.string_order_prob + config_.string_prefix_prob <= 1.0);
  LSHAP_CHECK(config_.null_prob >= 0.0 && config_.null_prob <= 1.0);
}

Value QueryGenerator::SampleLiteral(const std::string& table,
                                    size_t column_index) {
  const Table* t = db_->FindTable(table).value();
  LSHAP_CHECK_GT(t->num_rows(), 0u);
  const size_t row = rng_.NextBounded(t->num_rows());
  return t->GetValue(row, column_index);
}

ColumnRef QueryGenerator::RandomColumn(const std::vector<std::string>& tables) {
  const std::string& table = tables[rng_.NextBounded(tables.size())];
  const Table* t = db_->FindTable(table).value();
  const size_t col = rng_.NextBounded(t->schema().num_columns());
  return {table, t->schema().columns()[col].name};
}

Selection QueryGenerator::RandomSelection(const std::string& table) {
  const Table* t = db_->FindTable(table).value();
  const size_t col = rng_.NextBounded(t->schema().num_columns());
  const Column& column = t->schema().columns()[col];
  Selection sel;
  sel.column = {table, column.name};
  // Guarded draw (see QueryGenConfig::null_prob): with the default of 0
  // this branch consumes nothing from the RNG stream.
  if (config_.null_prob > 0.0 && rng_.NextDouble() < config_.null_prob) {
    sel.op = CompareOp::kEq;
    sel.literal = Value::Null();
    return sel;
  }
  Value sample = SampleLiteral(table, col);
  switch (column.type) {
    case ColumnType::kInt:
    case ColumnType::kDouble: {
      // Equality on numeric keys tends to be too selective; mix in ranges.
      const double r = rng_.NextDouble();
      if (r < 0.4) {
        sel.op = CompareOp::kEq;
      } else if (r < 0.7) {
        sel.op = CompareOp::kGt;
      } else {
        sel.op = CompareOp::kLt;
      }
      sel.literal = sample;
      break;
    }
    case ColumnType::kString: {
      if (!sample.is_string() || sample.AsString().empty()) {
        sel.op = CompareOp::kEq;
        sel.literal = sample;
        break;
      }
      // One draw splits [0,1) into order | equality | prefix bands; with
      // the default string_order_prob of 0 this consumes exactly the draws
      // the pre-PR-4 generator did, keeping historical logs bit-for-bit.
      const double r = rng_.NextDouble();
      if (r < config_.string_order_prob) {
        static constexpr CompareOp kOrderOps[] = {
            CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
        sel.op = kOrderOps[rng_.NextBounded(4)];
        sel.literal = sample;
      } else if (r < 1.0 - config_.string_prefix_prob) {
        sel.op = CompareOp::kEq;
        sel.literal = sample;
      } else {
        sel.op = CompareOp::kStartsWith;
        sel.literal = Value(sample.AsString().substr(0, 1));
      }
      break;
    }
  }
  return sel;
}

SpjBlock QueryGenerator::GenerateBlock() {
  SpjBlock block;
  const int target_tables = static_cast<int>(
      rng_.NextInt(config_.min_tables, config_.max_tables));

  // Grow a connected set of tables along join edges, starting from a random
  // table that has at least one edge (or any table if target is 1).
  std::set<std::string> used;
  std::string start = graph_.tables[rng_.NextBounded(graph_.tables.size())];
  used.insert(start);
  block.tables.push_back(start);

  while (static_cast<int>(used.size()) < target_tables) {
    // Collect frontier edges: one endpoint in `used`, the other not.
    std::vector<const JoinEdge*> frontier;
    for (const auto& e : graph_.edges) {
      const bool a_in = used.count(e.a.table) > 0;
      const bool b_in = used.count(e.b.table) > 0;
      if (a_in != b_in) frontier.push_back(&e);
    }
    if (frontier.empty()) break;  // start table may be isolated
    const JoinEdge* e = frontier[rng_.NextBounded(frontier.size())];
    const std::string& new_table =
        used.count(e->a.table) > 0 ? e->b.table : e->a.table;
    used.insert(new_table);
    block.tables.push_back(new_table);
    JoinPred pred{e->a, e->b};
    pred.Normalize();
    block.joins.push_back(pred);
  }

  AddSelections(block);

  const int num_proj = static_cast<int>(
      rng_.NextInt(config_.min_projections, config_.max_projections));
  std::set<ColumnRef> proj_set;
  for (int i = 0; i < num_proj; ++i) {
    proj_set.insert(RandomColumn(block.tables));
  }
  block.projections.assign(proj_set.begin(), proj_set.end());
  return block;
}

void QueryGenerator::AddSelections(SpjBlock& block) {
  for (const auto& table : block.tables) {
    if (rng_.NextDouble() < config_.selection_prob) {
      block.selections.push_back(RandomSelection(table));
    }
  }
}

Query QueryGenerator::Generate(const std::string& id) {
  Query q;
  q.id = id;
  q.blocks.push_back(GenerateBlock());
  if (rng_.NextDouble() < config_.union_prob) {
    // A union branch with the same projection but re-sampled filters, the
    // common shape of hand-written SPJU queries.
    SpjBlock second = q.blocks[0];
    second.selections.clear();
    AddSelections(second);
    if (second.ToSql() != q.blocks[0].ToSql()) {
      q.blocks.push_back(std::move(second));
    }
  }
  return q;
}

Query QueryGenerator::Mutate(const Query& base, const std::string& id) {
  Query q = base;
  q.id = id;
  SpjBlock& block = q.blocks[rng_.NextBounded(q.blocks.size())];
  const int kind = static_cast<int>(rng_.NextBounded(4));
  switch (kind) {
    case 0: {  // Change the projection (rank-similar, witness-dissimilar).
      std::set<ColumnRef> proj_set;
      const size_t n = std::max<size_t>(1, block.projections.size());
      for (size_t i = 0; i < n; ++i) {
        proj_set.insert(RandomColumn(block.tables));
      }
      block.projections.assign(proj_set.begin(), proj_set.end());
      break;
    }
    case 1: {  // Re-sample a selection literal.
      if (!block.selections.empty()) {
        Selection& sel =
            block.selections[rng_.NextBounded(block.selections.size())];
        sel = RandomSelection(sel.column.table);
      } else {
        block.selections.push_back(
            RandomSelection(block.tables[rng_.NextBounded(
                block.tables.size())]));
      }
      break;
    }
    case 2: {  // Add a selection.
      block.selections.push_back(RandomSelection(
          block.tables[rng_.NextBounded(block.tables.size())]));
      break;
    }
    case 3: {  // Drop a selection.
      if (!block.selections.empty()) {
        const size_t i = rng_.NextBounded(block.selections.size());
        block.selections.erase(block.selections.begin() +
                               static_cast<ptrdiff_t>(i));
      } else {
        block.selections.push_back(RandomSelection(
            block.tables[rng_.NextBounded(block.tables.size())]));
      }
      break;
    }
  }
  return q;
}

std::vector<Query> QueryGenerator::GenerateLog(size_t num_base,
                                               const std::string& prefix) {
  std::vector<Query> log;
  std::unordered_set<std::string> seen_sql;
  size_t counter = 0;
  auto add = [&](Query q) {
    const std::string sql = q.ToSql();
    if (seen_sql.insert(sql).second) {
      log.push_back(std::move(q));
      return true;
    }
    return false;
  };
  for (size_t b = 0; b < num_base; ++b) {
    Query base = Generate(prefix + "_q" + std::to_string(counter++));
    const bool added = add(base);
    if (!added) continue;
    const int variants = static_cast<int>(
        rng_.NextInt(config_.min_variants, config_.max_variants));
    for (int v = 0; v < variants; ++v) {
      Query mutated =
          Mutate(log.back(), prefix + "_q" + std::to_string(counter));
      if (add(std::move(mutated))) ++counter;
    }
  }
  return log;
}

}  // namespace lshap
