#ifndef LSHAP_QUERY_PARSER_H_
#define LSHAP_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "relational/database.h"

namespace lshap {

// Parses the SPJU SQL dialect this engine evaluates:
//
//   SELECT DISTINCT t1.c1 [, t2.c2 ...]
//   FROM t1 [, t2 ...]
//   [WHERE cond [AND cond ...]]
//   [UNION <another select>]
//
// where each cond is either an equi-join `ta.ca = tb.cb` or a constant
// predicate `t.c OP literal` with OP in {=, <>, !=, <, <=, >, >=, LIKE}.
// LIKE supports prefix patterns only ('abc%'). Literals are integers,
// floating-point numbers, or single-quoted strings ('' escapes a quote).
//
// The database is used to resolve whether `x = y` compares two columns or a
// column with a literal, and to type-check column references. Keywords are
// case-insensitive; identifiers are case-sensitive.
//
// Round-trip guarantee: ParseQuery(db, q.ToSql()) reproduces `q` for every
// query the generator emits.
Result<Query> ParseQuery(const Database& db, const std::string& sql,
                         const std::string& id = "parsed");

}  // namespace lshap

#endif  // LSHAP_QUERY_PARSER_H_
