#ifndef LSHAP_QUERY_AST_H_
#define LSHAP_QUERY_AST_H_

#include <set>
#include <string>
#include <vector>

#include "relational/value.h"

namespace lshap {

// A reference to a column of a named table, e.g. movies.year.
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.table == b.table && a.column == b.column;
  }
  friend bool operator<(const ColumnRef& a, const ColumnRef& b) {
    return a.table != b.table ? a.table < b.table : a.column < b.column;
  }
};

// Comparison operators allowed in selection predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kStartsWith };

const char* CompareOpSql(CompareOp op);

// A selection predicate: column OP literal.
struct Selection {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  std::string ToSql() const;
};

// An equi-join predicate: left.column = right.column. Stored normalized
// (lexicographically smaller ColumnRef first) so that syntactically flipped
// joins compare equal in operations(q).
struct JoinPred {
  ColumnRef left;
  ColumnRef right;

  void Normalize();
  std::string ToSql() const;
};

// One Select-Project-Join block. All paper queries use SELECT DISTINCT.
struct SpjBlock {
  std::vector<std::string> tables;       // FROM clause
  std::vector<JoinPred> joins;           // equi-join conditions
  std::vector<Selection> selections;     // constant predicates
  std::vector<ColumnRef> projections;    // SELECT list

  std::string ToSql() const;
};

// An SPJU query: a union of SPJ blocks (set semantics). A single block is
// the common case.
struct Query {
  std::string id;  // stable identifier within a query log, e.g. "imdb_q017"
  std::vector<SpjBlock> blocks;

  std::string ToSql() const;

  // Number of distinct tables referenced (the paper's measure of query
  // complexity in Figure 9b).
  size_t NumTables() const;
};

// The operation-set representation from Section 2.3, used by syntax-based
// similarity: each projection, selection and join becomes one canonical
// string. Union queries contribute the union of their blocks' operations.
std::set<std::string> Operations(const Query& q);

}  // namespace lshap

#endif  // LSHAP_QUERY_AST_H_
