#include "query/ast.h"

#include <algorithm>

#include "common/strings.h"

namespace lshap {

const char* CompareOpSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kStartsWith:
      return "LIKE";
  }
  return "?";
}

std::string Selection::ToSql() const {
  if (op == CompareOp::kStartsWith) {
    return column.ToString() + " LIKE '" + literal.ToString() + "%'";
  }
  return column.ToString() + " " + CompareOpSql(op) + " " +
         literal.ToSqlLiteral();
}

void JoinPred::Normalize() {
  if (right < left) std::swap(left, right);
}

std::string JoinPred::ToSql() const {
  return left.ToString() + " = " + right.ToString();
}

std::string SpjBlock::ToSql() const {
  std::vector<std::string> select_items;
  select_items.reserve(projections.size());
  for (const auto& p : projections) select_items.push_back(p.ToString());

  std::vector<std::string> conds;
  conds.reserve(joins.size() + selections.size());
  for (const auto& j : joins) conds.push_back(j.ToSql());
  for (const auto& s : selections) conds.push_back(s.ToSql());

  std::string sql = "SELECT DISTINCT " + Join(select_items, ", ") + " FROM " +
                    Join(tables, ", ");
  if (!conds.empty()) sql += " WHERE " + Join(conds, " AND ");
  return sql;
}

std::string Query::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(blocks.size());
  for (const auto& b : blocks) parts.push_back(b.ToSql());
  return Join(parts, " UNION ");
}

size_t Query::NumTables() const {
  std::set<std::string> tables;
  for (const auto& b : blocks) {
    tables.insert(b.tables.begin(), b.tables.end());
  }
  return tables.size();
}

std::set<std::string> Operations(const Query& q) {
  std::set<std::string> ops;
  for (const auto& b : q.blocks) {
    for (const auto& p : b.projections) {
      ops.insert("PROJ " + p.ToString());
    }
    for (const auto& s : b.selections) {
      ops.insert("SEL " + s.column.ToString() + " " + CompareOpSql(s.op) +
                 " " + s.literal.ToString());
    }
    for (JoinPred j : b.joins) {
      j.Normalize();
      ops.insert("JOIN " + j.left.ToString() + "=" + j.right.ToString());
    }
  }
  return ops;
}

}  // namespace lshap
