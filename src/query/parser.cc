#include "query/parser.h"

#include <cctype>
#include <vector>

#include "common/strings.h"

namespace lshap {

namespace {

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // identifiers keep case; strings are unquoted content
};

// Lexer for the SPJU SQL dialect. Keywords stay kIdent; the parser matches
// them case-insensitively.
Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      out.push_back({TokKind::kIdent, sql.substr(start, i - start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      out.push_back({TokKind::kNumber, sql.substr(start, i - start)});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            content += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        content += sql[i++];
      }
      if (!closed) return Status::InvalidArgument("unterminated string");
      out.push_back({TokKind::kString, std::move(content)});
      continue;
    }
    // Multi-char symbols first.
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        out.push_back({TokKind::kSymbol, two});
        i += 2;
        continue;
      }
    }
    if (c == '=' || c == '<' || c == '>' || c == '.' || c == ',' ||
        c == '(' || c == ')' || c == '*' || c == '%') {
      out.push_back({TokKind::kSymbol, std::string(1, c)});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  out.push_back({TokKind::kEnd, ""});
  return out;
}

class Parser {
 public:
  Parser(const Database& db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  Result<Query> Parse(const std::string& id) {
    Query q;
    q.id = id;
    for (;;) {
      auto block = ParseBlock();
      if (!block.ok()) return block.status();
      q.blocks.push_back(std::move(*block));
      if (!AcceptKeyword("UNION")) break;
    }
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     Peek().text + "'");
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && ToLower(Peek().text) ==
                                                 ToLower(kw);
  }
  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::Ok();
    return Status::InvalidArgument(std::string("expected ") + kw + " near '" +
                                   Peek().text + "'");
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected table name, got '" +
                                     Peek().text + "'");
    }
    ColumnRef ref;
    ref.table = Advance().text;
    if (!AcceptSymbol(".")) {
      return Status::InvalidArgument(
          "expected qualified column reference 'table.column' after '" +
          ref.table + "'");
    }
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected column name after '" +
                                     ref.table + ".'");
    }
    ref.column = Advance().text;
    auto table = db_.FindTable(ref.table);
    if (!table.ok()) return table.status();
    auto col = (*table)->schema().ColumnIndex(ref.column);
    if (!col.ok()) return col.status();
    return ref;
  }

  Result<SpjBlock> ParseBlock() {
    SpjBlock block;
    Status s = ExpectKeyword("SELECT");
    if (!s.ok()) return s;
    (void)AcceptKeyword("DISTINCT");
    // Projections.
    do {
      auto ref = ParseColumnRef();
      if (!ref.ok()) return ref.status();
      block.projections.push_back(std::move(*ref));
    } while (AcceptSymbol(","));

    s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    do {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected table name in FROM");
      }
      const std::string table = Advance().text;
      auto found = db_.FindTable(table);
      if (!found.ok()) return found.status();
      block.tables.push_back(table);
    } while (AcceptSymbol(","));

    if (AcceptKeyword("WHERE")) {
      do {
        Status cond = ParseCondition(block);
        if (!cond.ok()) return cond;
      } while (AcceptKeyword("AND"));
    }
    return block;
  }

  Status ParseCondition(SpjBlock& block) {
    auto lhs = ParseColumnRef();
    if (!lhs.ok()) return lhs.status();

    CompareOp op;
    if (AcceptKeyword("LIKE")) {
      if (Peek().kind != TokKind::kString) {
        return Status::InvalidArgument("LIKE requires a string pattern");
      }
      std::string pattern = Advance().text;
      if (pattern.empty() || pattern.back() != '%') {
        return Status::InvalidArgument(
            "only prefix LIKE patterns ('abc%') are supported");
      }
      pattern.pop_back();
      if (pattern.find('%') != std::string::npos) {
        return Status::InvalidArgument(
            "only prefix LIKE patterns ('abc%') are supported");
      }
      block.selections.push_back(
          {std::move(*lhs), CompareOp::kStartsWith, Value(pattern)});
      return Status::Ok();
    }
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Status::InvalidArgument("expected comparison operator near '" +
                                     Peek().text + "'");
    }

    // Column–column comparison (only equi-joins are in the fragment).
    if (Peek().kind == TokKind::kIdent && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokKind::kSymbol &&
        tokens_[pos_ + 1].text == ".") {
      if (op != CompareOp::kEq) {
        return Status::InvalidArgument(
            "column-column comparisons must be equi-joins");
      }
      auto rhs = ParseColumnRef();
      if (!rhs.ok()) return rhs.status();
      JoinPred join{std::move(*lhs), std::move(*rhs)};
      join.Normalize();
      block.joins.push_back(std::move(join));
      return Status::Ok();
    }

    // Literal comparison. NULL is the literal Value::Null() — such a
    // predicate is unknown for every row (evaluator compiles it to kNever),
    // but it must round-trip through ToSql()/ParseQuery like any literal
    // the generator can emit under null_prob.
    Value literal;
    if (AcceptKeyword("NULL")) {
      literal = Value::Null();
    } else if (Peek().kind == TokKind::kString) {
      literal = Value(Advance().text);
    } else if (Peek().kind == TokKind::kNumber) {
      const std::string text = Advance().text;
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        literal = Value(std::stod(text));
      } else {
        literal = Value(static_cast<int64_t>(std::stoll(text)));
      }
    } else {
      return Status::InvalidArgument("expected literal near '" + Peek().text +
                                     "'");
    }
    block.selections.push_back({std::move(*lhs), op, std::move(literal)});
    return Status::Ok();
  }

  const Database& db_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const Database& db, const std::string& sql,
                         const std::string& id) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(db, std::move(*tokens));
  return parser.Parse(id);
}

}  // namespace lshap
