#ifndef LSHAP_QUERY_GENERATOR_H_
#define LSHAP_QUERY_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/ast.h"
#include "relational/database.h"

namespace lshap {

// A possible equi-join between two columns of the schema (typically a
// foreign-key edge). The generator only emits joins along these edges.
struct JoinEdge {
  ColumnRef a;
  ColumnRef b;
};

// The join graph of a database schema: which tables exist and how they can
// be connected. Produced by the dataset generators alongside the data.
struct SchemaGraph {
  std::vector<std::string> tables;
  std::vector<JoinEdge> edges;
};

// Tuning knobs for the query-log generator.
struct QueryGenConfig {
  // Number of tables an SPJ block joins, inclusive bounds.
  int min_tables = 1;
  int max_tables = 5;
  // Probability that a given table in the block receives a selection.
  double selection_prob = 0.6;
  // How a selection on a STRING column (with a usable sampled literal)
  // splits between predicate classes: with probability `string_order_prob`
  // it is an ordered comparison (<, <=, >, >= uniformly) against the
  // sampled value, with probability `string_prefix_prob` a one-character
  // prefix test (LIKE 'x%'), and equality otherwise. Must sum to <= 1.
  // Defaults reproduce the pre-PR-4 generator stream bit-for-bit (no order
  // predicates; the prefix share was a hard-coded 0.3) — raising
  // `string_order_prob` is the opt-in that makes id-space range predicates
  // appear in generated corpora.
  double string_order_prob = 0.0;
  double string_prefix_prob = 0.3;
  // Probability a query is a union of two SPJ blocks.
  double union_prob = 0.15;
  // Probability that a generated selection compares against the literal
  // NULL instead of a sampled column value (such a predicate is unknown for
  // every row — SQL three-valued semantics — so the block returns nothing;
  // the workload value is exercising the null paths, not the results). The
  // draw is guarded: the default of 0 consumes NO RNG draws, so historical
  // logs replay bit-for-bit (pinned by the golden fingerprints in
  // query_test / null_semantics_test).
  double null_prob = 0.0;
  // Number of projected columns, inclusive bounds.
  int min_projections = 1;
  int max_projections = 2;
  // How many mutated variants to derive per base query (min..max). Variants
  // model an analyst iterating on a query and give the log its similarity
  // structure (Figure 7 heatmaps).
  int min_variants = 1;
  int max_variants = 3;
};

// Generates random SPJU queries (and mutated families thereof) over a
// database's join graph, sampling selection literals from actual column
// values so queries tend to have non-empty results.
class QueryGenerator {
 public:
  QueryGenerator(const Database* db, SchemaGraph graph, QueryGenConfig config,
                 uint64_t seed);

  // One fresh random query. `id` becomes Query::id.
  Query Generate(const std::string& id);

  // A structural mutation of `base` (projection change, literal change,
  // selection add/drop). Used to create query families.
  Query Mutate(const Query& base, const std::string& id);

  // A full query log: `num_base` random queries, each followed by a random
  // number of mutated variants, deduplicated by SQL text.
  std::vector<Query> GenerateLog(size_t num_base, const std::string& prefix);

 private:
  SpjBlock GenerateBlock();
  void AddSelections(SpjBlock& block);
  Selection RandomSelection(const std::string& table);
  Value SampleLiteral(const std::string& table, size_t column_index);
  ColumnRef RandomColumn(const std::vector<std::string>& tables);

  const Database* db_;
  SchemaGraph graph_;
  QueryGenConfig config_;
  Rng rng_;
};

}  // namespace lshap

#endif  // LSHAP_QUERY_GENERATOR_H_
