#ifndef LSHAP_ML_ENCODER_H_
#define LSHAP_ML_ENCODER_H_

#include <vector>

#include "ml/layers.h"

namespace lshap {

// Architecture hyper-parameters of the MiniBERT encoder. The two named
// presets mirror the paper's BERT-base / BERT-large distinction at a scale
// trainable from scratch on a laptop (see DESIGN.md substitution table).
struct EncoderConfig {
  size_t vocab_size = 0;     // set from the tokenizer
  size_t max_len = 64;
  size_t dim = 32;
  size_t num_heads = 4;
  size_t num_layers = 2;
  size_t ffn_dim = 64;
  uint64_t seed = 1234;

  static EncoderConfig Base(size_t vocab_size);
  static EncoderConfig Large(size_t vocab_size);
  // The randomly initialized small-transformer ablation of Section 5.5.
  static EncoderConfig SmallAblation(size_t vocab_size);
};

// A BERT-style bidirectional transformer encoder: learned token + position
// embeddings, pre-LN encoder blocks, final LayerNorm. The [CLS] position
// (row 0) is the sequence representation for regression heads.
class TransformerEncoder {
 public:
  TransformerEncoder() = default;
  explicit TransformerEncoder(const EncoderConfig& config);

  // ids.size() must be ≤ max_len; mask[i] marks non-pad positions.
  Tensor Forward(const std::vector<int>& ids, const std::vector<bool>& mask);
  void Backward(const Tensor& d_hidden);

  // Scratch-free inference twin of Forward(): const, bit-identical output,
  // all intermediates from the caller's arena. Makes one encoder instance
  // shareable across threads (each thread brings its own arena).
  void ForwardInference(const std::vector<int>& ids,
                        const std::vector<bool>& mask, InferenceArena& arena,
                        Tensor& out) const;

  std::vector<Param*> Params();

  const EncoderConfig& config() const { return config_; }
  const Embedding& tok_emb() const { return tok_emb_; }
  const Embedding& pos_emb() const { return pos_emb_; }
  const std::vector<TransformerLayer>& layers() const { return layers_; }
  const LayerNorm& final_ln() const { return final_ln_; }

 private:
  EncoderConfig config_;
  Embedding tok_emb_;
  Embedding pos_emb_;
  std::vector<TransformerLayer> layers_;
  LayerNorm final_ln_;
};

}  // namespace lshap

#endif  // LSHAP_ML_ENCODER_H_
