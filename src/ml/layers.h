#ifndef LSHAP_ML_LAYERS_H_
#define LSHAP_ML_LAYERS_H_

#include <deque>
#include <vector>

#include "ml/tensor.h"

namespace lshap {

// A trainable weight with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  void Init(Tensor v) {
    grad = Tensor::Zeros(v.rows(), v.cols());
    value = std::move(v);
  }
  void ZeroGrad() { grad.Zero(); }
};

// Caller-provided activation workspace for the const inference forwards.
// Get() hands out zeroed, reusable tensor slots; Reset() recycles them all
// without freeing. Slots live in a deque so references stay valid as more
// are acquired. One arena per thread — the layers themselves stay untouched,
// which is what makes a single snapshot ranker shareable across workers.
class InferenceArena {
 public:
  Tensor& Get(size_t rows, size_t cols) {
    if (next_ == slots_.size()) slots_.emplace_back();
    Tensor& t = slots_[next_++];
    t.Resize(rows, cols);
    return t;
  }
  void Reset() { next_ = 0; }

 private:
  std::deque<Tensor> slots_;
  size_t next_ = 0;
};

// Affine map y = x·W + b. Caches x for the backward pass, so one instance
// handles one forward/backward pair at a time (sequential SGD over samples).
class Linear {
 public:
  Linear() = default;
  Linear(size_t in, size_t out, Rng& rng);

  Tensor Forward(const Tensor& x);
  // Accumulates parameter grads; returns dL/dx.
  Tensor Backward(const Tensor& dy);

  // Scratch-free inference: writes y = x·W + b into the caller's output
  // without touching the backward cache. Bit-identical to Forward().
  void ForwardInference(const Tensor& x, Tensor& y) const;

  void CollectParams(std::vector<Param*>& out);

  const Param& w() const { return w_; }
  const Param& b() const { return b_; }

 private:
  Param w_;  // in×out
  Param b_;  // 1×out
  Tensor x_;
};

// Learned token/position embedding lookup.
class Embedding {
 public:
  Embedding() = default;
  Embedding(size_t vocab, size_t dim, Rng& rng);

  Tensor Forward(const std::vector<int>& ids);
  void Backward(const Tensor& dy);

  void CollectParams(std::vector<Param*>& out);

  size_t vocab_size() const { return table_.value.rows(); }
  const Tensor& table() const { return table_.value; }

 private:
  Param table_;  // vocab×dim
  std::vector<int> ids_;
};

// Layer normalization over the feature dimension with learned gain/bias.
class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(size_t dim);

  Tensor Forward(const Tensor& x);
  Tensor Backward(const Tensor& dy);

  // Scratch-free inference twin of Forward() (no xhat/rstd caching).
  void ForwardInference(const Tensor& x, Tensor& y) const;

  void CollectParams(std::vector<Param*>& out);

  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }

 private:
  Param gamma_;  // 1×dim
  Param beta_;   // 1×dim
  Tensor xhat_;
  std::vector<float> rstd_;
};

// GELU activation (tanh approximation) with cached input.
class Gelu {
 public:
  Tensor Forward(const Tensor& x);
  Tensor Backward(const Tensor& dy);

  // Scratch-free inference twin of Forward().
  static void ForwardInference(const Tensor& x, Tensor& y);

 private:
  Tensor x_;
};

// Multi-head scaled-dot-product self-attention with padding mask.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention() = default;
  MultiHeadSelfAttention(size_t dim, size_t num_heads, Rng& rng);

  // mask[i] == true means position i is a real token; padded positions are
  // excluded as keys (they still produce outputs which downstream ignores).
  Tensor Forward(const Tensor& x, const std::vector<bool>& mask);
  Tensor Backward(const Tensor& dy);

  // Scratch-free inference twin of Forward(); intermediate activations come
  // from `arena`, the result lands in `out`.
  void ForwardInference(const Tensor& x, const std::vector<bool>& mask,
                        InferenceArena& arena, Tensor& out) const;

  void CollectParams(std::vector<Param*>& out);

  size_t num_heads() const { return num_heads_; }
  size_t head_dim() const { return head_dim_; }
  const Linear& q_proj() const { return q_proj_; }
  const Linear& k_proj() const { return k_proj_; }
  const Linear& v_proj() const { return v_proj_; }
  const Linear& out_proj() const { return out_proj_; }

 private:
  size_t dim_ = 0;
  size_t num_heads_ = 0;
  size_t head_dim_ = 0;
  Linear q_proj_, k_proj_, v_proj_, out_proj_;

  // Forward caches.
  Tensor q_, k_, v_;
  std::vector<Tensor> attn_;  // per-head n×n softmax weights
  std::vector<bool> mask_;
};

// One pre-LayerNorm transformer encoder block:
//   x ← x + Attn(LN1(x));  x ← x + FFN(LN2(x)).
class TransformerLayer {
 public:
  TransformerLayer() = default;
  TransformerLayer(size_t dim, size_t num_heads, size_t ffn_dim, Rng& rng);

  Tensor Forward(const Tensor& x, const std::vector<bool>& mask);
  Tensor Backward(const Tensor& dy);

  // Scratch-free inference twin of Forward().
  void ForwardInference(const Tensor& x, const std::vector<bool>& mask,
                        InferenceArena& arena, Tensor& out) const;

  void CollectParams(std::vector<Param*>& out);

  const LayerNorm& ln1() const { return ln1_; }
  const LayerNorm& ln2() const { return ln2_; }
  const MultiHeadSelfAttention& attn() const { return attn_; }
  const Linear& ffn1() const { return ffn1_; }
  const Linear& ffn2() const { return ffn2_; }

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadSelfAttention attn_;
  Linear ffn1_, ffn2_;
  Gelu gelu_;
};

}  // namespace lshap

#endif  // LSHAP_ML_LAYERS_H_
