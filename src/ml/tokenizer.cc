#include "ml/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace lshap {

std::vector<std::string> TokenizeText(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      current += c;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      flush();
      tokens.push_back(std::string(1, c));
    }
  }
  flush();
  return tokens;
}

Vocab::Vocab() {
  for (const char* special : {"[PAD]", "[CLS]", "[SEP]", "[UNK]", "[MASK]"}) {
    token_to_id_.emplace(special, static_cast<int>(id_to_token_.size()));
    id_to_token_.emplace_back(special);
  }
}

void Vocab::AddTokens(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    auto [it, inserted] =
        token_to_id_.emplace(t, static_cast<int>(id_to_token_.size()));
    if (inserted) id_to_token_.push_back(t);
  }
}

int Vocab::Encode(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

std::vector<int> EncodeTokens(const Vocab& vocab,
                              const std::vector<std::string>& tokens) {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(vocab.Encode(t));
  return ids;
}

EncodedPair AssembleEncodedSegments(
    const std::vector<const std::vector<int>*>& segments, size_t max_len) {
  LSHAP_CHECK(!segments.empty());
  // Budget: [CLS] + per-segment trailing [SEP]-like separators. We spend
  // 1 + num_segments special positions and split the rest proportionally to
  // segment length (each segment gets at least one token if non-empty).
  const size_t specials = 1 + segments.size() - 1;
  LSHAP_CHECK_GE(max_len, specials);
  size_t budget = max_len - specials;

  size_t total = 0;
  for (const auto* s : segments) total += s->size();
  std::vector<size_t> take(segments.size());
  if (total <= budget) {
    for (size_t i = 0; i < segments.size(); ++i) take[i] = segments[i]->size();
  } else {
    // Shortest-segment-first allocation: short segments (the output tuple
    // and the fact, whose tokens are the most discriminative) are kept
    // whole; only the longest segments (typically the SQL text) get
    // truncated. Processing in ascending length order with an equal-share
    // cap achieves this: each segment takes min(len, remaining / left).
    // When budget < #segments the naive share rounds to zero, which used to
    // hand the entire budget to the longest segment; floor the share at one
    // token (capped by what actually remains) so short segments — served
    // first — still get their tokens at any max_len.
    std::vector<size_t> order(segments.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return segments[a]->size() < segments[b]->size();
    });
    size_t remaining = budget;
    size_t left = segments.size();
    for (size_t i : order) {
      const size_t share =
          std::min(remaining, std::max<size_t>(1, remaining / left));
      take[i] = std::min(segments[i]->size(), share);
      remaining -= take[i];
      --left;
    }
  }

  EncodedPair out;
  out.ids.push_back(Vocab::kCls);
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::vector<int>& seg = *segments[i];
    out.ids.insert(out.ids.end(), seg.begin(), seg.begin() + take[i]);
    if (i + 1 < segments.size()) out.ids.push_back(Vocab::kSep);
  }
  out.mask.assign(out.ids.size(), true);
  return out;
}

EncodedPair EncodeSegments(
    const Vocab& vocab,
    const std::vector<std::vector<std::string>>& segments, size_t max_len) {
  std::vector<std::vector<int>> encoded;
  encoded.reserve(segments.size());
  for (const auto& s : segments) encoded.push_back(EncodeTokens(vocab, s));
  std::vector<const std::vector<int>*> ptrs;
  ptrs.reserve(encoded.size());
  for (const auto& e : encoded) ptrs.push_back(&e);
  return AssembleEncodedSegments(ptrs, max_len);
}

}  // namespace lshap
