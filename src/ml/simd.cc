#include "ml/simd.h"

// This translation unit must be built with -ffp-contract=off (set in
// CMakeLists.txt): the scalar fallbacks are bit-equal to the AVX2 kernels
// only if the compiler does not fuse their a*b+c sequences into FMAs.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

#if !defined(LSHAP_NO_AVX2) && (defined(__x86_64__) || defined(__i386__))
#define LSHAP_AVX2_COMPILED 1
#include <immintrin.h>
#endif

namespace lshap {

namespace {

constexpr float kLog2e = 1.442695040888963407f;
constexpr float kLn2Hi = 0.693359375f;          // high part of ln 2
constexpr float kLn2Lo = -2.12194440e-4f;       // ln 2 - kLn2Hi
constexpr float kExpLoCut = -87.0f;             // below: exact zero
constexpr float kExpHiCut = 88.0f;              // above: clamp
constexpr float kGeluC = 0.7978845608028654f;   // sqrt(2/pi)
constexpr float kMaskedScore = -1e30f;

// ------------------------------------------------------------ shared bits

// 8-lane reduction trees shared verbatim by both variants (the AVX2 code
// stores its vector accumulator to an array and runs these), so reduction
// order can never diverge.
float ReduceMaxLanes(const float* l) {
  float p0 = std::max(l[0], l[4]);
  float p1 = std::max(l[1], l[5]);
  float p2 = std::max(l[2], l[6]);
  float p3 = std::max(l[3], l[7]);
  return std::max(std::max(p0, p2), std::max(p1, p3));
}

float ReduceSumLanes(const float* l) {
  const float p0 = l[0] + l[4];
  const float p1 = l[1] + l[5];
  const float p2 = l[2] + l[6];
  const float p3 = l[3] + l[7];
  return (p0 + p2) + (p1 + p3);
}

// Degree-6 Taylor-Horner exp(r) on [-ln2/2, ln2/2]; relative error ~1e-7,
// far below int8 quantization noise.
constexpr float kC6 = 1.0f / 720.0f;
constexpr float kC5 = 1.0f / 120.0f;
constexpr float kC4 = 1.0f / 24.0f;
constexpr float kC3 = 1.0f / 6.0f;
constexpr float kC2 = 0.5f;

float ExpScalar(float x) {
  const bool zero = x < kExpLoCut;
  x = std::min(x, kExpHiCut);
  x = std::max(x, kExpLoCut);
  const float t = x * kLog2e;
  const float n = std::floor(t + 0.5f);
  float r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;
  float p = kC6;
  p = p * r + kC5;
  p = p * r + kC4;
  p = p * r + kC3;
  p = p * r + kC2;
  p = p * r + 1.0f;
  p = p * r + 1.0f;
  const int ne = static_cast<int>(n);
  const float scale = std::bit_cast<float>((ne + 127) << 23);
  const float result = p * scale;
  return zero ? 0.0f : result;
}

float GeluOne(float v) {
  float v3 = v * v;
  v3 = v3 * v;
  float inner = v3 * 0.044715f;
  inner = v + inner;
  const float u = inner * kGeluC;
  const float e = ExpScalar(u + u);
  const float denom = e + 1.0f;
  const float frac = 2.0f / denom;
  const float th = 1.0f - frac;
  const float onep = 1.0f + th;
  const float half_v = 0.5f * v;
  return half_v * onep;
}

// ------------------------------------------------------------ scalar path

int32_t DotInt8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

void GeluScalar(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = GeluOne(x[i]);
}

void SoftmaxScalar(float* x, size_t n) {
  float lanes[8];
  std::fill(lanes, lanes + 8, kMaskedScore);
  for (size_t i = 0; i < n; ++i) {
    lanes[i & 7] = std::max(lanes[i & 7], x[i]);
  }
  const float m = ReduceMaxLanes(lanes);
  std::fill(lanes, lanes + 8, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    x[i] = ExpScalar(x[i] - m);
    lanes[i & 7] += x[i];
  }
  const float sum = ReduceSumLanes(lanes);
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

void QuantizeRowScalar(const float* x, size_t n, int8_t* out, float* scale) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    lanes[i & 7] = std::max(lanes[i & 7], std::fabs(x[i]));
  }
  const float amax = ReduceMaxLanes(lanes);
  if (amax == 0.0f) {
    *scale = 0.0f;
    std::fill(out, out + n, static_cast<int8_t>(0));
    return;
  }
  const float inv = 127.0f / amax;
  *scale = amax / 127.0f;
  for (size_t i = 0; i < n; ++i) {
    float q = std::nearbyint(x[i] * inv);  // nearest-even, like vroundps
    q = std::min(q, 127.0f);
    q = std::max(q, -127.0f);
    out[i] = static_cast<int8_t>(q);
  }
}

constexpr SimdKernelTable kScalarTable = {
    DotInt8Scalar,
    GeluScalar,
    SoftmaxScalar,
    QuantizeRowScalar,
};

// -------------------------------------------------------------- AVX2 path

#ifdef LSHAP_AVX2_COMPILED

#define LSHAP_AVX2_FN __attribute__((target("avx2")))

LSHAP_AVX2_FN int32_t DotInt8Avx2(const int8_t* a, const int8_t* b,
                                  size_t n) {
  __m256i acc = _mm256_setzero_si256();
  for (size_t i = 0; i < n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Vector twin of ExpScalar: the same IEEE operation sequence per element
// (min/max, mul, floor, two-step Cody-Waite, Horner with separate mul/add —
// never fused), so results are bit-identical.
LSHAP_AVX2_FN __m256 ExpAvx2(__m256 x) {
  const __m256 lo_cut = _mm256_set1_ps(kExpLoCut);
  const __m256 zero_mask = _mm256_cmp_ps(x, lo_cut, _CMP_LT_OQ);
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHiCut));
  x = _mm256_max_ps(x, lo_cut);
  const __m256 t = _mm256_mul_ps(x, _mm256_set1_ps(kLog2e));
  const __m256 n = _mm256_floor_ps(_mm256_add_ps(t, _mm256_set1_ps(0.5f)));
  __m256 r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(kLn2Hi)));
  r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(kLn2Lo)));
  __m256 p = _mm256_set1_ps(kC6);
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kC5));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kC4));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kC3));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kC2));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0f));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0f));
  const __m256i ne = _mm256_cvttps_epi32(n);  // n is integral: exact
  const __m256i bits =
      _mm256_slli_epi32(_mm256_add_epi32(ne, _mm256_set1_epi32(127)), 23);
  const __m256 scale = _mm256_castsi256_ps(bits);
  const __m256 result = _mm256_mul_ps(p, scale);
  return _mm256_andnot_ps(zero_mask, result);
}

LSHAP_AVX2_FN void GeluAvx2(float* x, size_t n) {
  const size_t n8 = n & ~static_cast<size_t>(7);
  const __m256 c_half = _mm256_set1_ps(0.5f);
  const __m256 c_one = _mm256_set1_ps(1.0f);
  const __m256 c_two = _mm256_set1_ps(2.0f);
  const __m256 c_cubic = _mm256_set1_ps(0.044715f);
  const __m256 c_gelu = _mm256_set1_ps(kGeluC);
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    __m256 v3 = _mm256_mul_ps(v, v);
    v3 = _mm256_mul_ps(v3, v);
    __m256 inner = _mm256_mul_ps(v3, c_cubic);
    inner = _mm256_add_ps(v, inner);
    const __m256 u = _mm256_mul_ps(inner, c_gelu);
    const __m256 e = ExpAvx2(_mm256_add_ps(u, u));
    const __m256 denom = _mm256_add_ps(e, c_one);
    const __m256 frac = _mm256_div_ps(c_two, denom);
    const __m256 th = _mm256_sub_ps(c_one, frac);
    const __m256 onep = _mm256_add_ps(c_one, th);
    const __m256 half_v = _mm256_mul_ps(c_half, v);
    _mm256_storeu_ps(x + i, _mm256_mul_ps(half_v, onep));
  }
  for (size_t i = n8; i < n; ++i) x[i] = GeluOne(x[i]);
}

LSHAP_AVX2_FN void SoftmaxAvx2(float* x, size_t n) {
  const size_t n8 = n & ~static_cast<size_t>(7);
  alignas(32) float lanes[8];

  __m256 vmax = _mm256_set1_ps(kMaskedScore);
  for (size_t i = 0; i < n8; i += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
  }
  _mm256_store_ps(lanes, vmax);
  for (size_t i = n8; i < n; ++i) {
    lanes[i & 7] = std::max(lanes[i & 7], x[i]);
  }
  const float m = ReduceMaxLanes(lanes);

  const __m256 vm = _mm256_set1_ps(m);
  __m256 vsum = _mm256_setzero_ps();
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 e = ExpAvx2(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm));
    _mm256_storeu_ps(x + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  _mm256_store_ps(lanes, vsum);
  for (size_t i = n8; i < n; ++i) {
    x[i] = ExpScalar(x[i] - m);
    lanes[i & 7] += x[i];
  }
  const float sum = ReduceSumLanes(lanes);

  const float inv = 1.0f / sum;
  const __m256 vinv = _mm256_set1_ps(inv);
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
  }
  for (size_t i = n8; i < n; ++i) x[i] *= inv;
}

LSHAP_AVX2_FN void QuantizeRowAvx2(const float* x, size_t n, int8_t* out,
                                   float* scale) {
  const size_t n8 = n & ~static_cast<size_t>(7);
  alignas(32) float lanes[8];
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);

  __m256 vamax = _mm256_setzero_ps();
  for (size_t i = 0; i < n8; i += 8) {
    vamax = _mm256_max_ps(vamax,
                          _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(x + i)));
  }
  _mm256_store_ps(lanes, vamax);
  for (size_t i = n8; i < n; ++i) {
    lanes[i & 7] = std::max(lanes[i & 7], std::fabs(x[i]));
  }
  const float amax = ReduceMaxLanes(lanes);
  if (amax == 0.0f) {
    *scale = 0.0f;
    std::fill(out, out + n, static_cast<int8_t>(0));
    return;
  }
  const float inv = 127.0f / amax;
  *scale = amax / 127.0f;

  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  for (size_t i = 0; i < n8; i += 8) {
    __m256 q = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
    q = _mm256_round_ps(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    q = _mm256_min_ps(q, vhi);
    q = _mm256_max_ps(q, vlo);
    const __m256i qi = _mm256_cvtps_epi32(q);
    const __m128i packed16 = _mm_packs_epi32(
        _mm256_castsi256_si128(qi), _mm256_extracti128_si256(qi, 1));
    const __m128i packed8 = _mm_packs_epi16(packed16, _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), packed8);
  }
  for (size_t i = n8; i < n; ++i) {
    float q = std::nearbyint(x[i] * inv);
    q = std::min(q, 127.0f);
    q = std::max(q, -127.0f);
    out[i] = static_cast<int8_t>(q);
  }
}

constexpr SimdKernelTable kAvx2Table = {
    DotInt8Avx2,
    GeluAvx2,
    SoftmaxAvx2,
    QuantizeRowAvx2,
};

#undef LSHAP_AVX2_FN

#endif  // LSHAP_AVX2_COMPILED

// ---------------------------------------------------------------- dispatch

std::atomic<int> g_active_level{-1};  // -1 = not yet initialized

SimdLevel Detect() {
#ifdef LSHAP_AVX2_COMPILED
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = Detect();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  int level = g_active_level.load(std::memory_order_acquire);
  if (level < 0) {
    level = static_cast<int>(DetectedSimdLevel());
    g_active_level.store(level, std::memory_order_release);
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(DetectedSimdLevel())) {
    level = DetectedSimdLevel();
  }
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

const SimdKernelTable& SimdKernels() {
#ifdef LSHAP_AVX2_COMPILED
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return kAvx2Table;
#endif
  return kScalarTable;
}

float SimdExpApprox(float x) { return ExpScalar(x); }

}  // namespace lshap
