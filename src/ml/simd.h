#ifndef LSHAP_ML_SIMD_H_
#define LSHAP_ML_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace lshap {

// Runtime-dispatched SIMD kernels for the quantized inference path
// (DESIGN.md §12). Two implementations exist for every kernel — AVX2 and a
// portable scalar fallback — selected once behind a single dispatch point
// (the kernel table returned by SimdKernels()). The two are bit-equal by
// construction:
//
//  - integer kernels (DotInt8) accumulate in int32, where order is exact;
//  - float kernels share one polynomial exp approximation, perform the same
//    IEEE operation sequence per element, and reductions (softmax max/sum,
//    row-amax) use the same 8-lane accumulator tree in both variants — the
//    scalar code *emulates* the vector lanes rather than summing linearly;
//  - simd.cc is compiled with -ffp-contract=off so the compiler cannot fuse
//    a*b+c differently between the two paths.
//
// quant_test's KernelBitEquality suite pins this property on random shapes,
// which is what lets the AVX2-disabled CI leg certify the scalar fallback.

// Int8 kernels require operand lengths padded to this many elements (one
// 256-bit vector of int8).
inline constexpr size_t kInt8BlockElems = 32;

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

const char* SimdLevelName(SimdLevel level);

// Highest level this binary can run: compile-time availability (AVX2 is
// compiled out under LSHAP_NO_AVX2 or on non-x86 targets) intersected with
// runtime CPU detection.
SimdLevel DetectedSimdLevel();

// The level the kernel table currently dispatches to. Defaults to
// DetectedSimdLevel() on first use.
SimdLevel ActiveSimdLevel();

// Test/bench override. Requests above DetectedSimdLevel() are clamped.
// Returns the level actually installed. Not thread-safe against concurrent
// kernel calls — switch levels only from single-threaded setup code.
SimdLevel SetSimdLevel(SimdLevel level);

// The dispatch table. One indirect call per kernel invocation; resolved
// from ActiveSimdLevel().
struct SimdKernelTable {
  // Σ a[i]·b[i] over n elements; n must be a multiple of kInt8BlockElems
  // (callers zero-pad). Exact in int32.
  int32_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t n);
  // In-place tanh-approximation GELU (matches the float path's formula to
  // within the shared exp approximation).
  void (*gelu)(float* x, size_t n);
  // In-place numerically-stable softmax. Entries at or below the masking
  // threshold (-1e30f) contribute exactly zero.
  void (*softmax)(float* x, size_t n);
  // Symmetric per-row int8 quantization: scale = amax/127, out[i] =
  // clamp(round_nearest_even(x[i]/scale), -127, 127). A zero row gets
  // scale 0 and all-zero codes. Writes n codes; the caller zero-pads the
  // tail of `out` up to the block boundary itself.
  void (*quantize_row)(const float* x, size_t n, int8_t* out, float* scale);
};

const SimdKernelTable& SimdKernels();

// Shared scalar exp approximation (exposed for tests): branchless
// round-to-nearest 2^n · poly(r) split, inputs clamped to [-87, 88], with
// an exact-zero cutoff below -87 so masked attention scores vanish.
float SimdExpApprox(float x);

}  // namespace lshap

#endif  // LSHAP_ML_SIMD_H_
