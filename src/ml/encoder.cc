#include "ml/encoder.h"

namespace lshap {

EncoderConfig EncoderConfig::Base(size_t vocab_size) {
  EncoderConfig c;
  c.vocab_size = vocab_size;
  c.dim = 48;
  c.num_heads = 4;
  c.num_layers = 2;
  c.ffn_dim = 96;
  c.max_len = 80;
  return c;
}

EncoderConfig EncoderConfig::Large(size_t vocab_size) {
  EncoderConfig c;
  c.vocab_size = vocab_size;
  c.dim = 64;
  c.num_heads = 8;
  c.num_layers = 3;
  c.ffn_dim = 128;
  c.max_len = 80;
  return c;
}

EncoderConfig EncoderConfig::SmallAblation(size_t vocab_size) {
  EncoderConfig c;
  c.vocab_size = vocab_size;
  c.dim = 32;
  c.num_heads = 4;
  c.num_layers = 1;
  c.ffn_dim = 48;
  c.max_len = 80;
  return c;
}

TransformerEncoder::TransformerEncoder(const EncoderConfig& config)
    : config_(config), final_ln_(config.dim) {
  Rng rng(config.seed);
  tok_emb_ = Embedding(config.vocab_size, config.dim, rng);
  pos_emb_ = Embedding(config.max_len, config.dim, rng);
  layers_.reserve(config.num_layers);
  for (size_t i = 0; i < config.num_layers; ++i) {
    layers_.emplace_back(config.dim, config.num_heads, config.ffn_dim, rng);
  }
}

Tensor TransformerEncoder::Forward(const std::vector<int>& ids,
                                   const std::vector<bool>& mask) {
  LSHAP_CHECK_LE(ids.size(), config_.max_len);
  LSHAP_CHECK_EQ(ids.size(), mask.size());
  std::vector<int> pos(ids.size());
  for (size_t i = 0; i < pos.size(); ++i) pos[i] = static_cast<int>(i);
  Tensor h = tok_emb_.Forward(ids);
  h.Add(pos_emb_.Forward(pos));
  for (auto& layer : layers_) h = layer.Forward(h, mask);
  return final_ln_.Forward(h);
}

void TransformerEncoder::ForwardInference(const std::vector<int>& ids,
                                          const std::vector<bool>& mask,
                                          InferenceArena& arena,
                                          Tensor& out) const {
  LSHAP_CHECK_LE(ids.size(), config_.max_len);
  LSHAP_CHECK_EQ(ids.size(), mask.size());
  const size_t n = ids.size();
  const size_t dim = config_.dim;
  Tensor& h0 = arena.Get(n, dim);
  const Tensor& tok = tok_emb_.table();
  const Tensor& pos = pos_emb_.table();
  for (size_t i = 0; i < n; ++i) {
    LSHAP_CHECK_LT(static_cast<size_t>(ids[i]), tok.rows());
    const float* src = tok.row_data(static_cast<size_t>(ids[i]));
    const float* prow = pos.row_data(i);
    float* dst = h0.row_data(i);
    for (size_t c = 0; c < dim; ++c) dst[c] = src[c] + prow[c];
  }
  const Tensor* cur = &h0;
  for (const auto& layer : layers_) {
    Tensor& next = arena.Get(n, dim);
    layer.ForwardInference(*cur, mask, arena, next);
    cur = &next;
  }
  final_ln_.ForwardInference(*cur, out);
}

void TransformerEncoder::Backward(const Tensor& d_hidden) {
  Tensor d = final_ln_.Backward(d_hidden);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    d = it->Backward(d);
  }
  tok_emb_.Backward(d);
  pos_emb_.Backward(d);
}

std::vector<Param*> TransformerEncoder::Params() {
  std::vector<Param*> params;
  tok_emb_.CollectParams(params);
  pos_emb_.CollectParams(params);
  for (auto& layer : layers_) layer.CollectParams(params);
  final_ln_.CollectParams(params);
  return params;
}

}  // namespace lshap
