#ifndef LSHAP_ML_TENSOR_H_
#define LSHAP_ML_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace lshap {

// A dense row-major 2-D float matrix. The entire neural stack works on
// (sequence_length x feature) matrices; batching is a loop over sequences
// with gradient accumulation, which keeps every op two-dimensional.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0f) {}

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }

  // Gaussian init with standard deviation `stddev`.
  static Tensor Randn(size_t rows, size_t cols, float stddev, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* row_data(size_t r) { return data_.data() + r * cols_; }
  const float* row_data(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  // Reshape to rows×cols with all elements zeroed, reusing the existing
  // allocation when capacity suffices (the InferenceArena hot path).
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  // this += other (same shape).
  void Add(const Tensor& other);
  // this += scale * other.
  void AddScaled(const Tensor& other, float scale);
  void Scale(float s);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// C = A · B. Shapes: (n×k)·(k×m) → (n×m).
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A · B into a caller-owned output (resized and zeroed here). MatMul is
// implemented on top of this, so the two produce bit-identical results.
void MatMulInto(const Tensor& a, const Tensor& b, Tensor& c);
// C = Aᵀ · B. Shapes: (k×n)ᵀ·(k×m) → (n×m).
Tensor MatMulATB(const Tensor& a, const Tensor& b);
// C = A · Bᵀ. Shapes: (n×k)·(m×k)ᵀ → (n×m).
Tensor MatMulABT(const Tensor& a, const Tensor& b);

// out[r] = a[r] + bias[0] for a 1×cols bias.
void AddRowBroadcast(Tensor& a, const Tensor& bias);

}  // namespace lshap

#endif  // LSHAP_ML_TENSOR_H_
