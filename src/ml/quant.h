#ifndef LSHAP_ML_QUANT_H_
#define LSHAP_ML_QUANT_H_

#include <cstdint>
#include <vector>

#include "ml/encoder.h"
#include "ml/simd.h"

namespace lshap {

// Int8 quantized inference for the MiniBERT encoder (DESIGN.md §12).
//
// Scheme: per-output-channel symmetric weight quantization (scale_j =
// max_i |W[i][j]| / 127), weights repacked transposed into a blocked
// [out][in_pad] row-major layout (in_pad rounded up to kInt8BlockElems so
// every channel row is one run of whole 256-bit vectors), dynamic per-row
// symmetric activation quantization with clamping to ±127, int32
// accumulation, float epilogue y_j = acc_j·(act_scale·scale_j) + bias_j.
// Embeddings, LayerNorms, residual adds, and attention score/value products
// stay float; softmax and GELU go through the SIMD kernel table.
//
// Everything here is immutable after construction and safe to share across
// threads; per-call scratch lives in the caller's QuantScratch.

// One repacked int8 affine layer.
class QuantizedLinear {
 public:
  QuantizedLinear() = default;

  // Quantizes a float Linear given its in×out weight and 1×out bias.
  static QuantizedLinear FromFloat(const Tensor& w, const Tensor& b);

  // y[j] = dot_i8(qx, row_j)·(act_scale·scale_j) + bias_j for all out
  // channels. qx must hold in_pad() codes (zero-padded tail).
  void Forward(const int8_t* qx, float act_scale, float* y) const;

  size_t in() const { return in_; }
  size_t out() const { return out_; }
  size_t in_pad() const { return in_pad_; }
  const std::vector<float>& scales() const { return scales_; }
  const std::vector<float>& bias() const { return bias_; }
  const std::vector<int8_t>& weights() const { return weights_; }

  // Mutable views for deserialization (model_io); shapes must already match.
  std::vector<float>& mutable_scales() { return scales_; }
  std::vector<float>& mutable_bias() { return bias_; }
  std::vector<int8_t>& mutable_weights() { return weights_; }

 private:
  size_t in_ = 0;
  size_t out_ = 0;
  size_t in_pad_ = 0;           // in_ rounded up to kInt8BlockElems
  std::vector<float> scales_;   // out_
  std::vector<float> bias_;     // out_
  std::vector<int8_t> weights_; // out_ × in_pad_, channel-major
};

// Per-thread scratch for quantized forwards: a float-tensor arena plus a
// reusable padded int8 row buffer.
struct QuantScratch {
  InferenceArena arena;
  std::vector<int8_t> qrow;

  // Returns a zeroed row buffer of at least `in_pad` codes.
  int8_t* Row(size_t in_pad) {
    qrow.assign(in_pad, 0);
    return qrow.data();
  }
  void Reset() { arena.Reset(); }
};

// Quantizes every row of `x` and runs it through `lin`, writing an
// x.rows()×lin.out() result into `y`. The workhorse of the layer below.
void QuantizedLinearForward(const QuantizedLinear& lin, const Tensor& x,
                            QuantScratch& scratch, Tensor& y);

struct QuantizedLayerNorm {
  Tensor gamma;  // 1×dim
  Tensor beta;   // 1×dim
  void Forward(const Tensor& x, Tensor& y) const;
};

struct QuantizedTransformerLayer {
  QuantizedLayerNorm ln1, ln2;
  QuantizedLinear q_proj, k_proj, v_proj, out_proj;
  QuantizedLinear ffn1, ffn2;
  size_t num_heads = 0;
  size_t head_dim = 0;

  void Forward(const Tensor& x, const std::vector<bool>& mask,
               QuantScratch& scratch, Tensor& out) const;
};

// The full quantized MiniBERT: float embeddings + LayerNorms, int8 affine
// layers, SIMD softmax/GELU.
class QuantizedEncoder {
 public:
  QuantizedEncoder() = default;

  static QuantizedEncoder FromEncoder(const TransformerEncoder& enc);

  void Forward(const std::vector<int>& ids, const std::vector<bool>& mask,
               QuantScratch& scratch, Tensor& out) const;

  const EncoderConfig& config() const { return config_; }
  const std::vector<QuantizedTransformerLayer>& layers() const {
    return layers_;
  }

  // All int8 layers in a fixed order (per layer: q,k,v,out,ffn1,ffn2) —
  // the serialization walk order of model_io's quantized section.
  std::vector<const QuantizedLinear*> AllLinears() const;
  std::vector<QuantizedLinear*> MutableLinears();

 private:
  EncoderConfig config_;
  Tensor tok_table_;  // vocab×dim
  Tensor pos_table_;  // max_len×dim
  std::vector<QuantizedTransformerLayer> layers_;
  QuantizedLayerNorm final_ln_;
};

}  // namespace lshap

#endif  // LSHAP_ML_QUANT_H_
