#ifndef LSHAP_ML_TOKENIZER_H_
#define LSHAP_ML_TOKENIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace lshap {

// Splits SQL text (and fact/tuple serializations) into lowercase word and
// punctuation tokens: identifiers and numbers stay whole, every punctuation
// character is its own token.
std::vector<std::string> TokenizeText(const std::string& text);

// A fixed vocabulary with BERT-style special tokens. Ids:
//   0 [PAD]  1 [CLS]  2 [SEP]  3 [UNK]  4 [MASK], then corpus tokens.
class Vocab {
 public:
  static constexpr int kPad = 0;
  static constexpr int kCls = 1;
  static constexpr int kSep = 2;
  static constexpr int kUnk = 3;
  static constexpr int kMask = 4;
  static constexpr int kNumSpecial = 5;

  Vocab();

  // Adds every token of `tokens` to the vocabulary (idempotent).
  void AddTokens(const std::vector<std::string>& tokens);

  // Token id, or kUnk for out-of-vocabulary tokens.
  int Encode(const std::string& token) const;

  size_t size() const { return id_to_token_.size(); }
  const std::string& token(int id) const { return id_to_token_[static_cast<size_t>(id)]; }

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
};

// Builds [CLS] a… [SEP] b… ([SEP] c…) sequences, truncating the segments
// proportionally to fit max_len. Returns ids and the matching non-pad mask
// (no padding is appended; sequences are variable length).
struct EncodedPair {
  std::vector<int> ids;
  std::vector<bool> mask;
};

EncodedPair EncodeSegments(const Vocab& vocab,
                           const std::vector<std::vector<std::string>>& segments,
                           size_t max_len);

// Vocab-encodes a token list without any framing — the cacheable half of
// EncodeSegments. Batched lineage scoring encodes the query/tuple segments
// once and reassembles per fact.
std::vector<int> EncodeTokens(const Vocab& vocab,
                              const std::vector<std::string>& tokens);

// Frames already-encoded segments as [CLS] s0 [SEP] s1 … with the same
// equal-share truncation as EncodeSegments (which is implemented on top of
// this, so the two stay in lockstep). Pointers must be non-null.
EncodedPair AssembleEncodedSegments(
    const std::vector<const std::vector<int>*>& segments, size_t max_len);

}  // namespace lshap

#endif  // LSHAP_ML_TOKENIZER_H_
