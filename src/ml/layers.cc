#include "ml/layers.h"

#include <cmath>

namespace lshap {

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(size_t in, size_t out, Rng& rng) {
  // Xavier-style init.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in + out));
  w_.Init(Tensor::Randn(in, out, stddev, rng));
  b_.Init(Tensor::Zeros(1, out));
}

Tensor Linear::Forward(const Tensor& x) {
  x_ = x;
  Tensor y = MatMul(x, w_.value);
  AddRowBroadcast(y, b_.value);
  return y;
}

void Linear::ForwardInference(const Tensor& x, Tensor& y) const {
  // Same arithmetic as Forward() (MatMul is MatMulInto under the hood), but
  // const and without the x_ backward cache.
  MatMulInto(x, w_.value, y);
  AddRowBroadcast(y, b_.value);
}

Tensor Linear::Backward(const Tensor& dy) {
  // dW = xᵀ·dy ; db = column sums of dy ; dx = dy·Wᵀ.
  Tensor dw = MatMulATB(x_, dy);
  w_.grad.Add(dw);
  for (size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.row_data(r);
    float* g = b_.grad.row_data(0);
    for (size_t c = 0; c < dy.cols(); ++c) g[c] += row[c];
  }
  return MatMulABT(dy, w_.value);
}

void Linear::CollectParams(std::vector<Param*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

// ------------------------------------------------------------- Embedding

Embedding::Embedding(size_t vocab, size_t dim, Rng& rng) {
  table_.Init(Tensor::Randn(vocab, dim, 0.02f, rng));
}

Tensor Embedding::Forward(const std::vector<int>& ids) {
  ids_ = ids;
  Tensor out(ids.size(), table_.value.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    LSHAP_CHECK_LT(static_cast<size_t>(ids[i]), table_.value.rows());
    const float* src = table_.value.row_data(static_cast<size_t>(ids[i]));
    float* dst = out.row_data(i);
    std::copy(src, src + table_.value.cols(), dst);
  }
  return out;
}

void Embedding::Backward(const Tensor& dy) {
  LSHAP_CHECK_EQ(dy.rows(), ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    float* g = table_.grad.row_data(static_cast<size_t>(ids_[i]));
    const float* src = dy.row_data(i);
    for (size_t c = 0; c < dy.cols(); ++c) g[c] += src[c];
  }
}

void Embedding::CollectParams(std::vector<Param*>& out) {
  out.push_back(&table_);
}

// ------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(size_t dim) {
  Tensor ones(1, dim);
  ones.Fill(1.0f);
  gamma_.Init(std::move(ones));
  beta_.Init(Tensor::Zeros(1, dim));
}

Tensor LayerNorm::Forward(const Tensor& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  xhat_ = Tensor(n, d);
  rstd_.assign(n, 0.0f);
  Tensor y(n, d);
  for (size_t r = 0; r < n; ++r) {
    const float* row = x.row_data(r);
    float mean = 0.0f;
    for (size_t c = 0; c < d; ++c) mean += row[c];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      const float diff = row[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rstd = 1.0f / std::sqrt(var + 1e-5f);
    rstd_[r] = rstd;
    float* xh = xhat_.row_data(r);
    float* out = y.row_data(r);
    const float* g = gamma_.value.row_data(0);
    const float* b = beta_.value.row_data(0);
    for (size_t c = 0; c < d; ++c) {
      xh[c] = (row[c] - mean) * rstd;
      out[c] = xh[c] * g[c] + b[c];
    }
  }
  return y;
}

void LayerNorm::ForwardInference(const Tensor& x, Tensor& y) const {
  // Statement-for-statement the same float sequence as Forward(), with the
  // normalized value in a local instead of the xhat_ cache.
  const size_t n = x.rows();
  const size_t d = x.cols();
  y.Resize(n, d);
  for (size_t r = 0; r < n; ++r) {
    const float* row = x.row_data(r);
    float mean = 0.0f;
    for (size_t c = 0; c < d; ++c) mean += row[c];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      const float diff = row[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rstd = 1.0f / std::sqrt(var + 1e-5f);
    float* out = y.row_data(r);
    const float* g = gamma_.value.row_data(0);
    const float* b = beta_.value.row_data(0);
    for (size_t c = 0; c < d; ++c) {
      const float xh = (row[c] - mean) * rstd;
      out[c] = xh * g[c] + b[c];
    }
  }
}

Tensor LayerNorm::Backward(const Tensor& dy) {
  const size_t n = dy.rows();
  const size_t d = dy.cols();
  Tensor dx(n, d);
  const float* g = gamma_.value.row_data(0);
  for (size_t r = 0; r < n; ++r) {
    const float* dyr = dy.row_data(r);
    const float* xh = xhat_.row_data(r);
    float* gg = gamma_.grad.row_data(0);
    float* bg = beta_.grad.row_data(0);
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      gg[c] += dyr[c] * xh[c];
      bg[c] += dyr[c];
      const float dxhat = dyr[c] * g[c];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[c];
    }
    const float inv_d = 1.0f / static_cast<float>(d);
    float* dxr = dx.row_data(r);
    for (size_t c = 0; c < d; ++c) {
      const float dxhat = dyr[c] * g[c];
      dxr[c] = rstd_[r] *
               (dxhat - inv_d * sum_dxhat - xh[c] * inv_d * sum_dxhat_xhat);
    }
  }
  return dx;
}

void LayerNorm::CollectParams(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

// ------------------------------------------------------------------ Gelu

Tensor Gelu::Forward(const Tensor& x) {
  x_ = x;
  Tensor y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    const float t = std::tanh(kGeluC * (v + 0.044715f * v * v * v));
    y.data()[i] = 0.5f * v * (1.0f + t);
  }
  return y;
}

void Gelu::ForwardInference(const Tensor& x, Tensor& y) {
  y.Resize(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    const float t = std::tanh(kGeluC * (v + 0.044715f * v * v * v));
    y.data()[i] = 0.5f * v * (1.0f + t);
  }
}

Tensor Gelu::Backward(const Tensor& dy) {
  Tensor dx(dy.rows(), dy.cols());
  for (size_t i = 0; i < dy.size(); ++i) {
    const float v = x_.data()[i];
    const float u = kGeluC * (v + 0.044715f * v * v * v);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
    const float grad = 0.5f * (1.0f + t) + 0.5f * v * sech2 * du;
    dx.data()[i] = dy.data()[i] * grad;
  }
  return dx;
}

// -------------------------------------------------- MultiHeadSelfAttention

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t dim, size_t num_heads,
                                               Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      q_proj_(dim, dim, rng),
      k_proj_(dim, dim, rng),
      v_proj_(dim, dim, rng),
      out_proj_(dim, dim, rng) {
  LSHAP_CHECK_EQ(head_dim_ * num_heads_, dim_);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const std::vector<bool>& mask) {
  const size_t n = x.rows();
  mask_ = mask;
  q_ = q_proj_.Forward(x);
  k_ = k_proj_.Forward(x);
  v_ = v_proj_.Forward(x);

  attn_.assign(num_heads_, Tensor());
  Tensor concat(n, dim_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t off = h * head_dim_;
    // Scores: s[i][j] = (q_i · k_j) * scale over this head's slice.
    Tensor scores(n, n);
    for (size_t i = 0; i < n; ++i) {
      const float* qi = q_.row_data(i) + off;
      float* srow = scores.row_data(i);
      for (size_t j = 0; j < n; ++j) {
        if (!mask_[j]) {
          srow[j] = -1e30f;
          continue;
        }
        const float* kj = k_.row_data(j) + off;
        float dot = 0.0f;
        for (size_t c = 0; c < head_dim_; ++c) dot += qi[c] * kj[c];
        srow[j] = dot * scale;
      }
    }
    // Row softmax.
    for (size_t i = 0; i < n; ++i) {
      float* srow = scores.row_data(i);
      float max_v = -1e30f;
      for (size_t j = 0; j < n; ++j) max_v = std::max(max_v, srow[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < n; ++j) {
        srow[j] = std::exp(srow[j] - max_v);
        sum += srow[j];
      }
      const float inv = 1.0f / sum;
      for (size_t j = 0; j < n; ++j) srow[j] *= inv;
    }
    // Head output: attn · V_head, written into the concat slice.
    for (size_t i = 0; i < n; ++i) {
      const float* arow = scores.row_data(i);
      float* orow = concat.row_data(i) + off;
      for (size_t c = 0; c < head_dim_; ++c) orow[c] = 0.0f;
      for (size_t j = 0; j < n; ++j) {
        const float a = arow[j];
        if (a == 0.0f) continue;
        const float* vj = v_.row_data(j) + off;
        for (size_t c = 0; c < head_dim_; ++c) orow[c] += a * vj[c];
      }
    }
    attn_[h] = std::move(scores);
  }
  return out_proj_.Forward(concat);
}

void MultiHeadSelfAttention::ForwardInference(const Tensor& x,
                                              const std::vector<bool>& mask,
                                              InferenceArena& arena,
                                              Tensor& out) const {
  const size_t n = x.rows();
  Tensor& q = arena.Get(n, dim_);
  Tensor& k = arena.Get(n, dim_);
  Tensor& v = arena.Get(n, dim_);
  q_proj_.ForwardInference(x, q);
  k_proj_.ForwardInference(x, k);
  v_proj_.ForwardInference(x, v);

  Tensor& concat = arena.Get(n, dim_);
  Tensor& scores = arena.Get(n, n);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t off = h * head_dim_;
    for (size_t i = 0; i < n; ++i) {
      const float* qi = q.row_data(i) + off;
      float* srow = scores.row_data(i);
      for (size_t j = 0; j < n; ++j) {
        if (!mask[j]) {
          srow[j] = -1e30f;
          continue;
        }
        const float* kj = k.row_data(j) + off;
        float dot = 0.0f;
        for (size_t c = 0; c < head_dim_; ++c) dot += qi[c] * kj[c];
        srow[j] = dot * scale;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      float* srow = scores.row_data(i);
      float max_v = -1e30f;
      for (size_t j = 0; j < n; ++j) max_v = std::max(max_v, srow[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < n; ++j) {
        srow[j] = std::exp(srow[j] - max_v);
        sum += srow[j];
      }
      const float inv = 1.0f / sum;
      for (size_t j = 0; j < n; ++j) srow[j] *= inv;
    }
    for (size_t i = 0; i < n; ++i) {
      const float* arow = scores.row_data(i);
      float* orow = concat.row_data(i) + off;
      for (size_t c = 0; c < head_dim_; ++c) orow[c] = 0.0f;
      for (size_t j = 0; j < n; ++j) {
        const float a = arow[j];
        if (a == 0.0f) continue;
        const float* vj = v.row_data(j) + off;
        for (size_t c = 0; c < head_dim_; ++c) orow[c] += a * vj[c];
      }
    }
  }
  out_proj_.ForwardInference(concat, out);
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& dy) {
  const size_t n = dy.rows();
  Tensor d_concat = out_proj_.Backward(dy);

  Tensor dq(n, dim_);
  Tensor dk(n, dim_);
  Tensor dv(n, dim_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t off = h * head_dim_;
    const Tensor& attn = attn_[h];

    // dV_head[j] += Σ_i attn[i][j] · d_out[i];  d_attn[i][j] = d_out[i]·V[j].
    Tensor d_attn(n, n);
    for (size_t i = 0; i < n; ++i) {
      const float* doi = d_concat.row_data(i) + off;
      const float* arow = attn.row_data(i);
      float* darow = d_attn.row_data(i);
      for (size_t j = 0; j < n; ++j) {
        const float* vj = v_.row_data(j) + off;
        float dot = 0.0f;
        for (size_t c = 0; c < head_dim_; ++c) dot += doi[c] * vj[c];
        darow[j] = dot;
        const float a = arow[j];
        if (a != 0.0f) {
          float* dvj = dv.row_data(j) + off;
          for (size_t c = 0; c < head_dim_; ++c) dvj[c] += a * doi[c];
        }
      }
    }
    // Softmax backward per row: ds = a ⊙ (d_attn − Σ_j a_j d_attn_j).
    for (size_t i = 0; i < n; ++i) {
      const float* arow = attn.row_data(i);
      float* darow = d_attn.row_data(i);
      float dot = 0.0f;
      for (size_t j = 0; j < n; ++j) dot += arow[j] * darow[j];
      for (size_t j = 0; j < n; ++j) {
        darow[j] = arow[j] * (darow[j] - dot);
      }
    }
    // Scores backward: dq_i += Σ_j ds[i][j]·k_j·scale; dk_j += Σ_i ds·q_i.
    for (size_t i = 0; i < n; ++i) {
      const float* dsrow = d_attn.row_data(i);
      const float* qi = q_.row_data(i) + off;
      float* dqi = dq.row_data(i) + off;
      for (size_t j = 0; j < n; ++j) {
        const float ds = dsrow[j] * scale;
        if (ds == 0.0f) continue;
        const float* kj = k_.row_data(j) + off;
        float* dkj = dk.row_data(j) + off;
        for (size_t c = 0; c < head_dim_; ++c) {
          dqi[c] += ds * kj[c];
          dkj[c] += ds * qi[c];
        }
      }
    }
  }

  Tensor dx = q_proj_.Backward(dq);
  dx.Add(k_proj_.Backward(dk));
  dx.Add(v_proj_.Backward(dv));
  return dx;
}

void MultiHeadSelfAttention::CollectParams(std::vector<Param*>& out) {
  q_proj_.CollectParams(out);
  k_proj_.CollectParams(out);
  v_proj_.CollectParams(out);
  out_proj_.CollectParams(out);
}

// ------------------------------------------------------- TransformerLayer

TransformerLayer::TransformerLayer(size_t dim, size_t num_heads,
                                   size_t ffn_dim, Rng& rng)
    : ln1_(dim),
      ln2_(dim),
      attn_(dim, num_heads, rng),
      ffn1_(dim, ffn_dim, rng),
      ffn2_(ffn_dim, dim, rng) {}

Tensor TransformerLayer::Forward(const Tensor& x,
                                 const std::vector<bool>& mask) {
  Tensor h = x;
  h.Add(attn_.Forward(ln1_.Forward(x), mask));
  Tensor out = h;
  out.Add(ffn2_.Forward(gelu_.Forward(ffn1_.Forward(ln2_.Forward(h)))));
  return out;
}

void TransformerLayer::ForwardInference(const Tensor& x,
                                        const std::vector<bool>& mask,
                                        InferenceArena& arena,
                                        Tensor& out) const {
  Tensor& ln1_out = arena.Get(x.rows(), x.cols());
  ln1_.ForwardInference(x, ln1_out);
  Tensor& attn_out = arena.Get(x.rows(), x.cols());
  attn_.ForwardInference(ln1_out, mask, arena, attn_out);
  Tensor& h = arena.Get(x.rows(), x.cols());
  h = x;
  h.Add(attn_out);

  Tensor& ln2_out = arena.Get(h.rows(), h.cols());
  ln2_.ForwardInference(h, ln2_out);
  Tensor& ffn1_out = arena.Get(1, 1);
  ffn1_.ForwardInference(ln2_out, ffn1_out);
  Tensor& gelu_out = arena.Get(1, 1);
  Gelu::ForwardInference(ffn1_out, gelu_out);
  Tensor& ffn2_out = arena.Get(1, 1);
  ffn2_.ForwardInference(gelu_out, ffn2_out);
  out = h;
  out.Add(ffn2_out);
}

Tensor TransformerLayer::Backward(const Tensor& dy) {
  // FFN residual branch.
  Tensor d_ffn = ln2_.Backward(
      ffn1_.Backward(gelu_.Backward(ffn2_.Backward(dy))));
  Tensor dh = dy;
  dh.Add(d_ffn);
  // Attention residual branch.
  Tensor d_attn = ln1_.Backward(attn_.Backward(dh));
  Tensor dx = dh;
  dx.Add(d_attn);
  return dx;
}

void TransformerLayer::CollectParams(std::vector<Param*>& out) {
  ln1_.CollectParams(out);
  ln2_.CollectParams(out);
  attn_.CollectParams(out);
  ffn1_.CollectParams(out);
  ffn2_.CollectParams(out);
}

}  // namespace lshap
