#ifndef LSHAP_ML_ADAM_H_
#define LSHAP_ML_ADAM_H_

#include <vector>

#include "ml/layers.h"

namespace lshap {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  // Global gradient-norm clip; 0 disables clipping.
  float clip_norm = 1.0f;
};

// Adam optimizer with bias correction and global-norm gradient clipping.
// Step() consumes and zeroes the accumulated gradients.
class Adam {
 public:
  Adam(std::vector<Param*> params, const AdamConfig& config);

  void Step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  long t_ = 0;
};

}  // namespace lshap

#endif  // LSHAP_ML_ADAM_H_
