#include "ml/quant.h"

#include <cmath>

#include "common/check.h"

namespace lshap {

namespace {

size_t PadToBlock(size_t n) {
  return (n + kInt8BlockElems - 1) / kInt8BlockElems * kInt8BlockElems;
}

}  // namespace

// ------------------------------------------------------- QuantizedLinear

QuantizedLinear QuantizedLinear::FromFloat(const Tensor& w, const Tensor& b) {
  LSHAP_CHECK_EQ(b.rows(), 1u);
  LSHAP_CHECK_EQ(b.cols(), w.cols());
  QuantizedLinear q;
  q.in_ = w.rows();
  q.out_ = w.cols();
  q.in_pad_ = PadToBlock(q.in_);
  q.scales_.resize(q.out_);
  q.bias_.assign(b.row_data(0), b.row_data(0) + q.out_);
  q.weights_.assign(q.out_ * q.in_pad_, 0);
  for (size_t j = 0; j < q.out_; ++j) {
    float amax = 0.0f;
    for (size_t i = 0; i < q.in_; ++i) {
      amax = std::max(amax, std::fabs(w.at(i, j)));
    }
    if (amax == 0.0f) {
      q.scales_[j] = 0.0f;
      continue;  // channel row stays all-zero
    }
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    q.scales_[j] = scale;
    int8_t* row = q.weights_.data() + j * q.in_pad_;
    for (size_t i = 0; i < q.in_; ++i) {
      float code = std::nearbyint(w.at(i, j) * inv);
      code = std::min(code, 127.0f);
      code = std::max(code, -127.0f);
      row[i] = static_cast<int8_t>(code);
    }
  }
  return q;
}

void QuantizedLinear::Forward(const int8_t* qx, float act_scale,
                              float* y) const {
  const auto& kernels = SimdKernels();
  const int8_t* row = weights_.data();
  for (size_t j = 0; j < out_; ++j, row += in_pad_) {
    const int32_t acc = kernels.dot_i8(qx, row, in_pad_);
    y[j] = static_cast<float>(acc) * (act_scale * scales_[j]) + bias_[j];
  }
}

void QuantizedLinearForward(const QuantizedLinear& lin, const Tensor& x,
                            QuantScratch& scratch, Tensor& y) {
  LSHAP_CHECK_EQ(x.cols(), lin.in());
  y.Resize(x.rows(), lin.out());
  const auto& kernels = SimdKernels();
  int8_t* qx = scratch.Row(lin.in_pad());
  for (size_t r = 0; r < x.rows(); ++r) {
    float act_scale = 0.0f;
    kernels.quantize_row(x.row_data(r), x.cols(), qx, &act_scale);
    lin.Forward(qx, act_scale, y.row_data(r));
  }
}

// ----------------------------------------------------- QuantizedLayerNorm

void QuantizedLayerNorm::Forward(const Tensor& x, Tensor& y) const {
  const size_t n = x.rows();
  const size_t d = x.cols();
  y.Resize(n, d);
  const float* g = gamma.row_data(0);
  const float* b = beta.row_data(0);
  for (size_t r = 0; r < n; ++r) {
    const float* row = x.row_data(r);
    float mean = 0.0f;
    for (size_t c = 0; c < d; ++c) mean += row[c];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      const float diff = row[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rstd = 1.0f / std::sqrt(var + 1e-5f);
    float* out = y.row_data(r);
    for (size_t c = 0; c < d; ++c) {
      out[c] = (row[c] - mean) * rstd * g[c] + b[c];
    }
  }
}

// ----------------------------------------------- QuantizedTransformerLayer

void QuantizedTransformerLayer::Forward(const Tensor& x,
                                        const std::vector<bool>& mask,
                                        QuantScratch& scratch,
                                        Tensor& out) const {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  const auto& kernels = SimdKernels();
  InferenceArena& arena = scratch.arena;

  Tensor& ln1_out = arena.Get(n, dim);
  ln1.Forward(x, ln1_out);

  // One row quantization feeds all three projections.
  Tensor& q = arena.Get(n, dim);
  Tensor& k = arena.Get(n, dim);
  Tensor& v = arena.Get(n, dim);
  {
    int8_t* qx = scratch.Row(q_proj.in_pad());
    for (size_t r = 0; r < n; ++r) {
      float act_scale = 0.0f;
      kernels.quantize_row(ln1_out.row_data(r), dim, qx, &act_scale);
      q_proj.Forward(qx, act_scale, q.row_data(r));
      k_proj.Forward(qx, act_scale, k.row_data(r));
      v_proj.Forward(qx, act_scale, v.row_data(r));
    }
  }

  Tensor& concat = arena.Get(n, dim);
  Tensor& scores = arena.Get(n, n);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (size_t h = 0; h < num_heads; ++h) {
    const size_t off = h * head_dim;
    for (size_t i = 0; i < n; ++i) {
      const float* qi = q.row_data(i) + off;
      float* srow = scores.row_data(i);
      for (size_t j = 0; j < n; ++j) {
        if (!mask[j]) {
          srow[j] = -1e30f;
          continue;
        }
        const float* kj = k.row_data(j) + off;
        float dot = 0.0f;
        for (size_t c = 0; c < head_dim; ++c) dot += qi[c] * kj[c];
        srow[j] = dot * scale;
      }
    }
    for (size_t i = 0; i < n; ++i) kernels.softmax(scores.row_data(i), n);
    for (size_t i = 0; i < n; ++i) {
      const float* arow = scores.row_data(i);
      float* orow = concat.row_data(i) + off;
      for (size_t c = 0; c < head_dim; ++c) orow[c] = 0.0f;
      for (size_t j = 0; j < n; ++j) {
        const float a = arow[j];
        if (a == 0.0f) continue;
        const float* vj = v.row_data(j) + off;
        for (size_t c = 0; c < head_dim; ++c) orow[c] += a * vj[c];
      }
    }
  }

  Tensor& attn_out = arena.Get(n, dim);
  QuantizedLinearForward(out_proj, concat, scratch, attn_out);
  Tensor& h = arena.Get(n, dim);
  h = x;
  h.Add(attn_out);

  Tensor& ln2_out = arena.Get(n, dim);
  ln2.Forward(h, ln2_out);
  Tensor& ffn1_out = arena.Get(1, 1);
  QuantizedLinearForward(ffn1, ln2_out, scratch, ffn1_out);
  kernels.gelu(ffn1_out.data(), ffn1_out.size());
  Tensor& ffn2_out = arena.Get(1, 1);
  QuantizedLinearForward(ffn2, ffn1_out, scratch, ffn2_out);
  out = h;
  out.Add(ffn2_out);
}

// ------------------------------------------------------- QuantizedEncoder

QuantizedEncoder QuantizedEncoder::FromEncoder(const TransformerEncoder& enc) {
  QuantizedEncoder q;
  q.config_ = enc.config();
  q.tok_table_ = enc.tok_emb().table();
  q.pos_table_ = enc.pos_emb().table();
  q.final_ln_.gamma = enc.final_ln().gamma();
  q.final_ln_.beta = enc.final_ln().beta();
  q.layers_.resize(enc.layers().size());
  for (size_t l = 0; l < enc.layers().size(); ++l) {
    const TransformerLayer& src = enc.layers()[l];
    QuantizedTransformerLayer& dst = q.layers_[l];
    dst.ln1.gamma = src.ln1().gamma();
    dst.ln1.beta = src.ln1().beta();
    dst.ln2.gamma = src.ln2().gamma();
    dst.ln2.beta = src.ln2().beta();
    dst.num_heads = src.attn().num_heads();
    dst.head_dim = src.attn().head_dim();
    dst.q_proj = QuantizedLinear::FromFloat(src.attn().q_proj().w().value,
                                            src.attn().q_proj().b().value);
    dst.k_proj = QuantizedLinear::FromFloat(src.attn().k_proj().w().value,
                                            src.attn().k_proj().b().value);
    dst.v_proj = QuantizedLinear::FromFloat(src.attn().v_proj().w().value,
                                            src.attn().v_proj().b().value);
    dst.out_proj = QuantizedLinear::FromFloat(src.attn().out_proj().w().value,
                                              src.attn().out_proj().b().value);
    dst.ffn1 = QuantizedLinear::FromFloat(src.ffn1().w().value,
                                          src.ffn1().b().value);
    dst.ffn2 = QuantizedLinear::FromFloat(src.ffn2().w().value,
                                          src.ffn2().b().value);
  }
  return q;
}

void QuantizedEncoder::Forward(const std::vector<int>& ids,
                               const std::vector<bool>& mask,
                               QuantScratch& scratch, Tensor& out) const {
  LSHAP_CHECK_LE(ids.size(), config_.max_len);
  LSHAP_CHECK_EQ(ids.size(), mask.size());
  const size_t n = ids.size();
  const size_t dim = config_.dim;
  InferenceArena& arena = scratch.arena;
  Tensor& h0 = arena.Get(n, dim);
  for (size_t i = 0; i < n; ++i) {
    LSHAP_CHECK_LT(static_cast<size_t>(ids[i]), tok_table_.rows());
    const float* src = tok_table_.row_data(static_cast<size_t>(ids[i]));
    const float* prow = pos_table_.row_data(i);
    float* dst = h0.row_data(i);
    for (size_t c = 0; c < dim; ++c) dst[c] = src[c] + prow[c];
  }
  const Tensor* cur = &h0;
  for (const auto& layer : layers_) {
    Tensor& next = arena.Get(n, dim);
    layer.Forward(*cur, mask, scratch, next);
    cur = &next;
  }
  final_ln_.Forward(*cur, out);
}

std::vector<const QuantizedLinear*> QuantizedEncoder::AllLinears() const {
  std::vector<const QuantizedLinear*> out;
  for (const auto& l : layers_) {
    out.push_back(&l.q_proj);
    out.push_back(&l.k_proj);
    out.push_back(&l.v_proj);
    out.push_back(&l.out_proj);
    out.push_back(&l.ffn1);
    out.push_back(&l.ffn2);
  }
  return out;
}

std::vector<QuantizedLinear*> QuantizedEncoder::MutableLinears() {
  std::vector<QuantizedLinear*> out;
  for (auto& l : layers_) {
    out.push_back(&l.q_proj);
    out.push_back(&l.k_proj);
    out.push_back(&l.v_proj);
    out.push_back(&l.out_proj);
    out.push_back(&l.ffn1);
    out.push_back(&l.ffn2);
  }
  return out;
}

}  // namespace lshap
