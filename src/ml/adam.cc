#include "ml/adam.h"

#include <cmath>

namespace lshap {

Adam::Adam(std::vector<Param*> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  float scale = 1.0f;
  if (config_.clip_norm > 0.0f) {
    double norm_sq = 0.0;
    for (Param* p : params_) {
      for (size_t i = 0; i < p->grad.size(); ++i) {
        const float g = p->grad.data()[i];
        norm_sq += static_cast<double>(g) * g;
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.clip_norm) {
      scale = config_.clip_norm / static_cast<float>(norm);
    }
  }
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float grad = g[i] * scale;
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
    p->grad.Zero();
  }
}

}  // namespace lshap
