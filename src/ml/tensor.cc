#include "ml/tensor.h"

#include <algorithm>

namespace lshap {

Tensor Tensor::Randn(size_t rows, size_t cols, float stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return t;
}

void Tensor::Add(const Tensor& other) {
  LSHAP_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  LSHAP_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulInto(a, b, c);
  return c;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor& c) {
  LSHAP_CHECK_EQ(a.cols(), b.rows());
  c.Resize(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    float* crow = c.row_data(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row_data(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor MatMulATB(const Tensor& a, const Tensor& b) {
  LSHAP_CHECK_EQ(a.rows(), b.rows());
  Tensor c(a.cols(), b.cols());
  const size_t k = a.rows();
  const size_t n = a.cols();
  const size_t m = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.row_data(p);
    const float* brow = b.row_data(p);
    for (size_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row_data(i);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulABT(const Tensor& a, const Tensor& b) {
  LSHAP_CHECK_EQ(a.cols(), b.cols());
  Tensor c(a.rows(), b.rows());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    float* crow = c.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.row_data(j);
      float dot = 0.0f;
      for (size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
  return c;
}

void AddRowBroadcast(Tensor& a, const Tensor& bias) {
  LSHAP_CHECK_EQ(bias.rows(), 1u);
  LSHAP_CHECK_EQ(bias.cols(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = a.row_data(r);
    const float* b = bias.row_data(0);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += b[c];
  }
}

}  // namespace lshap
