#ifndef LSHAP_EVAL_JOIN_INDEX_H_
#define LSHAP_EVAL_JOIN_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "relational/column.h"
#include "relational/tuple.h"

namespace lshap {

// A flat open-addressing hash index over one join key column, built once per
// join step and then probed read-only (concurrently, from morsel workers).
//
// Layout: a power-of-two array of 16-byte buckets (key word, payload offset,
// payload count) probed linearly at load factor <= 0.5, plus one contiguous
// payload array holding the row ids of every key group back to back. A probe
// is: mix the key, walk at most a couple of buckets in one cache line stride,
// and return a [begin, end) slice of the payload — no per-node allocation,
// no pointer chasing through std::unordered_multimap's bucket lists.
//
// Rows within a key group keep the order they were inserted in (ascending
// surviving-row order), so iterating a probe result enumerates matches in
// exactly the order the serial row-at-a-time join produced them.
class FlatJoinIndex {
 public:
  // Builds the index over `col`'s key words at the given row ids.
  void Build(const ColumnData& col, const std::vector<uint32_t>& rows) {
    const size_t n = rows.size();
    payload_.resize(n);
    size_t cap = 16;
    while (cap < n * 2) cap <<= 1;
    buckets_.assign(cap, Bucket{});
    mask_ = cap - 1;
    keys_scratch_.resize(n);
    col.KeyWords(rows.data(), n, keys_scratch_.data());
    // Pass 1: count group sizes per distinct key.
    num_keys_ = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t b = StartBucket(keys_scratch_[i]);
      while (buckets_[b].count != 0 && buckets_[b].key != keys_scratch_[i]) {
        b = (b + 1) & mask_;
      }
      if (buckets_[b].count == 0) ++num_keys_;
      buckets_[b].key = keys_scratch_[i];
      ++buckets_[b].count;
    }
    // Prefix-sum the counts into payload offsets.
    uint32_t off = 0;
    for (Bucket& bk : buckets_) {
      if (bk.count == 0) continue;
      bk.offset = off;
      off += bk.count;
    }
    // Pass 2: scatter row ids, using offset as a running cursor and then
    // rewinding it by count to recover each group's start.
    for (size_t i = 0; i < n; ++i) {
      size_t b = StartBucket(keys_scratch_[i]);
      while (buckets_[b].key != keys_scratch_[i]) b = (b + 1) & mask_;
      payload_[buckets_[b].offset++] = rows[i];
    }
    for (Bucket& bk : buckets_) {
      if (bk.count != 0) bk.offset -= bk.count;
    }
  }

  // First candidate bucket for `key`; feed to Prefetch and ProbeFrom so the
  // hash is computed once per probe in the batched loop.
  size_t StartBucket(uint64_t key) const {
    return static_cast<size_t>(MixWord(key)) & mask_;
  }

  void Prefetch(size_t bucket) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&buckets_[bucket]);
#else
    (void)bucket;
#endif
  }

  struct Range {
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
  };

  // Linear probe starting at `bucket` (from StartBucket(key)): the matching
  // key group as a payload slice, or an empty range if the key is absent.
  Range ProbeFrom(size_t bucket, uint64_t key) const {
    for (;;) {
      const Bucket& bk = buckets_[bucket];
      if (bk.count == 0) return {};
      if (bk.key == key) {
        const uint32_t* base = payload_.data() + bk.offset;
        return {base, base + bk.count};
      }
      bucket = (bucket + 1) & mask_;
    }
  }

  Range Probe(uint64_t key) const { return ProbeFrom(StartBucket(key), key); }

  // Shape of the last Build, for occupancy metrics: bucket-array size,
  // distinct key groups, and indexed rows.
  size_t num_buckets() const { return buckets_.size(); }
  size_t num_keys() const { return num_keys_; }
  size_t num_rows() const { return payload_.size(); }

 private:
  struct Bucket {
    uint64_t key = 0;
    uint32_t offset = 0;
    uint32_t count = 0;  // 0 marks an empty bucket
  };

  std::vector<Bucket> buckets_;
  std::vector<uint32_t> payload_;
  std::vector<uint64_t> keys_scratch_;  // build-time only, reused across Builds
  size_t mask_ = 0;
  size_t num_keys_ = 0;
};

}  // namespace lshap

#endif  // LSHAP_EVAL_JOIN_INDEX_H_
