#include "eval/evaluator.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

namespace {

// One partial join result: per joined table, the row index (position in the
// block's table order) and the accumulated derivation facts.
struct PartialRow {
  std::vector<uint32_t> row_indices;  // parallel to joined table order
  std::vector<FactId> facts;          // sorted
};

struct BoundTable {
  std::string name;
  const Table* table = nullptr;
  std::vector<uint32_t> surviving_rows;  // rows passing local selections
};

}  // namespace

bool MatchesPredicate(const Value& value, CompareOp op, const Value& literal) {
  if (value.is_null() || literal.is_null()) return false;
  if (op == CompareOp::kStartsWith) {
    if (!value.is_string() || !literal.is_string()) return false;
    return StartsWith(value.AsString(), literal.AsString());
  }
  int cmp;
  if (value.is_string() && literal.is_string()) {
    cmp = value.AsString().compare(literal.AsString());
  } else if (!value.is_string() && !literal.is_string()) {
    const double a = value.AsDouble();
    const double b = literal.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    return false;  // type mismatch never matches
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kStartsWith:
      return false;  // handled above
  }
  return false;
}

namespace {

Status EvaluateBlock(const Database& db, const SpjBlock& block,
                     ProvenanceCapture capture, EvalResult& result,
                     std::vector<std::vector<Clause>>& pending_clauses) {
  if (block.tables.empty()) {
    return Status::InvalidArgument("SPJ block with empty FROM clause");
  }
  {
    std::set<std::string> unique(block.tables.begin(), block.tables.end());
    if (unique.size() != block.tables.size()) {
      return Status::InvalidArgument(
          "repeated table in FROM clause (self-joins unsupported)");
    }
  }

  // Bind tables and pre-filter with local selections.
  std::vector<BoundTable> bound(block.tables.size());
  std::unordered_map<std::string, size_t> table_pos;
  for (size_t i = 0; i < block.tables.size(); ++i) {
    bound[i].name = block.tables[i];
    auto t = db.FindTable(block.tables[i]);
    if (!t.ok()) return t.status();
    bound[i].table = *t;
    table_pos[block.tables[i]] = i;
  }

  // Validate join and selection column references and collect per-table
  // selections.
  std::vector<std::vector<const Selection*>> local_sels(block.tables.size());
  for (const auto& sel : block.selections) {
    auto pos = table_pos.find(sel.column.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("selection on unjoined table '" +
                                     sel.column.table + "'");
    }
    auto col = bound[pos->second].table->schema().ColumnIndex(sel.column.column);
    if (!col.ok()) return col.status();
    local_sels[pos->second].push_back(&sel);
  }
  for (const auto& join : block.joins) {
    for (const ColumnRef* ref : {&join.left, &join.right}) {
      auto pos = table_pos.find(ref->table);
      if (pos == table_pos.end()) {
        return Status::InvalidArgument("join on unjoined table '" +
                                       ref->table + "'");
      }
      auto col = bound[pos->second].table->schema().ColumnIndex(ref->column);
      if (!col.ok()) return col.status();
    }
  }
  for (const auto& proj : block.projections) {
    auto pos = table_pos.find(proj.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("projection on unjoined table '" +
                                     proj.table + "'");
    }
    auto col = bound[pos->second].table->schema().ColumnIndex(proj.column);
    if (!col.ok()) return col.status();
  }

  for (size_t i = 0; i < bound.size(); ++i) {
    const Table* t = bound[i].table;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      bool pass = true;
      for (const Selection* sel : local_sels[i]) {
        const size_t col = t->schema().ColumnIndex(sel->column.column).value();
        if (!MatchesPredicate(t->row(r)[col], sel->op, sel->literal)) {
          pass = false;
          break;
        }
      }
      if (pass) bound[i].surviving_rows.push_back(r);
    }
    if (bound[i].surviving_rows.empty()) return Status::Ok();  // empty result
  }

  // Greedy join order: start from the block's first table, repeatedly add a
  // table connected to the current set (falling back to a cross product).
  std::vector<size_t> order;
  std::vector<bool> placed(bound.size(), false);
  order.push_back(0);
  placed[0] = true;
  auto connected = [&](size_t cand) {
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      if ((l == cand && placed[r]) || (r == cand && placed[l])) return true;
    }
    return false;
  };
  while (order.size() < bound.size()) {
    size_t pick = bound.size();
    for (size_t i = 0; i < bound.size(); ++i) {
      if (!placed[i] && connected(i)) {
        pick = i;
        break;
      }
    }
    if (pick == bound.size()) {
      for (size_t i = 0; i < bound.size(); ++i) {
        if (!placed[i]) {
          pick = i;
          break;
        }
      }
    }
    placed[pick] = true;
    order.push_back(pick);
  }

  // Position of each table in the join order (for row_indices layout).
  std::vector<size_t> order_pos(bound.size());
  for (size_t i = 0; i < order.size(); ++i) order_pos[order[i]] = i;

  // Seed with the first table's surviving rows.
  const bool track_facts = capture != ProvenanceCapture::kNone;
  std::vector<PartialRow> current;
  {
    const BoundTable& bt = bound[order[0]];
    current.reserve(bt.surviving_rows.size());
    for (uint32_t r : bt.surviving_rows) {
      PartialRow pr;
      pr.row_indices = {r};
      if (track_facts) pr.facts = {bt.table->fact_id(r)};
      current.push_back(std::move(pr));
    }
  }

  // Join in the remaining tables one by one.
  for (size_t step = 1; step < order.size(); ++step) {
    const size_t ti = order[step];
    const BoundTable& bt = bound[ti];

    // Join predicates between the new table and already-placed tables.
    struct JoinKeyPart {
      size_t placed_order_pos;    // which earlier table
      size_t placed_col;          // its column
      size_t new_col;             // new table's column
    };
    std::vector<JoinKeyPart> key_parts;
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      size_t other;
      const ColumnRef* new_ref;
      const ColumnRef* old_ref;
      if (l == ti && order_pos[r] < step) {
        other = r;
        new_ref = &join.left;
        old_ref = &join.right;
      } else if (r == ti && order_pos[l] < step) {
        other = l;
        new_ref = &join.right;
        old_ref = &join.left;
      } else {
        continue;
      }
      key_parts.push_back(
          {order_pos[other],
           bound[other].table->schema().ColumnIndex(old_ref->column).value(),
           bt.table->schema().ColumnIndex(new_ref->column).value()});
    }

    std::vector<PartialRow> next;
    if (key_parts.empty()) {
      // Cross product (rare; disconnected query).
      next.reserve(current.size() * bt.surviving_rows.size());
      for (const auto& pr : current) {
        for (uint32_t r : bt.surviving_rows) {
          PartialRow np = pr;
          np.row_indices.push_back(r);
          if (track_facts) {
            const FactId f = bt.table->fact_id(r);
            np.facts.insert(
                std::upper_bound(np.facts.begin(), np.facts.end(), f), f);
          }
          next.push_back(std::move(np));
        }
      }
    } else {
      // Hash the new table on the first key part; verify the rest.
      std::unordered_multimap<size_t, uint32_t> index;
      index.reserve(bt.surviving_rows.size());
      for (uint32_t r : bt.surviving_rows) {
        index.emplace(bt.table->row(r)[key_parts[0].new_col].Hash(), r);
      }
      for (const auto& pr : current) {
        const size_t probe_order_pos = key_parts[0].placed_order_pos;
        const size_t probe_table = order[probe_order_pos];
        const Value& probe_val =
            bound[probe_table].table->row(pr.row_indices[probe_order_pos])
                [key_parts[0].placed_col];
        auto range = index.equal_range(probe_val.Hash());
        for (auto it = range.first; it != range.second; ++it) {
          const uint32_t r = it->second;
          if (bt.table->row(r)[key_parts[0].new_col] != probe_val) continue;
          bool all_match = true;
          for (size_t kp = 1; kp < key_parts.size(); ++kp) {
            const auto& part = key_parts[kp];
            const size_t pt = order[part.placed_order_pos];
            const Value& lhs =
                bound[pt].table->row(pr.row_indices[part.placed_order_pos])
                    [part.placed_col];
            if (bt.table->row(r)[part.new_col] != lhs) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;
          PartialRow np = pr;
          np.row_indices.push_back(r);
          if (track_facts) {
            const FactId f = bt.table->fact_id(r);
            np.facts.insert(
                std::upper_bound(np.facts.begin(), np.facts.end(), f), f);
          }
          next.push_back(std::move(np));
        }
      }
    }
    current = std::move(next);
    if (current.empty()) return Status::Ok();
  }

  // Project with DISTINCT, accumulating one derivation clause per joined row.
  struct ProjCol {
    size_t order_pos;
    size_t col;
  };
  std::vector<ProjCol> proj_cols;
  proj_cols.reserve(block.projections.size());
  for (const auto& proj : block.projections) {
    const size_t ti = table_pos.at(proj.table);
    proj_cols.push_back(
        {order_pos[ti],
         bound[ti].table->schema().ColumnIndex(proj.column).value()});
  }

  for (const auto& pr : current) {
    OutputTuple tuple;
    tuple.reserve(proj_cols.size());
    for (const auto& pc : proj_cols) {
      const size_t ti = order[pc.order_pos];
      tuple.push_back(bound[ti].table->row(pr.row_indices[pc.order_pos])
                          [pc.col]);
    }
    auto [it, inserted] =
        result.index.emplace(tuple, result.tuples.size());
    if (inserted) {
      result.tuples.push_back(std::move(tuple));
      pending_clauses.emplace_back();
      if (capture == ProvenanceCapture::kLineageOnly) {
        result.lineages.emplace_back();
      }
    }
    switch (capture) {
      case ProvenanceCapture::kNone:
        break;
      case ProvenanceCapture::kLineageOnly: {
        // Merge the derivation's facts into the lineage set (kept sorted).
        std::vector<FactId>& lineage = result.lineages[it->second];
        std::vector<FactId> merged;
        merged.reserve(lineage.size() + pr.facts.size());
        std::set_union(lineage.begin(), lineage.end(), pr.facts.begin(),
                       pr.facts.end(), std::back_inserter(merged));
        lineage = std::move(merged);
        break;
      }
      case ProvenanceCapture::kFull:
        pending_clauses[it->second].push_back(pr.facts);
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            ProvenanceCapture capture) {
  EvalResult result;
  if (q.blocks.empty()) {
    return Status::InvalidArgument("query with no SPJ blocks");
  }
  std::vector<std::vector<Clause>> pending_clauses;
  for (const auto& block : q.blocks) {
    Status s = EvaluateBlock(db, block, capture, result, pending_clauses);
    if (!s.ok()) return s;
  }
  if (capture == ProvenanceCapture::kFull) {
    result.provenance.reserve(pending_clauses.size());
    for (auto& clauses : pending_clauses) {
      result.provenance.emplace_back(std::move(clauses));
    }
  }
  return result;
}

}  // namespace lshap
