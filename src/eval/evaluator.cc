#include "eval/evaluator.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <iterator>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "eval/join_index.h"

namespace lshap {

namespace {

// One partial join result: per joined table, the row index (position in the
// block's table order) and the accumulated derivation facts.
struct PartialRow {
  std::vector<uint32_t> row_indices;  // parallel to joined table order
  std::vector<FactId> facts;          // sorted
};

// The evaluator's metric handles, resolved once per Evaluate call (registry
// lookups take a mutex — never in a hot loop). Default-constructed = all
// no-op, the metrics-off path. Counts are per-scan / per-join-step /
// per-block, never per row, and are identical at every thread count because
// they are computed from the same deterministic sizes the merge discipline
// pins down.
struct EvalMetricSet {
  Counter queries, blocks, rows_scanned, sel_rank_path, sel_text_fallback,
      morsels, index_builds, cross_products, rows_probed, probe_batches,
      join_output_rows, output_tuples;
  Histogram query_seconds, index_occupancy;

  EvalMetricSet() = default;
  explicit EvalMetricSet(MetricsRegistry* r)
      : queries(CounterFor(r, "eval.queries")),
        blocks(CounterFor(r, "eval.blocks")),
        rows_scanned(CounterFor(r, "eval.rows_scanned")),
        sel_rank_path(CounterFor(r, "eval.sel_rank_path")),
        sel_text_fallback(CounterFor(r, "eval.sel_text_fallback")),
        morsels(CounterFor(r, "eval.morsels")),
        index_builds(CounterFor(r, "eval.join.index_builds")),
        cross_products(CounterFor(r, "eval.join.cross_products")),
        rows_probed(CounterFor(r, "eval.join.rows_probed")),
        probe_batches(CounterFor(r, "eval.join.probe_batches")),
        join_output_rows(CounterFor(r, "eval.join.output_rows")),
        output_tuples(CounterFor(r, "eval.output_tuples")),
        query_seconds(HistogramFor(r, "eval.query_seconds",
                                   ExponentialBuckets(1e-5, 4.0, 12))),
        index_occupancy(HistogramFor(
            r, "eval.join.index_occupancy",
            {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0})) {}
};

// How the scan/probe/project phases split their input rows into morsels.
// Each phase plans against its own input size, runs one body per contiguous
// row range, and merges per-morsel outputs in morsel order — which is the
// whole determinism story: concatenating range results in range order is
// exactly what one serial pass over the input produces, so the parallel
// result is byte-identical to the serial one at any thread count.
struct EvalContext {
  ThreadPool* pool = nullptr;
  size_t morsel_rows = 4096;
  size_t min_parallel_rows = 4096;
  bool use_string_ranks = true;
  MetricsRegistry* registry = nullptr;  // span parent for phase timers
  EvalMetricSet metrics;

  struct Plan {
    size_t count = 1;  // number of morsels
    size_t grain = 0;  // rows per morsel
  };

  Plan PlanMorsels(size_t n) const {
    const size_t grain = std::max<size_t>(1, morsel_rows);
    if (pool == nullptr || n < min_parallel_rows || n <= grain) {
      return {1, n};
    }
    return {(n + grain - 1) / grain, grain};
  }

  // Runs body(morsel, begin, end) over ranges covering [0, n): inline for a
  // single morsel, dispatched on the pool otherwise.
  void Run(size_t n, const Plan& plan,
           const std::function<void(size_t, size_t, size_t)>& body) const {
    metrics.morsels.Inc(plan.count);
    if (plan.count == 1) {
      body(0, 0, n);
      return;
    }
    ParallelForRanges(*pool, n, plan.grain, body);
  }
};

// a * b, saturating at size_t max instead of wrapping.
size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<size_t>::max() / b) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

// Cap on speculative vector reservations (rows). Estimates above this —
// e.g. the cross-product of an adversarial disconnected query, whose exact
// size can overflow size_t — fall back to geometric growth past the cap
// instead of attempting one huge up-front allocation.
constexpr size_t kMaxReserveRows = size_t{1} << 20;

struct BoundTable {
  std::string name;
  const Table* table = nullptr;
  std::vector<uint32_t> surviving_rows;  // rows passing local selections
};

// A selection compiled once per (block, table) against the columnar
// storage. The literal is resolved up front: numeric literals to a double,
// string-equality literals to their interned id (a literal absent from the
// pool can match no cell — or every cell, under kNe), and ordered/prefix
// string literals to a lexicographic rank interval when the pool's order
// sidecar is fresh (binary search once at compile time, integer compares
// per cell at scan time).
struct CompiledSel {
  enum class Kind {
    kNever,         // type mismatch / null literal / empty rank interval
    kAlways,        // kNe on an absent string / full rank interval
    kNumeric,       // double comparison (ints promote)
    kStringId,      // kEq/kNe by interned id
    kStringRank,    // kLt/kLe/kGt/kGe/kStartsWith as a rank interval
    kStringOrder,   // kLt/kLe/kGt/kGe by text (stale-sidecar fallback)
    kStringPrefix,  // kStartsWith by text (stale-sidecar fallback)
  };
  Kind kind = Kind::kNever;
  const ColumnData* col = nullptr;
  CompareOp op = CompareOp::kEq;
  double num = 0.0;                    // kNumeric
  StringId id = kInvalidStringId;      // kStringId
  const std::string* text = nullptr;   // kStringOrder / kStringPrefix
  const uint32_t* ranks = nullptr;     // kStringRank: id -> lex rank
  uint32_t rank_lo = 0;                // kStringRank: interval [lo, hi)
  uint32_t rank_hi = 0;
};

// Resolves an ordered/prefix string predicate to the half-open rank
// interval its matches occupy in the pool's lexicographic order. Matching
// rows are exactly those whose cell rank lands in [lo, hi).
std::pair<uint32_t, uint32_t> RankInterval(const StringPool& pool,
                                           CompareOp op,
                                           const std::string& text) {
  const uint32_t n = static_cast<uint32_t>(pool.size());
  switch (op) {
    case CompareOp::kLt:
      return {0, pool.RankLowerBound(text)};
    case CompareOp::kLe:
      return {0, pool.RankUpperBound(text)};
    case CompareOp::kGt:
      return {pool.RankUpperBound(text), n};
    case CompareOp::kGe:
      return {pool.RankLowerBound(text), n};
    case CompareOp::kStartsWith:
      return pool.PrefixRankRange(text);
    default:
      LSHAP_CHECK(false);
      return {0, 0};
  }
}

CompiledSel CompileSel(const Selection& sel, const ColumnData& col,
                       const StringPool& pool, bool use_ranks) {
  CompiledSel c;
  c.col = &col;
  c.op = sel.op;
  const Value& lit = sel.literal;
  // A NULL literal compares unknown to every cell (even another NULL), and
  // only true survives a selection — so the whole scan compiles to kNever.
  if (lit.is_null()) return c;
  const bool col_is_string = col.type() == ColumnType::kString;
  // Ordered and prefix predicates on a fresh pool compile to one rank
  // interval; degenerate intervals collapse to kNever/kAlways so the scan
  // loop never runs for them.
  const auto compile_rank = [&](CompiledSel& out) {
    const auto [lo, hi] = RankInterval(pool, sel.op, lit.AsString());
    if (lo >= hi) {
      out.kind = CompiledSel::Kind::kNever;
    } else if (lo == 0 && hi == pool.size()) {
      out.kind = CompiledSel::Kind::kAlways;
    } else {
      out.kind = CompiledSel::Kind::kStringRank;
      out.ranks = pool.ranks().data();
      out.rank_lo = lo;
      out.rank_hi = hi;
    }
  };
  const bool ranks_usable = use_ranks && pool.OrderIndexFresh();
  if (sel.op == CompareOp::kStartsWith) {
    if (!col_is_string || !lit.is_string()) return c;
    if (ranks_usable) {
      compile_rank(c);
    } else {
      c.kind = CompiledSel::Kind::kStringPrefix;
      c.text = &lit.AsString();
    }
    return c;
  }
  if (col_is_string != lit.is_string()) return c;  // mixed types never match
  if (!col_is_string) {
    c.kind = CompiledSel::Kind::kNumeric;
    c.num = lit.AsDouble();
    return c;
  }
  if (sel.op == CompareOp::kEq || sel.op == CompareOp::kNe) {
    c.id = pool.Find(lit.AsString());
    if (c.id == kInvalidStringId) {
      // The literal names a string no fact contains.
      c.kind = sel.op == CompareOp::kEq ? CompiledSel::Kind::kNever
                                        : CompiledSel::Kind::kAlways;
    } else {
      c.kind = CompiledSel::Kind::kStringId;
    }
    return c;
  }
  if (ranks_usable) {
    compile_rank(c);
    return c;
  }
  c.kind = CompiledSel::Kind::kStringOrder;
  c.text = &lit.AsString();
  return c;
}

bool CompareMatches(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kStartsWith:
      return false;
  }
  return false;
}

// Runs `pred(row)` column-at-a-time: over all `n` rows when `rows` is empty
// and this is the first selection, otherwise compacting the survivor list.
// Large inputs scan in parallel morsels; per-morsel survivor lists are
// concatenated in morsel order, matching the serial scan's output exactly.
template <typename Pred>
void ScanRows(const EvalContext& ctx, size_t n, bool first,
              std::vector<uint32_t>& rows, Pred pred) {
  const size_t domain = first ? n : rows.size();
  ctx.metrics.rows_scanned.Inc(domain);
  const EvalContext::Plan plan = ctx.PlanMorsels(domain);
  if (plan.count == 1) {
    if (first) {
      rows.reserve(n);
      for (uint32_t r = 0; r < n; ++r) {
        if (pred(r)) rows.push_back(r);
      }
      return;
    }
    size_t kept = 0;
    for (uint32_t r : rows) {
      if (pred(r)) rows[kept++] = r;
    }
    rows.resize(kept);
    return;
  }
  std::vector<std::vector<uint32_t>> parts(plan.count);
  ctx.Run(domain, plan, [&](size_t m, size_t lo, size_t hi) {
    std::vector<uint32_t>& out = parts[m];
    if (first) {
      for (size_t r = lo; r < hi; ++r) {
        if (pred(static_cast<uint32_t>(r))) {
          out.push_back(static_cast<uint32_t>(r));
        }
      }
    } else {
      for (size_t i = lo; i < hi; ++i) {
        if (pred(rows[i])) out.push_back(rows[i]);
      }
    }
  });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> merged;
  merged.reserve(total);
  for (const auto& p : parts) merged.insert(merged.end(), p.begin(), p.end());
  rows = std::move(merged);
}

// ScanRows with three-valued null handling: a predicate on a NULL cell is
// unknown, and only true survives, so null rows never pass. The all-valid
// case (the overwhelmingly common one) dispatches to the exact pre-null flat
// loop — the has_nulls() test is once per scan, not per row. The validity
// test short-circuits BEFORE `pred` runs, which is load-bearing: predicates
// like the rank-interval scan dereference per-cell payloads (ranks[ids[r]])
// that are placeholder garbage on null rows.
template <typename Pred>
void ScanRowsNullable(const EvalContext& ctx, const ColumnData& col, size_t n,
                      bool first, std::vector<uint32_t>& rows, Pred pred) {
  if (!col.has_nulls()) {
    ScanRows(ctx, n, first, rows, pred);
    return;
  }
  ScanRows(ctx, n, first, rows,
           [&](uint32_t r) { return col.valid(r) && pred(r); });
}

template <typename T>
void NumericScan(const EvalContext& ctx, const ColumnData& col,
                 const std::vector<T>& data, CompareOp op, double lit,
                 bool first, std::vector<uint32_t>& rows) {
  switch (op) {
    case CompareOp::kEq:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) == lit; });
      break;
    case CompareOp::kNe:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) != lit; });
      break;
    case CompareOp::kLt:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) < lit; });
      break;
    case CompareOp::kLe:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) <= lit; });
      break;
    case CompareOp::kGt:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) > lit; });
      break;
    case CompareOp::kGe:
      ScanRowsNullable(ctx, col, data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) >= lit; });
      break;
    case CompareOp::kStartsWith:
      rows.clear();
      break;
  }
}

// Applies one compiled selection; `first` means no selection has run yet
// (rows is still empty and implicitly "all").
void ApplySel(const EvalContext& ctx, const CompiledSel& sel,
              const StringPool& pool, bool first,
              std::vector<uint32_t>& rows) {
  const ColumnData& col = *sel.col;
  const size_t n = col.size();
  switch (sel.kind) {
    case CompiledSel::Kind::kNever:
      rows.clear();
      if (first) rows.shrink_to_fit();
      break;
    case CompiledSel::Kind::kAlways:
      // "Always" means "true for every possible cell VALUE" (kNe against an
      // absent string, a full rank interval) — a NULL cell still compares
      // unknown, so null rows must be filtered even here.
      if (col.has_nulls()) {
        ScanRows(ctx, n, first, rows,
                 [&](uint32_t r) { return col.valid(r); });
      } else if (first) {
        rows.resize(n);
        for (uint32_t r = 0; r < n; ++r) rows[r] = r;
      }
      break;
    case CompiledSel::Kind::kNumeric:
      if (col.type() == ColumnType::kInt) {
        NumericScan(ctx, col, col.ints(), sel.op, sel.num, first, rows);
      } else {
        NumericScan(ctx, col, col.doubles(), sel.op, sel.num, first, rows);
      }
      break;
    case CompiledSel::Kind::kStringId: {
      const auto& ids = col.string_ids();
      if (sel.op == CompareOp::kEq) {
        ScanRowsNullable(ctx, col, n, first, rows,
                 [&](uint32_t r) { return ids[r] == sel.id; });
      } else {
        ScanRowsNullable(ctx, col, n, first, rows,
                 [&](uint32_t r) { return ids[r] != sel.id; });
      }
      break;
    }
    case CompiledSel::Kind::kStringRank: {
      // One load + one unsigned compare per cell: rank in [lo, hi) iff
      // (rank - lo) < (hi - lo) with wraparound doing the lower-bound test.
      // Null rows must short-circuit before the ranks[ids[r]] load — the
      // placeholder id does not name a pooled string (ScanRowsNullable
      // guarantees the ordering).
      ctx.metrics.sel_rank_path.Inc();
      const auto& ids = col.string_ids();
      const uint32_t* ranks = sel.ranks;
      const uint32_t lo = sel.rank_lo;
      const uint32_t width = sel.rank_hi - sel.rank_lo;
      ScanRowsNullable(ctx, col, n, first, rows, [&](uint32_t r) {
        return static_cast<uint32_t>(ranks[ids[r]] - lo) < width;
      });
      break;
    }
    case CompiledSel::Kind::kStringOrder: {
      ctx.metrics.sel_text_fallback.Inc();
      const auto& ids = col.string_ids();
      ScanRowsNullable(ctx, col, n, first, rows, [&](uint32_t r) {
        return CompareMatches(pool.Get(ids[r]).compare(*sel.text), sel.op);
      });
      break;
    }
    case CompiledSel::Kind::kStringPrefix: {
      ctx.metrics.sel_text_fallback.Inc();
      const auto& ids = col.string_ids();
      ScanRowsNullable(ctx, col, n, first, rows, [&](uint32_t r) {
        return StartsWith(pool.Get(ids[r]), *sel.text);
      });
      break;
    }
  }
}

// Copies `pr` extended with new-table row `r` (and, when `table` is
// non-null, with the row's fact id spliced into the sorted fact set). The
// exact-size single-pass copies replace copy-then-push_back + sorted insert,
// which reallocated and shifted on the join hot path.
PartialRow ExtendRow(const PartialRow& pr, uint32_t r, const Table* table) {
  PartialRow np;
  np.row_indices.reserve(pr.row_indices.size() + 1);
  np.row_indices.insert(np.row_indices.end(), pr.row_indices.begin(),
                        pr.row_indices.end());
  np.row_indices.push_back(r);
  if (table != nullptr) {
    const FactId f = table->fact_id(r);
    const auto pos = std::upper_bound(pr.facts.begin(), pr.facts.end(), f);
    np.facts.reserve(pr.facts.size() + 1);
    np.facts.insert(np.facts.end(), pr.facts.begin(), pos);
    np.facts.push_back(f);
    np.facts.insert(np.facts.end(), pos, pr.facts.end());
  }
  return np;
}

// Moves per-morsel join outputs into `next` in morsel order — the
// concatenation equals one serial pass over the probe input.
void MergeJoinParts(std::vector<std::vector<PartialRow>>& parts,
                    std::vector<PartialRow>& next) {
  if (parts.size() == 1) {
    next = std::move(parts[0]);
    return;
  }
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  next.clear();
  next.reserve(total);
  for (auto& p : parts) {
    for (auto& pr : p) next.push_back(std::move(pr));
  }
}

}  // namespace

TriBool MatchesPredicate3(const Value& value, CompareOp op,
                          const Value& literal) {
  // SQL comparison semantics: NULL on either side makes the comparison
  // unknown, for every operator — notably kNe (NULL != x is NOT true).
  if (value.is_null() || literal.is_null()) return TriBool::kUnknown;
  if (op == CompareOp::kStartsWith) {
    if (!value.is_string() || !literal.is_string()) return TriBool::kFalse;
    return StartsWith(value.AsString(), literal.AsString()) ? TriBool::kTrue
                                                            : TriBool::kFalse;
  }
  int cmp;
  if (value.is_string() && literal.is_string()) {
    cmp = value.AsString().compare(literal.AsString());
  } else if (!value.is_string() && !literal.is_string()) {
    const double a = value.AsDouble();
    const double b = literal.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    // A definite type mismatch between two non-null cells is definitely
    // false, not unknown — there is no missing information.
    return TriBool::kFalse;
  }
  return CompareMatches(cmp, op) ? TriBool::kTrue : TriBool::kFalse;
}

namespace {

Status EvaluateBlock(const Database& db, const SpjBlock& block,
                     ProvenanceCapture capture, const EvalContext& ctx,
                     EvalResult& result,
                     std::vector<std::vector<Clause>>& pending_clauses) {
  ctx.metrics.blocks.Inc();
  if (block.tables.empty()) {
    return Status::InvalidArgument("SPJ block with empty FROM clause");
  }
  {
    std::set<std::string> unique(block.tables.begin(), block.tables.end());
    if (unique.size() != block.tables.size()) {
      return Status::InvalidArgument(
          "repeated table in FROM clause (self-joins unsupported)");
    }
  }
  const StringPool& pool = db.string_pool();

  // Bind tables.
  std::vector<BoundTable> bound(block.tables.size());
  std::unordered_map<std::string, size_t> table_pos;
  for (size_t i = 0; i < block.tables.size(); ++i) {
    bound[i].name = block.tables[i];
    auto t = db.FindTable(block.tables[i]);
    if (!t.ok()) return t.status();
    bound[i].table = *t;
    table_pos[block.tables[i]] = i;
  }

  // Validate join and selection column references; compile selections per
  // table against their columns (interning lookups happen once, here).
  std::vector<std::vector<CompiledSel>> local_sels(block.tables.size());
  for (const auto& sel : block.selections) {
    auto pos = table_pos.find(sel.column.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("selection on unjoined table '" +
                                     sel.column.table + "'");
    }
    const Table& t = *bound[pos->second].table;
    auto col = t.schema().ColumnIndex(sel.column.column);
    if (!col.ok()) return col.status();
    local_sels[pos->second].push_back(
        CompileSel(sel, t.column(*col), pool, ctx.use_string_ranks));
  }
  for (const auto& join : block.joins) {
    for (const ColumnRef* ref : {&join.left, &join.right}) {
      auto pos = table_pos.find(ref->table);
      if (pos == table_pos.end()) {
        return Status::InvalidArgument("join on unjoined table '" +
                                       ref->table + "'");
      }
      auto col = bound[pos->second].table->schema().ColumnIndex(ref->column);
      if (!col.ok()) return col.status();
    }
  }
  for (const auto& proj : block.projections) {
    auto pos = table_pos.find(proj.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("projection on unjoined table '" +
                                     proj.table + "'");
    }
    auto col = bound[pos->second].table->schema().ColumnIndex(proj.column);
    if (!col.ok()) return col.status();
  }

  // Local selections, column-at-a-time.
  {
    ScopedSpan scan_span(ctx.registry, "eval.scan");
    for (size_t i = 0; i < bound.size(); ++i) {
      const Table* t = bound[i].table;
      std::vector<uint32_t>& rows = bound[i].surviving_rows;
      if (local_sels[i].empty()) {
        rows.resize(t->num_rows());
        for (uint32_t r = 0; r < t->num_rows(); ++r) rows[r] = r;
      } else {
        for (size_t s = 0; s < local_sels[i].size(); ++s) {
          ApplySel(ctx, local_sels[i][s], pool, /*first=*/s == 0, rows);
          if (rows.empty()) break;
        }
      }
      if (rows.empty()) return Status::Ok();  // empty result
    }
  }

  // Greedy join order: start from the block's first table, repeatedly add a
  // table connected to the current set (falling back to a cross product).
  std::vector<size_t> order;
  std::vector<bool> placed(bound.size(), false);
  order.push_back(0);
  placed[0] = true;
  auto connected = [&](size_t cand) {
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      if ((l == cand && placed[r]) || (r == cand && placed[l])) return true;
    }
    return false;
  };
  while (order.size() < bound.size()) {
    size_t pick = bound.size();
    for (size_t i = 0; i < bound.size(); ++i) {
      if (!placed[i] && connected(i)) {
        pick = i;
        break;
      }
    }
    if (pick == bound.size()) {
      for (size_t i = 0; i < bound.size(); ++i) {
        if (!placed[i]) {
          pick = i;
          break;
        }
      }
    }
    placed[pick] = true;
    order.push_back(pick);
  }

  // Position of each table in the join order (for row_indices layout).
  std::vector<size_t> order_pos(bound.size());
  for (size_t i = 0; i < order.size(); ++i) order_pos[order[i]] = i;

  // Seed with the first table's surviving rows.
  const bool track_facts = capture != ProvenanceCapture::kNone;
  std::vector<PartialRow> current;
  {
    const BoundTable& bt = bound[order[0]];
    current.reserve(bt.surviving_rows.size());
    for (uint32_t r : bt.surviving_rows) {
      PartialRow pr;
      pr.row_indices = {r};
      if (track_facts) pr.facts = {bt.table->fact_id(r)};
      current.push_back(std::move(pr));
    }
  }

  // Join in the remaining tables one by one.
  ScopedSpan join_span(ctx.registry, "eval.join");
  for (size_t step = 1; step < order.size(); ++step) {
    const size_t ti = order[step];
    const BoundTable& bt = bound[ti];

    // Join predicates between the new table and already-placed tables,
    // resolved to column slices. Columns of different types can never be
    // equal as Values, so one mismatched key part empties the whole block.
    // `*_nullable` caches MayHaveJoinNulls per side: false means no cell of
    // that column can be join-null (NULL, or NaN in a double column), so the
    // hot loops skip the per-row null tests entirely — the all-valid
    // int/string paths are byte-for-byte the pre-null loops.
    struct JoinKeyPart {
      size_t placed_order_pos;       // which earlier table
      const ColumnData* placed_col;  // its column slice
      const ColumnData* new_col;     // new table's column slice
      bool placed_nullable;          // placed_col->MayHaveJoinNulls()
      bool new_nullable;             // new_col->MayHaveJoinNulls()
    };
    std::vector<JoinKeyPart> key_parts;
    bool type_mismatch = false;
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      size_t other;
      const ColumnRef* new_ref;
      const ColumnRef* old_ref;
      if (l == ti && order_pos[r] < step) {
        other = r;
        new_ref = &join.left;
        old_ref = &join.right;
      } else if (r == ti && order_pos[l] < step) {
        other = l;
        new_ref = &join.right;
        old_ref = &join.left;
      } else {
        continue;
      }
      const ColumnData& placed_col = bound[other].table->column(
          bound[other].table->schema().ColumnIndex(old_ref->column).value());
      const ColumnData& new_col = bt.table->column(
          bt.table->schema().ColumnIndex(new_ref->column).value());
      if (placed_col.type() != new_col.type()) {
        type_mismatch = true;
        break;
      }
      key_parts.push_back({order_pos[other], &placed_col, &new_col,
                           placed_col.MayHaveJoinNulls(),
                           new_col.MayHaveJoinNulls()});
    }
    if (type_mismatch) return Status::Ok();  // no pair can match

    std::vector<PartialRow> next;
    const Table* fact_table = track_facts ? bt.table : nullptr;
    const EvalContext::Plan plan = ctx.PlanMorsels(current.size());
    std::vector<std::vector<PartialRow>> parts(plan.count);
    ctx.metrics.rows_probed.Inc(current.size());
    if (key_parts.empty()) {
      ctx.metrics.cross_products.Inc();
      // Cross product (rare; disconnected query). The exact output size
      // current * surviving can overflow size_t, so reservations saturate
      // and cap; past the cap the vectors grow geometrically.
      ctx.Run(current.size(), plan, [&](size_t m, size_t lo, size_t hi) {
        std::vector<PartialRow>& out = parts[m];
        out.reserve(std::min(
            SaturatingMul(hi - lo, bt.surviving_rows.size()),
            kMaxReserveRows));
        for (size_t i = lo; i < hi; ++i) {
          for (uint32_t r : bt.surviving_rows) {
            out.push_back(ExtendRow(current[i], r, fact_table));
          }
        }
      });
    } else {
      // Index the new table on the first key part's column words in a flat
      // open-addressing table; verify the remaining parts by word equality.
      // Key words ARE the values (within one type), so probe hits need no
      // re-check against the first part. The probe loop runs per morsel of
      // `current`, in batches: gather the probe-side key words through the
      // batch accessor, prefetch every batch's bucket heads, then walk the
      // payload slices — by which point the buckets are in cache.
      constexpr size_t kProbeBatch = 64;
      // SQL join semantics: a join-null key cell (NULL, or NaN in a double
      // column — NaN != NaN under double equality, but identical NaN bit
      // patterns would compare equal as key words) matches nothing, not even
      // another null. Rows whose key is join-null in ANY part are dropped
      // from the build side before indexing; all-valid int/string builds
      // take the unfiltered pre-null path.
      const std::vector<uint32_t>* build_rows = &bt.surviving_rows;
      std::vector<uint32_t> nonnull_build;
      bool new_side_nullable = false;
      for (const auto& part : key_parts) {
        new_side_nullable = new_side_nullable || part.new_nullable;
      }
      if (new_side_nullable) {
        nonnull_build.reserve(bt.surviving_rows.size());
        for (uint32_t r : bt.surviving_rows) {
          bool join_null = false;
          for (const auto& part : key_parts) {
            if (part.new_nullable && part.new_col->JoinKeyIsNull(r)) {
              join_null = true;
              break;
            }
          }
          if (!join_null) nonnull_build.push_back(r);
        }
        build_rows = &nonnull_build;
      }
      FlatJoinIndex index;
      index.Build(*key_parts[0].new_col, *build_rows);
      ctx.metrics.index_builds.Inc();
      if (ctx.metrics.index_occupancy.enabled() && index.num_buckets() > 0) {
        ctx.metrics.index_occupancy.Observe(
            static_cast<double>(index.num_keys()) /
            static_cast<double>(index.num_buckets()));
      }
      // Probe batches are a deterministic function of the morsel plan:
      // each morsel walks its range in kProbeBatch-row gathers.
      {
        uint64_t batches = 0;
        for (size_t m = 0; m < plan.count; ++m) {
          const size_t lo = m * plan.grain;
          const size_t hi = std::min(current.size(), lo + plan.grain);
          batches += (hi - lo + kProbeBatch - 1) / kProbeBatch;
        }
        ctx.metrics.probe_batches.Inc(batches);
      }
      const ColumnData& probe_col = *key_parts[0].placed_col;
      const size_t probe_pos = key_parts[0].placed_order_pos;
      const bool probe_nullable = key_parts[0].placed_nullable;
      ctx.Run(current.size(), plan, [&](size_t m, size_t lo, size_t hi) {
        std::vector<PartialRow>& out = parts[m];
        uint32_t probe_rows[kProbeBatch];
        uint64_t keys[kProbeBatch];
        size_t start[kProbeBatch];
        for (size_t base = lo; base < hi; base += kProbeBatch) {
          const size_t bn = std::min(kProbeBatch, hi - base);
          for (size_t j = 0; j < bn; ++j) {
            probe_rows[j] = current[base + j].row_indices[probe_pos];
          }
          probe_col.KeyWords(probe_rows, bn, keys);
          for (size_t j = 0; j < bn; ++j) {
            start[j] = index.StartBucket(keys[j]);
            index.Prefetch(start[j]);
          }
          for (size_t j = 0; j < bn; ++j) {
            // A join-null probe key matches nothing: its gathered key word
            // is a placeholder (NULL) or a raw NaN pattern, either of which
            // could spuriously hit a real build key by word equality.
            if (probe_nullable && probe_col.JoinKeyIsNull(probe_rows[j])) {
              continue;
            }
            const FlatJoinIndex::Range range =
                index.ProbeFrom(start[j], keys[j]);
            if (range.begin == range.end) continue;
            const PartialRow& pr = current[base + j];
            for (const uint32_t* p = range.begin; p != range.end; ++p) {
              const uint32_t r = *p;
              bool all_match = true;
              for (size_t kp = 1; kp < key_parts.size(); ++kp) {
                const auto& part = key_parts[kp];
                const uint32_t placed_row =
                    pr.row_indices[part.placed_order_pos];
                // Secondary key parts verify by word equality, so the same
                // join-null exclusion applies on the placed side (the build
                // side was pre-filtered for every part).
                if (part.placed_nullable &&
                    part.placed_col->JoinKeyIsNull(placed_row)) {
                  all_match = false;
                  break;
                }
                if (part.new_col->KeyWord(r) !=
                    part.placed_col->KeyWord(placed_row)) {
                  all_match = false;
                  break;
                }
              }
              if (all_match) out.push_back(ExtendRow(pr, r, fact_table));
            }
          }
        }
      });
    }
    MergeJoinParts(parts, next);
    current = std::move(next);
    ctx.metrics.join_output_rows.Inc(current.size());
    if (current.empty()) return Status::Ok();
  }

  // Resolve the projected column slices. The DISTINCT dedup key is the
  // fixed-width encoded tuple (one word per projected cell).
  struct ProjCol {
    size_t order_pos;
    const ColumnData* col;
  };
  std::vector<ProjCol> proj_cols;
  proj_cols.reserve(block.projections.size());
  for (const auto& proj : block.projections) {
    const size_t ti = table_pos.at(proj.table);
    proj_cols.push_back(
        {order_pos[ti],
         &bound[ti].table->column(
             bound[ti].table->schema().ColumnIndex(proj.column).value())});
  }

  // Project with DISTINCT in morsels over `current`. Each morsel dedups
  // its own row range into a morsel-local distinct state (encoded keys in
  // first-seen order, per-slot provenance); Values are NOT materialized
  // here — only once per block-distinct tuple, at merge time.
  //
  // When a projected column holds NULLs, a null cell's key word is its
  // placeholder (0 / 0.0 / id 0), which would collide with real zero cells
  // under DISTINCT. One extra null-mask word per encoded tuple (bit c set =
  // projected cell c is NULL) disambiguates; all-valid projections keep the
  // exact pre-null encoding. DISTINCT deliberately treats NULL as equal to
  // NULL (SQL's "not distinct" rule), which the mask preserves — two rows
  // null in the same cells encode identically.
  bool proj_has_nulls = false;
  for (const auto& pc : proj_cols) {
    proj_has_nulls = proj_has_nulls || pc.col->has_nulls();
  }
  if (proj_has_nulls) LSHAP_CHECK_LE(proj_cols.size(), size_t{64});
  const size_t enc_width = proj_cols.size() + (proj_has_nulls ? 1 : 0);
  struct ProjLocal {
    std::unordered_map<EncodedTuple, size_t, EncodedTupleHash> index;
    std::vector<EncodedTuple> keys;  // slot -> encoded tuple, first-seen order
    std::vector<size_t> first_row;   // slot -> first deriving row in current
    std::vector<std::vector<Clause>> clauses;    // kFull only
    std::vector<std::vector<FactId>> lineages;   // kLineageOnly only
  };
  ScopedSpan project_span(ctx.registry, "eval.project");
  const EvalContext::Plan proj_plan = ctx.PlanMorsels(current.size());
  std::vector<ProjLocal> proj_parts(proj_plan.count);
  ctx.Run(current.size(), proj_plan, [&](size_t m, size_t lo, size_t hi) {
    ProjLocal& loc = proj_parts[m];
    EncodedTuple scratch(enc_width);
    for (size_t i = lo; i < hi; ++i) {
      const PartialRow& pr = current[i];
      for (size_t c = 0; c < proj_cols.size(); ++c) {
        scratch[c] =
            proj_cols[c].col->KeyWord(pr.row_indices[proj_cols[c].order_pos]);
      }
      if (proj_has_nulls) {
        uint64_t null_mask = 0;
        for (size_t c = 0; c < proj_cols.size(); ++c) {
          if (!proj_cols[c].col->valid(
                  pr.row_indices[proj_cols[c].order_pos])) {
            null_mask |= uint64_t{1} << c;
          }
        }
        scratch[proj_cols.size()] = null_mask;
      }
      auto [it, inserted] = loc.index.emplace(scratch, loc.keys.size());
      const size_t slot = it->second;
      if (inserted) {
        loc.keys.push_back(scratch);
        loc.first_row.push_back(i);
        if (capture == ProvenanceCapture::kFull) loc.clauses.emplace_back();
        if (capture == ProvenanceCapture::kLineageOnly) {
          loc.lineages.emplace_back();
        }
      }
      switch (capture) {
        case ProvenanceCapture::kNone:
          break;
        case ProvenanceCapture::kLineageOnly: {
          // Merge the derivation's facts into the lineage set (kept sorted).
          std::vector<FactId>& lineage = loc.lineages[slot];
          std::vector<FactId> merged;
          merged.reserve(lineage.size() + pr.facts.size());
          std::set_union(lineage.begin(), lineage.end(), pr.facts.begin(),
                         pr.facts.end(), std::back_inserter(merged));
          lineage = std::move(merged);
          break;
        }
        case ProvenanceCapture::kFull:
          loc.clauses[slot].push_back(pr.facts);
          break;
      }
    }
  });

  // Merge the morsel-local distinct states into the per-block distinct
  // index in morsel order: first-seen tuple order and clause order are
  // therefore those of one serial pass over `current`. Lineage sets merge
  // by sorted set-union, which is partition-independent. The query-global
  // result (which dedups across union blocks by Value) takes over below,
  // once per block-distinct tuple.
  std::unordered_map<EncodedTuple, size_t, EncodedTupleHash> local_index;
  std::vector<OutputTuple> local_tuples;
  std::vector<std::vector<Clause>> local_clauses;
  std::vector<std::vector<FactId>> local_lineages;
  for (ProjLocal& loc : proj_parts) {
    for (size_t s = 0; s < loc.keys.size(); ++s) {
      auto [it, inserted] = local_index.emplace(std::move(loc.keys[s]),
                                                local_tuples.size());
      const size_t slot = it->second;
      if (inserted) {
        const PartialRow& pr = current[loc.first_row[s]];
        OutputTuple tuple;
        tuple.reserve(proj_cols.size());
        for (const auto& pc : proj_cols) {
          tuple.push_back(pc.col->GetValue(pr.row_indices[pc.order_pos],
                                           pool));
        }
        local_tuples.push_back(std::move(tuple));
        local_clauses.emplace_back();
        local_lineages.emplace_back();
      }
      switch (capture) {
        case ProvenanceCapture::kNone:
          break;
        case ProvenanceCapture::kLineageOnly: {
          std::vector<FactId>& lineage = local_lineages[slot];
          if (lineage.empty()) {
            lineage = std::move(loc.lineages[s]);
          } else {
            std::vector<FactId> merged;
            merged.reserve(lineage.size() + loc.lineages[s].size());
            std::set_union(lineage.begin(), lineage.end(),
                           loc.lineages[s].begin(), loc.lineages[s].end(),
                           std::back_inserter(merged));
            lineage = std::move(merged);
          }
          break;
        }
        case ProvenanceCapture::kFull: {
          std::vector<Clause>& clauses = local_clauses[slot];
          if (clauses.empty()) {
            clauses = std::move(loc.clauses[s]);
          } else {
            clauses.insert(clauses.end(),
                           std::make_move_iterator(loc.clauses[s].begin()),
                           std::make_move_iterator(loc.clauses[s].end()));
          }
          break;
        }
      }
    }
  }

  // Merge the block's distinct tuples into the query-global result.
  for (size_t i = 0; i < local_tuples.size(); ++i) {
    auto [it, inserted] =
        result.index.emplace(local_tuples[i], result.tuples.size());
    const size_t gslot = it->second;
    if (inserted) {
      result.tuples.push_back(std::move(local_tuples[i]));
      pending_clauses.emplace_back();
      if (capture == ProvenanceCapture::kLineageOnly) {
        result.lineages.emplace_back();
      }
    }
    switch (capture) {
      case ProvenanceCapture::kNone:
        break;
      case ProvenanceCapture::kLineageOnly: {
        std::vector<FactId>& lineage = result.lineages[gslot];
        if (lineage.empty()) {
          lineage = std::move(local_lineages[i]);
        } else {
          std::vector<FactId> merged;
          merged.reserve(lineage.size() + local_lineages[i].size());
          std::set_union(lineage.begin(), lineage.end(),
                         local_lineages[i].begin(), local_lineages[i].end(),
                         std::back_inserter(merged));
          lineage = std::move(merged);
        }
        break;
      }
      case ProvenanceCapture::kFull: {
        std::vector<Clause>& clauses = pending_clauses[gslot];
        if (clauses.empty()) {
          clauses = std::move(local_clauses[i]);
        } else {
          clauses.insert(clauses.end(),
                         std::make_move_iterator(local_clauses[i].begin()),
                         std::make_move_iterator(local_clauses[i].end()));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            const EvalOptions& options) {
  EvalResult result;
  if (q.blocks.empty()) {
    return Status::InvalidArgument("query with no SPJ blocks");
  }
  EvalContext ctx;
  ctx.pool = options.pool;
  ctx.morsel_rows = options.morsel_rows;
  ctx.min_parallel_rows = options.min_parallel_rows;
  ctx.use_string_ranks = options.use_string_ranks;
  ctx.registry = options.metrics;
  ctx.metrics = EvalMetricSet(options.metrics);
  ScopedSpan query_span(ctx.registry, "eval.query");
  const auto query_start = std::chrono::steady_clock::now();
  ctx.metrics.queries.Inc();
  std::vector<std::vector<Clause>> pending_clauses;
  for (const auto& block : q.blocks) {
    Status s = EvaluateBlock(db, block, options.capture, ctx, result,
                             pending_clauses);
    if (!s.ok()) return s;
  }
  const ProvenanceCapture capture = options.capture;
  if (capture == ProvenanceCapture::kFull) {
    result.provenance.reserve(pending_clauses.size());
    result.lineages.reserve(pending_clauses.size());
    for (auto& clauses : pending_clauses) {
      result.provenance.emplace_back(std::move(clauses));
      result.lineages.push_back(result.provenance.back().Variables());
    }
  }
  ctx.metrics.output_tuples.Inc(result.tuples.size());
  if (ctx.metrics.query_seconds.enabled()) {
    ctx.metrics.query_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      query_start)
            .count());
  }
  return result;
}

Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            ProvenanceCapture capture) {
  EvalOptions options;
  options.capture = capture;
  return Evaluate(db, q, options);
}

}  // namespace lshap
