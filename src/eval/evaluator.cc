#include "eval/evaluator.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

namespace {

// One partial join result: per joined table, the row index (position in the
// block's table order) and the accumulated derivation facts.
struct PartialRow {
  std::vector<uint32_t> row_indices;  // parallel to joined table order
  std::vector<FactId> facts;          // sorted
};

struct BoundTable {
  std::string name;
  const Table* table = nullptr;
  std::vector<uint32_t> surviving_rows;  // rows passing local selections
};

// A selection compiled once per (block, table) against the columnar
// storage. The literal is resolved up front: numeric literals to a double,
// string-equality literals to their interned id (a literal absent from the
// pool can match no cell — or every cell, under kNe).
struct CompiledSel {
  enum class Kind {
    kNever,         // type mismatch / null literal: no row matches
    kAlways,        // kNe against a string not in the pool: every row matches
    kNumeric,       // double comparison (ints promote)
    kStringId,      // kEq/kNe by interned id
    kStringOrder,   // kLt/kLe/kGt/kGe by text
    kStringPrefix,  // kStartsWith by text
  };
  Kind kind = Kind::kNever;
  const ColumnData* col = nullptr;
  CompareOp op = CompareOp::kEq;
  double num = 0.0;                   // kNumeric
  StringId id = kInvalidStringId;     // kStringId
  const std::string* text = nullptr;  // kStringOrder / kStringPrefix
};

CompiledSel CompileSel(const Selection& sel, const ColumnData& col,
                       const StringPool& pool) {
  CompiledSel c;
  c.col = &col;
  c.op = sel.op;
  const Value& lit = sel.literal;
  if (lit.is_null()) return c;  // kNever
  const bool col_is_string = col.type() == ColumnType::kString;
  if (sel.op == CompareOp::kStartsWith) {
    if (!col_is_string || !lit.is_string()) return c;
    c.kind = CompiledSel::Kind::kStringPrefix;
    c.text = &lit.AsString();
    return c;
  }
  if (col_is_string != lit.is_string()) return c;  // mixed types never match
  if (!col_is_string) {
    c.kind = CompiledSel::Kind::kNumeric;
    c.num = lit.AsDouble();
    return c;
  }
  if (sel.op == CompareOp::kEq || sel.op == CompareOp::kNe) {
    c.id = pool.Find(lit.AsString());
    if (c.id == kInvalidStringId) {
      // The literal names a string no fact contains.
      c.kind = sel.op == CompareOp::kEq ? CompiledSel::Kind::kNever
                                        : CompiledSel::Kind::kAlways;
    } else {
      c.kind = CompiledSel::Kind::kStringId;
    }
    return c;
  }
  c.kind = CompiledSel::Kind::kStringOrder;
  c.text = &lit.AsString();
  return c;
}

bool CompareMatches(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kStartsWith:
      return false;
  }
  return false;
}

// Runs `pred(row)` column-at-a-time: over all `n` rows when `rows` is empty
// and this is the first selection, otherwise compacting the survivor list
// in place.
template <typename Pred>
void ScanRows(size_t n, bool first, std::vector<uint32_t>& rows, Pred pred) {
  if (first) {
    rows.reserve(n);
    for (uint32_t r = 0; r < n; ++r) {
      if (pred(r)) rows.push_back(r);
    }
    return;
  }
  size_t kept = 0;
  for (uint32_t r : rows) {
    if (pred(r)) rows[kept++] = r;
  }
  rows.resize(kept);
}

template <typename T>
void NumericScan(const std::vector<T>& data, CompareOp op, double lit,
                 bool first, std::vector<uint32_t>& rows) {
  switch (op) {
    case CompareOp::kEq:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) == lit; });
      break;
    case CompareOp::kNe:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) != lit; });
      break;
    case CompareOp::kLt:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) < lit; });
      break;
    case CompareOp::kLe:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) <= lit; });
      break;
    case CompareOp::kGt:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) > lit; });
      break;
    case CompareOp::kGe:
      ScanRows(data.size(), first, rows,
               [&](uint32_t r) { return static_cast<double>(data[r]) >= lit; });
      break;
    case CompareOp::kStartsWith:
      rows.clear();
      break;
  }
}

// Applies one compiled selection; `first` means no selection has run yet
// (rows is still empty and implicitly "all").
void ApplySel(const CompiledSel& sel, const StringPool& pool, bool first,
              std::vector<uint32_t>& rows) {
  const ColumnData& col = *sel.col;
  const size_t n = col.size();
  switch (sel.kind) {
    case CompiledSel::Kind::kNever:
      rows.clear();
      if (first) rows.shrink_to_fit();
      break;
    case CompiledSel::Kind::kAlways:
      if (first) {
        rows.resize(n);
        for (uint32_t r = 0; r < n; ++r) rows[r] = r;
      }
      break;
    case CompiledSel::Kind::kNumeric:
      if (col.type() == ColumnType::kInt) {
        NumericScan(col.ints(), sel.op, sel.num, first, rows);
      } else {
        NumericScan(col.doubles(), sel.op, sel.num, first, rows);
      }
      break;
    case CompiledSel::Kind::kStringId: {
      const auto& ids = col.string_ids();
      if (sel.op == CompareOp::kEq) {
        ScanRows(n, first, rows, [&](uint32_t r) { return ids[r] == sel.id; });
      } else {
        ScanRows(n, first, rows, [&](uint32_t r) { return ids[r] != sel.id; });
      }
      break;
    }
    case CompiledSel::Kind::kStringOrder: {
      const auto& ids = col.string_ids();
      ScanRows(n, first, rows, [&](uint32_t r) {
        return CompareMatches(pool.Get(ids[r]).compare(*sel.text), sel.op);
      });
      break;
    }
    case CompiledSel::Kind::kStringPrefix: {
      const auto& ids = col.string_ids();
      ScanRows(n, first, rows, [&](uint32_t r) {
        return StartsWith(pool.Get(ids[r]), *sel.text);
      });
      break;
    }
  }
}

}  // namespace

bool MatchesPredicate(const Value& value, CompareOp op, const Value& literal) {
  if (value.is_null() || literal.is_null()) return false;
  if (op == CompareOp::kStartsWith) {
    if (!value.is_string() || !literal.is_string()) return false;
    return StartsWith(value.AsString(), literal.AsString());
  }
  int cmp;
  if (value.is_string() && literal.is_string()) {
    cmp = value.AsString().compare(literal.AsString());
  } else if (!value.is_string() && !literal.is_string()) {
    const double a = value.AsDouble();
    const double b = literal.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    return false;  // type mismatch never matches
  }
  return CompareMatches(cmp, op);
}

namespace {

Status EvaluateBlock(const Database& db, const SpjBlock& block,
                     ProvenanceCapture capture, EvalResult& result,
                     std::vector<std::vector<Clause>>& pending_clauses) {
  if (block.tables.empty()) {
    return Status::InvalidArgument("SPJ block with empty FROM clause");
  }
  {
    std::set<std::string> unique(block.tables.begin(), block.tables.end());
    if (unique.size() != block.tables.size()) {
      return Status::InvalidArgument(
          "repeated table in FROM clause (self-joins unsupported)");
    }
  }
  const StringPool& pool = db.string_pool();

  // Bind tables.
  std::vector<BoundTable> bound(block.tables.size());
  std::unordered_map<std::string, size_t> table_pos;
  for (size_t i = 0; i < block.tables.size(); ++i) {
    bound[i].name = block.tables[i];
    auto t = db.FindTable(block.tables[i]);
    if (!t.ok()) return t.status();
    bound[i].table = *t;
    table_pos[block.tables[i]] = i;
  }

  // Validate join and selection column references; compile selections per
  // table against their columns (interning lookups happen once, here).
  std::vector<std::vector<CompiledSel>> local_sels(block.tables.size());
  for (const auto& sel : block.selections) {
    auto pos = table_pos.find(sel.column.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("selection on unjoined table '" +
                                     sel.column.table + "'");
    }
    const Table& t = *bound[pos->second].table;
    auto col = t.schema().ColumnIndex(sel.column.column);
    if (!col.ok()) return col.status();
    local_sels[pos->second].push_back(CompileSel(sel, t.column(*col), pool));
  }
  for (const auto& join : block.joins) {
    for (const ColumnRef* ref : {&join.left, &join.right}) {
      auto pos = table_pos.find(ref->table);
      if (pos == table_pos.end()) {
        return Status::InvalidArgument("join on unjoined table '" +
                                       ref->table + "'");
      }
      auto col = bound[pos->second].table->schema().ColumnIndex(ref->column);
      if (!col.ok()) return col.status();
    }
  }
  for (const auto& proj : block.projections) {
    auto pos = table_pos.find(proj.table);
    if (pos == table_pos.end()) {
      return Status::InvalidArgument("projection on unjoined table '" +
                                     proj.table + "'");
    }
    auto col = bound[pos->second].table->schema().ColumnIndex(proj.column);
    if (!col.ok()) return col.status();
  }

  // Local selections, column-at-a-time.
  for (size_t i = 0; i < bound.size(); ++i) {
    const Table* t = bound[i].table;
    std::vector<uint32_t>& rows = bound[i].surviving_rows;
    if (local_sels[i].empty()) {
      rows.resize(t->num_rows());
      for (uint32_t r = 0; r < t->num_rows(); ++r) rows[r] = r;
    } else {
      for (size_t s = 0; s < local_sels[i].size(); ++s) {
        ApplySel(local_sels[i][s], pool, /*first=*/s == 0, rows);
        if (rows.empty()) break;
      }
    }
    if (rows.empty()) return Status::Ok();  // empty result
  }

  // Greedy join order: start from the block's first table, repeatedly add a
  // table connected to the current set (falling back to a cross product).
  std::vector<size_t> order;
  std::vector<bool> placed(bound.size(), false);
  order.push_back(0);
  placed[0] = true;
  auto connected = [&](size_t cand) {
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      if ((l == cand && placed[r]) || (r == cand && placed[l])) return true;
    }
    return false;
  };
  while (order.size() < bound.size()) {
    size_t pick = bound.size();
    for (size_t i = 0; i < bound.size(); ++i) {
      if (!placed[i] && connected(i)) {
        pick = i;
        break;
      }
    }
    if (pick == bound.size()) {
      for (size_t i = 0; i < bound.size(); ++i) {
        if (!placed[i]) {
          pick = i;
          break;
        }
      }
    }
    placed[pick] = true;
    order.push_back(pick);
  }

  // Position of each table in the join order (for row_indices layout).
  std::vector<size_t> order_pos(bound.size());
  for (size_t i = 0; i < order.size(); ++i) order_pos[order[i]] = i;

  // Seed with the first table's surviving rows.
  const bool track_facts = capture != ProvenanceCapture::kNone;
  std::vector<PartialRow> current;
  {
    const BoundTable& bt = bound[order[0]];
    current.reserve(bt.surviving_rows.size());
    for (uint32_t r : bt.surviving_rows) {
      PartialRow pr;
      pr.row_indices = {r};
      if (track_facts) pr.facts = {bt.table->fact_id(r)};
      current.push_back(std::move(pr));
    }
  }

  // Join in the remaining tables one by one.
  for (size_t step = 1; step < order.size(); ++step) {
    const size_t ti = order[step];
    const BoundTable& bt = bound[ti];

    // Join predicates between the new table and already-placed tables,
    // resolved to column slices. Columns of different types can never be
    // equal as Values, so one mismatched key part empties the whole block.
    struct JoinKeyPart {
      size_t placed_order_pos;       // which earlier table
      const ColumnData* placed_col;  // its column slice
      const ColumnData* new_col;     // new table's column slice
    };
    std::vector<JoinKeyPart> key_parts;
    bool type_mismatch = false;
    for (const auto& join : block.joins) {
      const size_t l = table_pos.at(join.left.table);
      const size_t r = table_pos.at(join.right.table);
      size_t other;
      const ColumnRef* new_ref;
      const ColumnRef* old_ref;
      if (l == ti && order_pos[r] < step) {
        other = r;
        new_ref = &join.left;
        old_ref = &join.right;
      } else if (r == ti && order_pos[l] < step) {
        other = l;
        new_ref = &join.right;
        old_ref = &join.left;
      } else {
        continue;
      }
      const ColumnData& placed_col = bound[other].table->column(
          bound[other].table->schema().ColumnIndex(old_ref->column).value());
      const ColumnData& new_col = bt.table->column(
          bt.table->schema().ColumnIndex(new_ref->column).value());
      if (placed_col.type() != new_col.type()) {
        type_mismatch = true;
        break;
      }
      key_parts.push_back({order_pos[other], &placed_col, &new_col});
    }
    if (type_mismatch) return Status::Ok();  // no pair can match

    std::vector<PartialRow> next;
    if (key_parts.empty()) {
      // Cross product (rare; disconnected query).
      next.reserve(current.size() * bt.surviving_rows.size());
      for (const auto& pr : current) {
        for (uint32_t r : bt.surviving_rows) {
          PartialRow np = pr;
          np.row_indices.push_back(r);
          if (track_facts) {
            const FactId f = bt.table->fact_id(r);
            np.facts.insert(
                std::upper_bound(np.facts.begin(), np.facts.end(), f), f);
          }
          next.push_back(std::move(np));
        }
      }
    } else {
      // Hash the new table on the first key part's column words; verify the
      // remaining parts by word equality. Key words ARE the values (within
      // one type), so probe hits need no re-check against the first part.
      std::unordered_multimap<uint64_t, uint32_t> index;
      index.reserve(bt.surviving_rows.size());
      const ColumnData& build_col = *key_parts[0].new_col;
      for (uint32_t r : bt.surviving_rows) {
        index.emplace(build_col.KeyWord(r), r);
      }
      for (const auto& pr : current) {
        const uint64_t probe = key_parts[0].placed_col->KeyWord(
            pr.row_indices[key_parts[0].placed_order_pos]);
        auto range = index.equal_range(probe);
        for (auto it = range.first; it != range.second; ++it) {
          const uint32_t r = it->second;
          bool all_match = true;
          for (size_t kp = 1; kp < key_parts.size(); ++kp) {
            const auto& part = key_parts[kp];
            if (part.new_col->KeyWord(r) !=
                part.placed_col->KeyWord(
                    pr.row_indices[part.placed_order_pos])) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;
          PartialRow np = pr;
          np.row_indices.push_back(r);
          if (track_facts) {
            const FactId f = bt.table->fact_id(r);
            np.facts.insert(
                std::upper_bound(np.facts.begin(), np.facts.end(), f), f);
          }
          next.push_back(std::move(np));
        }
      }
    }
    current = std::move(next);
    if (current.empty()) return Status::Ok();
  }

  // Project with DISTINCT. The dedup key is the fixed-width encoded tuple
  // (one word per projected cell); Values materialize once per distinct
  // tuple, when it is first seen.
  struct ProjCol {
    size_t order_pos;
    const ColumnData* col;
  };
  std::vector<ProjCol> proj_cols;
  proj_cols.reserve(block.projections.size());
  for (const auto& proj : block.projections) {
    const size_t ti = table_pos.at(proj.table);
    proj_cols.push_back(
        {order_pos[ti],
         &bound[ti].table->column(
             bound[ti].table->schema().ColumnIndex(proj.column).value())});
  }

  // Per-block distinct state, keyed by encoded tuple. Merging into the
  // query-global result (which dedups across union blocks by Value) happens
  // once per distinct tuple, below.
  std::unordered_map<EncodedTuple, size_t, EncodedTupleHash> local_index;
  std::vector<OutputTuple> local_tuples;
  std::vector<std::vector<Clause>> local_clauses;
  std::vector<std::vector<FactId>> local_lineages;
  EncodedTuple scratch(proj_cols.size());

  for (const auto& pr : current) {
    for (size_t c = 0; c < proj_cols.size(); ++c) {
      scratch[c] =
          proj_cols[c].col->KeyWord(pr.row_indices[proj_cols[c].order_pos]);
    }
    auto [it, inserted] = local_index.emplace(scratch, local_tuples.size());
    const size_t slot = it->second;
    if (inserted) {
      OutputTuple tuple;
      tuple.reserve(proj_cols.size());
      for (const auto& pc : proj_cols) {
        tuple.push_back(
            pc.col->GetValue(pr.row_indices[pc.order_pos], pool));
      }
      local_tuples.push_back(std::move(tuple));
      local_clauses.emplace_back();
      local_lineages.emplace_back();
    }
    switch (capture) {
      case ProvenanceCapture::kNone:
        break;
      case ProvenanceCapture::kLineageOnly: {
        // Merge the derivation's facts into the lineage set (kept sorted).
        std::vector<FactId>& lineage = local_lineages[slot];
        std::vector<FactId> merged;
        merged.reserve(lineage.size() + pr.facts.size());
        std::set_union(lineage.begin(), lineage.end(), pr.facts.begin(),
                       pr.facts.end(), std::back_inserter(merged));
        lineage = std::move(merged);
        break;
      }
      case ProvenanceCapture::kFull:
        local_clauses[slot].push_back(pr.facts);
        break;
    }
  }

  // Merge the block's distinct tuples into the query-global result.
  for (size_t i = 0; i < local_tuples.size(); ++i) {
    auto [it, inserted] =
        result.index.emplace(local_tuples[i], result.tuples.size());
    const size_t gslot = it->second;
    if (inserted) {
      result.tuples.push_back(std::move(local_tuples[i]));
      pending_clauses.emplace_back();
      if (capture == ProvenanceCapture::kLineageOnly) {
        result.lineages.emplace_back();
      }
    }
    switch (capture) {
      case ProvenanceCapture::kNone:
        break;
      case ProvenanceCapture::kLineageOnly: {
        std::vector<FactId>& lineage = result.lineages[gslot];
        if (lineage.empty()) {
          lineage = std::move(local_lineages[i]);
        } else {
          std::vector<FactId> merged;
          merged.reserve(lineage.size() + local_lineages[i].size());
          std::set_union(lineage.begin(), lineage.end(),
                         local_lineages[i].begin(), local_lineages[i].end(),
                         std::back_inserter(merged));
          lineage = std::move(merged);
        }
        break;
      }
      case ProvenanceCapture::kFull: {
        std::vector<Clause>& clauses = pending_clauses[gslot];
        if (clauses.empty()) {
          clauses = std::move(local_clauses[i]);
        } else {
          clauses.insert(clauses.end(),
                         std::make_move_iterator(local_clauses[i].begin()),
                         std::make_move_iterator(local_clauses[i].end()));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            ProvenanceCapture capture) {
  EvalResult result;
  if (q.blocks.empty()) {
    return Status::InvalidArgument("query with no SPJ blocks");
  }
  std::vector<std::vector<Clause>> pending_clauses;
  for (const auto& block : q.blocks) {
    Status s = EvaluateBlock(db, block, capture, result, pending_clauses);
    if (!s.ok()) return s;
  }
  if (capture == ProvenanceCapture::kFull) {
    result.provenance.reserve(pending_clauses.size());
    result.lineages.reserve(pending_clauses.size());
    for (auto& clauses : pending_clauses) {
      result.provenance.emplace_back(std::move(clauses));
      result.lineages.push_back(result.provenance.back().Variables());
    }
  }
  return result;
}

}  // namespace lshap
