#ifndef LSHAP_EVAL_EVALUATOR_H_
#define LSHAP_EVAL_EVALUATOR_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "provenance/bool_expr.h"
#include "query/ast.h"
#include "relational/database.h"
#include "relational/tuple.h"

namespace lshap {

// What the evaluator records per output tuple. Lineage-only capture stores
// just the contributing fact set (what LearnShapley needs at inference);
// full provenance additionally keeps the derivation structure (what exact
// Shapley computation needs). kNone answers the query and nothing else —
// the baseline for measuring capture overhead (`bench_ablation_capture`).
enum class ProvenanceCapture { kNone, kLineageOnly, kFull };

// The result of evaluating an SPJU query: the distinct output tuples and,
// depending on the capture mode, per-tuple provenance (monotone DNF whose
// clauses are the derivations) or just the lineage set.
struct EvalResult {
  std::vector<OutputTuple> tuples;
  std::vector<Dnf> provenance;                  // kFull only
  std::vector<std::vector<FactId>> lineages;    // kLineageOnly only
  std::unordered_map<OutputTuple, size_t, OutputTupleHash> index;

  // Requires kFull capture.
  const Dnf& ProvenanceOf(size_t tuple_idx) const {
    return provenance[tuple_idx];
  }
  // Works under kFull or kLineageOnly capture.
  std::vector<FactId> LineageOf(size_t tuple_idx) const {
    if (!provenance.empty()) return provenance[tuple_idx].Variables();
    return lineages[tuple_idx];
  }
};

// Evaluates `q` over `db`. Joins are executed with hash indexes in the
// order the block lists its tables (greedily reordered so every step is
// connected when possible). Errors on unknown tables/columns or repeated
// table references (self-joins are outside the SPJU fragment this engine
// targets).
Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            ProvenanceCapture capture = ProvenanceCapture::kFull);

// True if `value` satisfies `op literal` (numeric comparisons promote ints
// to doubles; kStartsWith applies to strings only).
bool MatchesPredicate(const Value& value, CompareOp op, const Value& literal);

}  // namespace lshap

#endif  // LSHAP_EVAL_EVALUATOR_H_
