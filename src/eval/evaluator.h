#ifndef LSHAP_EVAL_EVALUATOR_H_
#define LSHAP_EVAL_EVALUATOR_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "provenance/bool_expr.h"
#include "query/ast.h"
#include "relational/database.h"
#include "relational/tuple.h"

namespace lshap {

// What the evaluator records per output tuple. Lineage-only capture stores
// just the contributing fact set (what LearnShapley needs at inference);
// full provenance additionally keeps the derivation structure (what exact
// Shapley computation needs). kNone answers the query and nothing else —
// the baseline for measuring capture overhead (`bench_ablation_capture`).
enum class ProvenanceCapture { kNone, kLineageOnly, kFull };

// The result of evaluating an SPJU query: the distinct output tuples and,
// depending on the capture mode, per-tuple provenance (monotone DNF whose
// clauses are the derivations) or just the lineage set.
struct EvalResult {
  std::vector<OutputTuple> tuples;
  std::vector<Dnf> provenance;                // kFull only
  std::vector<std::vector<FactId>> lineages;  // kFull and kLineageOnly
  std::unordered_map<OutputTuple, size_t, OutputTupleHash> index;

  // Requires kFull capture.
  const Dnf& ProvenanceOf(size_t tuple_idx) const {
    return provenance[tuple_idx];
  }
  // Works under kFull or kLineageOnly capture. Lineages are materialized
  // once at evaluation time, so repeated lookups (ranking inference walks
  // one lineage per candidate fact) return the cached vector by reference
  // instead of re-deriving and copying it per call.
  const std::vector<FactId>& LineageOf(size_t tuple_idx) const {
    return lineages[tuple_idx];
  }
};

// How one evaluation runs. The default is the serial path; setting `pool`
// turns on morsel-driven parallelism: the scan, probe, and project phases
// partition their input into contiguous row-range morsels dispatched on the
// pool, and per-morsel partial outputs are merged in morsel order — so the
// result (tuples, tuple order, clause order, lineages) is byte-identical to
// the serial path at every thread count (eval_property_test enforces this).
//
// The pool must not be a pool one of whose workers is the calling thread:
// the morsel dispatch blocks on ParallelFor, which deadlocks under such
// nesting (BuildCorpus parallelizes across tuples and therefore evaluates
// each query serially).
//
// Follows the repo's options-builder convention (DESIGN.md §9.4): a
// default-constructed EvalOptions reproduces historical behavior exactly,
// and every knob has a chainable With* setter.
struct EvalOptions {
  ProvenanceCapture capture = ProvenanceCapture::kFull;
  ThreadPool* pool = nullptr;  // nullptr => serial evaluation
  // Rows per morsel. Smaller morsels load-balance better and larger ones
  // amortize dispatch; tests shrink this to force multi-morsel merges on
  // tiny inputs.
  size_t morsel_rows = 4096;
  // Inputs smaller than this stay serial even when a pool is set — the
  // dispatch overhead would exceed the work.
  size_t min_parallel_rows = 4096;
  // Compile ordered/prefix string selections to rank-interval tests over
  // the pool's order sidecar when it is fresh (see StringPool). Disabling
  // this forces the string-materializing path even on a frozen pool — the
  // differential oracle the property tests and the before/after micro-bench
  // (bench_string_predicates) compare against. Both paths must agree
  // exactly; the flag only selects which one runs.
  bool use_string_ranks = true;
  // Observability opt-in: when set, the evaluator records eval.* counters,
  // histograms, and spans into the registry (see DESIGN.md §9). Null means
  // no-op handles everywhere — zero instrumentation cost, and results are
  // byte-identical either way.
  MetricsRegistry* metrics = nullptr;

  EvalOptions& WithCapture(ProvenanceCapture c) { capture = c; return *this; }
  EvalOptions& WithPool(ThreadPool* p) { pool = p; return *this; }
  EvalOptions& WithMorselRows(size_t n) { morsel_rows = n; return *this; }
  EvalOptions& WithMinParallelRows(size_t n) {
    min_parallel_rows = n;
    return *this;
  }
  EvalOptions& WithStringRanks(bool on) { use_string_ranks = on; return *this; }
  EvalOptions& WithMetrics(MetricsRegistry* m) { metrics = m; return *this; }
};

// Evaluates `q` over `db`. Selections are compiled against the columnar
// storage (string equality predicates compare interned StringIds) and
// applied column-at-a-time; joins are executed with flat open-addressing
// hash indexes (FlatJoinIndex) built directly over fixed-width column key
// words and probed in prefetched batches, in the order the block lists
// its tables (greedily reordered so every step is connected when possible).
// Errors on unknown tables/columns or repeated table references (self-joins
// are outside the SPJU fragment this engine targets).
Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            const EvalOptions& options);

// Serial evaluation with default tuning — the historical signature.
Result<EvalResult> Evaluate(const Database& db, const Query& q,
                            ProvenanceCapture capture = ProvenanceCapture::kFull);

// SQL three-valued truth value. Ordered so that kTrue > kUnknown > kFalse,
// matching the standard's AND/OR min/max formulation should combinators ever
// be needed; predicates only ever *pass* on kTrue (DESIGN.md §14).
enum class TriBool { kFalse = 0, kUnknown = 1, kTrue = 2 };

// Three-valued predicate evaluation: the truth value of `value op literal`.
// A NULL on either side yields kUnknown for every CompareOp — including kNe
// (NULL != x is unknown, not true) — per SQL comparison semantics. Non-null
// operands compare exactly as before (numeric comparisons promote ints to
// doubles; kStartsWith applies to strings only; a type mismatch between
// non-null operands is kFalse, never unknown). Boundary helper over Values —
// the evaluator itself compiles predicates against columnar storage and
// filters null cells via validity bits; the row-at-a-time reference
// evaluator in the test tree uses this directly.
TriBool MatchesPredicate3(const Value& value, CompareOp op,
                          const Value& literal);

// Two-valued wrapper: true iff the predicate is *definitely* true. This is
// exactly the "only true survives a selection" rule, so the reference
// evaluator keeps its boolean shape and stays line-for-line comparable with
// the compiled path.
inline bool MatchesPredicate(const Value& value, CompareOp op,
                             const Value& literal) {
  return MatchesPredicate3(value, op, literal) == TriBool::kTrue;
}

}  // namespace lshap

#endif  // LSHAP_EVAL_EVALUATOR_H_
