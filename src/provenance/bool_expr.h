#ifndef LSHAP_PROVENANCE_BOOL_EXPR_H_
#define LSHAP_PROVENANCE_BOOL_EXPR_H_

#include <string>
#include <vector>

#include "relational/database.h"

namespace lshap {

// A conjunction of positive fact variables (one derivation of an output
// tuple). Always kept sorted and duplicate-free.
using Clause = std::vector<FactId>;

// Monotone boolean provenance in disjunctive normal form: the output tuple
// is present iff at least one clause has all its facts present. SPJU
// provenance is always of this shape (positive DNF).
class Dnf {
 public:
  Dnf() = default;
  explicit Dnf(std::vector<Clause> clauses);

  // Adds one derivation; facts need not be sorted. Duplicate clauses are
  // dropped.
  void AddClause(Clause clause);

  // Removes clauses that are supersets of other clauses. The represented
  // function is unchanged, but compilation becomes cheaper. Note that
  // variables appearing only in absorbed clauses are logically irrelevant
  // (their Shapley value is exactly 0).
  void Absorb();

  bool empty() const { return clauses_.empty(); }
  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  // Sorted set of all variables (the tuple's lineage).
  std::vector<FactId> Variables() const;

  // Evaluates the DNF where exactly the facts in `present` (sorted) are true.
  bool Evaluate(const std::vector<FactId>& present) const;

  // Φ[x := value]: clauses containing x either lose x (true) or vanish
  // (false). Returns normalized result.
  Dnf Restrict(FactId var, bool value) const;

  // Canonical serialization usable as a cache key.
  std::string CacheKey() const;

  std::string ToString() const;

 private:
  void Normalize();

  std::vector<Clause> clauses_;  // each sorted; clause list sorted
};

// Splits the variables of `dnf` into connected components, where two
// variables are connected if they co-occur in a clause. Returns for each
// component the indices of the clauses it contains. Used by the compiler to
// expose decomposability (variable-disjoint AND).
std::vector<std::vector<size_t>> ClauseComponents(const Dnf& dnf);

}  // namespace lshap

#endif  // LSHAP_PROVENANCE_BOOL_EXPR_H_
