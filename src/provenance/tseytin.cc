#include "provenance/tseytin.h"

#include <unordered_map>

#include "common/check.h"

namespace lshap {

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  LSHAP_CHECK_EQ(assignment.size(), num_variables);
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const auto& lit : clause) {
      if (assignment[lit.var] == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

CnfFormula TseytinFromDnf(const Dnf& dnf) {
  CnfFormula cnf;
  // Map fact variables to dense indices.
  std::unordered_map<FactId, uint32_t> var_index;
  for (FactId f : dnf.Variables()) {
    var_index.emplace(f, static_cast<uint32_t>(cnf.original_facts.size()));
    cnf.original_facts.push_back(f);
  }
  cnf.num_original = cnf.original_facts.size();

  const auto& clauses = dnf.clauses();
  const size_t m = clauses.size();
  cnf.num_variables = cnf.num_original + m;

  CnfClause disjunction;
  disjunction.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t aux = static_cast<uint32_t>(cnf.num_original + i);
    // a_i → x for every x in clause i:  (¬a_i ∨ x).
    for (FactId f : clauses[i]) {
      cnf.clauses.push_back({{aux, false}, {var_index.at(f), true}});
    }
    // (x_1 ∧ ... ∧ x_k) → a_i:  (¬x_1 ∨ ... ∨ ¬x_k ∨ a_i).
    CnfClause back;
    back.reserve(clauses[i].size() + 1);
    for (FactId f : clauses[i]) back.push_back({var_index.at(f), false});
    back.push_back({aux, true});
    cnf.clauses.push_back(std::move(back));
    disjunction.push_back({aux, true});
  }
  cnf.clauses.push_back(std::move(disjunction));
  return cnf;
}

}  // namespace lshap
