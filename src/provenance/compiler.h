#ifndef LSHAP_PROVENANCE_COMPILER_H_
#define LSHAP_PROVENANCE_COMPILER_H_

#include <memory>

#include "common/budget.h"
#include "common/status.h"
#include "provenance/bool_expr.h"
#include "provenance/circuit.h"

namespace lshap {

// Compiles a monotone DNF into a decision-DNNF circuit by Shannon expansion
// with formula caching and connected-component decomposition. This mirrors
// the knowledge-compilation step of the exact Shapley algorithm in Deutch et
// al. (SIGMOD 2022): once in this form, model counting by size — and hence
// Shapley values — is polynomial in the circuit size.
struct CompilerOptions {
  // Combine variable-disjoint clause components with a disjoint-OR node
  // instead of Shannon-expanding across them. Disabling this reproduces the
  // naive compiler (exponential on hub-structured SPJU provenance); it
  // exists for the ablation benchmark.
  bool component_decomposition = true;
};

// Budget check-site names exposed for fault-injection tests.
inline constexpr char kSiteCompilerExpand[] = "compiler.expand";

class DnfCompiler {
 public:
  DnfCompiler() = default;
  explicit DnfCompiler(const CompilerOptions& options) : options_(options) {}

  // Compiles `dnf` (absorption is applied internally) and returns the
  // circuit with its root set. The circuit is owned by the caller. The
  // budget is polled at every Shannon-expansion step and charged one work
  // unit per circuit node created, so a node budget bounds peak memory and
  // a deadline bounds wall time. On a trip the partial circuit is discarded
  // and kResourceExhausted / kCancelled is returned.
  Result<std::unique_ptr<Circuit>> Compile(const Dnf& dnf,
                                           ExecutionBudget& budget);

  // Unlimited-budget form (DESIGN.md §9.4). Compilation is exponential in
  // the worst case (PP-hard in general); this can run away on dense
  // multi-hub provenance, so budget untrusted input via Compile.
  std::unique_ptr<Circuit> CompileUnlimited(const Dnf& dnf);

  // Statistics of the last compilation (also populated for a failed
  // budgeted compile, describing the partial circuit at the trip point).
  size_t last_num_nodes() const { return last_num_nodes_; }
  size_t last_cache_hits() const { return last_cache_hits_; }

 private:
  struct Ctx;
  NodeId CompileRec(const Dnf& dnf, Circuit& circuit, Ctx& ctx);

  CompilerOptions options_;
  size_t last_num_nodes_ = 0;
  size_t last_cache_hits_ = 0;
};

}  // namespace lshap

#endif  // LSHAP_PROVENANCE_COMPILER_H_
