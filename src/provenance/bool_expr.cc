#include "provenance/bool_expr.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "common/strings.h"

namespace lshap {

Dnf::Dnf(std::vector<Clause> clauses) : clauses_(std::move(clauses)) {
  for (auto& c : clauses_) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  Normalize();
}

void Dnf::AddClause(Clause clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  clauses_.push_back(std::move(clause));
  Normalize();
}

void Dnf::Normalize() {
  std::sort(clauses_.begin(), clauses_.end());
  clauses_.erase(std::unique(clauses_.begin(), clauses_.end()),
                 clauses_.end());
}

void Dnf::Absorb() {
  // A clause is absorbed if some other clause is a subset of it.
  std::vector<Clause> kept;
  // Process shorter clauses first so subsets are kept before supersets.
  std::vector<const Clause*> by_len;
  by_len.reserve(clauses_.size());
  for (const auto& c : clauses_) by_len.push_back(&c);
  std::stable_sort(by_len.begin(), by_len.end(),
                   [](const Clause* a, const Clause* b) {
                     return a->size() < b->size();
                   });
  for (const Clause* c : by_len) {
    bool absorbed = false;
    for (const Clause& k : kept) {
      if (std::includes(c->begin(), c->end(), k.begin(), k.end())) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(*c);
  }
  clauses_ = std::move(kept);
  Normalize();
}

std::vector<FactId> Dnf::Variables() const {
  std::set<FactId> vars;
  for (const auto& c : clauses_) vars.insert(c.begin(), c.end());
  return std::vector<FactId>(vars.begin(), vars.end());
}

bool Dnf::Evaluate(const std::vector<FactId>& present) const {
  for (const auto& c : clauses_) {
    if (std::includes(present.begin(), present.end(), c.begin(), c.end())) {
      return true;
    }
  }
  return false;
}

Dnf Dnf::Restrict(FactId var, bool value) const {
  std::vector<Clause> out;
  out.reserve(clauses_.size());
  for (const auto& c : clauses_) {
    auto it = std::lower_bound(c.begin(), c.end(), var);
    const bool contains = it != c.end() && *it == var;
    if (!contains) {
      out.push_back(c);
    } else if (value) {
      Clause reduced;
      reduced.reserve(c.size() - 1);
      reduced.insert(reduced.end(), c.begin(), it);
      reduced.insert(reduced.end(), it + 1, c.end());
      out.push_back(std::move(reduced));
    }
    // contains && !value: clause is falsified, drop it.
  }
  return Dnf(std::move(out));
}

std::string Dnf::CacheKey() const {
  std::string key;
  for (const auto& c : clauses_) {
    for (FactId f : c) {
      key += std::to_string(f);
      key += ',';
    }
    key += ';';
  }
  return key;
}

std::string Dnf::ToString() const {
  std::vector<std::string> clause_strs;
  clause_strs.reserve(clauses_.size());
  for (const auto& c : clauses_) {
    std::vector<std::string> vars;
    vars.reserve(c.size());
    for (FactId f : c) vars.push_back("x" + std::to_string(f));
    clause_strs.push_back("(" + Join(vars, " & ") + ")");
  }
  return clause_strs.empty() ? "false" : Join(clause_strs, " | ");
}

std::vector<std::vector<size_t>> ClauseComponents(const Dnf& dnf) {
  const auto& clauses = dnf.clauses();
  const size_t n = clauses.size();
  // Union-find over clauses; clauses sharing a variable are merged.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::unordered_map<FactId, size_t> var_first_clause;
  for (size_t i = 0; i < n; ++i) {
    for (FactId v : clauses[i]) {
      auto [it, inserted] = var_first_clause.emplace(v, i);
      if (!inserted) {
        parent[find(i)] = find(it->second);
      }
    }
  }
  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(i);
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  // Deterministic order: by smallest clause index.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return out;
}

}  // namespace lshap
