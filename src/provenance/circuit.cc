#include "provenance/circuit.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace lshap {

namespace {

// Merges sorted variable vectors.
std::vector<FactId> MergeVars(const std::vector<FactId>& a,
                              const std::vector<FactId>& b) {
  std::vector<FactId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool ContainsVar(const std::vector<FactId>& vars, FactId v) {
  return std::binary_search(vars.begin(), vars.end(), v);
}

}  // namespace

Circuit::Circuit() {
  nodes_.push_back({CircuitNode::Kind::kTrue, kInvalidFactId, kInvalidNode,
                    kInvalidNode, {}, {}});
  nodes_.push_back({CircuitNode::Kind::kFalse, kInvalidFactId, kInvalidNode,
                    kInvalidNode, {}, {}});
}

NodeId Circuit::AddDecision(FactId var, NodeId hi, NodeId lo) {
  CircuitNode n;
  n.kind = CircuitNode::Kind::kDecision;
  n.var = var;
  n.hi = hi;
  n.lo = lo;
  n.vars = MergeVars(nodes_[hi].vars, nodes_[lo].vars);
  LSHAP_CHECK(!ContainsVar(n.vars, var));
  n.vars.insert(std::lower_bound(n.vars.begin(), n.vars.end(), var), var);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Circuit::AddAnd(std::vector<NodeId> children) {
  LSHAP_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  CircuitNode n;
  n.kind = CircuitNode::Kind::kAnd;
  for (NodeId c : children) {
    std::vector<FactId> merged = MergeVars(n.vars, nodes_[c].vars);
    // Decomposability: children must have disjoint supports.
    LSHAP_CHECK_EQ(merged.size(), n.vars.size() + nodes_[c].vars.size());
    n.vars = std::move(merged);
  }
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Circuit::AddOr(std::vector<NodeId> children) {
  LSHAP_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  CircuitNode n;
  n.kind = CircuitNode::Kind::kOr;
  for (NodeId c : children) {
    std::vector<FactId> merged = MergeVars(n.vars, nodes_[c].vars);
    // Disjoint OR: children must have disjoint supports.
    LSHAP_CHECK_EQ(merged.size(), n.vars.size() + nodes_[c].vars.size());
    n.vars = std::move(merged);
  }
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

const CountVec& BinomialRow(size_t m) {
  static std::mutex mu;
  static std::unordered_map<size_t, CountVec>* rows =
      new std::unordered_map<size_t, CountVec>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = rows->find(m);
  if (it != rows->end()) return it->second;
  CountVec row(m + 1);
  row[0] = 1.0L;
  for (size_t k = 1; k <= m; ++k) {
    row[k] = row[k - 1] * static_cast<long double>(m - k + 1) /
             static_cast<long double>(k);
  }
  return rows->emplace(m, std::move(row)).first->second;
}

CountVec ExtendCounts(const CountVec& c, size_t to) {
  const size_t from = c.size() - 1;
  LSHAP_CHECK_LE(from, to);
  if (from == to) return c;
  const size_t extra = to - from;
  const CountVec& binom = BinomialRow(extra);
  CountVec out(to + 1, 0.0L);
  for (size_t j = 0; j < c.size(); ++j) {
    if (c[j] == 0.0L) continue;
    for (size_t e = 0; e <= extra; ++e) {
      out[j + e] += c[j] * binom[e];
    }
  }
  return out;
}

CountVec Circuit::CountsBySize(NodeId id, FactId forced,
                               bool forced_value) const {
  CountingSession session(this);
  return session.Forced(id, forced, forced_value);
}

CountVec Circuit::CountsBySize(NodeId id) const {
  CountingSession session(this);
  return session.Unforced(id);
}

CountingSession::CountingSession(const Circuit* circuit)
    : circuit_(circuit) {
  LSHAP_CHECK(circuit != nullptr);
}

const CountVec& CountingSession::Unforced(NodeId id) {
  return UnforcedImpl(id);
}

CountVec CountingSession::Forced(NodeId id, FactId forced,
                                 bool forced_value) {
  if (forced == kInvalidFactId) return UnforcedImpl(id);
  ForcedCtx ctx{forced, forced_value, {}};
  return ForcedImpl(id, ctx);
}

namespace {

// result ⊗= child, summing sizes.
void ConvolveInto(CountVec& result, const CountVec& child) {
  CountVec conv(result.size() + child.size() - 1, 0.0L);
  for (size_t i = 0; i < result.size(); ++i) {
    if (result[i] == 0.0L) continue;
    for (size_t j = 0; j < child.size(); ++j) {
      conv[i + j] += result[i] * child[j];
    }
  }
  result = std::move(conv);
}

// Complement over a domain of size (|c|-1): C(domain,k) − c[k].
CountVec ComplementCounts(const CountVec& sat) {
  const size_t domain = sat.size() - 1;
  const CountVec& totals = BinomialRow(domain);
  CountVec unsat(domain + 1);
  for (size_t k = 0; k <= domain; ++k) unsat[k] = totals[k] - sat[k];
  return unsat;
}

}  // namespace

const CountVec& CountingSession::UnforcedImpl(NodeId id) {
  auto memo_it = base_.find(id);
  if (memo_it != base_.end()) return memo_it->second;

  const CircuitNode& n = circuit_->node(id);
  const size_t domain = n.vars.size();
  CountVec result;
  switch (n.kind) {
    case CircuitNode::Kind::kTrue:
      result = CountVec{1.0L};
      break;
    case CircuitNode::Kind::kFalse:
      result = CountVec{0.0L};
      break;
    case CircuitNode::Kind::kDecision: {
      CountVec hi = ExtendCounts(UnforcedImpl(n.hi), domain - 1);
      CountVec lo = ExtendCounts(UnforcedImpl(n.lo), domain - 1);
      result.assign(domain + 1, 0.0L);
      for (size_t k = 0; k < hi.size(); ++k) result[k + 1] += hi[k];
      for (size_t k = 0; k < lo.size(); ++k) result[k] += lo[k];
      break;
    }
    case CircuitNode::Kind::kAnd: {
      result = CountVec{1.0L};
      for (NodeId c : n.children) ConvolveInto(result, UnforcedImpl(c));
      LSHAP_CHECK_EQ(result.size(), domain + 1);
      break;
    }
    case CircuitNode::Kind::kOr: {
      // Disjoint-support OR via complements: the assignments violating the
      // OR are exactly those violating every child, and children touch
      // disjoint variables, so the "unsatisfied" count vectors convolve.
      CountVec unsat{1.0L};
      for (NodeId c : n.children) {
        ConvolveInto(unsat, ComplementCounts(UnforcedImpl(c)));
      }
      LSHAP_CHECK_EQ(unsat.size(), domain + 1);
      result = ComplementCounts(unsat);
      break;
    }
  }
  return base_.emplace(id, std::move(result)).first->second;
}

CountVec CountingSession::ForcedImpl(NodeId id, ForcedCtx& ctx) {
  const CircuitNode& n = circuit_->node(id);
  // Subtrees not containing the forced variable count identically for every
  // fact: reuse the shared unforced memo. This is what makes the per-fact
  // Shapley loop cheap — only the spine of nodes containing the fact is
  // re-traversed.
  if (!std::binary_search(n.vars.begin(), n.vars.end(), ctx.forced)) {
    return UnforcedImpl(id);
  }
  auto memo_it = ctx.memo.find(id);
  if (memo_it != ctx.memo.end()) return memo_it->second;

  const size_t domain = n.vars.size() - 1;  // forced excluded
  CountVec result;
  switch (n.kind) {
    case CircuitNode::Kind::kTrue:
    case CircuitNode::Kind::kFalse:
      LSHAP_CHECK(false);  // leaves have empty supports
      break;
    case CircuitNode::Kind::kDecision: {
      if (n.var == ctx.forced) {
        const NodeId taken = ctx.forced_value ? n.hi : n.lo;
        result = ExtendCounts(ForcedImpl(taken, ctx), domain);
      } else {
        CountVec hi = ExtendCounts(ForcedImpl(n.hi, ctx), domain - 1);
        CountVec lo = ExtendCounts(ForcedImpl(n.lo, ctx), domain - 1);
        result.assign(domain + 1, 0.0L);
        for (size_t k = 0; k < hi.size(); ++k) result[k + 1] += hi[k];
        for (size_t k = 0; k < lo.size(); ++k) result[k] += lo[k];
      }
      break;
    }
    case CircuitNode::Kind::kAnd: {
      result = CountVec{1.0L};
      for (NodeId c : n.children) ConvolveInto(result, ForcedImpl(c, ctx));
      LSHAP_CHECK_EQ(result.size(), domain + 1);
      break;
    }
    case CircuitNode::Kind::kOr: {
      CountVec unsat{1.0L};
      for (NodeId c : n.children) {
        ConvolveInto(unsat, ComplementCounts(ForcedImpl(c, ctx)));
      }
      LSHAP_CHECK_EQ(unsat.size(), domain + 1);
      result = ComplementCounts(unsat);
      break;
    }
  }
  return ctx.memo.emplace(id, std::move(result)).first->second;
}

}  // namespace lshap
