#ifndef LSHAP_PROVENANCE_CIRCUIT_H_
#define LSHAP_PROVENANCE_CIRCUIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/database.h"

namespace lshap {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// Counting vectors use long double: counts-by-size reach binomial magnitudes
// (~2^n for n-variable lineages), and the 64-bit mantissa keeps the Shapley
// weights accurate for the lineage sizes DBShap exhibits (n ≤ a few hundred).
using CountVec = std::vector<long double>;

// A node of a decomposable counting circuit:
//  - kDecision(var, hi, lo) ≡ (var ∧ hi) ∨ (¬var ∧ lo); the two branches are
//    mutually exclusive, making the circuit deterministic.
//  - kAnd children have pairwise disjoint variable supports (decomposable).
//  - kOr children also have pairwise disjoint supports ("disjoint OR");
//    although not deterministic, counting by size stays exact through the
//    complement identity  #(∨ᵢ fᵢ) = total − ∏ᵢ (totalᵢ − #fᵢ)  under the
//    size-indexed convolution.
// Together these properties admit model counting by size in polynomial time,
// which is what the exact Shapley algorithm of Deutch et al. (SIGMOD 2022)
// exploits.
struct CircuitNode {
  enum class Kind : uint8_t { kTrue, kFalse, kDecision, kAnd, kOr };

  Kind kind = Kind::kFalse;
  FactId var = kInvalidFactId;       // kDecision only
  NodeId hi = kInvalidNode;          // kDecision: var = true branch
  NodeId lo = kInvalidNode;          // kDecision: var = false branch
  std::vector<NodeId> children;      // kAnd / kOr
  std::vector<FactId> vars;          // sorted variable support of subtree
};

// An arena of circuit nodes with one distinguished root.
class Circuit {
 public:
  Circuit();

  NodeId TrueNode() const { return 0; }
  NodeId FalseNode() const { return 1; }

  NodeId AddDecision(FactId var, NodeId hi, NodeId lo);
  NodeId AddAnd(std::vector<NodeId> children);
  // Children must have pairwise disjoint variable supports.
  NodeId AddOr(std::vector<NodeId> children);

  const CircuitNode& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  void set_root(NodeId root) { root_ = root; }
  NodeId root() const { return root_; }

  // Number of satisfying assignments of the subtree under `id`, per number
  // of true variables, with variable `forced` (if present in the support)
  // fixed to `forced_value` and excluded from the counting domain. The
  // returned vector has length |vars(id) \ {forced}| + 1.
  CountVec CountsBySize(NodeId id, FactId forced, bool forced_value) const;

  // Plain model counting by size over vars(id).
  CountVec CountsBySize(NodeId id) const;

 private:
  friend class CountingSession;

  std::vector<CircuitNode> nodes_;
  NodeId root_ = kInvalidNode;
};

// A reusable model-counting session over one circuit. The unforced counts of
// every node are computed once and shared across forced-variable queries, so
// the per-fact Shapley loop only re-traverses the nodes whose support
// actually contains the fact.
class CountingSession {
 public:
  explicit CountingSession(const Circuit* circuit);

  // Counts over vars(id), memoized for the session's lifetime.
  const CountVec& Unforced(NodeId id);

  // Counts over vars(id) \ {forced} with `forced` fixed; falls back to the
  // shared unforced counts on subtrees not containing the variable.
  CountVec Forced(NodeId id, FactId forced, bool forced_value);

 private:
  struct ForcedCtx {
    FactId forced;
    bool forced_value;
    std::unordered_map<NodeId, CountVec> memo;
  };
  const CountVec& UnforcedImpl(NodeId id);
  CountVec ForcedImpl(NodeId id, ForcedCtx& ctx);

  const Circuit* circuit_;
  std::unordered_map<NodeId, CountVec> base_;
};

// Returns the binomial row [C(m,0), ..., C(m,m)] in long double.
const CountVec& BinomialRow(size_t m);

// Re-expresses counts over a variable set of size `from` as counts over a
// superset of size `to`: each of the (to - from) extra variables is free, so
// new[k] = Σ_j c[j]·C(to-from, k-j).
CountVec ExtendCounts(const CountVec& c, size_t to);

}  // namespace lshap

#endif  // LSHAP_PROVENANCE_CIRCUIT_H_
