#include "provenance/compiler.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace lshap {

struct DnfCompiler::Ctx {
  std::unordered_map<std::string, NodeId> cache;
  size_t cache_hits = 0;
  ExecutionBudget* budget = nullptr;
  Status error;
};

std::unique_ptr<Circuit> DnfCompiler::CompileUnlimited(const Dnf& dnf) {
  ExecutionBudget unlimited = ExecutionBudget::Unlimited();
  Result<std::unique_ptr<Circuit>> result = Compile(dnf, unlimited);
  // An unlimited budget cannot trip.
  LSHAP_CHECK(result.ok());
  return std::move(result).value();
}

Result<std::unique_ptr<Circuit>> DnfCompiler::Compile(
    const Dnf& dnf, ExecutionBudget& budget) {
  auto circuit = std::make_unique<Circuit>();
  Ctx ctx;
  ctx.budget = budget.unlimited() ? nullptr : &budget;
  Dnf normalized = dnf;
  normalized.Absorb();
  const NodeId root = CompileRec(normalized, *circuit, ctx);
  last_num_nodes_ = circuit->num_nodes();
  last_cache_hits_ = ctx.cache_hits;
  if (!ctx.error.ok()) return ctx.error;
  circuit->set_root(root);
  return circuit;
}

NodeId DnfCompiler::CompileRec(const Dnf& dnf, Circuit& circuit, Ctx& ctx) {
  // Budget poll at every expansion step; once tripped, the recursion
  // unwinds level by level returning kInvalidNode (the sticky error is
  // surfaced by Compile).
  if (ctx.budget != nullptr) {
    Status s = ctx.budget->Check(kSiteCompilerExpand);
    if (!s.ok()) {
      ctx.error = std::move(s);
      return kInvalidNode;
    }
  }

  // Terminal cases: empty DNF is false; an empty clause makes it true
  // (after absorption an empty clause implies it is the only clause).
  if (dnf.empty()) return circuit.FalseNode();
  if (dnf.clauses()[0].empty()) return circuit.TrueNode();

  const std::string key = dnf.CacheKey();
  auto it = ctx.cache.find(key);
  if (it != ctx.cache.end()) {
    ++ctx.cache_hits;
    return it->second;
  }

  NodeId result = kInvalidNode;

  // Charges one work unit per circuit node about to be created; a false
  // return means the budget tripped and the caller must unwind.
  auto charge_nodes = [&](uint64_t nodes) {
    if (ctx.budget == nullptr) return true;
    Status s = ctx.budget->Charge(nodes, kSiteCompilerExpand);
    if (!s.ok()) {
      ctx.error = std::move(s);
      return false;
    }
    return true;
  };

  // A DNF with one clause is a pure conjunction: an AND of single-variable
  // decisions.
  const auto& clauses = dnf.clauses();
  if (clauses.size() == 1) {
    if (!charge_nodes(clauses[0].size() + 1)) return kInvalidNode;
    std::vector<NodeId> children;
    children.reserve(clauses[0].size());
    for (FactId v : clauses[0]) {
      children.push_back(
          circuit.AddDecision(v, circuit.TrueNode(), circuit.FalseNode()));
    }
    result = circuit.AddAnd(std::move(children));
    ctx.cache.emplace(key, result);
    return result;
  }

  // Decomposition: if the clauses split into variable-disjoint components,
  // the formula is a disjoint OR of the per-component DNFs. This is the
  // step that keeps SPJU provenance (hierarchically structured in practice)
  // polynomial — without it Shannon expansion re-derives each combination
  // of component states.
  const std::vector<std::vector<size_t>> components =
      options_.component_decomposition ? ClauseComponents(dnf)
                                       : std::vector<std::vector<size_t>>{};
  if (components.size() > 1) {
    std::vector<NodeId> children;
    children.reserve(components.size());
    for (const auto& member_idxs : components) {
      std::vector<Clause> member_clauses;
      member_clauses.reserve(member_idxs.size());
      for (size_t i : member_idxs) member_clauses.push_back(clauses[i]);
      const NodeId child =
          CompileRec(Dnf(std::move(member_clauses)), circuit, ctx);
      if (!ctx.error.ok()) return kInvalidNode;
      children.push_back(child);
    }
    if (!charge_nodes(1)) return kInvalidNode;
    result = circuit.AddOr(std::move(children));
    ctx.cache.emplace(key, result);
    return result;
  }

  // Shannon expansion on the most frequent variable (heuristic: maximizes
  // simplification in both branches).
  std::unordered_map<FactId, size_t> freq;
  for (const auto& c : clauses) {
    for (FactId v : c) ++freq[v];
  }
  FactId best = clauses[0][0];
  size_t best_freq = 0;
  for (const auto& c : clauses) {
    for (FactId v : c) {
      const size_t f = freq[v];
      if (f > best_freq || (f == best_freq && v < best)) {
        best_freq = f;
        best = v;
      }
    }
  }

  Dnf hi = dnf.Restrict(best, true);
  hi.Absorb();
  Dnf lo = dnf.Restrict(best, false);
  lo.Absorb();
  const NodeId hi_node = CompileRec(hi, circuit, ctx);
  if (!ctx.error.ok()) return kInvalidNode;
  const NodeId lo_node = CompileRec(lo, circuit, ctx);
  if (!ctx.error.ok()) return kInvalidNode;
  if (!charge_nodes(1)) return kInvalidNode;
  result = circuit.AddDecision(best, hi_node, lo_node);
  ctx.cache.emplace(key, result);
  return result;
}

}  // namespace lshap
