#ifndef LSHAP_PROVENANCE_TSEYTIN_H_
#define LSHAP_PROVENANCE_TSEYTIN_H_

#include <cstdint>
#include <vector>

#include "provenance/bool_expr.h"

namespace lshap {

// A literal of a CNF clause: a variable index (into CnfFormula::variables)
// and a sign.
struct CnfLiteral {
  uint32_t var;   // index into CnfFormula::num_variables
  bool positive;
};

using CnfClause = std::vector<CnfLiteral>;

// A CNF over an extended variable set: the first `num_original` variables
// correspond 1:1 to the DNF's fact variables (in CnfFormula::original_facts
// order); the rest are Tseytin auxiliaries.
struct CnfFormula {
  size_t num_variables = 0;
  size_t num_original = 0;
  std::vector<FactId> original_facts;  // fact id of variable i < num_original
  std::vector<CnfClause> clauses;

  // Evaluates the CNF under a full assignment (indexed by variable).
  bool Evaluate(const std::vector<bool>& assignment) const;
};

// Tseytin transformation of a monotone DNF Φ = c_1 ∨ ... ∨ c_m:
// auxiliary a_i ⇔ c_i, plus the disjunction clause (a_1 ∨ ... ∨ a_m).
// This is the non-factorized CNF form the CNF Proxy of Deutch et al. starts
// from; it is equisatisfiable and its aux variables are functionally
// determined by the originals.
CnfFormula TseytinFromDnf(const Dnf& dnf);

}  // namespace lshap

#endif  // LSHAP_PROVENANCE_TSEYTIN_H_
