#ifndef LSHAP_COMMON_THREAD_POOL_H_
#define LSHAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/status.h"

namespace lshap {

// Fixed-size worker pool. Used for embarrassingly parallel phases (Shapley
// ground-truth computation over output tuples, batched model evaluation).
class ThreadPool {
 public:
  // num_threads == 0 means hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules fn; fn must not throw. Fails with kFailedPrecondition after
  // Shutdown() — tasks are never silently enqueued into a dead pool.
  Status Schedule(std::function<void()> fn);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Drains already-scheduled work, joins all workers, and rejects further
  // Schedule calls. Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

// Runs fn(i) for i in [0, n) across the pool, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

// Cancellation-propagating variant: runs fn(i) for i in [0, n), but the
// first non-OK return (or an externally cancelled token) stops the wave —
// workers poll `cancel` between items, so remaining iterations are skipped
// rather than executed, and Wait() cannot wedge on a poisoned wave. Returns
// the first error in iteration order-of-occurrence (kCancelled if the token
// was tripped externally), OK otherwise. `fn` must tolerate never being
// called for skipped indices.
Status ParallelFor(ThreadPool& pool, size_t n, CancelToken& cancel,
                   const std::function<Status(size_t)>& fn);

// Splits [0, n) into contiguous ranges of at most `grain` items and runs
// fn(range_index, begin, end) for each across the pool, blocking until all
// complete. Range r covers [r*grain, min(n, (r+1)*grain)), so range indexes
// enumerate the input in order — callers that write one output slot per
// range and merge slots in range order get exactly the serial result. The
// morsel-driven evaluator is the primary user.
void ParallelForRanges(ThreadPool& pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace lshap

#endif  // LSHAP_COMMON_THREAD_POOL_H_
