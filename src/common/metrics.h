#ifndef LSHAP_COMMON_METRICS_H_
#define LSHAP_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lshap {

class MetricsRegistry;

// The observability substrate (DESIGN.md §9): a process-wide registry of
// named Counters, Gauges and fixed-bucket Histograms, plus ScopedSpan timers
// that nest into a per-thread trace tree. Instrumented code holds cheap
// value-type handles; a default-constructed handle is a no-op whose methods
// inline to a single null test, which is how "metrics off" costs nothing —
// every instrumented layer takes a `MetricsRegistry*` through its options
// struct (EvalOptions, CorpusConfig, TrainConfig), and a null registry
// yields no-op handles everywhere.
//
// Hot-path discipline: Counter/Histogram cells are sharded per thread
// (kNumShards cache-line-isolated relaxed atomics, merged on read), so
// morsel workers and ladder workers never contend on a metric. Instrumented
// loops additionally accumulate into a local variable and flush once per
// morsel/batch, keeping the per-row cost at zero. Metrics only observe:
// they must never change tuples, lineages, corpora or model weights
// (eval_property_test pins byte-identical output with metrics on and off).

namespace metrics_internal {

inline constexpr size_t kNumShards = 16;

// Stable per-thread shard index, assigned round-robin on first use.
size_t ThisThreadShard();

// One cache-line-isolated relaxed atomic, so two shards never false-share.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

class CounterCell {
 public:
  void Add(uint64_t n) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Total() const {
    uint64_t total = 0;
    for (const ShardCell& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  ShardCell shards_[kNumShards];
};

// Gauges are last-write-wins doubles (epoch loss, examples/sec); a single
// atomic cell suffices — there is nothing to merge.
class GaugeCell {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Get() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

class HistogramCell {
 public:
  explicit HistogramCell(std::vector<double> upper_bounds);

  // Lands in the first bucket whose upper bound is >= v; values above the
  // last bound land in the implicit overflow bucket.
  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Merged per-bucket counts (size upper_bounds()+1; last is overflow).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;

 private:
  struct Shard {
    explicit Shard(size_t num_buckets)
        : buckets(new std::atomic<uint64_t>[num_buckets]) {
      for (size_t i = 0; i < num_buckets; ++i) buckets[i] = 0;
    }
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> upper_bounds_;  // ascending
  // deque: Shard holds atomics and can never be moved/relocated.
  std::deque<Shard> shards_;
};

}  // namespace metrics_internal

// Monotonically increasing event count. Copyable no-op-by-default handle.
class Counter {
 public:
  Counter() = default;
  // const: mutates the shared cell, not the handle — so a const context
  // holding a handle can still count.
  void Inc(uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->Add(n);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(metrics_internal::CounterCell* cell) : cell_(cell) {}
  metrics_internal::CounterCell* cell_ = nullptr;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  void Set(double v) const {
    if (cell_ != nullptr) cell_->Set(v);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(metrics_internal::GaugeCell* cell) : cell_(cell) {}
  metrics_internal::GaugeCell* cell_ = nullptr;
};

// Fixed-bucket distribution (latencies, sizes, occupancies).
class Histogram {
 public:
  Histogram() = default;
  void Observe(double v) const {
    if (cell_ != nullptr) cell_->Observe(v);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(metrics_internal::HistogramCell* cell) : cell_(cell) {}
  metrics_internal::HistogramCell* cell_ = nullptr;
};

// The registry: owns every metric cell and the per-thread span trace trees.
// Get* registers on first use and returns the same cell for the same name
// afterwards (handles resolved once outside hot loops; the lookup takes a
// mutex). ToJson() merges shards and thread traces into one snapshot and is
// safe to call while instrumented code is still running.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry the bench harness exports via --metrics-json.
  // Library code never reaches for this implicitly — instrumentation is
  // always opt-in through an options struct.
  static MetricsRegistry& Global();

  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  // `upper_bounds` must be ascending; registration wins on first use (a
  // later Get with different bounds returns the existing histogram).
  Histogram GetHistogram(const std::string& name,
                         std::vector<double> upper_bounds);

  // Merged snapshot: {"counters": {...}, "gauges": {...},
  // "histograms": {...}, "spans": [...]} — see tools/metrics_report for the
  // pretty-printed rendering.
  std::string ToJson() const;

  // Read-side test accessors (merged across shards). Missing names read 0.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  std::vector<uint64_t> HistogramBuckets(const std::string& name) const;

  // Aggregated span statistics for the node at `path` (e.g.
  // {"eval.query", "eval.scan"}), merged across threads. count == 0 means
  // the path never ran.
  struct SpanStats {
    uint64_t count = 0;
    double total_seconds = 0.0;
  };
  SpanStats SpanAt(const std::vector<std::string>& path) const;

  // Internal trace representation, public only for the merge helpers in
  // metrics.cc — instrumented code never touches these directly.
  //
  // One thread's span tree. Nodes are keyed by (parent, name), so repeated
  // entries of the same span under the same parent aggregate into one node.
  // Guarded by its own mutex: span enter/exit is coarse (per query, per
  // phase, per epoch — never per row), so a brief uncontended lock keeps
  // the tree safe to snapshot mid-run without a lock-free tree.
  struct SpanNode {
    std::string name;
    int parent = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    std::map<std::string, int> children;
  };
  struct ThreadTrace {
    std::mutex mu;
    std::vector<SpanNode> nodes;  // nodes[0] is the synthetic root
    int current = 0;              // innermost open span (0 = at root)
    ThreadTrace() : nodes(1) {}
  };

 private:
  friend class ScopedSpan;

  ThreadTrace* TraceForThisThread();

  const uint64_t id_;  // process-unique, keys the thread-local trace cache

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<metrics_internal::CounterCell>>
      counters_;
  std::map<std::string, std::unique_ptr<metrics_internal::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<metrics_internal::HistogramCell>>
      histograms_;

  mutable std::mutex traces_mu_;
  std::vector<std::unique_ptr<ThreadTrace>> traces_;
};

// RAII span timer. Construction with a null registry is a no-op; otherwise
// the span opens as a child of this thread's innermost open span and closes
// (accumulating count and wall time) on destruction. Spans must strictly
// nest per thread, which the RAII shape enforces; a span opened on a pool
// worker roots a separate per-thread tree rather than attaching to the
// dispatching thread's open span.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry::ThreadTrace* trace_ = nullptr;
  int node_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Null-safe handle resolvers: the idiom for options-driven instrumentation
// (`Counter c = CounterFor(options.metrics, "eval.rows_scanned");`).
Counter CounterFor(MetricsRegistry* registry, const std::string& name);
Gauge GaugeFor(MetricsRegistry* registry, const std::string& name);
Histogram HistogramFor(MetricsRegistry* registry, const std::string& name,
                       std::vector<double> upper_bounds);

// `count` bucket upper bounds starting at `start`, each `factor` times the
// previous — the standard latency/size bucket layout.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

// Quantile estimate from merged bucket counts (`counts` has
// upper_bounds.size()+1 entries; the last is the overflow bucket). Returns
// the upper bound of the bucket holding the q-th observation — a
// conservative (upper) estimate, exact enough for p50/p99 reporting with
// exponential buckets. Returns 0 for an empty histogram; observations in
// the overflow bucket report the last finite bound.
double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<uint64_t>& counts, double q);

}  // namespace lshap

#endif  // LSHAP_COMMON_METRICS_H_
