#include "common/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace lshap {

namespace metrics_internal {

size_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  LSHAP_CHECK_MSG(!upper_bounds_.empty(), "histogram needs at least one bucket");
  LSHAP_CHECK_MSG(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
                  "histogram bounds must be ascending");
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_.emplace_back(upper_bounds_.size() + 1);
  }
}

void HistogramCell::Observe(double v) {
  const size_t bucket =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v) -
      upper_bounds_.begin();
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> HistogramCell::BucketCounts() const {
  std::vector<uint64_t> counts(upper_bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t HistogramCell::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double HistogramCell::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace metrics_internal

namespace {

uint64_t NextRegistryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  // Bare integers are valid JSON numbers, but keep them recognizably real.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s;
}

// Threads register their trace lazily; the cache maps registry id (never
// reused, unlike an address) to that registry's per-thread trace, so a
// destroyed registry's stale entries can never be hit.
struct TraceCacheEntry {
  uint64_t registry_id;
  void* trace;
};
thread_local std::vector<TraceCacheEntry> t_trace_cache;

// Merged view of one span across all thread traces, used by ToJson/SpanAt.
struct MergedSpan {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  std::map<std::string, MergedSpan> children;
};

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (cell == nullptr) {
    cell = std::make_unique<metrics_internal::CounterCell>();
  }
  return Counter(cell.get());
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = gauges_[name];
  if (cell == nullptr) {
    cell = std::make_unique<metrics_internal::GaugeCell>();
  }
  return Gauge(cell.get());
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = histograms_[name];
  if (cell == nullptr) {
    cell = std::make_unique<metrics_internal::HistogramCell>(
        std::move(upper_bounds));
  }
  return Histogram(cell.get());
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Total();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->Get();
}

std::vector<uint64_t> MetricsRegistry::HistogramBuckets(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? std::vector<uint64_t>{}
                                 : it->second->BucketCounts();
}

MetricsRegistry::ThreadTrace* MetricsRegistry::TraceForThisThread() {
  for (const TraceCacheEntry& e : t_trace_cache) {
    if (e.registry_id == id_) return static_cast<ThreadTrace*>(e.trace);
  }
  auto owned = std::make_unique<ThreadTrace>();
  ThreadTrace* trace = owned.get();
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    traces_.push_back(std::move(owned));
  }
  t_trace_cache.push_back({id_, trace});
  return trace;
}

namespace {

// Fold one thread's subtree rooted at `node` into the merged tree. Same
// name path across threads aggregates into one merged node.
void MergeTraceNode(const std::vector<MetricsRegistry::SpanNode>& nodes,
                    int node, MergedSpan* into) {
  const auto& n = nodes[node];
  for (const auto& [name, child] : n.children) {
    MergedSpan& slot = into->children[name];
    slot.count += nodes[child].count;
    slot.total_ns += nodes[child].total_ns;
    MergeTraceNode(nodes, child, &slot);
  }
}

void AppendSpanJson(std::string* out, const std::string& name,
                    const MergedSpan& span) {
  out->append("{\"name\": ");
  AppendJsonString(out, name);
  out->append(", \"count\": ");
  out->append(std::to_string(span.count));
  out->append(", \"seconds\": ");
  out->append(JsonDouble(static_cast<double>(span.total_ns) * 1e-9));
  out->append(", \"children\": [");
  bool first = true;
  for (const auto& [child_name, child] : span.children) {
    if (!first) out->append(", ");
    first = false;
    AppendSpanJson(out, child_name, child);
  }
  out->append("]}");
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [name, cell] : counters_) {
      out.append(first ? "\n" : ",\n");
      first = false;
      out.append("    ");
      AppendJsonString(&out, name);
      out.append(": ");
      out.append(std::to_string(cell->Total()));
    }
    out.append(first ? "},\n" : "\n  },\n");

    out.append("  \"gauges\": {");
    first = true;
    for (const auto& [name, cell] : gauges_) {
      out.append(first ? "\n" : ",\n");
      first = false;
      out.append("    ");
      AppendJsonString(&out, name);
      out.append(": ");
      out.append(JsonDouble(cell->Get()));
    }
    out.append(first ? "},\n" : "\n  },\n");

    out.append("  \"histograms\": {");
    first = true;
    for (const auto& [name, cell] : histograms_) {
      out.append(first ? "\n" : ",\n");
      first = false;
      out.append("    ");
      AppendJsonString(&out, name);
      out.append(": {\"upper_bounds\": [");
      const auto& bounds = cell->upper_bounds();
      for (size_t i = 0; i < bounds.size(); ++i) {
        if (i > 0) out.append(", ");
        out.append(JsonDouble(bounds[i]));
      }
      out.append("], \"counts\": [");
      const auto counts = cell->BucketCounts();
      for (size_t i = 0; i < counts.size(); ++i) {
        if (i > 0) out.append(", ");
        out.append(std::to_string(counts[i]));
      }
      out.append("], \"total_count\": ");
      out.append(std::to_string(cell->TotalCount()));
      out.append(", \"sum\": ");
      out.append(JsonDouble(cell->Sum()));
      out.append("}");
    }
    out.append(first ? "},\n" : "\n  },\n");
  }

  MergedSpan root;
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    for (const auto& trace : traces_) {
      std::lock_guard<std::mutex> trace_lock(trace->mu);
      MergeTraceNode(trace->nodes, 0, &root);
    }
  }
  out.append("  \"spans\": [");
  bool first = true;
  for (const auto& [name, span] : root.children) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    AppendSpanJson(&out, name, span);
  }
  out.append(first ? "]\n" : "\n  ]\n");
  out.append("}\n");
  return out;
}

MetricsRegistry::SpanStats MetricsRegistry::SpanAt(
    const std::vector<std::string>& path) const {
  MergedSpan root;
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    for (const auto& trace : traces_) {
      std::lock_guard<std::mutex> trace_lock(trace->mu);
      MergeTraceNode(trace->nodes, 0, &root);
    }
  }
  const MergedSpan* node = &root;
  for (const std::string& name : path) {
    auto it = node->children.find(name);
    if (it == node->children.end()) return SpanStats{};
    node = &it->second;
  }
  return SpanStats{node->count,
                   static_cast<double>(node->total_ns) * 1e-9};
}

ScopedSpan::ScopedSpan(MetricsRegistry* registry, const char* name) {
  if (registry == nullptr) return;
  trace_ = registry->TraceForThisThread();
  {
    std::lock_guard<std::mutex> lock(trace_->mu);
    auto& nodes = trace_->nodes;
    const int parent = trace_->current;
    auto [it, inserted] = nodes[parent].children.try_emplace(name, 0);
    if (inserted) {
      it->second = static_cast<int>(nodes.size());
      MetricsRegistry::SpanNode node;
      node.name = name;
      node.parent = parent;
      nodes.push_back(std::move(node));
    }
    node_ = it->second;
    trace_->current = node_;
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  std::lock_guard<std::mutex> lock(trace_->mu);
  auto& node = trace_->nodes[node_];
  node.count += 1;
  node.total_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  trace_->current = node.parent;
}

Counter CounterFor(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? Counter() : registry->GetCounter(name);
}

Gauge GaugeFor(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? Gauge() : registry->GetGauge(name);
}

Histogram HistogramFor(MetricsRegistry* registry, const std::string& name,
                       std::vector<double> upper_bounds) {
  return registry == nullptr
             ? Histogram()
             : registry->GetHistogram(name, std::move(upper_bounds));
}

double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0 || upper_bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th observation, 1-based; q=0 maps to the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < upper_bounds.size() ? upper_bounds[i] : upper_bounds.back();
    }
  }
  return upper_bounds.back();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  LSHAP_CHECK_MSG(start > 0.0 && factor > 1.0 && count > 0,
                  "invalid exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

}  // namespace lshap
