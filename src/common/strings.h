#ifndef LSHAP_COMMON_STRINGS_H_
#define LSHAP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lshap {

// Joins the string representations of a range with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lshap

#endif  // LSHAP_COMMON_STRINGS_H_
