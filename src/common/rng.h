#ifndef LSHAP_COMMON_RNG_H_
#define LSHAP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace lshap {

// Deterministic, seedable pseudo-random number generator (xoshiro256**,
// seeded via splitmix64). All experiment pipelines draw exclusively from
// explicitly seeded Rng instances so every table and figure is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform random 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // True with probability p.
  bool NextBool(double p = 0.5);

  // Zipf-distributed integer in [0, n) with exponent s (s > 0). Larger s
  // concentrates mass on small indices. Uses inverse-CDF over precomputed
  // weights for small n; callers should cache a ZipfSampler for hot loops.
  uint64_t NextZipf(uint64_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

// Precomputed Zipf sampler over [0, n) for repeated draws.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace lshap

#endif  // LSHAP_COMMON_RNG_H_
