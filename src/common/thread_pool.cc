#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace lshap {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

Status ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition(
          "ThreadPool::Schedule after Shutdown");
    }
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
  return Status::Ok();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_workers = std::min(n, pool.num_threads());
  std::atomic<size_t> next{0};
  size_t scheduled = 0;
  for (size_t w = 0; w < num_workers; ++w) {
    const Status s = pool.Schedule([&next, n, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
    if (s.ok()) ++scheduled;
  }
  // Scheduling into a shut-down pool is a caller bug for the infallible
  // variant; fail fast rather than spin on work that will never run.
  LSHAP_CHECK_MSG(scheduled > 0, "ParallelFor on a shut-down ThreadPool");
  pool.Wait();
}

void ParallelForRanges(ThreadPool& pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  const size_t num_ranges = (n + grain - 1) / grain;
  ParallelFor(pool, num_ranges, [&](size_t r) {
    const size_t begin = r * grain;
    fn(r, begin, std::min(n, begin + grain));
  });
}

Status ParallelFor(ThreadPool& pool, size_t n, CancelToken& cancel,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  const size_t num_workers = std::min(n, pool.num_threads());
  std::atomic<size_t> next{0};
  std::mutex err_mu;
  Status first_error;
  for (size_t w = 0; w < num_workers; ++w) {
    const Status s = pool.Schedule([&] {
      for (;;) {
        if (cancel.cancelled()) return;
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        const Status item = fn(i);
        if (!item.ok()) {
          {
            std::unique_lock<std::mutex> lock(err_mu);
            if (first_error.ok()) first_error = item;
          }
          cancel.RequestCancel();
          return;
        }
      }
    });
    if (!s.ok()) {
      // Workers already scheduled capture this frame's locals; drain them
      // before unwinding.
      cancel.RequestCancel();
      pool.Wait();
      return s;
    }
  }
  pool.Wait();
  {
    std::unique_lock<std::mutex> lock(err_mu);
    if (!first_error.ok()) return first_error;
  }
  if (cancel.cancelled()) {
    return Status::Cancelled("ParallelFor wave cancelled");
  }
  return Status::Ok();
}

}  // namespace lshap
