#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace lshap {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_workers = std::min(n, pool.num_threads());
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Schedule([&next, n, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace lshap
