#ifndef LSHAP_COMMON_TIMER_H_
#define LSHAP_COMMON_TIMER_H_

#include <chrono>

namespace lshap {

// Simple wall-clock stopwatch used by the inference-time experiments.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lshap

#endif  // LSHAP_COMMON_TIMER_H_
