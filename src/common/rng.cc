#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace lshap {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  have_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  LSHAP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  LSHAP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LSHAP_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextBounded(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n) {
  LSHAP_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace lshap
