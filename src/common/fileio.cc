#include "common/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace lshap {

std::string TempWritePath(const std::string& path) { return path + ".tmp"; }

Status CommitTempFile(const std::string& path) {
  const std::string tmp = TempWritePath(path);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    return Status::Internal("cannot rename '" + tmp + "' to '" + path +
                            "': " + std::strerror(err));
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = TempWritePath(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open '" + tmp + "' for write");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("write to '" + tmp + "' failed");
    }
  }
  return CommitTempFile(path);
}

}  // namespace lshap
