#ifndef LSHAP_COMMON_FILEIO_H_
#define LSHAP_COMMON_FILEIO_H_

#include <string>

#include "common/status.h"

namespace lshap {

// Crash-safe file replacement. Every persistent artifact (text corpus,
// packed shards, manifest, model file) is written to TempWritePath(path)
// and then renamed over `path` in one metadata operation, so a process
// killed mid-write can never leave a truncated file under the final name —
// readers either see the complete old version or the complete new one.
// Name/size checks are therefore never fooled by a half-written file; the
// checksum/fingerprint validation layers only ever have to catch genuine
// corruption, not interrupted writes.
//
// The temp path is deterministic (`<path>.tmp`), so a stale temp file left
// by a crashed run is simply overwritten by the next save.

// The sibling temp path writers stream into before committing.
std::string TempWritePath(const std::string& path);

// Renames TempWritePath(path) onto `path` (atomic on POSIX when both live
// on the same filesystem, which siblings always do).
Status CommitTempFile(const std::string& path);

// Convenience for buffered writers: writes `contents` to the temp path,
// flushes, and commits. Any failure leaves `path` untouched.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace lshap

#endif  // LSHAP_COMMON_FILEIO_H_
