#include "common/budget.h"

#include <limits>

#include "common/strings.h"

namespace lshap {

namespace {

// splitmix64 finalizer — the same mixing primitive Rng seeds with; used to
// derive a per-(seed, site, hit) coin for probabilistic fault arming.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(const char* s) {
  // FNV-1a; stable across runs (site names are compile-time literals).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status MakeFault(StatusCode code, const char* site) {
  const std::string msg = StrFormat("fault injected at site '%s'", site);
  return Status(code, msg);
}

}  // namespace

void FaultInjector::FailAt(const std::string& site, uint64_t hit_index,
                           StatusCode code) {
  std::unique_lock<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.arming.exact = true;
  state.arming.hit_index = hit_index;
  state.arming.code = code;
  state.armed = true;
}

void FaultInjector::FailWithProbability(const std::string& site,
                                        double probability, StatusCode code) {
  std::unique_lock<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.arming.exact = false;
  state.arming.probability = probability;
  state.arming.code = code;
  state.armed = true;
}

Status FaultInjector::OnSite(const char* site) {
  std::unique_lock<std::mutex> lock(mu_);
  // Unarmed sites still count hits so tests can discover hit indices.
  SiteState& state = sites_[site];
  const uint64_t hit = state.hits++;
  if (!state.armed) return Status::Ok();
  if (state.arming.exact) {
    if (hit == state.arming.hit_index) {
      return MakeFault(state.arming.code, site);
    }
    return Status::Ok();
  }
  const uint64_t coin = Mix64(seed_ ^ HashString(site) ^ (hit * 0x9e37ULL));
  const double u =
      static_cast<double>(coin >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  if (u < state.arming.probability) {
    return MakeFault(state.arming.code, site);
  }
  return Status::Ok();
}

uint64_t FaultInjector::hits(const std::string& site) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return 0;
  return it->second.hits;
}

ExecutionBudget::ExecutionBudget(const Limits& limits, CancelToken* cancel,
                                 FaultInjector* fault)
    : max_work_units_(limits.max_work_units), cancel_(cancel), fault_(fault) {
  if (limits.deadline_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       limits.deadline_seconds));
  }
}

double ExecutionBudget::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

Status ExecutionBudget::Trip(Status status, const char* site) {
  trip_status_ = std::move(status);
  trip_site_ = site;
  return trip_status_;
}

Status ExecutionBudget::Check(const char* site) {
  if (!trip_status_.ok()) return trip_status_;
  if (fault_ != nullptr) {
    Status injected = fault_->OnSite(site);
    if (!injected.ok()) return Trip(std::move(injected), site);
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Trip(Status::Cancelled(StrFormat("cancelled at site '%s'", site)),
                site);
  }
  if (has_deadline_) {
    // The steady clock is read only every kDeadlineCheckStride-th check:
    // budget checks sit in Shannon-expansion and sampling hot loops, and a
    // clock read costs ~20-30 ns versus ~1 ns for the stride counter.
    if ((check_count_++ % kDeadlineCheckStride) == 0 &&
        Clock::now() >= deadline_) {
      return Trip(Status::ResourceExhausted(
                      StrFormat("deadline exceeded at site '%s'", site)),
                  site);
    }
  }
  return Status::Ok();
}

Status ExecutionBudget::Charge(uint64_t units, const char* site) {
  if (!trip_status_.ok()) return trip_status_;
  charged_units_ += units;
  if (max_work_units_ != 0 && charged_units_ > max_work_units_) {
    return Trip(
        Status::ResourceExhausted(StrFormat(
            "work budget exhausted at site '%s' (%llu > %llu units)", site,
            static_cast<unsigned long long>(charged_units_),
            static_cast<unsigned long long>(max_work_units_))),
        site);
  }
  return Check(site);
}

}  // namespace lshap
