#ifndef LSHAP_COMMON_STATUS_H_
#define LSHAP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lshap {

// Error codes for operations that can fail. The library does not use
// exceptions (Google style); fallible functions return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // A resource budget (deadline, circuit-node allowance) was exhausted; the
  // operation was abandoned cleanly and may be retried with a cheaper
  // algorithm or a larger budget.
  kResourceExhausted,
  // Cooperative cancellation was requested via a CancelToken.
  kCancelled,
};

// A lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// an errored Result aborts the process (fail-fast; consistent with CHECK).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok() || !value_.has_value()) {
    internal::DieBadResult(status_);
  }
}

}  // namespace lshap

#endif  // LSHAP_COMMON_STATUS_H_
