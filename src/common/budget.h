#ifndef LSHAP_COMMON_BUDGET_H_
#define LSHAP_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace lshap {

// Cooperative cancellation flag shared between a controller (e.g. the corpus
// builder's build-level deadline watchdog, or a ParallelFor wave that hit an
// error) and the workers it governs. Workers poll `cancelled()` through their
// ExecutionBudget at check sites; nothing is interrupted preemptively.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Deterministic fault injector for testing budget plumbing. Each budget check
// site is identified by a stable name and a per-site hit counter; a site can
// be armed to fail at an exact hit index, so tests can force a budget trip at
// a precise point in a recursion (e.g. "the 3rd Shannon expansion") and get
// the same trip on every run. The seed perturbs probabilistic arming only;
// exact-hit arming is seed-independent.
//
// A FaultInjector is attached to an ExecutionBudget by pointer; a null
// pointer (the default everywhere outside tests) costs one branch per check.
// Fully mutex-guarded: one injector may be shared by the budgets of many
// worker threads (as the corpus builder does). It only exists in tests, so
// the lock on the check path is acceptable.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  // Arms `site` to fail with `code` on its `hit_index`-th check (0-based).
  void FailAt(const std::string& site, uint64_t hit_index,
              StatusCode code = StatusCode::kResourceExhausted);

  // Arms `site` to fail with `code` on every check whose splitmix-derived
  // coin (deterministic in seed, site, hit index) lands below `probability`.
  void FailWithProbability(const std::string& site, double probability,
                           StatusCode code = StatusCode::kResourceExhausted);

  // Called by ExecutionBudget at every check site. Returns non-OK iff the
  // site is armed and this hit matches the arming rule.
  Status OnSite(const char* site);

  // Total checks observed at `site` so far (armed or not).
  uint64_t hits(const std::string& site) const;

 private:
  struct Arming {
    bool exact = false;          // exact-hit vs probabilistic
    uint64_t hit_index = 0;      // exact: fail on this hit
    double probability = 0.0;    // probabilistic: per-hit failure chance
    StatusCode code = StatusCode::kResourceExhausted;
  };
  struct SiteState {
    Arming arming;
    bool armed = false;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  uint64_t seed_;
  std::map<std::string, SiteState> sites_;
};

// A resource envelope for one unit of work (one tuple's Shapley computation,
// one corpus build): a steady-clock deadline, an abstract work-unit budget
// (circuit nodes for the compiler, samples for Monte Carlo), an optional
// shared CancelToken, and an optional FaultInjector. Budgeted code calls
// `Check(site)` at loop/recursion heads and `Charge(units, site)` when it
// allocates; both return kResourceExhausted / kCancelled instead of letting
// the computation run away.
//
// Budgets are sticky: after the first trip every subsequent Check/Charge
// returns the same error, so deep recursions can bail out level by level
// without re-deriving the reason. The wall clock is only read every
// kDeadlineCheckStride checks, keeping a Check on the hot path to a couple
// of increments and compares; `Unlimited()` budgets short-circuit harder
// (no counters to compare), which is what the infallible wrapper APIs use.
class ExecutionBudget {
 public:
  struct Limits {
    // Wall-clock allowance in seconds; <= 0 means no deadline.
    double deadline_seconds = 0.0;
    // Abstract work-unit allowance (circuit nodes / samples); 0 = unlimited.
    uint64_t max_work_units = 0;
  };

  // No deadline, no unit cap, no cancellation: Check/Charge never fail
  // (unless a fault injector is attached).
  static ExecutionBudget Unlimited() { return ExecutionBudget(Limits{}); }

  explicit ExecutionBudget(const Limits& limits, CancelToken* cancel = nullptr,
                           FaultInjector* fault = nullptr);

  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  // Cheap poll at a named site: fault injector (if any), cancel token,
  // deadline (strided). Sticky once tripped.
  Status Check(const char* site);

  // Consumes `units` of the work budget at a named site, then polls like
  // Check. Sticky once tripped.
  Status Charge(uint64_t units, const char* site);

  bool unlimited() const {
    return !has_deadline_ && max_work_units_ == 0 && cancel_ == nullptr &&
           fault_ == nullptr;
  }
  bool has_deadline() const { return has_deadline_; }
  // Seconds until the deadline: +infinity without one, negative once it has
  // passed. Reads the wall clock (unstrided) — for stage-boundary decisions
  // like "is the model rung still feasible", not for per-row hot loops
  // (those poll Check, which strides the clock reads).
  double RemainingSeconds() const;
  bool tripped() const { return !trip_status_.ok(); }
  // Site name of the first trip; empty if none.
  const std::string& trip_site() const { return trip_site_; }
  const Status& trip_status() const { return trip_status_; }
  uint64_t charged_units() const { return charged_units_; }

 private:
  static constexpr uint64_t kDeadlineCheckStride = 64;

  using Clock = std::chrono::steady_clock;

  Status Trip(Status status, const char* site);

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  uint64_t max_work_units_ = 0;
  uint64_t charged_units_ = 0;
  uint64_t check_count_ = 0;
  CancelToken* cancel_ = nullptr;
  FaultInjector* fault_ = nullptr;
  Status trip_status_;
  std::string trip_site_;
};

}  // namespace lshap

#endif  // LSHAP_COMMON_BUDGET_H_
