#ifndef LSHAP_COMMON_CHECK_H_
#define LSHAP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Fail-fast invariant checks, active in all build modes. These guard
// programming errors (broken invariants), not user input; fallible user-facing
// operations return Status instead.

#define LSHAP_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define LSHAP_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define LSHAP_CHECK_EQ(a, b) LSHAP_CHECK((a) == (b))
#define LSHAP_CHECK_NE(a, b) LSHAP_CHECK((a) != (b))
#define LSHAP_CHECK_LT(a, b) LSHAP_CHECK((a) < (b))
#define LSHAP_CHECK_LE(a, b) LSHAP_CHECK((a) <= (b))
#define LSHAP_CHECK_GT(a, b) LSHAP_CHECK((a) > (b))
#define LSHAP_CHECK_GE(a, b) LSHAP_CHECK((a) >= (b))

#endif  // LSHAP_COMMON_CHECK_H_
