#ifndef LSHAP_SERVING_SERVICE_H_
#define LSHAP_SERVING_SERVICE_H_

// The resilient ranking service (DESIGN.md §11): serves concurrent
// RankTuple / ExplainQuery requests over an immutable DatabaseSnapshot,
// with admission control, per-request deadline propagation, micro-batched
// scoring, and a per-request graceful-degradation ladder
//
//   kModel       full ranker forward pass over the tuple's lineage
//   kCached      interned-key sharded LRU of (snapshot, query, tuple) results
//   kStratified  relation-stratified MC Shapley over the tuple's provenance
//                (opt-in via stratified_samples; off by default)
//   kCnfProxy    CNF clause-counting heuristic over the tuple's provenance
//   kDegraded    explicit "no ranking computed" response — never a timeout
//
// Every terminal outcome is accounted: a submitted request is either
// rejected at admission (kResourceExhausted, caller never blocked),
// completed with a response recording the rung taken, or — at shutdown —
// completed with kCancelled. Nothing is silently dropped.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/metrics.h"
#include "serving/cache.h"
#include "serving/snapshot.h"

namespace lshap {

// Budget/fault sites in the serving path. kSiteServeAdmission and
// kSiteServeSnapshot/Eval are polled through each request's
// ExecutionBudget (so an injected fault trips the budget stickily);
// kSiteServeCache and kSiteServeProxy are polled directly on the fault
// injector, because those rungs must stay reachable after a budget trip —
// they are what a tripped request degrades to.
inline constexpr char kSiteServeAdmission[] = "serve.admission";
inline constexpr char kSiteServeSnapshot[] = "serve.snapshot";
inline constexpr char kSiteServeEval[] = "serve.eval";
inline constexpr char kSiteServeCache[] = "serve.cache";
inline constexpr char kSiteServeStratified[] = "serve.stratified";
inline constexpr char kSiteServeProxy[] = "serve.proxy";

// Degradation-ladder rung recorded in every OK response.
enum class ServeRung {
  kModel = 0,
  kCached = 1,
  kStratified = 2,
  kCnfProxy = 3,
  kDegraded = 4,
};
const char* ServeRungName(ServeRung rung);

enum class RequestKind {
  kRankTuple = 0,     // rank one output tuple's lineage facts
  kExplainQuery = 1,  // rank lineages of the query's first N output tuples
};

// One client request. A deadline <= 0 means none; max_work_units 0 means
// uncapped (work units are charged per scored lineage fact).
struct RankRequest {
  RequestKind kind = RequestKind::kRankTuple;
  Query query;
  OutputTuple tuple;  // kRankTuple only
  double deadline_seconds = 0.0;
  uint64_t max_work_units = 0;
  // When false, a request that cannot reach any computing rung fails with
  // the budget's trip status instead of returning a kDegraded response.
  bool allow_degraded = true;
};

// One ranked output tuple: facts in descending contribution order with the
// scores that ordered them (all zero is impossible — degraded responses
// carry no RankedTuple at all).
struct RankedTuple {
  OutputTuple tuple;
  std::vector<FactId> ranking;
  std::vector<double> scores;  // aligned with `ranking`
};

struct RankResponse {
  Status status;               // non-OK: eval error, not-found, cancelled…
  uint64_t epoch = 0;          // snapshot version that served the request
  ServeRung rung = ServeRung::kDegraded;
  std::vector<RankedTuple> results;  // empty on kDegraded / non-OK
  double queue_seconds = 0.0;  // admission → processing start
  double serve_seconds = 0.0;  // processing start → response
};

// Service tuning. Defaults follow the repo's options-builder convention:
// every knob has a chainable With* setter, and the defaults serve a small
// snapshot sensibly.
struct ServiceConfig {
  // Worker threads consuming the queue. 0 = manual mode: nothing runs
  // until PumpAll() drains the queue on the calling thread — what the
  // deterministic unit tests use (no sleeps-as-synchronization).
  size_t num_workers = 0;
  // Admission control: hard queue-depth bound, and an estimated-backlog
  // bound (queue_depth * est_request_seconds must stay under
  // max_backlog_seconds). Both reject with kResourceExhausted, never block.
  size_t queue_capacity = 256;
  double max_backlog_seconds = 0.5;
  // Up-front estimates driving admission and rung feasibility: a request
  // whose deadline is below est_request_seconds is rejected immediately;
  // the model rung is only attempted with at least est_model_seconds of
  // deadline remaining.
  double est_request_seconds = 1e-3;
  double est_model_seconds = 5e-3;
  // Micro-batching: a worker coalesces up to batch_max requests, flushing
  // at the tightest in-batch deadline or after batch_window_seconds,
  // whichever comes first.
  size_t batch_max = 8;
  double batch_window_seconds = 1e-3;
  // kCached rung: total entries across shards; 0 disables the cache.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  // kStratified rung: per-fact sample budget for the relation-stratified
  // MC estimate tried between the cache and the CNF proxy. 0 (the
  // default) disables the rung, preserving the historical ladder. Only
  // attempted with an untripped budget and at least est_stratified_seconds
  // of deadline remaining; its samples charge the request's budget, so a
  // mid-rung trip degrades to the proxy.
  size_t stratified_samples = 0;
  double est_stratified_seconds = 2e-3;
  // kExplainQuery ranks at most this many output tuples.
  size_t max_explain_outputs = 16;
  FaultInjector* fault = nullptr;     // chaos hooks at every serve.* site
  MetricsRegistry* metrics = nullptr; // serve.* counters and histograms

  ServiceConfig& WithWorkers(size_t n) { num_workers = n; return *this; }
  ServiceConfig& WithQueueCapacity(size_t n) { queue_capacity = n; return *this; }
  ServiceConfig& WithMaxBacklogSeconds(double s) { max_backlog_seconds = s; return *this; }
  ServiceConfig& WithEstRequestSeconds(double s) { est_request_seconds = s; return *this; }
  ServiceConfig& WithEstModelSeconds(double s) { est_model_seconds = s; return *this; }
  ServiceConfig& WithBatchMax(size_t n) { batch_max = n; return *this; }
  ServiceConfig& WithBatchWindowSeconds(double s) { batch_window_seconds = s; return *this; }
  ServiceConfig& WithCacheCapacity(size_t n) { cache_capacity = n; return *this; }
  ServiceConfig& WithCacheShards(size_t n) { cache_shards = n; return *this; }
  ServiceConfig& WithStratifiedSamples(size_t n) { stratified_samples = n; return *this; }
  ServiceConfig& WithEstStratifiedSeconds(double s) { est_stratified_seconds = s; return *this; }
  ServiceConfig& WithMaxExplainOutputs(size_t n) { max_explain_outputs = n; return *this; }
  ServiceConfig& WithFault(FaultInjector* f) { fault = f; return *this; }
  ServiceConfig& WithMetrics(MetricsRegistry* m) { metrics = m; return *this; }
};

// The service. Thread-safe throughout: Submit/Rank may be called from any
// number of client threads while Publish installs new snapshots and
// workers drain the queue. Scoring goes through the snapshot's shared
// const ranker directly: LearnShapleyRanker's scoring path is const and
// scratch-free (per-thread inference workspaces), so no per-worker clones
// are needed.
class RankingService {
 public:
  explicit RankingService(ServiceConfig config);
  ~RankingService();  // implies Shutdown()

  RankingService(const RankingService&) = delete;
  RankingService& operator=(const RankingService&) = delete;

  // Installs a new serving version and returns its epoch. `db` must be
  // frozen (string_order_fresh); `ranker` may be null (the service then
  // tops out at the kCnfProxy rung). Never blocks in-flight requests:
  // they finish on the snapshot they acquired.
  Result<uint64_t> Publish(std::shared_ptr<const Database> db,
                           std::shared_ptr<const LearnShapleyRanker> ranker);

  SnapshotHandle CurrentSnapshot() const { return slot_.Acquire(); }
  uint64_t epoch() const { return slot_.epoch(); }

  // Admission-controlled enqueue. Errors (admission rejections) return
  // immediately without a future; an accepted request's future is always
  // eventually fulfilled (response, or kCancelled at shutdown).
  Result<std::future<RankResponse>> Submit(RankRequest request);

  // Submit + wait. In manual mode (num_workers == 0) this pumps the queue
  // on the calling thread, so it never deadlocks.
  RankResponse Rank(RankRequest request);

  // Manual mode: drains and processes every queued request on the calling
  // thread (micro-batched exactly like a worker, minus the waiting).
  // Returns the number of requests processed.
  size_t PumpAll();

  // Stops workers and fails every still-queued request with kCancelled.
  // Idempotent.
  void Shutdown();

  size_t queue_depth() const;
  const RankingCache& cache() const { return *cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    RankRequest request;
    std::promise<RankResponse> promise;
    Clock::time_point enqueued;
    bool has_deadline = false;
    Clock::time_point deadline{};  // absolute, when has_deadline
    std::unique_ptr<ExecutionBudget> budget;
  };

  void WorkerLoop();
  // Pops one micro-batch. `blocking` (worker mode) waits for work and
  // holds the batch open until the flush deadline; non-blocking (pump)
  // takes what is queued right now.
  std::vector<std::unique_ptr<Pending>> CollectBatch(bool blocking);
  void ProcessBatch(std::vector<std::unique_ptr<Pending>>& batch);
  RankResponse Process(Pending& pending, const DatabaseSnapshot& snapshot,
                       const LearnShapleyRanker* ranker);
  void FinishResponse(Pending& pending, RankResponse response,
                      Clock::time_point started);

  ServiceConfig config_;
  SnapshotSlot slot_;
  std::unique_ptr<RankingCache> cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool stopped_ = false;

  std::vector<std::thread> workers_;
  std::mutex pump_mu_;  // serializes PumpAll callers

  // serve.* instrumentation (no-op handles when metrics is null).
  Counter submitted_, admitted_, completed_, errors_, cancelled_;
  Counter rejected_queue_full_, rejected_backlog_, rejected_deadline_,
      rejected_no_snapshot_, rejected_fault_, rejected_shutdown_;
  Counter rung_model_, rung_cached_, rung_stratified_, rung_proxy_,
      rung_degraded_;
  Histogram queue_seconds_, latency_seconds_, batch_size_;
};

}  // namespace lshap

#endif  // LSHAP_SERVING_SERVICE_H_
