#include "serving/snapshot.h"

#include <utility>

#include "common/check.h"

namespace lshap {

uint64_t SnapshotSlot::Publish(
    std::shared_ptr<const Database> db,
    std::shared_ptr<const LearnShapleyRanker> ranker) {
  LSHAP_CHECK(db != nullptr);
  // The fingerprint walks every fact cell — do it outside the lock.
  const uint64_t fingerprint = FactTableFingerprint(*db);
  auto snapshot = std::make_shared<DatabaseSnapshot>();
  snapshot->db = std::move(db);
  snapshot->ranker = std::move(ranker);
  snapshot->db_fingerprint = fingerprint;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->epoch = epoch_.load(std::memory_order_relaxed) + 1;
  current_ = std::move(snapshot);
  // Release-publish after current_ is swapped, so an epoch() reader that
  // sees the new number and then Acquires gets the new snapshot.
  epoch_.store(current_->epoch, std::memory_order_release);
  return current_->epoch;
}

SnapshotHandle SnapshotSlot::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace lshap
