#ifndef LSHAP_SERVING_CACHE_H_
#define LSHAP_SERVING_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/ast.h"
#include "relational/tuple.h"
#include "shapley/shapley.h"

namespace lshap {

// One cached ranking: facts in descending contribution order with their
// model scores. Small and value-copyable — a cache hit hands the caller an
// independent copy, never a reference into the cache.
struct CachedRanking {
  std::vector<std::pair<FactId, double>> scores;
};

// Sharded LRU over (snapshot fingerprint, query, tuple) keys — the kCached
// rung of the serving degradation ladder. Each shard is an independent
// mutex + intrusive LRU list + index, so concurrent workers rarely contend;
// the key string is interned once in the list node and the index refers to
// it by string_view (no second copy of the key per entry).
//
// Keys embed the snapshot's database fingerprint, so entries written under
// one published version can never answer for another — a snapshot swap
// implicitly invalidates the old version's entries without a flush (they
// simply age out of the LRU).
class RankingCache {
 public:
  // `capacity` is total entries across shards (rounded up to a multiple of
  // `num_shards`); capacity 0 disables the cache (Get misses, Put drops).
  explicit RankingCache(size_t capacity, size_t num_shards = 8);

  RankingCache(const RankingCache&) = delete;
  RankingCache& operator=(const RankingCache&) = delete;

  // The canonical key. Fingerprint first so entries from different
  // snapshot versions can never collide into one another's lookups.
  static std::string Key(uint64_t db_fingerprint, const Query& q,
                         const OutputTuple& t);

  // Copies the cached ranking into `*out` and refreshes recency.
  bool Get(const std::string& key, CachedRanking* out);

  // Inserts or refreshes; evicts the shard's least-recent entry past
  // per-shard capacity.
  void Put(const std::string& key, CachedRanking value);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    CachedRanking value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // Views into Entry::key — stable because list nodes never move.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace lshap

#endif  // LSHAP_SERVING_CACHE_H_
