#include "serving/cache.h"

#include <algorithm>
#include <cstdio>

namespace lshap {

namespace {

// FNV-1a — stable shard routing independent of std::hash.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

RankingCache::RankingCache(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  shards_ = std::vector<Shard>(num_shards);
}

std::string RankingCache::Key(uint64_t db_fingerprint, const Query& q,
                              const OutputTuple& t) {
  std::string key;
  key.reserve(64);
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(db_fingerprint));
  key.append(fp, 16);
  key.push_back('\x1f');
  key.append(q.ToSql());
  key.push_back('\x1f');
  key.append(OutputTupleToString(t));
  return key;
}

RankingCache::Shard& RankingCache::ShardFor(const std::string& key) {
  return shards_[HashKey(key) % shards_.size()];
}

bool RankingCache::Get(const std::string& key, CachedRanking* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->value;
  return true;
}

void RankingCache::Put(const std::string& key, CachedRanking value) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    // The index key views the evicted node's string: erase index first.
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

size_t RankingCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

uint64_t RankingCache::hits() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.hits;
  }
  return n;
}

uint64_t RankingCache::misses() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.misses;
  }
  return n;
}

uint64_t RankingCache::evictions() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.evictions;
  }
  return n;
}

}  // namespace lshap
