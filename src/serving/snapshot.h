#ifndef LSHAP_SERVING_SNAPSHOT_H_
#define LSHAP_SERVING_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "learnshapley/ranker.h"
#include "relational/database.h"

namespace lshap {

// One immutable serving version: a frozen database, the ranker trained over
// it, and the database's fact-table fingerprint (the cache-key component
// that keeps results from one version from ever answering for another).
//
// Immutability is a publishing contract, not a compiler guarantee: the
// ingest path builds a *new* Database (Database is move-only — its
// StringPool cannot be copied), freezes its string order, and hands it to
// SnapshotSlot::Publish. Nothing mutates a database after it is wrapped in
// a snapshot; readers share it through shared_ptr, so an old epoch stays
// fully valid for in-flight requests after a newer one is published.
//
// The ranker is scored through directly by every worker: its scoring path
// is const and scratch-free (per-thread inference workspaces), so one
// shared const instance serves all threads with no per-epoch clones.
struct DatabaseSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const Database> db;
  std::shared_ptr<const LearnShapleyRanker> ranker;  // may be null: no model
  uint64_t db_fingerprint = 0;
};

using SnapshotHandle = std::shared_ptr<const DatabaseSnapshot>;

// The epoch-based pointer swap at the core of the serving story. Publish
// installs a new snapshot under a brief mutex and bumps the epoch; Acquire
// returns a shared handle to whatever version is current. In-flight
// requests keep the handle they acquired, so a swap never blocks or
// invalidates readers — the old snapshot dies when its last handle drops.
//
// The epoch counter is also readable lock-free, which lets clients detect
// "a new version landed" without acquiring the slot mutex on every request.
class SnapshotSlot {
 public:
  // Installs `snapshot` (whose `epoch` field is assigned here) and returns
  // the new epoch. Epochs start at 1; 0 means nothing published yet.
  uint64_t Publish(std::shared_ptr<const Database> db,
                   std::shared_ptr<const LearnShapleyRanker> ranker);

  // Current snapshot; null before the first Publish.
  SnapshotHandle Acquire() const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  SnapshotHandle current_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace lshap

#endif  // LSHAP_SERVING_SNAPSHOT_H_
