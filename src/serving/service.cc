#include "serving/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "eval/evaluator.h"
#include "shapley/shapley.h"

namespace lshap {

namespace {

std::chrono::steady_clock::duration ToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// FNV-1a over a string: the query-identity component of the stratified
// rung's deterministic per-request seed.
uint64_t FnvOf(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

RankedTuple MakeRanked(const OutputTuple& t, const ShapleyValues& scores) {
  RankedTuple rt;
  rt.tuple = t;
  rt.ranking = RankByScore(scores);
  rt.scores.reserve(rt.ranking.size());
  for (FactId f : rt.ranking) rt.scores.push_back(scores.at(f));
  return rt;
}

}  // namespace

const char* ServeRungName(ServeRung rung) {
  switch (rung) {
    case ServeRung::kModel:
      return "model";
    case ServeRung::kCached:
      return "cached";
    case ServeRung::kStratified:
      return "stratified";
    case ServeRung::kCnfProxy:
      return "cnf_proxy";
    case ServeRung::kDegraded:
      return "degraded";
  }
  return "unknown";
}

RankingService::RankingService(ServiceConfig config)
    : config_(std::move(config)) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  cache_ = std::make_unique<RankingCache>(config_.cache_capacity,
                                          config_.cache_shards);
  MetricsRegistry* m = config_.metrics;
  submitted_ = CounterFor(m, "serve.submitted");
  admitted_ = CounterFor(m, "serve.admitted");
  completed_ = CounterFor(m, "serve.completed");
  errors_ = CounterFor(m, "serve.errors");
  cancelled_ = CounterFor(m, "serve.cancelled");
  rejected_queue_full_ = CounterFor(m, "serve.rejected.queue_full");
  rejected_backlog_ = CounterFor(m, "serve.rejected.backlog");
  rejected_deadline_ = CounterFor(m, "serve.rejected.deadline");
  rejected_no_snapshot_ = CounterFor(m, "serve.rejected.no_snapshot");
  rejected_fault_ = CounterFor(m, "serve.rejected.fault");
  rejected_shutdown_ = CounterFor(m, "serve.rejected.shutdown");
  rung_model_ = CounterFor(m, "serve.rung.model");
  rung_cached_ = CounterFor(m, "serve.rung.cached");
  rung_stratified_ = CounterFor(m, "serve.rung.stratified");
  rung_proxy_ = CounterFor(m, "serve.rung.cnf_proxy");
  rung_degraded_ = CounterFor(m, "serve.rung.degraded");
  queue_seconds_ =
      HistogramFor(m, "serve.queue_seconds", ExponentialBuckets(1e-6, 4.0, 14));
  latency_seconds_ = HistogramFor(m, "serve.latency_seconds",
                                  ExponentialBuckets(1e-6, 4.0, 14));
  batch_size_ =
      HistogramFor(m, "serve.batch_size", ExponentialBuckets(1.0, 2.0, 8));
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RankingService::~RankingService() { Shutdown(); }

Result<uint64_t> RankingService::Publish(
    std::shared_ptr<const Database> db,
    std::shared_ptr<const LearnShapleyRanker> ranker) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (!db->string_order_fresh()) {
    return Status::FailedPrecondition(
        "database must be frozen (FreezeStringOrder) before it is published "
        "as an immutable snapshot");
  }
  return slot_.Publish(std::move(db), std::move(ranker));
}

Result<std::future<RankResponse>> RankingService::Submit(RankRequest request) {
  submitted_.Inc();
  if (config_.fault != nullptr) {
    Status injected = config_.fault->OnSite(kSiteServeAdmission);
    if (!injected.ok()) {
      rejected_fault_.Inc();
      return injected;
    }
  }
  if (slot_.epoch() == 0) {
    rejected_no_snapshot_.Inc();
    return Status::FailedPrecondition(
        "no snapshot published — the service has nothing to serve");
  }
  // Up-front deadline rejection: a request that cannot even cover the
  // service floor would only waste a queue slot before timing out.
  if (request.deadline_seconds > 0.0 &&
      request.deadline_seconds < config_.est_request_seconds) {
    rejected_deadline_.Inc();
    return Status::ResourceExhausted(StrFormat(
        "deadline %.6fs is below the service floor of %.6fs — rejected "
        "up front",
        request.deadline_seconds, config_.est_request_seconds));
  }

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->enqueued = Clock::now();
  if (pending->request.deadline_seconds > 0.0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->enqueued + ToDuration(pending->request.deadline_seconds);
  }
  // The budget starts at admission, so time spent queued consumes the
  // request's deadline exactly like time spent computing.
  pending->budget = std::make_unique<ExecutionBudget>(
      ExecutionBudget::Limits{pending->request.deadline_seconds,
                              pending->request.max_work_units},
      nullptr, config_.fault);
  std::future<RankResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopped_) {
      rejected_shutdown_.Inc();
      return Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      rejected_queue_full_.Inc();
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%zu requests)", queue_.size()));
    }
    const double backlog =
        static_cast<double>(queue_.size()) * config_.est_request_seconds;
    if (backlog > config_.max_backlog_seconds ||
        (pending->has_deadline &&
         backlog + config_.est_request_seconds >
             pending->request.deadline_seconds)) {
      rejected_backlog_.Inc();
      return Status::ResourceExhausted(StrFormat(
          "estimated backlog %.6fs exceeds the admission bound "
          "(max backlog %.6fs, request deadline %.6fs)",
          backlog, config_.max_backlog_seconds,
          pending->request.deadline_seconds));
    }
    queue_.push_back(std::move(pending));
  }
  admitted_.Inc();
  queue_cv_.notify_one();
  return future;
}

RankResponse RankingService::Rank(RankRequest request) {
  auto future = Submit(std::move(request));
  if (!future.ok()) {
    RankResponse response;
    response.status = future.status();
    return response;
  }
  if (config_.num_workers == 0) PumpAll();
  return future->get();
}

size_t RankingService::PumpAll() {
  std::lock_guard<std::mutex> pump_lock(pump_mu_);
  size_t processed = 0;
  while (true) {
    auto batch = CollectBatch(/*blocking=*/false);
    if (batch.empty()) break;
    processed += batch.size();
    ProcessBatch(batch);
  }
  return processed;
}

void RankingService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopped_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  std::deque<std::unique_ptr<Pending>> remaining;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    remaining.swap(queue_);
  }
  // Never drop silently: every admitted request gets a terminal response.
  for (auto& pending : remaining) {
    RankResponse response;
    response.status =
        Status::Cancelled("service shut down before the request was served");
    cancelled_.Inc();
    pending->promise.set_value(std::move(response));
  }
}

size_t RankingService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void RankingService::WorkerLoop() {
  while (true) {
    auto batch = CollectBatch(/*blocking=*/true);
    if (batch.empty()) return;  // only happens at shutdown
    ProcessBatch(batch);
  }
}

std::vector<std::unique_ptr<RankingService::Pending>>
RankingService::CollectBatch(bool blocking) {
  std::vector<std::unique_ptr<Pending>> batch;
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (blocking) {
    queue_cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
    // On stop, leave queued requests to Shutdown's kCancelled drain.
    if (stopped_) return batch;
  }
  if (queue_.empty()) return batch;
  auto take = [&] {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  };
  take();
  // Flush deadline: the batch window, tightened to the most urgent
  // request's absolute deadline — a batch never holds a request past the
  // point where serving it is still possible.
  Clock::time_point flush =
      Clock::now() + ToDuration(config_.batch_window_seconds);
  auto tighten = [&] {
    const Pending& p = *batch.back();
    if (p.has_deadline && p.deadline < flush) flush = p.deadline;
  };
  tighten();
  while (batch.size() < config_.batch_max) {
    if (!queue_.empty()) {
      take();
      tighten();
      continue;
    }
    if (!blocking || stopped_) break;
    if (!queue_cv_.wait_until(lock, flush,
                              [&] { return stopped_ || !queue_.empty(); })) {
      break;  // flush deadline reached with no new work
    }
    if (stopped_) break;
  }
  return batch;
}

void RankingService::ProcessBatch(
    std::vector<std::unique_ptr<Pending>>& batch) {
  SnapshotHandle snapshot = slot_.Acquire();
  batch_size_.Observe(static_cast<double>(batch.size()));
  // Scoring is const and scratch-free (per-thread workspaces inside the
  // ranker), so every worker ranks through the snapshot's shared instance.
  const LearnShapleyRanker* ranker =
      snapshot != nullptr ? snapshot->ranker.get() : nullptr;
  for (auto& pending : batch) {
    const Clock::time_point started = Clock::now();
    RankResponse response;
    if (snapshot == nullptr) {
      response.status =
          Status::FailedPrecondition("no snapshot published");
    } else {
      response = Process(*pending, *snapshot, ranker);
    }
    FinishResponse(*pending, std::move(response), started);
  }
}

RankResponse RankingService::Process(Pending& pending,
                                     const DatabaseSnapshot& snapshot,
                                     const LearnShapleyRanker* ranker) {
  RankResponse response;
  response.epoch = snapshot.epoch;
  const RankRequest& request = pending.request;
  ExecutionBudget& budget = *pending.budget;

  // Stage 1: snapshot lookup. A fault or an expired-in-queue deadline
  // trips the budget here and the request enters the ladder already
  // degraded (model rung infeasible, cache still reachable).
  (void)budget.Check(kSiteServeSnapshot);

  const bool want_cache = config_.cache_capacity > 0 &&
                          request.kind == RequestKind::kRankTuple;
  std::string cache_key;
  if (want_cache) {
    cache_key = RankingCache::Key(snapshot.db_fingerprint, request.query,
                                  request.tuple);
  }

  // Stage 2: evaluation, shared by the model and proxy rungs. kFull
  // capture keeps the provenance DNF the proxy rung needs. Budget trips
  // make eval "unavailable"; genuine evaluator errors are fatal to the
  // request (no rung can fix a malformed query).
  std::optional<EvalResult> eval;
  Status eval_fatal;
  bool eval_tried = false;
  auto ensure_eval = [&]() -> bool {
    if (eval.has_value()) return true;
    if (eval_tried) return false;
    eval_tried = true;
    if (!budget.Check(kSiteServeEval).ok()) return false;
    auto result = Evaluate(*snapshot.db, request.query,
                           EvalOptions().WithMetrics(config_.metrics));
    if (!result.ok()) {
      eval_fatal = result.status();
      return false;
    }
    eval = std::move(*result);
    return budget.Check(kSiteServeEval).ok() || true;
  };
  // Indices of the output tuples this request ranks (requires eval).
  auto targets = [&]() -> Result<std::vector<size_t>> {
    std::vector<size_t> idx;
    if (request.kind == RequestKind::kRankTuple) {
      auto it = eval->index.find(request.tuple);
      if (it == eval->index.end()) {
        return Status::NotFound("tuple is not in the query's output");
      }
      idx.push_back(it->second);
    } else {
      const size_t n =
          std::min(eval->tuples.size(), config_.max_explain_outputs);
      idx.reserve(n);
      for (size_t i = 0; i < n; ++i) idx.push_back(i);
    }
    return idx;
  };

  // Rung 1: full model rank — only with a ranker, an untripped budget,
  // and enough deadline left to plausibly finish a forward pass.
  if (ranker != nullptr && !budget.tripped() &&
      budget.RemainingSeconds() >= config_.est_model_seconds) {
    if (ensure_eval()) {
      auto tgt = targets();
      if (!tgt.ok()) {
        response.status = tgt.status();
        return response;
      }
      std::vector<RankedTuple> results;
      results.reserve(tgt->size());
      bool scored_all = true;
      for (size_t i : *tgt) {
        auto scores = ranker->ScoreLineageBudgeted(
            *snapshot.db, request.query, eval->tuples[i], eval->lineages[i],
            budget);
        if (!scores.ok()) {
          scored_all = false;  // budget tripped mid-lineage: degrade
          break;
        }
        results.push_back(MakeRanked(eval->tuples[i], *scores));
      }
      if (scored_all) {
        if (config_.cache_capacity > 0) {
          for (const RankedTuple& rt : results) {
            CachedRanking cached;
            cached.scores.reserve(rt.ranking.size());
            for (size_t j = 0; j < rt.ranking.size(); ++j) {
              cached.scores.emplace_back(rt.ranking[j], rt.scores[j]);
            }
            cache_->Put(want_cache
                            ? cache_key
                            : RankingCache::Key(snapshot.db_fingerprint,
                                                request.query, rt.tuple),
                        std::move(cached));
          }
        }
        response.rung = ServeRung::kModel;
        response.results = std::move(results);
        return response;
      }
    }
  }
  if (!eval_fatal.ok()) {
    response.status = eval_fatal;
    return response;
  }

  // Rung 2: cached result. Reachable even with a tripped budget — a
  // sharded-LRU probe is the cheapest thing the service can still do for
  // an almost-expired request.
  if (want_cache) {
    const bool cache_usable =
        config_.fault == nullptr ||
        config_.fault->OnSite(kSiteServeCache).ok();
    CachedRanking cached;
    if (cache_usable && cache_->Get(cache_key, &cached)) {
      RankedTuple rt;
      rt.tuple = request.tuple;
      rt.ranking.reserve(cached.scores.size());
      rt.scores.reserve(cached.scores.size());
      for (const auto& [f, s] : cached.scores) {
        rt.ranking.push_back(f);
        rt.scores.push_back(s);
      }
      response.rung = ServeRung::kCached;
      response.results.push_back(std::move(rt));
      return response;
    }
  }

  // Rung 3 (opt-in): relation-stratified MC Shapley over the tuple's
  // provenance — the serving twin of the corpus builder's stratified rung
  // (DESIGN.md §13), for deployments that want estimator-grade scores when
  // the model is unavailable but real sampling still fits the deadline.
  // Off by default (stratified_samples == 0), so the historical ladder is
  // unchanged. The samples charge the request's budget; a mid-rung trip
  // falls through to the proxy below. Seeded per (snapshot, query, tuple
  // index), so a given request is scored identically on every replay.
  if (config_.stratified_samples > 0 && !budget.tripped() &&
      budget.RemainingSeconds() >= config_.est_stratified_seconds) {
    const bool stratified_usable =
        config_.fault == nullptr ||
        config_.fault->OnSite(kSiteServeStratified).ok();
    if (stratified_usable && ensure_eval()) {
      auto tgt = targets();
      if (!tgt.ok()) {
        response.status = tgt.status();
        return response;
      }
      std::vector<RankedTuple> results;
      results.reserve(tgt->size());
      bool scored_all = true;
      for (size_t i : *tgt) {
        const Dnf& prov = eval->ProvenanceOf(i);
        const std::vector<FactId> lineage = prov.Variables();
        std::vector<uint32_t> strata(lineage.size());
        for (size_t j = 0; j < lineage.size(); ++j) {
          strata[j] = snapshot.db->FactTableIndex(lineage[j]);
        }
        Rng rng(snapshot.db_fingerprint ^ FnvOf(request.query.id) ^
                (0xda942042e4dd58b5ULL * (i + 1)));
        auto scores = ComputeShapleyStratified(
            prov, strata, config_.stratified_samples, rng, budget);
        if (!scores.ok()) {
          scored_all = false;  // budget tripped mid-estimate: degrade
          break;
        }
        results.push_back(MakeRanked(eval->tuples[i], *scores));
      }
      if (scored_all) {
        response.rung = ServeRung::kStratified;
        response.results = std::move(results);
        return response;
      }
    }
  }
  if (!eval_fatal.ok()) {
    response.status = eval_fatal;
    return response;
  }

  // Rung 4: CNF-proxy heuristic over provenance already in hand (a model
  // rung that tripped mid-scoring left a usable eval), or computed now if
  // the deadline has not yet passed.
  const bool proxy_usable =
      config_.fault == nullptr || config_.fault->OnSite(kSiteServeProxy).ok();
  if (proxy_usable) {
    bool have_eval = eval.has_value();
    if (!have_eval && !budget.tripped() && budget.RemainingSeconds() > 0.0) {
      have_eval = ensure_eval();
    }
    if (have_eval) {
      auto tgt = targets();
      if (!tgt.ok()) {
        response.status = tgt.status();
        return response;
      }
      std::vector<RankedTuple> results;
      results.reserve(tgt->size());
      for (size_t i : *tgt) {
        results.push_back(
            MakeRanked(eval->tuples[i],
                       ComputeCnfProxyUnlimited(eval->ProvenanceOf(i))));
      }
      response.rung = ServeRung::kCnfProxy;
      response.results = std::move(results);
      return response;
    }
    if (!eval_fatal.ok()) {
      response.status = eval_fatal;
      return response;
    }
  }

  // Rung 5: explicit degradation — an honest empty answer instead of a
  // timeout, unless the client opted out.
  if (request.allow_degraded) {
    response.rung = ServeRung::kDegraded;
    return response;
  }
  response.status = budget.tripped()
                        ? budget.trip_status()
                        : Status::ResourceExhausted(
                              "no rung feasible within the request budget");
  return response;
}

void RankingService::FinishResponse(Pending& pending, RankResponse response,
                                    Clock::time_point started) {
  const Clock::time_point now = Clock::now();
  response.queue_seconds = Seconds(started - pending.enqueued);
  response.serve_seconds = Seconds(now - started);
  queue_seconds_.Observe(response.queue_seconds);
  latency_seconds_.Observe(Seconds(now - pending.enqueued));
  completed_.Inc();
  if (!response.status.ok()) {
    errors_.Inc();
  } else {
    switch (response.rung) {
      case ServeRung::kModel:
        rung_model_.Inc();
        break;
      case ServeRung::kCached:
        rung_cached_.Inc();
        break;
      case ServeRung::kStratified:
        rung_stratified_.Inc();
        break;
      case ServeRung::kCnfProxy:
        rung_proxy_.Inc();
        break;
      case ServeRung::kDegraded:
        rung_degraded_.Inc();
        break;
    }
  }
  pending.promise.set_value(std::move(response));
}

}  // namespace lshap
