#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lshap {

double NdcgAtK(const std::vector<FactId>& predicted,
               const ShapleyValues& gold, size_t k) {
  const size_t depth = std::min(k, predicted.size());
  double dcg = 0.0;
  for (size_t i = 0; i < depth; ++i) {
    auto it = gold.find(predicted[i]);
    const double rel = it != gold.end() ? it->second : 0.0;
    dcg += rel / std::log2(static_cast<double>(i) + 2.0);
  }
  const std::vector<FactId> ideal = RankByScore(gold);
  double idcg = 0.0;
  const size_t ideal_depth = std::min(k, ideal.size());
  for (size_t i = 0; i < ideal_depth; ++i) {
    idcg += gold.at(ideal[i]) / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg <= 0.0) return 1.0;
  return dcg / idcg;
}

double PrecisionAtK(const std::vector<FactId>& predicted,
                    const ShapleyValues& gold, size_t k) {
  const std::vector<FactId> ideal = RankByScore(gold);
  const size_t depth = std::min({k, predicted.size(), ideal.size()});
  if (depth == 0) return 0.0;
  std::vector<FactId> top_pred(predicted.begin(),
                               predicted.begin() + static_cast<ptrdiff_t>(
                                   std::min(k, predicted.size())));
  std::vector<FactId> top_gold(ideal.begin(),
                               ideal.begin() + static_cast<ptrdiff_t>(
                                   std::min(k, ideal.size())));
  std::sort(top_pred.begin(), top_pred.end());
  std::sort(top_gold.begin(), top_gold.end());
  std::vector<FactId> inter;
  std::set_intersection(top_pred.begin(), top_pred.end(), top_gold.begin(),
                        top_gold.end(), std::back_inserter(inter));
  return static_cast<double>(inter.size()) / static_cast<double>(depth);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& gold) {
  LSHAP_CHECK_EQ(pred.size(), gold.size());
  if (pred.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - gold[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace lshap
