#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lshap {

double NdcgAtK(const std::vector<FactId>& predicted,
               const ShapleyValues& gold, size_t k) {
  const size_t depth = std::min(k, predicted.size());
  double dcg = 0.0;
  std::vector<FactId> seen;
  seen.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    const FactId f = predicted[i];
    // A fact repeated in the prediction earns its gain once, at its first
    // (best-discounted) position. Counting every occurrence let DCG exceed
    // IDCG — a ranking spamming the top fact scored NDCG > 1. Later
    // occurrences still occupy their rank position, they just contribute 0.
    if (std::find(seen.begin(), seen.end(), f) != seen.end()) continue;
    seen.push_back(f);
    auto it = gold.find(f);
    const double rel = it != gold.end() ? it->second : 0.0;
    dcg += rel / std::log2(static_cast<double>(i) + 2.0);
  }
  const std::vector<FactId> ideal = RankByScore(gold);
  double idcg = 0.0;
  const size_t ideal_depth = std::min(k, ideal.size());
  for (size_t i = 0; i < ideal_depth; ++i) {
    idcg += gold.at(ideal[i]) / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg <= 0.0) return 1.0;
  // Floating-point accumulation of dcg and idcg sums the same terms in
  // different orders; keep the quotient inside the metric's range.
  return std::clamp(dcg / idcg, 0.0, 1.0);
}

double PrecisionAtK(const std::vector<FactId>& predicted,
                    const ShapleyValues& gold, size_t k) {
  const std::vector<FactId> ideal = RankByScore(gold);
  const size_t depth = std::min({k, predicted.size(), ideal.size()});
  if (depth == 0) return 0.0;
  std::vector<FactId> top_pred(predicted.begin(),
                               predicted.begin() + static_cast<ptrdiff_t>(
                                   std::min(k, predicted.size())));
  // The gold top-k, expanded across the score tie at the k boundary: every
  // fact tied with the k-th best score is as legitimate a member of the
  // gold top-k as the ones the FactId tiebreak happened to admit, so a
  // prediction surfacing either tied fact scores the same. Cutting strictly
  // at k made P@k depend on which of the tied facts the (arbitrary, e.g.
  // hash-map-iteration-derived) ranking preferred. |inter| stays <= depth:
  // the expansion never exceeds |ideal| and depth already caps at |ideal|.
  const size_t gold_k = std::min(k, ideal.size());
  const double boundary = gold.at(ideal[gold_k - 1]);
  size_t gold_end = gold_k;
  while (gold_end < ideal.size() && gold.at(ideal[gold_end]) == boundary) {
    ++gold_end;
  }
  std::vector<FactId> top_gold(
      ideal.begin(), ideal.begin() + static_cast<ptrdiff_t>(gold_end));
  std::sort(top_pred.begin(), top_pred.end());
  std::sort(top_gold.begin(), top_gold.end());
  std::vector<FactId> inter;
  std::set_intersection(top_pred.begin(), top_pred.end(), top_gold.begin(),
                        top_gold.end(), std::back_inserter(inter));
  return static_cast<double>(inter.size()) / static_cast<double>(depth);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& gold) {
  LSHAP_CHECK_EQ(pred.size(), gold.size());
  if (pred.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - gold[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace lshap
