#ifndef LSHAP_METRICS_RANKING_METRICS_H_
#define LSHAP_METRICS_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

#include "relational/database.h"
#include "shapley/shapley.h"

namespace lshap {

// NDCG@k of a predicted fact ranking against graded gold relevances (the
// true Shapley values): DCG@k = Σ_{i<k} rel(pred_i) / log2(i + 2), divided
// by the ideal DCG of the gold-sorted prefix. A fact repeated in `predicted`
// gains only at its first occurrence, so duplicated predictions cannot push
// NDCG past 1; the result is clamped to [0, 1]. Returns 1.0 when the ideal
// DCG is 0 (no relevant facts — every ranking is vacuously perfect).
double NdcgAtK(const std::vector<FactId>& predicted,
               const ShapleyValues& gold, size_t k);

// Precision@k: |top-k(predicted) ∩ top-k(gold)| / min(k, n). The gold top-k
// is by descending Shapley value, expanded to include every fact whose
// score ties the k-th best — so gold ties at the boundary cannot make the
// metric depend on which tied fact a ranking (or a hash-map iteration
// order) happened to prefer. Always in [0, 1].
double PrecisionAtK(const std::vector<FactId>& predicted,
                    const ShapleyValues& gold, size_t k);

// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Mean squared error between parallel vectors.
double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& gold);

}  // namespace lshap

#endif  // LSHAP_METRICS_RANKING_METRICS_H_
