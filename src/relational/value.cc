#include "relational/value.h"

#include <functional>

#include "common/check.h"
#include "common/strings.h"

namespace lshap {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt() const {
  LSHAP_CHECK(is_int());
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  LSHAP_CHECK(is_double());
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  LSHAP_CHECK(is_string());
  return std::get<std::string>(v_);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) return StrFormat("%g", std::get<double>(v_));
  return std::get<std::string>(v_);
}

std::string Value::ToSqlLiteral() const {
  if (is_string()) return "'" + std::get<std::string>(v_) + "'";
  return ToString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9u;
  if (is_int()) return std::hash<int64_t>{}(std::get<int64_t>(v_));
  if (is_double()) return std::hash<double>{}(std::get<double>(v_));
  return std::hash<std::string>{}(std::get<std::string>(v_));
}

bool operator<(const Value& a, const Value& b) {
  auto rank = [](const Value& v) -> int {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  const int ra = rank(a);
  const int rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;
  if (ra == 1) return a.AsDouble() < b.AsDouble();
  return a.AsString() < b.AsString();
}

}  // namespace lshap
