#include "relational/schema.h"

#include "common/strings.h"

namespace lshap {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + table_name_ +
                          "'");
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    cols.push_back(c.name + " " + ColumnTypeName(c.type));
  }
  return table_name_ + "(" + Join(cols, ", ") + ")";
}

}  // namespace lshap
