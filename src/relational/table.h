#ifndef LSHAP_RELATIONAL_TABLE_H_
#define LSHAP_RELATIONAL_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "relational/column.h"
#include "relational/schema.h"
#include "relational/string_pool.h"
#include "relational/value.h"

namespace lshap {

class Database;
class RowBatch;

// Globally unique identifier of a database fact (the "annotation" of
// provenance semirings). FactIds double as the boolean variables of
// provenance expressions.
using FactId = uint32_t;
inline constexpr FactId kInvalidFactId = static_cast<FactId>(-1);

// A relation instance in column-major layout: one typed contiguous column
// per schema attribute plus the per-row fact annotations. Rows exist only
// implicitly (index i across all columns); Value materializes at the
// boundary via GetValue/DecodeRow.
class Table {
 public:
  Table(Schema schema, const StringPool* pool);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return fact_ids_.size(); }
  size_t num_columns() const { return columns_.size(); }

  const ColumnData& column(size_t c) const { return columns_[c]; }
  FactId fact_id(size_t i) const { return fact_ids_[i]; }
  const std::vector<FactId>& fact_ids() const { return fact_ids_; }

  // Boundary decode of one cell / one row.
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row, *pool_);
  }
  std::vector<Value> DecodeRow(size_t row) const;

 private:
  friend class Database;
  friend class TableAppender;

  Schema schema_;
  const StringPool* pool_;
  std::vector<ColumnData> columns_;
  std::vector<FactId> fact_ids_;
};

// Typed bulk-load cursor bound to one table, with two interchangeable
// shapes sharing one commit path:
//
//   Row-at-a-time:    appender.Begin().Int(1).Str("x").Commit();
//   Column-at-a-time: appender.AppendColumn(0, ints)
//                             .AppendColumn(1, names)
//                             .CommitRows();
//   Staged batch:     RowBatch batch(schema); ...; appender.Append(batch);
//
// NULL cells ingest through every shape: `Begin().Int(1).Null().Commit()`
// in the row builder, `AppendNullableColumn(col, values, validity)` in the
// column path (validity[i] == 0 marks row i NULL; the paired value is a
// placeholder and is not interned/stored), and `RowBatch::Null()` when
// staging. The all-valid signatures are exact wrappers of the nullable
// surface — ingesting the same all-valid data through either produces
// byte-identical tables, fact ids and fingerprints.
//
// Cells go straight into the typed columns (one string intern per string
// cell, no Value construction). The row-at-a-time path is a thin wrapper:
// Commit() is CommitRows() over a single staged row. Column appends stage
// directly into the table's columns; CommitRows() checks every column
// gained the same number of rows (rectangular batch) and then registers
// one fact per new row, in row order — so batch and row-at-a-time ingest
// of the same data produce byte-identical tables and fact ids. Misuse
// (wrong type/arity for the schema, ragged batches, mixing an open row
// with column appends) is a programming error and CHECK-fails; the
// Result-returning boundary is Database::Insert.
class TableAppender {
 public:
  TableAppender& Begin();  // starts a new row; previous row must be complete
  TableAppender& Int(int64_t v);
  TableAppender& Real(double v);
  TableAppender& Str(std::string_view s);
  TableAppender& Null();  // a NULL cell, valid for any column type
  FactId Commit();  // finishes the row, registers and returns its fact id

  // Column-at-a-time bulk appends. `col` is the schema column index; ints
  // promote into kDouble columns exactly like Int(). No row may be open.
  TableAppender& AppendColumn(size_t col, std::span<const int64_t> values);
  TableAppender& AppendColumn(size_t col, std::span<const double> values);
  TableAppender& AppendColumn(size_t col,
                              std::span<const std::string_view> values);
  TableAppender& AppendColumn(size_t col,
                              std::span<const std::string> values);

  // Nullable column-at-a-time appends: values and validity are parallel
  // spans (equal length, CHECK-enforced); validity[i] == 0 appends a NULL
  // cell and ignores values[i] (string placeholders are not interned).
  // `AppendColumn(col, values)` is exactly
  // `AppendNullableColumn(col, values, all-ones)` minus the validity loads.
  TableAppender& AppendNullableColumn(size_t col,
                                      std::span<const int64_t> values,
                                      std::span<const uint8_t> validity);
  TableAppender& AppendNullableColumn(size_t col,
                                      std::span<const double> values,
                                      std::span<const uint8_t> validity);
  TableAppender& AppendNullableColumn(size_t col,
                                      std::span<const std::string_view> values,
                                      std::span<const uint8_t> validity);
  TableAppender& AppendNullableColumn(size_t col,
                                      std::span<const std::string> values,
                                      std::span<const uint8_t> validity);

  // Registers facts for the rows staged by AppendColumn since the last
  // commit and returns their ids in row order. CHECK-fails if the staged
  // columns are ragged (unequal append counts).
  std::vector<FactId> CommitRows();

  // Bulk-appends a staged RowBatch (column-at-a-time under the hood) and
  // returns the new fact ids. The batch must have been built against this
  // table's schema.
  std::vector<FactId> Append(const RowBatch& batch);

  // The appended table's schema — what a RowBatch staging rows for this
  // appender should be constructed with.
  const Schema& schema() const;

 private:
  friend class Database;
  TableAppender(Database* db, uint32_t table_index);

  Table& table();
  // Shared commit tail: registers `new_rows` facts for rows already present
  // in the columns but not yet annotated.
  void RegisterRows(size_t new_rows, std::vector<FactId>* out);

  Database* db_;
  uint32_t table_index_;
  size_t next_col_;
  // Rows appended per column since the last commit (column-at-a-time path).
  std::vector<size_t> staged_;
};

// A row-major staging buffer decoupled from any database: build rows with
// the same fluent cell calls as TableAppender, then hand the whole batch to
// TableAppender::Append. Lets dataset generators keep their per-row RNG
// call order while the database sees one bulk append per table.
class RowBatch {
 public:
  explicit RowBatch(const Schema& schema);

  RowBatch& Begin();  // starts a new row; previous row must be complete
  RowBatch& Int(int64_t v);
  RowBatch& Real(double v);
  RowBatch& Str(std::string_view s);
  RowBatch& Null();  // a NULL cell, valid for any column type
  RowBatch& End();  // finishes the row

  size_t num_rows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }

 private:
  friend class TableAppender;

  // One staging buffer per schema column; only the vector matching the
  // column's type is used. `validity` stays empty until the column stages
  // its first Null() (empty = all valid), so all-valid batches flush through
  // the plain AppendColumn path byte-for-byte; once materialized, it runs
  // parallel to the typed vector and null slots hold a placeholder cell.
  struct ColumnBuffer {
    std::vector<int64_t> ints;
    std::vector<double> reals;
    std::vector<std::string> strs;
    std::vector<uint8_t> validity;
  };

  Schema schema_;
  std::vector<ColumnBuffer> columns_;
  size_t num_rows_ = 0;
  size_t next_col_;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_TABLE_H_
