#ifndef LSHAP_RELATIONAL_STRING_POOL_H_
#define LSHAP_RELATIONAL_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lshap {

// Dense id of an interned string. Ids are assigned in first-intern order and
// are stable for the lifetime of the pool. Equal ids <=> equal strings, so
// string equality on the hot paths (join keys, selection predicates, output
// dedup) is one 32-bit compare. Ids are NOT ordered like the strings they
// name; order predicates still go through the text (see ROADMAP open items).
using StringId = uint32_t;
inline constexpr StringId kInvalidStringId = static_cast<StringId>(-1);

// A per-database string dictionary. All string cells of all tables store
// StringIds into one shared pool, so the same title appearing as movies.title
// and roles.movie interns once and joins by id.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id of `s`, interning it if new.
  StringId Intern(std::string_view s);

  // Returns the id of `s` if already interned, kInvalidStringId otherwise.
  // Never mutates the pool — this is what predicate compilation uses, so
  // evaluating queries cannot grow the dictionary.
  StringId Find(std::string_view s) const;

  const std::string& Get(StringId id) const;

  size_t size() const { return by_id_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Keys own the text; unordered_map nodes are reference-stable, so by_id_
  // can point into them.
  std::unordered_map<std::string, StringId, Hash, std::equal_to<>> index_;
  std::vector<const std::string*> by_id_;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_STRING_POOL_H_
