#ifndef LSHAP_RELATIONAL_STRING_POOL_H_
#define LSHAP_RELATIONAL_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lshap {

// Dense id of an interned string. Ids are assigned in first-intern order and
// are stable for the lifetime of the pool. Equal ids <=> equal strings, so
// string equality on the hot paths (join keys, selection predicates, output
// dedup) is one 32-bit compare. Ids are NOT ordered like the strings they
// name; ordered predicates go through the rank sidecar below when it is
// fresh, and through the text otherwise.
using StringId = uint32_t;
inline constexpr StringId kInvalidStringId = static_cast<StringId>(-1);

// A per-database string dictionary. All string cells of all tables store
// StringIds into one shared pool, so the same title appearing as movies.title
// and roles.movie interns once and joins by id.
//
// Order sidecar. Interning order is ingestion order, not lexicographic
// order, so a plain id compare says nothing about text order. The sidecar
// is the standard columnar fix: a permutation of the dictionary sorted by
// text, stored both ways (`rank -> id` for binary searching literals,
// `id -> rank` for O(1) per-cell lookups). Once built, an ordered predicate
// on a string column becomes an integer rank-interval test over the flat
// StringId column — no text is materialized per cell. The sidecar carries
// the generation (= dictionary size) it was built at; interning a NEW
// string makes it stale (re-interning an existing string does not).
// Consumers must check OrderIndexFresh() and fall back to text comparisons
// when stale — rebuilds happen only through the explicit
// RebuildOrderIndex() call (Database::FreezeStringOrder), never implicitly
// from a const accessor, so concurrent readers are safe by construction.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id of `s`, interning it if new.
  StringId Intern(std::string_view s);

  // Returns the id of `s` if already interned, kInvalidStringId otherwise.
  // Never mutates the pool — this is what predicate compilation uses, so
  // evaluating queries cannot grow the dictionary.
  StringId Find(std::string_view s) const;

  const std::string& Get(StringId id) const;

  size_t size() const { return by_id_.size(); }

  // --- Order sidecar -----------------------------------------------------

  // Number of distinct strings ever interned; doubles as the generation
  // stamp the order sidecar validates against.
  uint64_t generation() const { return by_id_.size(); }

  // True iff the sidecar covers every interned string (so Rank and the
  // bound queries below are usable). Trivially true for an empty pool.
  bool OrderIndexFresh() const { return order_generation_ == by_id_.size(); }

  // (Re)builds the sidecar over the current dictionary, O(n log n). Called
  // once after ingest via Database::FreezeStringOrder; safe to call again
  // after further interning.
  void RebuildOrderIndex();

  // Rank of `id` in lexicographic order over the dictionary as of the last
  // rebuild: Rank(a) < Rank(b) <=> Get(a) < Get(b). Requires
  // OrderIndexFresh().
  uint32_t Rank(StringId id) const;

  // The full id -> rank map, indexable by any interned StringId. Requires
  // OrderIndexFresh(); this is what compiled predicates capture so the scan
  // loop is one load and one compare per cell.
  const std::vector<uint32_t>& ranks() const;

  // First rank whose string is >= `s` — i.e. the number of interned strings
  // strictly below `s`. Requires OrderIndexFresh().
  uint32_t RankLowerBound(std::string_view s) const;

  // First rank whose string is > `s`. Requires OrderIndexFresh().
  uint32_t RankUpperBound(std::string_view s) const;

  // Half-open rank interval [lo, hi) of the strings starting with `prefix`
  // (the empty prefix covers the whole pool). Requires OrderIndexFresh().
  std::pair<uint32_t, uint32_t> PrefixRankRange(std::string_view prefix) const;

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Keys own the text; unordered_map nodes are reference-stable, so by_id_
  // can point into them.
  std::unordered_map<std::string, StringId, Hash, std::equal_to<>> index_;
  std::vector<const std::string*> by_id_;

  // Order sidecar: sorted_[rank] = id in ascending text order, and
  // rank_of_[id] = rank — inverse permutations of each other, valid for the
  // first order_generation_ ids.
  std::vector<StringId> sorted_;
  std::vector<uint32_t> rank_of_;
  uint64_t order_generation_ = 0;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_STRING_POOL_H_
