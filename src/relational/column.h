#ifndef LSHAP_RELATIONAL_COLUMN_H_
#define LSHAP_RELATIONAL_COLUMN_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "relational/string_pool.h"
#include "relational/value.h"

namespace lshap {

// One typed, contiguous column of a table. Exactly one of the three backing
// vectors is populated, matching type(); cells are fixed-width (int64,
// double, or interned StringId), so scans touch flat memory and carry no
// per-cell heap payload.
//
// NULL cells are first-class (DESIGN.md §14): a word-packed validity bitmap
// rides alongside the cell vector, bit i set = row i valid. The bitmap is
// materialized lazily on the first AppendNull — an all-valid column stores
// no bitmap at all, pays zero memory, and every consumer short-circuits on
// has_nulls() so the all-valid scan/probe loops are exactly the pre-null
// flat loops. A null cell still occupies a slot in the cell vector, holding
// a deterministic placeholder (0 / 0.0 / StringId 0) that keeps the flat
// loops branch-free; readers must consult valid(i) before trusting a cell
// wherever has_nulls() is true.
class ColumnData {
 public:
  explicit ColumnData(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case ColumnType::kInt:
        return ints_.size();
      case ColumnType::kDouble:
        return doubles_.size();
      case ColumnType::kString:
        return strings_.size();
    }
    return 0;
  }

  void AppendInt(int64_t v) {
    LSHAP_CHECK(type_ == ColumnType::kInt);
    PushValidity(ints_.size(), true);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    LSHAP_CHECK(type_ == ColumnType::kDouble);
    PushValidity(doubles_.size(), true);
    doubles_.push_back(v);
  }
  void AppendString(StringId id) {
    LSHAP_CHECK(type_ == ColumnType::kString);
    PushValidity(strings_.size(), true);
    strings_.push_back(id);
  }

  // Appends a NULL cell: the placeholder goes into the cell vector (so flat
  // accessors stay in bounds) and the row's validity bit is cleared,
  // materializing the bitmap if this is the column's first null.
  void AppendNull() {
    switch (type_) {
      case ColumnType::kInt:
        PushValidity(ints_.size(), false);
        ints_.push_back(0);
        break;
      case ColumnType::kDouble:
        PushValidity(doubles_.size(), false);
        doubles_.push_back(0.0);
        break;
      case ColumnType::kString:
        PushValidity(strings_.size(), false);
        strings_.push_back(0);
        break;
    }
  }

  // True when the column holds at least one NULL — equivalently, when the
  // validity bitmap is materialized. The gate every hot loop tests once per
  // column before choosing the flat (pre-null, bit-identical) body.
  bool has_nulls() const { return !validity_.empty(); }
  size_t null_count() const { return null_count_; }

  // Row validity. All-valid columns answer without touching memory beyond
  // the empty-vector check.
  bool valid(size_t i) const {
    return validity_.empty() ||
           ((validity_[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  // The packed bitmap words (empty for an all-valid column). Bits at
  // positions >= size() are zero by construction, so the words are a
  // canonical byte image — what FactTableFingerprint hashes.
  const std::vector<uint64_t>& validity_words() const { return validity_; }

  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  StringId StringAt(size_t i) const { return strings_[i]; }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<StringId>& string_ids() const { return strings_; }

  // The cell as one 64-bit comparison key: raw int bits, canonicalized
  // double bits (-0.0 folds onto +0.0 so that key equality matches double
  // equality), or the widened string id. Two VALID cells of columns with the
  // SAME ColumnType are equal as Values iff their key words are equal;
  // across types, Values are never equal (variant semantics), which callers
  // handle by comparing column types first. A NULL cell yields its
  // placeholder word — join and DISTINCT paths must exclude or mask null
  // rows (via JoinKeyIsNull / valid) before trusting key-word equality.
  uint64_t KeyWord(size_t i) const {
    switch (type_) {
      case ColumnType::kInt:
        return static_cast<uint64_t>(ints_[i]);
      case ColumnType::kDouble: {
        const double d = doubles_[i];
        return std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
      }
      case ColumnType::kString:
        return strings_[i];
    }
    return 0;
  }

  // Gathers KeyWord for a batch of row indices: out[i] = KeyWord(rows[i]).
  // One type dispatch per batch instead of per cell — this is what the join
  // probe loop and the flat index build use to keep their inner loops free
  // of switches and amenable to unrolling.
  void KeyWords(const uint32_t* rows, size_t n, uint64_t* out) const {
    switch (type_) {
      case ColumnType::kInt: {
        const int64_t* data = ints_.data();
        for (size_t i = 0; i < n; ++i) {
          out[i] = static_cast<uint64_t>(data[rows[i]]);
        }
        break;
      }
      case ColumnType::kDouble: {
        const double* data = doubles_.data();
        for (size_t i = 0; i < n; ++i) {
          const double d = data[rows[i]];
          out[i] = std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
        }
        break;
      }
      case ColumnType::kString: {
        const StringId* data = strings_.data();
        for (size_t i = 0; i < n; ++i) out[i] = data[rows[i]];
        break;
      }
    }
  }

  // True if the cell at row i can never equal any join key under SQL join
  // semantics: a NULL cell (NULL matches nothing, including NULL), or a NaN
  // cell in a double column — double equality says NaN != NaN, but two NaN
  // cells with identical bit patterns would compare equal as key words, so
  // they must be excluded rather than canonicalized.
  bool JoinKeyIsNull(size_t i) const {
    if (!valid(i)) return true;
    if (type_ == ColumnType::kDouble) {
      const double d = doubles_[i];
      return d != d;  // NaN
    }
    return false;
  }

  // Cheap per-column gate for the join hot paths: false means no cell of
  // this column can be join-null, so build/probe loops skip the per-row
  // JoinKeyIsNull test entirely. Double columns always answer true (NaN
  // presence is not tracked); int and string columns answer has_nulls().
  bool MayHaveJoinNulls() const {
    return has_nulls() || type_ == ColumnType::kDouble;
  }

  // Decodes one cell back into the boundary Value type.
  Value GetValue(size_t i, const StringPool& pool) const {
    if (!valid(i)) return Value::Null();
    switch (type_) {
      case ColumnType::kInt:
        return Value(ints_[i]);
      case ColumnType::kDouble:
        return Value(doubles_[i]);
      case ColumnType::kString:
        return Value(pool.Get(strings_[i]));
    }
    return Value();
  }

 private:
  // Records the validity of the cell about to land at index `row`. The
  // all-valid fast path is the first branch: no bitmap and a valid cell is
  // a no-op, so columns that never see a null never allocate. On the first
  // null, bits [0, row) are backfilled as valid and the new row's bit stays
  // clear; trailing bits beyond the last row are kept zero so the word
  // vector is a canonical image (fingerprintable byte-for-byte).
  void PushValidity(size_t row, bool is_valid) {
    if (validity_.empty()) {
      if (is_valid) return;
      validity_.resize(row / 64 + 1, 0);
      for (size_t w = 0; w < row / 64; ++w) validity_[w] = ~uint64_t{0};
      if (row % 64 != 0) {
        validity_[row / 64] = (uint64_t{1} << (row % 64)) - 1;
      }
      ++null_count_;
      return;
    }
    if (row / 64 >= validity_.size()) validity_.push_back(0);
    if (is_valid) {
      validity_[row / 64] |= uint64_t{1} << (row % 64);
    } else {
      ++null_count_;
    }
  }

  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<StringId> strings_;
  // Word-packed validity bitmap; empty = all valid (the common case, and
  // the invariant null_count_ == 0 iff validity_.empty()).
  std::vector<uint64_t> validity_;
  size_t null_count_ = 0;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_COLUMN_H_
