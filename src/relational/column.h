#ifndef LSHAP_RELATIONAL_COLUMN_H_
#define LSHAP_RELATIONAL_COLUMN_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "relational/string_pool.h"
#include "relational/value.h"

namespace lshap {

// One typed, contiguous column of a table. Exactly one of the three backing
// vectors is populated, matching type(); cells are fixed-width (int64,
// double, or interned StringId), so scans touch flat memory and carry no
// per-cell heap payload. Cells are never null: the Value boundary rejects
// nulls and mistyped inserts before they reach a column.
class ColumnData {
 public:
  explicit ColumnData(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case ColumnType::kInt:
        return ints_.size();
      case ColumnType::kDouble:
        return doubles_.size();
      case ColumnType::kString:
        return strings_.size();
    }
    return 0;
  }

  void AppendInt(int64_t v) {
    LSHAP_CHECK(type_ == ColumnType::kInt);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    LSHAP_CHECK(type_ == ColumnType::kDouble);
    doubles_.push_back(v);
  }
  void AppendString(StringId id) {
    LSHAP_CHECK(type_ == ColumnType::kString);
    strings_.push_back(id);
  }

  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  StringId StringAt(size_t i) const { return strings_[i]; }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<StringId>& string_ids() const { return strings_; }

  // The cell as one 64-bit comparison key: raw int bits, canonicalized
  // double bits (-0.0 folds onto +0.0 so that key equality matches double
  // equality), or the widened string id. Two cells of columns with the SAME
  // ColumnType are equal as Values iff their key words are equal; across
  // types, Values are never equal (variant semantics), which callers handle
  // by comparing column types first.
  uint64_t KeyWord(size_t i) const {
    switch (type_) {
      case ColumnType::kInt:
        return static_cast<uint64_t>(ints_[i]);
      case ColumnType::kDouble: {
        const double d = doubles_[i];
        return std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
      }
      case ColumnType::kString:
        return strings_[i];
    }
    return 0;
  }

  // Gathers KeyWord for a batch of row indices: out[i] = KeyWord(rows[i]).
  // One type dispatch per batch instead of per cell — this is what the join
  // probe loop and the flat index build use to keep their inner loops free
  // of switches and amenable to unrolling.
  void KeyWords(const uint32_t* rows, size_t n, uint64_t* out) const {
    switch (type_) {
      case ColumnType::kInt: {
        const int64_t* data = ints_.data();
        for (size_t i = 0; i < n; ++i) {
          out[i] = static_cast<uint64_t>(data[rows[i]]);
        }
        break;
      }
      case ColumnType::kDouble: {
        const double* data = doubles_.data();
        for (size_t i = 0; i < n; ++i) {
          const double d = data[rows[i]];
          out[i] = std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
        }
        break;
      }
      case ColumnType::kString: {
        const StringId* data = strings_.data();
        for (size_t i = 0; i < n; ++i) out[i] = data[rows[i]];
        break;
      }
    }
  }

  // Decodes one cell back into the boundary Value type.
  Value GetValue(size_t i, const StringPool& pool) const {
    switch (type_) {
      case ColumnType::kInt:
        return Value(ints_[i]);
      case ColumnType::kDouble:
        return Value(doubles_[i]);
      case ColumnType::kString:
        return Value(pool.Get(strings_[i]));
    }
    return Value();
  }

 private:
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<StringId> strings_;
};

}  // namespace lshap

#endif  // LSHAP_RELATIONAL_COLUMN_H_
